//! Parallelising DOACROSS loops — the paper's headline capability.
//!
//! Walks the seven selected DOACROSS loops of Table 3 (four from art,
//! one each from equake, lucas and fma3d), schedules each with TMS,
//! and shows where the speedup comes from: the gap between II and LDP
//! (ILP) and the gap between II and C_delay (TLP), per §5's metrics.
//!
//! ```sh
//! cargo run --release --example doacross_pipeline
//! ```

use tms_repro::prelude::*;
use tms_workloads::doacross_suite;

fn main() {
    let machine = MachineModel::icpp2008();
    let arch = ArchParams::icpp2008();
    let model = CostModel::new(arch.costs, arch.ncore);
    let sim_cfg = SimConfig::icpp2008(1000);

    println!(
        "{:<10} {:>5} {:>4} {:>4} {:>4} {:>7} {:>9} {:>9} {:>8}",
        "loop", "#inst", "MII", "LDP", "II", "C_delay", "1T cyc", "TMS cyc", "speedup"
    );
    for l in doacross_suite(0x1CC9_2008) {
        let tms = schedule_tms(&l.ddg, &machine, &model, &TmsConfig::default())
            .expect("TMS schedules every DOACROSS loop");
        let m = LoopMetrics::compute(&l.ddg, &machine, &tms.schedule, &arch.costs);

        let seq = simulate_sequential(&l.ddg, &machine, &sim_cfg);
        let spmt = simulate_spmt(&l.ddg, &tms.schedule, &sim_cfg);
        let speedup = (seq.total_cycles as f64 / spmt.stats.total_cycles as f64 - 1.0) * 100.0;

        println!(
            "{:<10} {:>5} {:>4} {:>4} {:>4} {:>7} {:>9} {:>9} {:>+7.1}%",
            l.ddg.name(),
            m.num_insts,
            m.mii,
            m.ldp,
            m.ii,
            m.c_delay,
            seq.total_cycles,
            spmt.stats.total_cycles,
            speedup
        );

        // The paper's reading of these numbers (§5.2):
        // LDP − II  ≈ ILP exposed; II − C_delay ≈ TLP exposed.
        let ilp = m.ldp - m.ii as i64;
        let tlp = m.ii as i64 - m.c_delay as i64;
        let character = match (ilp > 2, tlp > 2) {
            (true, true) => "ILP + TLP",
            (true, false) => "ILP only",
            (false, true) => "TLP only",
            (false, false) => "neither",
        };
        println!(
            "{:<10}   gap(LDP−II)={:<3} gap(II−C_delay)={:<3} → {}",
            "", ilp, tlp, character
        );

        // Misspeculation stays negligible (< 0.1% in the paper).
        let freq = spmt.stats.misspec_frequency();
        assert!(
            freq < 0.05,
            "{}: misspeculation frequency {freq} unexpectedly high",
            l.ddg.name()
        );
    }
}
