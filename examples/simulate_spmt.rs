//! Driving the SpMT simulator directly: speculation, squashes and the
//! cycle-accounting breakdown.
//!
//! Takes a speculative loop whose memory dependence probability is
//! swept from "never aliases" to "always aliases", showing how
//! misspeculation eats the TLP that speculation buys — the dynamics
//! behind the paper's §5.2 speculation discussion.
//!
//! ```sh
//! cargo run --release --example simulate_spmt
//! ```

use tms_repro::prelude::*;
use tms_workloads::kernels::maybe_aliasing_update;

fn main() {
    let machine = MachineModel::icpp2008();
    let arch = ArchParams::icpp2008();
    let model = CostModel::new(arch.costs, arch.ncore);

    println!(
        "{:>6} {:>6} {:>9} {:>9} {:>9} {:>8} {:>9} {:>10}",
        "p", "II", "1T cyc", "SpMT cyc", "speedup", "squash", "inv cyc", "sync stall"
    );
    for p in [0.0, 0.01, 0.05, 0.2, 0.5, 1.0] {
        // A pointer-chasing update loop: this iteration's store may be
        // next iteration's load with probability p.
        let ddg = maybe_aliasing_update(p);
        let tms = schedule_tms(&ddg, &machine, &model, &TmsConfig::default()).expect("schedulable");

        let sim_cfg = SimConfig::icpp2008(3000);
        let out = simulate_spmt(&ddg, &tms.schedule, &sim_cfg);
        let seq = simulate_sequential(&ddg, &machine, &sim_cfg);
        let s = &out.stats;
        println!(
            "{:>6.2} {:>6} {:>9} {:>9} {:>+8.1}% {:>8} {:>9} {:>10}",
            p,
            tms.ii,
            seq.total_cycles,
            s.total_cycles,
            (seq.total_cycles as f64 / s.total_cycles as f64 - 1.0) * 100.0,
            s.misspeculations + s.cascade_squashes,
            s.invalidation_cycles,
            s.sync_stall_cycles,
        );

        // The committed state must match sequential semantics exactly,
        // squashes or not: same set of final (address → last writer).
        assert_eq!(
            out.memory_image, seq.memory_image,
            "p={p}: committed memory image diverged from sequential"
        );
    }

    println!("\nsquash/replay preserved sequential memory state at every probability.");
}
