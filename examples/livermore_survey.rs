//! Survey of the Livermore-style kernels: classification, granularity
//! selection, scheduling and SpMT execution side by side.
//!
//! For each kernel the survey prints its parallelism class (DOALL /
//! DOACROSS register / DOACROSS speculative-memory), the unroll factor
//! the cost model picks (tiny bodies must be unrolled before SpMT pays
//! — the paper itself unrolls art's 11-instruction loops ×4), the TMS
//! kernel's key metrics, and the simulated speedup of TMS on the
//! quad-core SpMT system over the out-of-order single core.
//!
//! ```sh
//! cargo run --release --example livermore_survey
//! ```

use tms_repro::prelude::*;
use tms_workloads::livermore::livermore_suite;

fn main() {
    let machine = MachineModel::icpp2008();
    let arch = ArchParams::icpp2008();
    let model = CostModel::new(arch.costs, arch.ncore);
    let orig_iters: u64 = 4096;

    println!(
        "{:<18} {:<18} {:>2} {:>4} {:>3} {:>6} {:>9} {:>9} {:>8}",
        "kernel", "class", "uf", "MII", "II", "TMS D", "1T cyc", "TMS cyc", "speedup"
    );
    for ddg in livermore_suite() {
        let class = tms_ddg::classify(&ddg);
        // Let the cost model pick the thread granularity.
        let pick = tms_core::schedule_tms_unrolled(
            &ddg,
            &machine,
            &model,
            &TmsConfig::default(),
            &[1, 2, 4, 8],
        )
        .expect("schedulable");
        let g = &pick.unrolled_ddg;
        let m = LoopMetrics::compute(g, &machine, &pick.result.schedule, &arch.costs);

        // Simulate the same number of ORIGINAL iterations either way.
        let mut sim_cfg = SimConfig::icpp2008(orig_iters);
        let seq = simulate_sequential(&ddg, &machine, &sim_cfg);
        sim_cfg.n_iter = orig_iters / pick.factor as u64;
        let run = simulate_spmt(g, &pick.result.schedule, &sim_cfg);
        let speedup = (seq.total_cycles as f64 / run.stats.total_cycles as f64 - 1.0) * 100.0;
        println!(
            "{:<18} {:<18} {:>2} {:>4} {:>3} {:>6} {:>9} {:>9} {:>+7.1}%",
            ddg.name(),
            class.class.label(),
            pick.factor,
            m.mii,
            m.ii,
            m.c_delay,
            seq.total_cycles,
            run.stats.total_cycles,
            speedup
        );
    }
    println!(
        "\nWide DOALL bodies win as-is; tiny bodies need unrolling to amortise\n\
         the spawn/commit/sync floor; register and certain-memory recurrences\n\
         (inner product, first sum, tridiagonal) serialise at their recurrence\n\
         rate, where the single out-of-order core is already near-optimal —\n\
         the paper's DOACROSS wins come from loops whose carried dependences\n\
         are speculable memory, not certain chains."
    );
}
