//! Quickstart: build a loop, schedule it with SMS and TMS, compare the
//! kernels and run both on the SpMT simulator.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tms_repro::prelude::*;
use tms_workloads::figure1;

fn main() {
    // --- 1. A loop body. This is the paper's motivating example
    // (Figure 1): a 9-instruction loop whose recurrence closes through
    // a rarely-taken memory dependence, plus induction updates feeding
    // the next iteration.
    let ddg = figure1();
    println!(
        "loop '{}', {} instructions, {} dependences\n",
        ddg.name(),
        ddg.num_insts(),
        ddg.num_edges()
    );

    // --- 2. The machine: one core of the paper's quad-core SpMT
    // system (Table 1).
    let machine = MachineModel::icpp2008();
    let arch = ArchParams::icpp2008();

    // --- 3. Baseline: Swing Modulo Scheduling.
    let sms = schedule_sms(&ddg, &machine).expect("SMS schedules figure 1");
    let sms_metrics = LoopMetrics::compute(&ddg, &machine, &sms.schedule, &arch.costs);
    println!(
        "SMS:  II={} stages={} MaxLive={} C_delay={}",
        sms_metrics.ii, sms_metrics.stage_count, sms_metrics.max_live, sms_metrics.c_delay
    );
    println!("{}", sms.schedule.kernel_text(&ddg));

    // --- 4. Thread-sensitive modulo scheduling: same engine, but the
    // (II, C_delay) search and the C1/C2 slot checks of Figure 3.
    let model = CostModel::new(arch.costs, arch.ncore);
    let tms = schedule_tms(&ddg, &machine, &model, &TmsConfig::default())
        .expect("TMS schedules figure 1");
    let tms_metrics = LoopMetrics::compute(&ddg, &machine, &tms.schedule, &arch.costs);
    println!(
        "TMS:  II={} stages={} MaxLive={} C_delay={}  (threshold {}, P_max {}, F={:.2})",
        tms_metrics.ii,
        tms_metrics.stage_count,
        tms_metrics.max_live,
        tms_metrics.c_delay,
        tms.c_delay_threshold,
        tms.p_max,
        model.f(tms.ii, tms.c_delay_threshold)
    );
    println!("{}", tms.schedule.kernel_text(&ddg));

    // --- 5. The communication plan the post-pass derives.
    let plan = CommPlan::build(&ddg, &tms.schedule);
    println!(
        "TMS communication: {} producers, {} SEND/RECV pairs per iteration, {} relay copies\n",
        plan.num_producers(),
        plan.send_recv_pairs,
        plan.num_copies
    );

    // --- 6. Execute both kernels on the simulated quad-core SpMT
    // system for 2000 iterations and compare.
    let sim_cfg = SimConfig::icpp2008(2000);
    let s = simulate_spmt(&ddg, &sms.schedule, &sim_cfg);
    let t = simulate_spmt(&ddg, &tms.schedule, &sim_cfg);
    let seq = simulate_sequential(&ddg, &machine, &sim_cfg);
    println!("single-threaded (OoO core): {:8} cycles", seq.total_cycles);
    println!(
        "SMS on 4-core SpMT:         {:8} cycles  ({} sync-stall cycles)",
        s.stats.total_cycles, s.stats.sync_stall_cycles
    );
    println!(
        "TMS on 4-core SpMT:         {:8} cycles  ({} sync-stall cycles)",
        t.stats.total_cycles, t.stats.sync_stall_cycles
    );
    println!(
        "TMS speedup over SMS:  {:+.1}%",
        (s.stats.total_cycles as f64 / t.stats.total_cycles as f64 - 1.0) * 100.0
    );
    println!(
        "TMS speedup over 1T:   {:+.1}%",
        (seq.total_cycles as f64 / t.stats.total_cycles as f64 - 1.0) * 100.0
    );
    println!(
        "\n(a 9-instruction loop fits inside one out-of-order window, so the 1T\n\
         core is hard to beat at this granularity — see the doacross_pipeline\n\
         and livermore_survey examples for the loops where SpMT pays, and\n\
         `tms simulate figure1 --unroll 4` for the granularity lever)"
    );
}
