//! Exploring the §4.2 cost model.
//!
//! Sweeps `(II, C_delay)` for a loop and prints the per-iteration cost
//! surface `F(II, C_delay) = T_nomiss / N`, the candidate order TMS
//! visits, and how core count and misspeculation probability move the
//! trade-off — a hands-on companion to equations (2) and (3).
//!
//! ```sh
//! cargo run --example cost_model_explorer
//! ```

use tms_repro::prelude::*;
use tms_workloads::figure1;

fn main() {
    let ddg = figure1();
    let machine = MachineModel::icpp2008();
    let costs = ArchParams::icpp2008().costs;
    let mii = tms_machine::mii(&ddg, &machine);
    println!("loop '{}': MII = {mii}\n", ddg.name());

    // --- The F(II, C_delay) surface on 4 cores.
    let model = CostModel::new(costs, 4);
    println!("F(II, C_delay) on 4 cores (cycles/iteration):");
    print!("        ");
    for cd in [4u32, 6, 8, 10, 12, 16, 20] {
        print!("cd={cd:<5}");
    }
    println!();
    for ii in [mii, mii + 2, mii + 4, mii + 8] {
        print!("II={ii:<4} ");
        for cd in [4u32, 6, 8, 10, 12, 16, 20] {
            print!("{:>7.2}", model.f(ii, cd));
        }
        println!();
    }

    // --- Candidate visit order (what Figure 3's F_min loop does).
    println!("\nfirst 12 (II, C_delay) candidates in cost order:");
    for (i, (ii, cd, key)) in model
        .candidates(mii, mii + 8, 20)
        .iter()
        .take(12)
        .enumerate()
    {
        println!(
            "  {:>2}. II={ii:<3} C_delay={cd:<3} F·ncore={}",
            i + 1,
            key.0
        );
    }

    // --- Core-count sensitivity: more cores push the optimum toward
    // smaller C_delay (the serial synchronisation term dominates).
    println!("\nbest candidate by core count:");
    for ncore in [1u32, 2, 4, 8] {
        let m = CostModel::new(costs, ncore);
        let cands = m.candidates(mii, mii + 8, 20);
        let (ii, cd, _) = cands[0];
        println!(
            "  ncore={ncore}: II={ii} C_delay={cd} → F={:.2} cycles/iter",
            m.f(ii, cd)
        );
    }

    // --- Misspeculation: equation (3) and the total time T.
    println!("\nmisspeculation sensitivity (II=MII, C_delay=6, N=1000):");
    let m = CostModel::new(costs, 4);
    for p in [0.0, 0.001, 0.01, 0.05, 0.2] {
        let t = m.total(mii, 6, p, 1000);
        println!("  P_M={p:<6} → T = {t:>9.0} cycles");
    }

    // --- And the real scheduler's choice.
    let tms = schedule_tms(&ddg, &machine, &m, &TmsConfig::default()).unwrap();
    println!(
        "\nTMS picked II={} C_delay≤{} (P_max {}): F = {:.2} cycles/iter",
        tms.ii,
        tms.c_delay_threshold,
        tms.p_max,
        m.f(tms.ii, tms.c_delay_threshold)
    );
}
