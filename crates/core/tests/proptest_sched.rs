//! Property tests on the schedulers: legality, resource feasibility,
//! kernel invariants and the TMS guarantees, over randomly generated
//! loops (via the seeded workload generator, which only produces valid
//! DDGs).

use proptest::prelude::*;
use tms_core::cost::CostModel;
use tms_core::lifetimes::max_live;
use tms_core::metrics::{achieved_c_delay, kernel_misspec_prob};
use tms_core::postpass::CommPlan;
use tms_core::schedule::Schedule;
use tms_core::{schedule_sms, schedule_tms, TmsConfig};
use tms_ddg::Ddg;
use tms_machine::{ArchParams, MachineModel};

/// Strategy: loop specs spanning DOALL bodies, register and memory
/// recurrences, inductions and speculable dependences.
fn arb_loop() -> impl Strategy<Value = Ddg> {
    (
        4u32..40,          // instruction budget
        0u32..3,           // recurrences
        2u32..20,          // recurrence latency target
        prop::bool::ANY,   // memory-carried?
        0u32..3,           // inductions
        0u32..3,           // speculable mem deps
        0u64..u64::MAX / 2, // seed
    )
        .prop_map(|(n, nrec, lat, mem, ind, memdeps, seed)| {
            use tms_workloads::{generate_loop, LoopSpec, RecurrenceSpec};
            let mut spec = LoopSpec::basic("prop", n, seed);
            for r in 0..nrec {
                spec.recurrences.push(RecurrenceSpec {
                    len: 1 + (r + 1).min(4),
                    latency: lat,
                    through_memory: mem && r % 2 == 0,
                    prob: if mem { 0.05 } else { 1.0 },
                });
            }
            spec.carried_reg_deps = ind;
            spec.carried_mem_deps = memdeps;
            generate_loop(&spec)
        })
}

fn machine() -> MachineModel {
    MachineModel::icpp2008()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sms_is_legal_feasible_and_at_least_mii(ddg in arb_loop()) {
        let r = schedule_sms(&ddg, &machine()).expect("SMS must schedule");
        prop_assert!(r.schedule.check_legal(&ddg).is_none());
        prop_assert!(r.schedule.check_resources(&ddg, &machine()));
        prop_assert!(r.schedule.ii() >= r.mii);
    }

    #[test]
    fn kernel_distances_are_nonnegative_for_flow_deps(ddg in arb_loop()) {
        let r = schedule_sms(&ddg, &machine()).expect("SMS must schedule");
        for (e, d_ker) in r.schedule.kernel_deps(&ddg) {
            if e.is_register_flow() || e.is_memory_flow() {
                prop_assert!(
                    d_ker >= 0,
                    "flow dep {} has kernel distance {d_ker}", e
                );
            }
        }
    }

    #[test]
    fn tms_is_legal_and_never_costlier_than_sms(ddg in arb_loop()) {
        let arch = ArchParams::icpp2008();
        let model = CostModel::new(arch.costs, arch.ncore);
        let sms = schedule_sms(&ddg, &machine()).unwrap();
        let tms = schedule_tms(&ddg, &machine(), &model, &TmsConfig::default()).unwrap();
        prop_assert!(tms.schedule.check_legal(&ddg).is_none());
        prop_assert!(tms.schedule.check_resources(&ddg, &machine()));
        let sms_key = model.cost_key(
            sms.schedule.ii(),
            achieved_c_delay(&ddg, &sms.schedule, &arch.costs),
        );
        prop_assert!(
            tms.cost_key <= sms_key,
            "TMS {:?} vs SMS {:?}", tms.cost_key, sms_key
        );
    }

    #[test]
    fn tms_thresholds_hold_on_the_final_kernel(ddg in arb_loop()) {
        let arch = ArchParams::icpp2008();
        let model = CostModel::new(arch.costs, arch.ncore);
        let tms = schedule_tms(&ddg, &machine(), &model, &TmsConfig::default()).unwrap();
        if !tms.fell_back_to_sms {
            let cd = achieved_c_delay(&ddg, &tms.schedule, &arch.costs);
            let pm = kernel_misspec_prob(&ddg, &tms.schedule, &arch.costs);
            prop_assert!(cd <= tms.c_delay_threshold);
            prop_assert!(pm <= tms.p_max + 1e-12);
        }
    }

    #[test]
    fn max_live_is_rotation_invariant(ddg in arb_loop()) {
        let r = schedule_sms(&ddg, &machine()).unwrap();
        let ii = r.schedule.ii();
        let shifted: Vec<i64> = ddg
            .inst_ids()
            .map(|n| r.schedule.time(n) + ii as i64)
            .collect();
        let rot = Schedule::from_times(&ddg, ii, shifted);
        prop_assert_eq!(max_live(&ddg, &r.schedule), max_live(&ddg, &rot));
    }

    #[test]
    fn comm_plan_is_consistent(ddg in arb_loop()) {
        let r = schedule_sms(&ddg, &machine()).unwrap();
        let plan = CommPlan::build(&ddg, &r.schedule);
        prop_assert!(plan.all_distances_unit());
        // Pair count = Σ hops; copies = Σ (hops − 1).
        let hops: u32 = plan.communications.iter().map(|c| c.hops).sum();
        let copies: u32 = plan
            .communications
            .iter()
            .map(|c| c.hops.saturating_sub(1))
            .sum();
        prop_assert_eq!(plan.send_recv_pairs, hops);
        prop_assert_eq!(plan.num_copies, copies);
        // Every communicated dependence is a register flow dep with
        // kernel distance >= 1.
        for comm in &plan.communications {
            prop_assert!(comm.hops >= 1);
            for &(_, d) in &comm.consumers {
                prop_assert!(d >= 1 && d <= comm.hops);
            }
        }
    }

    #[test]
    fn cost_model_is_monotone(
        ii in 1u32..200,
        cd in 4u32..200,
        ncore in 1u32..9,
        p in 0.0f64..1.0,
    ) {
        let model = CostModel::new(ArchParams::icpp2008().costs, ncore);
        // F grows (weakly) in both II and C_delay.
        prop_assert!(model.cost_key(ii, cd) <= model.cost_key(ii + 1, cd));
        prop_assert!(model.cost_key(ii, cd) <= model.cost_key(ii, cd + 1));
        // Total time grows with misspeculation probability.
        let t1 = model.total(ii, cd, p * 0.5, 1000);
        let t2 = model.total(ii, cd, p, 1000);
        prop_assert!(t2 >= t1 - 1e-9);
        // And more cores never increase the no-miss estimate.
        let wider = CostModel::new(ArchParams::icpp2008().costs, ncore + 1);
        prop_assert!(wider.f(ii, cd) <= model.f(ii, cd) + 1e-9);
    }
}
