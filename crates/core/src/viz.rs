//! Schedule visualisation: Gantt-style kernel tables and DOT export of
//! the kernel with its inter-thread dependences.

use crate::postpass::CommPlan;
use crate::schedule::Schedule;
use std::fmt::Write as _;
use tms_ddg::Ddg;
use tms_machine::ResourceClass;

/// Render the kernel as a row × resource Gantt table: one line per
/// modulo row, instructions grouped under the functional-unit class
/// they occupy, annotated with their stage.
pub fn kernel_gantt(ddg: &Ddg, schedule: &Schedule) -> String {
    let classes = ResourceClass::ALL;
    let headers = ["int", "muldiv", "fpadd", "fpmul", "mem"];
    // Collect cell text per (row, class).
    let ii = schedule.ii() as usize;
    let mut cells: Vec<Vec<Vec<String>>> = vec![vec![Vec::new(); classes.len()]; ii];
    for n in ddg.inst_ids() {
        let inst = ddg.inst(n);
        let class = ResourceClass::for_op(inst.op);
        cells[schedule.row(n) as usize][class.index()].push(format!(
            "{}·s{}",
            inst.name,
            schedule.stage(n)
        ));
    }
    let mut widths = [0usize; 5];
    for row in &cells {
        for (c, cell) in row.iter().enumerate() {
            widths[c] = widths[c].max(cell.join(" ").len()).max(headers[c].len());
        }
    }
    let mut out = String::new();
    let _ = write!(out, "row |");
    for (c, h) in headers.iter().enumerate() {
        let _ = write!(out, " {:<w$} |", h, w = widths[c]);
    }
    out.push('\n');
    let _ = write!(out, "----+");
    for w in widths {
        let _ = write!(out, "{}+", "-".repeat(w + 2));
    }
    out.push('\n');
    for (r, row) in cells.iter().enumerate() {
        let _ = write!(out, "{r:>3} |");
        for (c, cell) in row.iter().enumerate() {
            let _ = write!(out, " {:<w$} |", cell.join(" "), w = widths[c]);
        }
        out.push('\n');
    }
    out
}

/// DOT rendering of the *scheduled kernel*: nodes carry `row/stage`
/// labels, intra-thread dependences are solid, inter-thread register
/// dependences (the synchronised SEND/RECV traffic) are bold red with
/// their hop count, speculated inter-thread memory dependences dashed
/// orange with their probability.
pub fn kernel_dot(ddg: &Ddg, schedule: &Schedule) -> String {
    let plan = CommPlan::build(ddg, schedule);
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}-kernel\" {{", ddg.name());
    let _ = writeln!(
        out,
        "  rankdir=TB; node [shape=record, fontname=\"monospace\"];"
    );
    for i in ddg.insts() {
        let _ = writeln!(
            out,
            "  {} [label=\"{{{}|row {} · s{}}}\"];",
            i.id,
            i.name.replace('"', "'"),
            schedule.row(i.id),
            schedule.stage(i.id)
        );
    }
    for e in ddg.edges() {
        let d_ker = schedule.d_ker(e);
        if e.is_register_flow() && d_ker >= 1 {
            let _ = writeln!(
                out,
                "  {} -> {} [color=red, penwidth=2, label=\"sync ×{d_ker}\"];",
                e.src, e.dst
            );
        } else if e.is_memory_flow() && d_ker >= 1 {
            let _ = writeln!(
                out,
                "  {} -> {} [color=orange, style=dashed, label=\"spec p={:.2}\"];",
                e.src, e.dst, e.prob
            );
        } else {
            let _ = writeln!(out, "  {} -> {};", e.src, e.dst);
        }
    }
    let _ = writeln!(
        out,
        "  label=\"II={} stages={} SEND/RECV pairs={}\"; labelloc=b;",
        schedule.ii(),
        schedule.stage_count(),
        plan.send_recv_pairs
    );
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sms::schedule_sms;
    use tms_ddg::{DdgBuilder, OpClass};
    use tms_machine::MachineModel;

    fn scheduled() -> (Ddg, Schedule) {
        let mut b = DdgBuilder::new("viz");
        let ld = b.inst("ld", OpClass::Load);
        let f = b.inst("mul", OpClass::FpMul);
        let st = b.inst("st", OpClass::Store);
        let ind = b.inst("i++", OpClass::IntAlu);
        b.reg_flow(ld, f, 0);
        b.reg_flow(f, st, 0);
        b.reg_flow(ind, ind, 1);
        b.reg_flow(ind, ld, 1);
        b.mem_flow(st, ld, 2, 0.1);
        let g = b.build().unwrap();
        let s = schedule_sms(&g, &MachineModel::icpp2008())
            .unwrap()
            .schedule;
        (g, s)
    }

    #[test]
    fn gantt_has_one_line_per_row_plus_header() {
        let (g, s) = scheduled();
        let txt = kernel_gantt(&g, &s);
        let lines = txt.lines().count();
        assert_eq!(lines, 2 + s.ii() as usize);
        assert!(txt.contains("fpmul"));
        assert!(txt.contains("mul·s"));
    }

    #[test]
    fn dot_marks_sync_and_spec_edges() {
        let (g, s) = scheduled();
        let dot = kernel_dot(&g, &s);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("sync ×"), "carried register deps marked");
        assert!(dot.contains("spec p=0.10"), "speculated deps marked");
        assert!(dot.contains("II="));
    }
}
