//! Warm-started scheduling attempts: decision-log record and replay.
//!
//! The TMS search dispatches many engine attempts per loop that differ
//! only in the `(C_delay, P_max)` knobs at a fixed II. The engine's
//! control flow at each step is fully determined by (a) window bounds
//! and resource feasibility — functions of the partial schedule alone —
//! and (b) the slot policy's verdicts, which depend on the knobs only
//! through threshold comparisons against knob-independent physical
//! facts: the sync delay of each new inter-iteration register
//! dependence and the accumulated misspeculation product (see
//! [`crate::tms::TmsPolicy`]).
//!
//! An [`AttemptLog`] records, per engine step, those facts ([`Probe`])
//! and the action the engine took ([`StepAction`]). A later attempt at
//! the same II *replays* the log: every prefix step whose probes still
//! yield the same verdicts under the new knobs is applied directly —
//! no window computation, no policy evaluation — and the first
//! diverging step truncates the log, after which the ordinary cold
//! loop resumes from the identical intermediate state and appends
//! fresh steps. Because a validated step is by construction exactly
//! the step the cold engine would have taken, replay is
//! equivalence-preserving: the warm engine produces byte-identical
//! schedules, and byte-identical failures, to the cold one
//! (`tests/bnb_equivalence.rs` pins this over fuzzed populations).
//!
//! # Cross-II carryover
//!
//! Probe facts do **not** transfer across II: sync delays and
//! misspeculation products are functions of rows *modulo II*, so a log
//! recorded at II can never be probe-replayed at II+1. What does
//! transfer is each step's window derivation, when it was
//! **carried-free** (no loop-carried edge relaxation improved a bound —
//! see `crate::window`'s transfer argument): the recorded `es`/`ls`
//! bounds, the [`crate::window::WindowKind`], and the carried-free
//! property itself are provably what the sweeps would recompute at any
//! larger II against the same placements. Each [`Step`] therefore
//! records its [`WinFacts`]; when the engine receives a log recorded at
//! a *smaller* II it demotes the steps from a replayable script to a
//! passive **guide**: the cold loop runs in full — fits, probes,
//! ejections, actions all recomputed live against the new II — but as
//! long as every executed action equals the guide's recorded action
//! (which inductively pins the placed state to the recorded run's), a
//! guide step whose facts are carried-free substitutes its recorded
//! bounds for the two longest-path sweeps. The first diverging action
//! (or a non-transferable step) drops the guide and the search is
//! simply cold from there, so byte-identity to the cold engine holds by
//! construction. [`AttemptLog::ii`] carries the recording II; logs from
//! a larger II are discarded (bounds transfer upward only).

use crate::window::WindowKind;
use tms_ddg::InstId;

/// The II-transferable derivation facts of one step's scheduling
/// window, recorded alongside the step so a later attempt at a larger
/// II can rebuild the window without the longest-path sweeps (see
/// [`crate::window::window_from_facts`] and the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WinFacts {
    /// The node the window was computed for.
    pub v: InstId,
    /// How the window was derived (which neighbour sides were placed —
    /// a reachability fact, II-independent given the same placements).
    pub kind: WindowKind,
    /// Transitive early start (`None` when nothing upstream was
    /// placed).
    pub es: Option<i64>,
    /// Transitive late start (`None` when nothing downstream was
    /// placed).
    pub ls: Option<i64>,
    /// Neither bound sweep improved a distance through a loop-carried
    /// edge: the bounds above transfer verbatim to any larger II. When
    /// `false` the facts are II-bound and a guided replay recomputes
    /// this step's window cold (the guide can still survive on action
    /// match).
    pub carried_free: bool,
}

/// The knob-independent facts behind one slot-policy verdict.
///
/// Recorded by [`crate::sms::SlotPolicy::accept_probed`]; revalidated
/// under different knobs by [`crate::sms::SlotPolicy::probe_holds`].
/// Every fact is a pure function of the partial-schedule state at the
/// moment of the probe, so two attempts that share a placement prefix
/// share these values exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Probe {
    /// The policy reported no reusable facts (the default for policies
    /// that don't implement probing, e.g. SMS's accept-all). Never
    /// revalidates: replay stops here and the cold loop takes over.
    Opaque,
    /// Condition C1 rejected the slot: a new inter-iteration register
    /// dependence had sync delay `sync`, exceeding the `C_delay`
    /// threshold. Still a rejection under knobs whose threshold the
    /// recorded sync also exceeds.
    C1Reject {
        /// Sync delay of the first violating dependence.
        sync: i64,
    },
    /// C1 passed but condition C2 rejected the slot: the
    /// misspeculation product of non-preserved memory dependences
    /// exceeded `P_max`. Still a rejection if the new threshold pair
    /// rejects either fact.
    C2Reject {
        /// Largest sync delay among the new inter-iteration register
        /// dependences (`i64::MIN` when there were none).
        sync_max: i64,
        /// The misspeculation product that exceeded `P_max`.
        misspec: f64,
    },
    /// The slot was accepted. Still an acceptance if `sync_max` stays
    /// within the new `C_delay` and the misspeculation product (when
    /// C2 applied at all — `None` means the slot added no speculated
    /// memory dependence, a placement fact independent of the knobs)
    /// stays within the new `P_max`.
    Accept {
        /// Largest sync delay among the new inter-iteration register
        /// dependences (`i64::MIN` when there were none).
        sync_max: i64,
        /// Misspeculation product, when condition C2 was evaluated.
        misspec: Option<f64>,
    },
}

impl Probe {
    /// Whether this probe's verdict was an acceptance. [`Probe::Opaque`]
    /// carries no verdict and counts as not-accepted; only policies
    /// that produce richer variants call this.
    #[inline]
    pub fn accepted(&self) -> bool {
        matches!(self, Probe::Accept { .. })
    }
}

/// Why a recorded attempt failed (the terminal step of an incomplete
/// log). Mirrors the cold engine's three failure exits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailKind {
    /// The ejection budget ran out before the node found a slot.
    EjectBudget,
    /// No cycle in the forced-placement scan was policy-accepted.
    NoForcedSlot,
    /// The forced slot stayed resource-blocked even after evicting the
    /// row's occupants.
    ForcedUnfit,
}

/// What the engine did at one step, after the step's probes resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum StepAction {
    /// Ordinary windowed placement of `v` at `cycle`.
    Place {
        /// The node placed.
        v: InstId,
        /// Its issue cycle.
        cycle: i64,
    },
    /// IMS-style forced placement: evict `eject_before` (row/width
    /// conflicts), place `v` at `cycle`, evict `eject_after` (violated
    /// neighbours). Replay must apply the three phases in this order —
    /// the MRT asserts a slot is free before placing into it.
    Force {
        /// The node force-placed.
        v: InstId,
        /// Its issue cycle.
        cycle: i64,
        /// Row occupants evicted to make space (in eviction order).
        eject_before: Vec<InstId>,
        /// Neighbours evicted for dependence violations (in order).
        eject_after: Vec<InstId>,
    },
    /// The attempt failed here. A validated `Fail` step ends replay
    /// with the identical failure, skipping the whole attempt.
    Fail(FailKind),
}

/// One engine step: the policy verdicts that determined it, then the
/// action taken. The probes cover exactly the `accept` calls the cold
/// engine made this step (resource-infeasible cycles are skipped
/// without consulting the policy, and their feasibility is a function
/// of the partial schedule, which replay reproduces exactly).
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Verdict facts, in evaluation order.
    pub probes: Vec<Probe>,
    /// The action the verdicts led to.
    pub action: StepAction,
    /// Derivation facts of the window this step scanned (every engine
    /// step computes exactly one window, `Fail` exits included). The
    /// cross-II guide consumes these; same-II replay ignores them.
    pub win: WinFacts,
}

/// A recorded attempt at one II, replayable under different
/// `(C_delay, P_max)` knobs at the same II and demotable to a cross-II
/// guide at a larger one. Owned by the TMS search's per-II cache
/// (seeded across II rows from the nearest lower row); the engine both
/// consumes (replays or guides from) and refreshes (re-records) it in
/// [`crate::sms::try_schedule_logged`].
#[derive(Debug, Clone, Default)]
pub struct AttemptLog {
    /// The recorded steps. Always a faithful prefix of what the cold
    /// engine would do for *some* knob setting at [`AttemptLog::ii`]:
    /// replay truncates at the first diverging step and recording
    /// appends from there.
    pub steps: Vec<Step>,
    /// Whether the log ends in a completed schedule (every node
    /// placed). A complete, fully-validated log rebuilds the schedule
    /// without a single policy call.
    pub complete: bool,
    /// The II the steps were recorded at; `0` means never recorded
    /// (a legal II is always ≥ 1). The engine replays a log whose II
    /// matches the attempt, guides from one recorded at a smaller II,
    /// and discards one from a larger II.
    pub ii: u32,
    /// Steps applied by replay in the most recent attempt.
    pub replayed: u64,
    /// Steps executed cold (and recorded) in the most recent attempt.
    pub executed: u64,
    /// Steps of the most recent attempt whose window was rebuilt from
    /// cross-II-transferred facts instead of the longest-path sweeps.
    pub cross_replayed: u64,
}

impl AttemptLog {
    /// An empty log (first attempt at an II runs fully cold).
    pub fn new() -> Self {
        Self::default()
    }
}
