//! Deterministic bounded worker pools.
//!
//! Every parallel path in the system — the TMS candidate wavefront,
//! the `tms-verify` family sweeps, the benchmark drivers — funnels
//! through [`par_map`]/[`par_map_with`]: a scoped `std::thread` fan-out
//! over a slice whose results are always returned **in input order**,
//! regardless of which worker finished first. Callers therefore get
//! bit-identical output at any worker count, which is what lets the
//! determinism tests compare `jobs=1` against `jobs=4` directly.
//!
//! No external dependencies: work distribution is a single shared
//! atomic cursor (self-balancing — an expensive item simply keeps one
//! worker busy while the others drain the tail), and each worker
//! collects `(index, result)` pairs that are merged and sorted once at
//! the end.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many workers a parallel region may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run on the calling thread (no spawning, no overhead). The
    /// default everywhere: parallelism is opt-in per call site.
    #[default]
    Serial,
    /// A fixed worker count (values below 2 behave like `Serial`).
    Jobs(usize),
    /// One worker per available hardware thread.
    Auto,
}

impl Parallelism {
    /// Map a `--jobs N` style count: `0` means auto-detect, `1` is
    /// serial, anything else a fixed pool.
    pub fn from_jobs(n: usize) -> Self {
        match n {
            0 => Parallelism::Auto,
            1 => Parallelism::Serial,
            n => Parallelism::Jobs(n),
        }
    }

    /// The `TMS_JOBS` environment override, if set and parseable.
    pub fn from_env() -> Option<Self> {
        std::env::var("TMS_JOBS")
            .ok()?
            .trim()
            .parse::<usize>()
            .ok()
            .map(Self::from_jobs)
    }

    /// Concrete worker count this policy resolves to on this machine.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Jobs(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Map `f` over `items` on up to [`Parallelism::workers`] threads,
/// returning results in input order. `f` receives the item index so
/// callers can seed per-item state deterministically.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(par, items, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with reusable per-worker scratch state: `init` runs once
/// per worker (once total on the serial path) and the resulting value
/// is threaded through every call that worker executes. This is how
/// the scheduling hot paths amortise their per-attempt allocations
/// (see `tms_core::sms::SchedScratch`).
pub fn par_map_with<T, R, S, I, F>(par: Parallelism, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = par.workers().min(items.len());
    if workers <= 1 {
        let mut scratch = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, t)| f(&mut scratch, i, t))
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let shards: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut scratch = init();
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&mut scratch, i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });

    let mut merged: Vec<(usize, R)> = shards.into_iter().flatten().collect();
    debug_assert_eq!(merged.len(), items.len());
    merged.sort_unstable_by_key(|&(i, _)| i);
    merged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Jobs(2),
            Parallelism::Jobs(7),
            Parallelism::Auto,
        ] {
            let got = par_map(par, &items, |_, &x| x * x);
            assert_eq!(got, expect, "{par:?}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u32; 0] = [];
        assert!(par_map(Parallelism::Jobs(4), &items, |_, &x| x).is_empty());
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // On the serial path the single scratch sees every item.
        let items: Vec<u32> = (0..10).collect();
        let counts = par_map_with(
            Parallelism::Serial,
            &items,
            || 0usize,
            |seen, _, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(counts, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn from_jobs_maps_zero_to_auto_and_one_to_serial() {
        assert_eq!(Parallelism::from_jobs(0), Parallelism::Auto);
        assert_eq!(Parallelism::from_jobs(1), Parallelism::Serial);
        assert_eq!(Parallelism::from_jobs(6), Parallelism::Jobs(6));
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Jobs(3).workers(), 3);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn worker_results_match_serial_reference_with_state() {
        let items: Vec<u64> = (0..64).collect();
        let serial = par_map_with(
            Parallelism::Serial,
            &items,
            || 0u64,
            |_, i, &x| x + i as u64,
        );
        let parallel = par_map_with(
            Parallelism::Jobs(4),
            &items,
            || 0u64,
            |_, i, &x| x + i as u64,
        );
        assert_eq!(serial, parallel);
    }
}
