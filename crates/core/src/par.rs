//! Deterministic bounded worker pools.
//!
//! Every parallel path in the system — the TMS candidate wavefront,
//! the `tms-verify` family sweeps, the benchmark drivers — funnels
//! through [`par_map`]/[`par_map_with`]: a scoped `std::thread` fan-out
//! over a slice whose results are always returned **in input order**,
//! regardless of which worker finished first. Callers therefore get
//! bit-identical output at any worker count, which is what lets the
//! determinism tests compare `jobs=1` against `jobs=4` directly.
//!
//! No external dependencies: work distribution is a single shared
//! atomic cursor (self-balancing — an expensive item simply keeps one
//! worker busy while the others drain the tail), and each worker
//! collects `(index, result)` pairs that are merged and sorted once at
//! the end.
//!
//! # Panic containment
//!
//! A panicking item must not take down the whole fan-out (one
//! pathological loop would otherwise abort an entire sharded sweep),
//! and — just as important — must not perturb the results of its
//! neighbours. Each item runs under [`catch_unwind`]; on a panic the
//! worker discards its scratch state (the unwound closure may have
//! left it inconsistent), notes the item's index, and moves on. After
//! the pool drains, the failed items are re-executed serially **in
//! input order** with fresh scratch, so a transient panic (e.g. an
//! injected fault that fires once) converges to exactly the serial
//! result at any worker count. An item that panics again on the serial
//! retry has a genuine, deterministic bug — that second panic
//! propagates. Every caught panic increments the process-wide
//! [`panics_caught`] counter so harnesses can assert on containment.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide count of worker panics caught (and recovered) by
/// [`par_map_with`]. Monotonic; see [`panics_caught`].
static PANICS_CAUGHT: AtomicU64 = AtomicU64::new(0);

/// Total worker panics caught and recovered since process start.
/// Harnesses snapshot this before/after a region to check that every
/// injected panic was contained.
pub fn panics_caught() -> u64 {
    PANICS_CAUGHT.load(Ordering::Relaxed)
}

/// How many workers a parallel region may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Run on the calling thread (no spawning, no overhead). The
    /// default everywhere: parallelism is opt-in per call site.
    #[default]
    Serial,
    /// A fixed worker count (values below 2 behave like `Serial`).
    Jobs(usize),
    /// One worker per available hardware thread.
    Auto,
}

impl Parallelism {
    /// Map a `--jobs N` style count: `0` means auto-detect, `1` is
    /// serial, anything else a fixed pool.
    pub fn from_jobs(n: usize) -> Self {
        match n {
            0 => Parallelism::Auto,
            1 => Parallelism::Serial,
            n => Parallelism::Jobs(n),
        }
    }

    /// Parse a `--jobs N` / `TMS_JOBS` style value. This is the single
    /// chokepoint every CLI surface funnels through: an unparseable
    /// count is a structured error the caller must surface (exit 2),
    /// never a silent fall-through to a default worker count.
    pub fn parse_jobs(s: &str) -> Result<Self, String> {
        let t = s.trim();
        t.parse::<usize>().map(Self::from_jobs).map_err(|_| {
            format!("invalid jobs value {t:?}: expected a non-negative integer (0 = auto)")
        })
    }

    /// The `TMS_JOBS` environment override. `Ok(None)` when unset;
    /// `Err` when set to something unparseable, so a typo'd override
    /// fails loudly instead of quietly running at the default width.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var("TMS_JOBS") {
            Err(_) => Ok(None),
            Ok(v) => Self::parse_jobs(&v)
                .map(Some)
                .map_err(|e| format!("TMS_JOBS: {e}")),
        }
    }

    /// Concrete worker count this policy resolves to on this machine.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Jobs(n) => n.max(1),
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// Map `f` over `items` on up to [`Parallelism::workers`] threads,
/// returning results in input order. `f` receives the item index so
/// callers can seed per-item state deterministically.
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(par, items, || (), |(), i, t| f(i, t))
}

/// [`par_map`] with reusable per-worker scratch state: `init` runs once
/// per worker (once total on the serial path) and the resulting value
/// is threaded through every call that worker executes. This is how
/// the scheduling hot paths amortise their per-attempt allocations
/// (see `tms_core::sms::SchedScratch`). The scratches live only for
/// this call; use [`par_map_with_slots`] to carry them across calls.
pub fn par_map_with<T, R, S, I, F>(par: Parallelism, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let mut slots: Vec<S> = Vec::new();
    par_map_with_slots(par, items, &mut slots, init, f)
}

/// [`par_map_with`] with **caller-owned** per-worker scratch slots that
/// survive across calls: `slots` is grown to the resolved worker count
/// with `init` (existing entries are kept — including their contents
/// from previous calls) and slot `w` is threaded through every item
/// worker `w` executes this call. This is how the TMS wavefront search
/// lets each worker warm-start from the decision logs of the chunk
/// items *it* ran previously.
///
/// Which items a slot sees is scheduling-dependent and therefore
/// nondeterministic across runs and worker counts — callers must only
/// put state in slots whose contents cannot change results (caches
/// whose hits are byte-identical to misses, like
/// `tms_core::warm::AttemptLog`). Results are returned in input order
/// as always. Panic containment matches [`par_map_with`]: a panicking
/// item resets its worker's slot via `init` (the unwound closure may
/// have left it inconsistent) and is re-executed serially, in input
/// order, with *fresh* scratch that is discarded afterwards.
pub fn par_map_with_slots<T, R, S, I, F>(
    par: Parallelism,
    items: &[T],
    slots: &mut Vec<S>,
    init: I,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = par.workers().min(items.len()).max(1);
    if slots.len() < workers {
        slots.resize_with(workers, &init);
    }
    if workers <= 1 {
        let slot = &mut slots[0];
        let mut out: Vec<(usize, R)> = Vec::with_capacity(items.len());
        let mut failed: Vec<usize> = Vec::new();
        for (i, t) in items.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| f(&mut *slot, i, t))) {
                Ok(r) => out.push((i, r)),
                Err(_) => {
                    PANICS_CAUGHT.fetch_add(1, Ordering::Relaxed);
                    *slot = init();
                    failed.push(i);
                }
            }
        }
        return finish(items, out, failed, &init, &f);
    }

    let cursor = AtomicUsize::new(0);
    let failed: Mutex<Vec<usize>> = Mutex::new(Vec::new());
    let shards: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let cursor = &cursor;
        let failed = &failed;
        let (f, init) = (&f, &init);
        let handles: Vec<_> = slots[..workers]
            .iter_mut()
            .map(|slot| {
                scope.spawn(move || {
                    let mut out: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        match catch_unwind(AssertUnwindSafe(|| f(&mut *slot, i, &items[i]))) {
                            Ok(r) => out.push((i, r)),
                            Err(_) => {
                                PANICS_CAUGHT.fetch_add(1, Ordering::Relaxed);
                                *slot = init();
                                failed
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                                    .push(i);
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            // With per-item containment the worker body cannot unwind;
            // this expect is an unreachable backstop.
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });

    let merged: Vec<(usize, R)> = shards.into_iter().flatten().collect();
    let failed = failed
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    finish(items, merged, failed, &init, &f)
}

/// Re-execute `failed` items serially in input order with fresh
/// scratch, then sort everything back to input order. A second panic
/// here is a deterministic bug and propagates to the caller.
fn finish<T, R, S, I, F>(
    items: &[T],
    mut merged: Vec<(usize, R)>,
    mut failed: Vec<usize>,
    init: &I,
    f: &F,
) -> Vec<R>
where
    I: Fn() -> S,
    F: Fn(&mut S, usize, &T) -> R,
{
    if !failed.is_empty() {
        failed.sort_unstable();
        let mut scratch = init();
        for i in failed {
            merged.push((i, f(&mut scratch, i, &items[i])));
        }
    }
    debug_assert_eq!(merged.len(), items.len());
    merged.sort_unstable_by_key(|&(i, _)| i);
    merged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_keep_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Jobs(2),
            Parallelism::Jobs(7),
            Parallelism::Auto,
        ] {
            let got = par_map(par, &items, |_, &x| x * x);
            assert_eq!(got, expect, "{par:?}");
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u32; 0] = [];
        assert!(par_map(Parallelism::Jobs(4), &items, |_, &x| x).is_empty());
    }

    #[test]
    fn scratch_is_reused_within_a_worker() {
        // On the serial path the single scratch sees every item.
        let items: Vec<u32> = (0..10).collect();
        let counts = par_map_with(
            Parallelism::Serial,
            &items,
            || 0usize,
            |seen, _, _| {
                *seen += 1;
                *seen
            },
        );
        assert_eq!(counts, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn from_jobs_maps_zero_to_auto_and_one_to_serial() {
        assert_eq!(Parallelism::from_jobs(0), Parallelism::Auto);
        assert_eq!(Parallelism::from_jobs(1), Parallelism::Serial);
        assert_eq!(Parallelism::from_jobs(6), Parallelism::Jobs(6));
        assert_eq!(Parallelism::Serial.workers(), 1);
        assert_eq!(Parallelism::Jobs(3).workers(), 3);
        assert!(Parallelism::Auto.workers() >= 1);
    }

    #[test]
    fn parse_jobs_accepts_counts_and_rejects_garbage() {
        assert_eq!(Parallelism::parse_jobs("0"), Ok(Parallelism::Auto));
        assert_eq!(Parallelism::parse_jobs(" 1 "), Ok(Parallelism::Serial));
        assert_eq!(Parallelism::parse_jobs("8"), Ok(Parallelism::Jobs(8)));
        for bad in ["", "auto", "-2", "3.5", "4x"] {
            let err = Parallelism::parse_jobs(bad).unwrap_err();
            assert!(err.contains("invalid jobs value"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn transient_panic_is_caught_and_retried_in_order() {
        use std::collections::BTreeSet;
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for par in [Parallelism::Serial, Parallelism::Jobs(4)] {
            // Items 5 and 40 panic on their first execution only.
            let tripped: Mutex<BTreeSet<usize>> = Mutex::new(BTreeSet::new());
            let before = panics_caught();
            let got = par_map(par, &items, |i, &x| {
                if (i == 5 || i == 40) && tripped.lock().unwrap().insert(i) {
                    panic!("injected");
                }
                x * 3
            });
            assert_eq!(got, expect, "{par:?}");
            assert_eq!(panics_caught() - before, 2, "{par:?}");
        }
    }

    #[test]
    fn scratch_is_rebuilt_after_a_caught_panic() {
        // The panicking item bumps the scratch before unwinding; the
        // retry must see a fresh one, not the poisoned survivor.
        let items: Vec<u32> = (0..8).collect();
        let first = std::sync::atomic::AtomicBool::new(true);
        let got = par_map_with(
            Parallelism::Serial,
            &items,
            || 0u32,
            |dirty, i, &x| {
                if i == 3 && first.swap(false, Ordering::Relaxed) {
                    *dirty = 99;
                    panic!("injected");
                }
                x + *dirty
            },
        );
        assert_eq!(got, items);
    }

    #[test]
    fn slots_persist_across_calls_and_size_to_the_worker_count() {
        // Serial: slot 0 carries its count from the first call into the
        // second, and only one slot is ever materialised.
        let items: Vec<u32> = (0..5).collect();
        let mut slots: Vec<usize> = Vec::new();
        let bump = |seen: &mut usize, _: usize, _: &u32| {
            *seen += 1;
            *seen
        };
        let first = par_map_with_slots(Parallelism::Serial, &items, &mut slots, || 0, bump);
        assert_eq!(first, vec![1, 2, 3, 4, 5]);
        assert_eq!(slots, vec![5]);
        let second = par_map_with_slots(Parallelism::Serial, &items, &mut slots, || 0, bump);
        assert_eq!(second, vec![6, 7, 8, 9, 10]);

        // Threaded: one slot per resolved worker (capped by item
        // count), and across both calls every item lands in exactly one
        // slot — the slots partition the work without loss.
        let items: Vec<u32> = (0..32).collect();
        let mut slots: Vec<usize> = Vec::new();
        for round in 1..=2usize {
            let done = par_map_with_slots(
                Parallelism::Jobs(4),
                &items,
                &mut slots,
                || 0,
                |seen, _, _| {
                    *seen += 1;
                },
            );
            assert_eq!(done.len(), items.len());
            assert_eq!(slots.len(), 4);
            assert_eq!(slots.iter().sum::<usize>(), items.len() * round);
        }

        // More workers than items: slots stop at the item count.
        let tiny: Vec<u32> = vec![7, 9];
        let mut slots: Vec<usize> = Vec::new();
        par_map_with_slots(Parallelism::Jobs(8), &tiny, &mut slots, || 0, |_, _, _| ());
        assert_eq!(slots.len(), 2);
    }

    #[test]
    fn slot_is_reset_after_a_caught_panic() {
        // A panicking item must not leave its poisoned slot contents
        // in place for the next call.
        let items: Vec<u32> = (0..4).collect();
        let mut slots: Vec<u32> = Vec::new();
        let first = std::sync::atomic::AtomicBool::new(true);
        let got = par_map_with_slots(
            Parallelism::Serial,
            &items,
            &mut slots,
            || 0u32,
            |dirty, i, &x| {
                if i == 1 && first.swap(false, Ordering::Relaxed) {
                    *dirty = 99;
                    panic!("injected");
                }
                x + *dirty
            },
        );
        assert_eq!(got, items);
        assert_eq!(slots, vec![0]);
    }

    #[test]
    fn worker_results_match_serial_reference_with_state() {
        let items: Vec<u64> = (0..64).collect();
        let serial = par_map_with(
            Parallelism::Serial,
            &items,
            || 0u64,
            |_, i, &x| x + i as u64,
        );
        let parallel = par_map_with(
            Parallelism::Jobs(4),
            &items,
            || 0u64,
            |_, i, &x| x + i as u64,
        );
        assert_eq!(serial, parallel);
    }
}
