//! The paper's §4.2 cost model.
//!
//! Approximates the execution time of a modulo-scheduled loop on an
//! SpMT multicore as `T = T_nomiss + T_mis_spec` with
//!
//! ```text
//! T_nomiss   = max(C_spn, C_ci, C_delay, T_lb / ncore) · N      (eq. 2)
//! T_lb       = II + C_ci + max(C_spn, C_delay)
//! P_M        = 1 − Π_{e ∈ M} (1 − p_e)                          (eq. 3)
//! T_mis_spec = (II + C_inv − max(0, C_delay − C_spn)) · P_M · N
//! ```
//!
//! plus Definition 2's synchronisation delay `sync(x, y)` and
//! Definition 3's *preserved* test for speculated memory dependences.

use serde::{Deserialize, Serialize};
use tms_machine::CostConstants;

/// Definition 2: synchronisation delay of an inter-iteration register
/// dependence `x → y` given the kernel rows of both ends.
///
/// `sync(x,y) = issue_slot(x)%II − issue_slot(y)%II + lat(x) + C_reg_com`
///
/// Negative values mean the value arrives before the consumer's slot —
/// no stall. Callers clamp when aggregating into `C_delay`.
#[inline]
pub fn sync_delay(row_x: i64, row_y: i64, lat_x: u32, costs: &CostConstants) -> i64 {
    row_x - row_y + lat_x as i64 + costs.c_reg_com as i64
}

/// Definition 3 (reconstructed — see DESIGN.md §5): an inter-iteration
/// memory dependence `x → y` with kernel distance `δ ≥ 1` is
/// *preserved* by a synchronised register dependence `u → v` when
///
/// * `u` issues earlier than `x` within the kernel
///   (`row(u) < row(x)`), and
/// * the per-thread skew the synchronisation enforces covers the
///   memory dependence across its `δ` thread hops:
///   `δ · sync(u,v) ≥ row(x) + lat(x) − row(y)`.
#[inline]
pub fn preserves(
    sync_uv: i64,
    row_u: i64,
    row_x: i64,
    row_y: i64,
    lat_x: u32,
    d_ker_xy: i64,
) -> bool {
    debug_assert!(d_ker_xy >= 1);
    row_u < row_x && d_ker_xy * sync_uv >= row_x + lat_x as i64 - row_y
}

/// Equation 3: combined misspeculation probability of a set of
/// independent speculated dependences.
///
/// Each `p` is clamped to `[0, 1]` (NaN to 0): a fuzzed or mis-profiled
/// edge probability outside the unit interval would otherwise make the
/// product drift outside `[0, 1]` and silently corrupt both the C2
/// admission check and `t_mis_spec`. [`tms_ddg::DdgBuilder`] already
/// clamps probabilities at construction, so a violation here means a
/// `Ddg` was assembled by hand around the builder — debug builds flag
/// it, release builds degrade to the clamped value.
pub fn misspec_probability(probs: impl IntoIterator<Item = f64>) -> f64 {
    let surviving: f64 = probs
        .into_iter()
        .map(|p| {
            debug_assert!(
                (0.0..=1.0).contains(&p),
                "edge probability {p} outside [0, 1]"
            );
            1.0 - clamp_probability(p)
        })
        .product();
    1.0 - surviving
}

/// Clamp a profiled probability to `[0, 1]`; NaN maps to 0.
#[inline]
pub fn clamp_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// The per-iteration cost `F(II, C_delay) = T_nomiss / N` of Figure 3
/// line 4, kept in exact integer arithmetic as `F · ncore`
/// (`ncore` is the only denominator that appears).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CostKey(pub i64);

/// The cost model, parameterised by the machine constants and core
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Machine cost constants (Table 1).
    pub costs: CostConstants,
    /// Number of cores executing the loop.
    pub ncore: u32,
}

impl CostModel {
    /// Build from architecture parameters.
    pub fn new(costs: CostConstants, ncore: u32) -> Self {
        assert!(ncore >= 1);
        CostModel { costs, ncore }
    }

    /// `T_lb = II + C_ci + max(C_spn, C_delay)` — the lower bound on
    /// one thread's execution time.
    pub fn t_lb(&self, ii: u32, c_delay: u32) -> i64 {
        ii as i64 + self.costs.c_ci as i64 + (self.costs.c_spn.max(c_delay)) as i64
    }

    /// `F(II, C_delay) · ncore` as an exactly comparable integer key.
    pub fn cost_key(&self, ii: u32, c_delay: u32) -> CostKey {
        let n = self.ncore as i64;
        let serial = [
            self.costs.c_spn as i64 * n,
            self.costs.c_ci as i64 * n,
            c_delay as i64 * n,
            self.t_lb(ii, c_delay),
        ];
        CostKey(serial.into_iter().max().unwrap())
    }

    /// `F(II, C_delay)` in cycles-per-iteration (floating point, for
    /// reports; ordering decisions use [`CostModel::cost_key`]).
    pub fn f(&self, ii: u32, c_delay: u32) -> f64 {
        self.cost_key(ii, c_delay).0 as f64 / self.ncore as f64
    }

    /// Equation 2: execution time without misspeculation for `n_iter`
    /// iterations.
    pub fn t_nomiss(&self, ii: u32, c_delay: u32, n_iter: u64) -> f64 {
        self.f(ii, c_delay) * n_iter as f64
    }

    /// Misspeculation overhead: penalty per squash times the expected
    /// number of squashes `P_M · N`.
    ///
    /// Penalty = `II + C_inv − max(0, C_delay − C_spn)`: the squashed
    /// thread wasted `II` issue cycles plus the invalidation, but its
    /// re-execution no longer waits on register values, recovering
    /// whatever part of `C_delay` exceeded the spawn overhead.
    pub fn t_mis_spec(&self, ii: u32, c_delay: u32, p_m: f64, n_iter: u64) -> f64 {
        let gain = (c_delay as i64 - self.costs.c_spn as i64).max(0);
        let penalty = (ii as i64 + self.costs.c_inv as i64 - gain).max(0) as f64;
        penalty * p_m * n_iter as f64
    }

    /// Total estimated execution time `T = T_nomiss + T_mis_spec`.
    pub fn total(&self, ii: u32, c_delay: u32, p_m: f64, n_iter: u64) -> f64 {
        self.t_nomiss(ii, c_delay, n_iter) + self.t_mis_spec(ii, c_delay, p_m, n_iter)
    }

    /// Candidate `(II, C_delay)` pairs within the paper's bounds,
    /// sorted by increasing cost key (then II, then C_delay). This is
    /// the exact-arithmetic equivalent of Figure 3's iterative
    /// `F_min++` sweep over every pair with `F(II, C_delay) = F_min`.
    pub fn candidates(&self, mii: u32, ii_max: u32, c_delay_max: u32) -> Vec<(u32, u32, CostKey)> {
        let cd_min = self.costs.min_c_delay();
        let cd_hi = c_delay_max.max(cd_min);
        let mut v: Vec<(u32, u32, CostKey)> = Vec::new();
        for ii in mii..=ii_max.max(mii) {
            for cd in cd_min..=cd_hi {
                v.push((ii, cd, self.cost_key(ii, cd)));
            }
        }
        v.sort_by(|a, b| a.2.cmp(&b.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(ncore: u32) -> CostModel {
        CostModel::new(CostConstants::icpp2008(), ncore)
    }

    #[test]
    fn sync_matches_paper_sms_example() {
        // sync(n6, n0) = 7%8 − 0%8 + 1 + 3 = 11 (§4.1, SMS schedule).
        let c = CostConstants::icpp2008();
        assert_eq!(sync_delay(7, 0, 1, &c), 11);
        // TMS places n6 at cycle 1: sync = 1 − 0 + 1 + 3 = 5.
        assert_eq!(sync_delay(1, 0, 1, &c), 5);
    }

    #[test]
    fn sync_can_be_negative_when_value_arrives_early() {
        let c = CostConstants::icpp2008();
        assert!(sync_delay(0, 9, 1, &c) < 0);
    }

    #[test]
    fn misspec_probability_combines_independently() {
        assert!(misspec_probability([]).abs() < 1e-12);
        assert!((misspec_probability([0.5]) - 0.5).abs() < 1e-12);
        assert!((misspec_probability([0.5, 0.5]) - 0.75).abs() < 1e-12);
        assert!((misspec_probability([1.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probabilities_clamp_to_unit_interval() {
        assert_eq!(clamp_probability(-0.25), 0.0);
        assert_eq!(clamp_probability(1.75), 1.0);
        assert_eq!(clamp_probability(f64::NAN), 0.0);
        assert_eq!(clamp_probability(0.3), 0.3);
        // In release builds (the debug_assert compiled out) the
        // combined probability degrades to the clamped value instead of
        // drifting outside [0, 1].
        if !cfg!(debug_assertions) {
            assert_eq!(misspec_probability([1.75]), 1.0);
            assert_eq!(misspec_probability([-3.0, 0.0]), 0.0);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_probability_asserts_in_debug() {
        let _ = misspec_probability([1.75]);
    }

    #[test]
    fn t_lb_and_f_follow_equation_two() {
        let m = model(4);
        // II=8, C_delay=4: T_lb = 8 + 2 + max(3,4) = 14.
        assert_eq!(m.t_lb(8, 4), 14);
        // F = max(3, 2, 4, 14/4) = 4.
        assert!((m.f(8, 4) - 4.0).abs() < 1e-12);
        // With C_delay=20 the serial part dominates: F = 20.
        assert!((m.f(8, 20) - 20.0).abs() < 1e-12);
        // With 1 core F = T_lb = II + C_ci + max(C_spn, C_delay).
        let m1 = model(1);
        assert!((m1.f(8, 4) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn cost_key_orders_like_f() {
        let m = model(4);
        let a = m.cost_key(8, 4);
        let b = m.cost_key(8, 20);
        assert!(a < b);
        assert!(m.f(8, 4) < m.f(8, 20));
    }

    #[test]
    fn mis_spec_penalty_reduced_by_ready_values() {
        let m = model(4);
        // C_delay=10, C_spn=3: re-execution gains 7 cycles.
        let with_gain = m.t_mis_spec(8, 10, 0.5, 100);
        let no_gain = m.t_mis_spec(8, 3, 0.5, 100);
        assert!(with_gain < no_gain);
        // penalty = 8 + 15 − 7 = 16; 0.5 · 100 squashes → 800.
        assert!((with_gain - 800.0).abs() < 1e-9);
    }

    #[test]
    fn zero_probability_costs_nothing() {
        let m = model(4);
        assert_eq!(m.t_mis_spec(8, 4, 0.0, 1000), 0.0);
        assert!((m.total(8, 4, 0.0, 10) - m.t_nomiss(8, 4, 10)).abs() < 1e-12);
    }

    #[test]
    fn candidates_sorted_by_cost() {
        let m = model(4);
        let cands = m.candidates(8, 12, 12);
        assert!(!cands.is_empty());
        for w in cands.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
        // The cheapest candidate uses the smallest (II, C_delay).
        assert_eq!(cands[0].0, 8);
        assert_eq!(cands[0].1, m.costs.min_c_delay());
        // All C_delay values start at the Definition-2 minimum.
        assert!(cands.iter().all(|c| c.1 >= m.costs.min_c_delay()));
    }

    #[test]
    fn candidate_c_delay_respects_caller_cap() {
        let m = model(4);
        let cands = m.candidates(8, 10, 15);
        assert!(cands.iter().all(|&(_, cd, _)| cd <= 15));
        assert!(cands.iter().any(|&(_, cd, _)| cd == 15));
    }

    #[test]
    fn preserves_requires_earlier_producer_and_enough_skew() {
        // sync(u,v)=6, memory dep x(row 5, lat 1) -> y(row 0), δ=1:
        // need 6 ≥ 5 + 1 − 0 = 6 ✓ with row(u)=0 < row(x)=5.
        assert!(preserves(6, 0, 5, 0, 1, 1));
        // Insufficient skew.
        assert!(!preserves(5, 0, 5, 0, 1, 1));
        // Producer not earlier than x.
        assert!(!preserves(10, 6, 5, 0, 1, 1));
        // Larger δ multiplies the skew.
        assert!(preserves(3, 0, 5, 0, 1, 2));
    }
}
