//! The paper's §4.2 cost model.
//!
//! Approximates the execution time of a modulo-scheduled loop on an
//! SpMT multicore as `T = T_nomiss + T_mis_spec` with
//!
//! ```text
//! T_nomiss   = max(C_spn, C_ci, C_delay, T_lb / ncore) · N      (eq. 2)
//! T_lb       = II + C_ci + max(C_spn, C_delay)
//! P_M        = 1 − Π_{e ∈ M} (1 − p_e)                          (eq. 3)
//! T_mis_spec = (II + C_inv − max(0, C_delay − C_spn)) · P_M · N
//! ```
//!
//! plus Definition 2's synchronisation delay `sync(x, y)` and
//! Definition 3's *preserved* test for speculated memory dependences.

use serde::{Deserialize, Serialize};
use tms_machine::CostConstants;

/// Definition 2: synchronisation delay of an inter-iteration register
/// dependence `x → y` given the kernel rows of both ends.
///
/// `sync(x,y) = issue_slot(x)%II − issue_slot(y)%II + lat(x) + C_reg_com`
///
/// Negative values mean the value arrives before the consumer's slot —
/// no stall. Callers clamp when aggregating into `C_delay`.
#[inline]
pub fn sync_delay(row_x: i64, row_y: i64, lat_x: u32, costs: &CostConstants) -> i64 {
    row_x - row_y + lat_x as i64 + costs.c_reg_com as i64
}

/// Definition 3 (reconstructed — see DESIGN.md §5): an inter-iteration
/// memory dependence `x → y` with kernel distance `δ ≥ 1` is
/// *preserved* by a synchronised register dependence `u → v` when
///
/// * `u` issues earlier than `x` within the kernel
///   (`row(u) < row(x)`), and
/// * the per-thread skew the synchronisation enforces covers the
///   memory dependence across its `δ` thread hops:
///   `δ · sync(u,v) ≥ row(x) + lat(x) − row(y)`.
#[inline]
pub fn preserves(
    sync_uv: i64,
    row_u: i64,
    row_x: i64,
    row_y: i64,
    lat_x: u32,
    d_ker_xy: i64,
) -> bool {
    debug_assert!(d_ker_xy >= 1);
    row_u < row_x && d_ker_xy * sync_uv >= row_x + lat_x as i64 - row_y
}

/// Equation 3: combined misspeculation probability of a set of
/// independent speculated dependences.
///
/// Each `p` is clamped to `[0, 1]` (NaN to 0): a fuzzed or mis-profiled
/// edge probability outside the unit interval would otherwise make the
/// product drift outside `[0, 1]` and silently corrupt both the C2
/// admission check and `t_mis_spec`. [`tms_ddg::DdgBuilder`] already
/// clamps probabilities at construction, so a violation here means a
/// `Ddg` was assembled by hand around the builder — debug builds flag
/// it, release builds degrade to the clamped value.
pub fn misspec_probability(probs: impl IntoIterator<Item = f64>) -> f64 {
    let surviving: f64 = probs
        .into_iter()
        .map(|p| {
            debug_assert!(
                (0.0..=1.0).contains(&p),
                "edge probability {p} outside [0, 1]"
            );
            1.0 - clamp_probability(p)
        })
        .product();
    1.0 - surviving
}

/// Clamp a profiled probability to `[0, 1]`; NaN maps to 0.
#[inline]
pub fn clamp_probability(p: f64) -> f64 {
    if p.is_nan() {
        0.0
    } else {
        p.clamp(0.0, 1.0)
    }
}

/// The per-iteration cost `F(II, C_delay) = T_nomiss / N` of Figure 3
/// line 4, kept in exact integer arithmetic as `F · ncore`
/// (`ncore` is the only denominator that appears).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CostKey(pub i64);

/// The cost model, parameterised by the machine constants and core
/// count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Machine cost constants (Table 1).
    pub costs: CostConstants,
    /// Number of cores executing the loop.
    pub ncore: u32,
}

impl CostModel {
    /// Build from architecture parameters.
    pub fn new(costs: CostConstants, ncore: u32) -> Self {
        assert!(ncore >= 1);
        CostModel { costs, ncore }
    }

    /// `T_lb = II + C_ci + max(C_spn, C_delay)` — the lower bound on
    /// one thread's execution time.
    pub fn t_lb(&self, ii: u32, c_delay: u32) -> i64 {
        ii as i64 + self.costs.c_ci as i64 + (self.costs.c_spn.max(c_delay)) as i64
    }

    /// `F(II, C_delay) · ncore` as an exactly comparable integer key.
    pub fn cost_key(&self, ii: u32, c_delay: u32) -> CostKey {
        let n = self.ncore as i64;
        let serial = [
            self.costs.c_spn as i64 * n,
            self.costs.c_ci as i64 * n,
            c_delay as i64 * n,
            self.t_lb(ii, c_delay),
        ];
        CostKey(serial.into_iter().max().unwrap())
    }

    /// `F(II, C_delay)` in cycles-per-iteration (floating point, for
    /// reports; ordering decisions use [`CostModel::cost_key`]).
    pub fn f(&self, ii: u32, c_delay: u32) -> f64 {
        self.cost_key(ii, c_delay).0 as f64 / self.ncore as f64
    }

    /// Equation 2: execution time without misspeculation for `n_iter`
    /// iterations.
    pub fn t_nomiss(&self, ii: u32, c_delay: u32, n_iter: u64) -> f64 {
        self.f(ii, c_delay) * n_iter as f64
    }

    /// Misspeculation overhead: penalty per squash times the expected
    /// number of squashes `P_M · N`.
    ///
    /// Penalty = `II + C_inv − max(0, C_delay − C_spn)`: the squashed
    /// thread wasted `II` issue cycles plus the invalidation, but its
    /// re-execution no longer waits on register values, recovering
    /// whatever part of `C_delay` exceeded the spawn overhead.
    pub fn t_mis_spec(&self, ii: u32, c_delay: u32, p_m: f64, n_iter: u64) -> f64 {
        let gain = (c_delay as i64 - self.costs.c_spn as i64).max(0);
        let penalty = (ii as i64 + self.costs.c_inv as i64 - gain).max(0) as f64;
        penalty * p_m * n_iter as f64
    }

    /// Total estimated execution time `T = T_nomiss + T_mis_spec`.
    pub fn total(&self, ii: u32, c_delay: u32, p_m: f64, n_iter: u64) -> f64 {
        self.t_nomiss(ii, c_delay, n_iter) + self.t_mis_spec(ii, c_delay, p_m, n_iter)
    }

    /// Admissible lower bound on the cost key of *any* legal schedule
    /// at initiation interval `ii`, over every `C_delay` a schedule
    /// could achieve. The achieved `C_delay` is clamped at 0 and
    /// [`CostModel::cost_key`] is monotone non-decreasing in `C_delay`,
    /// so `cost_key(ii, 0)` floors the realised key of every attempt at
    /// this II — the bound the branch-and-bound search prunes with.
    pub fn floor_key(&self, ii: u32) -> CostKey {
        self.cost_key(ii, 0)
    }

    /// The `C_delay` ladder shared by every II row of the candidate
    /// grid. `dense` tries every integer value; otherwise the ladder is
    /// thinned — dense near the Definition-2 minimum, stride 2 beyond
    /// `min+8`, stride 4 beyond `min+24` — with the cap always
    /// included.
    pub fn c_delay_ladder(&self, c_delay_max: u32, dense: bool) -> Vec<u32> {
        let cd_min = self.costs.min_c_delay();
        let cd_hi = c_delay_max.max(cd_min);
        let mut cds: Vec<u32> = Vec::new();
        let mut cd = cd_min;
        while cd <= cd_hi {
            cds.push(cd);
            cd += if dense || cd < cd_min + 8 {
                1
            } else if cd < cd_min + 24 {
                2
            } else {
                4
            };
        }
        if *cds.last().unwrap() != cd_hi {
            cds.push(cd_hi);
        }
        cds
    }

    /// Lazy cost-ordered candidate enumeration — see
    /// [`CandidateStream`].
    pub fn candidate_stream(
        &self,
        mii: u32,
        ii_max: u32,
        c_delay_max: u32,
        dense: bool,
    ) -> CandidateStream {
        CandidateStream::new(
            *self,
            mii,
            ii_max.max(mii),
            self.c_delay_ladder(c_delay_max, dense),
        )
    }

    /// Candidate `(II, C_delay)` pairs within the paper's bounds,
    /// sorted by increasing cost key (then II, then C_delay). This is
    /// the exact-arithmetic equivalent of Figure 3's iterative
    /// `F_min++` sweep over every pair with `F(II, C_delay) = F_min`.
    /// Materialises the whole grid eagerly; the search itself uses
    /// [`CostModel::candidate_stream`], which yields the same sequence
    /// lazily.
    pub fn candidates(&self, mii: u32, ii_max: u32, c_delay_max: u32) -> Vec<(u32, u32, CostKey)> {
        let mut stream = self.candidate_stream(mii, ii_max, c_delay_max, true);
        (0..stream.total()).map(|i| *stream.get(i)).collect()
    }
}

/// Lazy generator of `(II, C_delay, CostKey)` candidates in increasing
/// `(key, II, C_delay)` order — the same sequence
/// [`CostModel::candidates`] materialises, produced one cost shell at a
/// time so a search that resolves (or prunes) early never pays for
/// sorting the full grid.
///
/// The grid is `[mii, ii_max] × ladder` with the key monotone
/// non-decreasing along both axes, so a frontier heap holding at most
/// one element per *opened* II row enumerates it in sorted order:
/// popping a row's ladder head opens the next II row (whose head cannot
/// be cheaper, by monotonicity in II), and popping any element pushes
/// its successor along the ladder (monotonicity in `C_delay`). Emitted
/// candidates are memoised so the wavefront search can random-access
/// the prefix it has dispatched.
#[derive(Debug, Clone)]
pub struct CandidateStream {
    model: CostModel,
    ladder: Vec<u32>,
    mii: u32,
    ii_max: u32,
    /// Next II row whose ladder head has not been pushed yet.
    next_row: u32,
    /// Frontier min-heap of `(key, ii, c_delay, ladder position)`.
    heap: std::collections::BinaryHeap<std::cmp::Reverse<(CostKey, u32, u32, u32)>>,
    /// Memoised sorted prefix, in emission order.
    emitted: Vec<(u32, u32, CostKey)>,
    /// Adaptive coarsening, when latched (see [`CandidateStream::coarsen`]).
    coarsen: Option<Coarsen>,
    /// Ladder rungs dropped by coarsening so far.
    skipped: u64,
}

/// Latched coarsening state: rows step their ladder by `factor` while
/// the popped key is strictly below `refine_above`; at or above it
/// (the refinement band around the incumbent, where the win/lose
/// boundary lies) the full ladder resolution is restored.
#[derive(Debug, Clone, Copy)]
struct Coarsen {
    factor: u32,
    refine_above: i64,
}

impl CandidateStream {
    fn new(model: CostModel, mii: u32, ii_max: u32, ladder: Vec<u32>) -> Self {
        let mut heap = std::collections::BinaryHeap::new();
        let head = ladder[0];
        heap.push(std::cmp::Reverse((model.cost_key(mii, head), mii, head, 0)));
        CandidateStream {
            model,
            ladder,
            mii,
            ii_max,
            next_row: mii + 1,
            heap,
            emitted: Vec::new(),
            coarsen: None,
            skipped: 0,
        }
    }

    /// Total number of candidates the stream will emit — exact until
    /// [`CandidateStream::coarsen`] is called, an upper bound after
    /// (skipped rungs shrink the real count; callers iterating to
    /// `total()` must then use [`CandidateStream::try_get`]).
    pub fn total(&self) -> usize {
        ((self.ii_max - self.mii) as usize + 1) * self.ladder.len()
    }

    /// Coarsen the `C_delay` grid for the *remaining* stream: every row
    /// steps its ladder by `factor` rungs at a time while the candidate
    /// key sits more than `margin` below `incumbent`, reverting to full
    /// resolution inside that refinement band (and the ladder cap stays
    /// reachable — an over-stepping row clamps to its last rung). The
    /// already-emitted prefix is immutable, so indices the search has
    /// dispatched never change meaning. Sorted emission order is
    /// preserved: a row's key is monotone along its ladder, so stepping
    /// further ahead keeps the frontier-heap invariant intact.
    ///
    /// Re-latching **composes** monotonically rather than overwriting:
    /// the factor ratchets to the max of the latches, and the
    /// refinement band — the region kept at full resolution near the
    /// incumbent — never shrinks (`refine_above` takes the min). A
    /// weaker second latch is therefore absorbed, and an escalating one
    /// strengthens the coarsening without giving up refinement an
    /// earlier latch promised. A `factor` ≤ 1 cannot coarsen anything;
    /// it trips a `debug_assert` and is ignored in release builds.
    pub fn coarsen(&mut self, factor: u32, incumbent: CostKey, margin: i64) {
        debug_assert!(
            factor > 1,
            "CandidateStream::coarsen(factor={factor}) cannot coarsen the ladder"
        );
        if factor <= 1 {
            return;
        }
        let refine_above = incumbent.0.saturating_sub(margin);
        self.coarsen = Some(match self.coarsen {
            Some(prev) => Coarsen {
                factor: prev.factor.max(factor),
                refine_above: prev.refine_above.min(refine_above),
            },
            None => Coarsen {
                factor,
                refine_above,
            },
        });
    }

    /// Ladder rungs dropped by coarsening so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// The `idx`-th candidate in sorted order (0-based). Advances and
    /// memoises the stream as needed; `idx` must be `< total()` and the
    /// stream must not have been coarsened (use
    /// [`CandidateStream::try_get`] then).
    pub fn get(&mut self, idx: usize) -> &(u32, u32, CostKey) {
        self.try_get(idx)
            .expect("CandidateStream advanced past total()")
    }

    /// The `idx`-th candidate in sorted order, or `None` once the
    /// (possibly coarsened) stream has fewer than `idx + 1` candidates.
    pub fn try_get(&mut self, idx: usize) -> Option<&(u32, u32, CostKey)> {
        while self.emitted.len() <= idx {
            if !self.advance() {
                return None;
            }
        }
        Some(&self.emitted[idx])
    }

    fn advance(&mut self) -> bool {
        let Some(std::cmp::Reverse((key, ii, cd, pos))) = self.heap.pop() else {
            return false;
        };
        // Successor along this row's ladder: the next rung at full
        // resolution, `factor` rungs ahead when coarsened outside the
        // refinement band (clamped so the cap rung is never skipped).
        let step = match self.coarsen {
            Some(c) if key.0 < c.refine_above => c.factor as usize,
            _ => 1,
        };
        let mut next = pos as usize + step;
        if next >= self.ladder.len() && (pos as usize) + 1 < self.ladder.len() {
            next = self.ladder.len() - 1;
        }
        if let Some(&next_cd) = self.ladder.get(next) {
            self.skipped += (next - pos as usize - 1) as u64;
            self.heap.push(std::cmp::Reverse((
                self.model.cost_key(ii, next_cd),
                ii,
                next_cd,
                next as u32,
            )));
        }
        // Popping the newest row's ladder head opens the next row: its
        // head has key ≥ this one (monotone in II), so enumeration
        // order is preserved, and the heap invariant — no unpushed
        // element can be cheaper than any heap element — holds again.
        if pos == 0 && ii + 1 == self.next_row && self.next_row <= self.ii_max {
            let head = self.ladder[0];
            self.heap.push(std::cmp::Reverse((
                self.model.cost_key(self.next_row, head),
                self.next_row,
                head,
                0,
            )));
            self.next_row += 1;
        }
        self.emitted.push((ii, cd, key));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(ncore: u32) -> CostModel {
        CostModel::new(CostConstants::icpp2008(), ncore)
    }

    #[test]
    fn sync_matches_paper_sms_example() {
        // sync(n6, n0) = 7%8 − 0%8 + 1 + 3 = 11 (§4.1, SMS schedule).
        let c = CostConstants::icpp2008();
        assert_eq!(sync_delay(7, 0, 1, &c), 11);
        // TMS places n6 at cycle 1: sync = 1 − 0 + 1 + 3 = 5.
        assert_eq!(sync_delay(1, 0, 1, &c), 5);
    }

    #[test]
    fn sync_can_be_negative_when_value_arrives_early() {
        let c = CostConstants::icpp2008();
        assert!(sync_delay(0, 9, 1, &c) < 0);
    }

    #[test]
    fn misspec_probability_combines_independently() {
        assert!(misspec_probability([]).abs() < 1e-12);
        assert!((misspec_probability([0.5]) - 0.5).abs() < 1e-12);
        assert!((misspec_probability([0.5, 0.5]) - 0.75).abs() < 1e-12);
        assert!((misspec_probability([1.0, 0.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn probabilities_clamp_to_unit_interval() {
        assert_eq!(clamp_probability(-0.25), 0.0);
        assert_eq!(clamp_probability(1.75), 1.0);
        assert_eq!(clamp_probability(f64::NAN), 0.0);
        assert_eq!(clamp_probability(0.3), 0.3);
        // In release builds (the debug_assert compiled out) the
        // combined probability degrades to the clamped value instead of
        // drifting outside [0, 1].
        if !cfg!(debug_assertions) {
            assert_eq!(misspec_probability([1.75]), 1.0);
            assert_eq!(misspec_probability([-3.0, 0.0]), 0.0);
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "outside [0, 1]")]
    fn out_of_range_probability_asserts_in_debug() {
        let _ = misspec_probability([1.75]);
    }

    #[test]
    fn t_lb_and_f_follow_equation_two() {
        let m = model(4);
        // II=8, C_delay=4: T_lb = 8 + 2 + max(3,4) = 14.
        assert_eq!(m.t_lb(8, 4), 14);
        // F = max(3, 2, 4, 14/4) = 4.
        assert!((m.f(8, 4) - 4.0).abs() < 1e-12);
        // With C_delay=20 the serial part dominates: F = 20.
        assert!((m.f(8, 20) - 20.0).abs() < 1e-12);
        // With 1 core F = T_lb = II + C_ci + max(C_spn, C_delay).
        let m1 = model(1);
        assert!((m1.f(8, 4) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn cost_key_orders_like_f() {
        let m = model(4);
        let a = m.cost_key(8, 4);
        let b = m.cost_key(8, 20);
        assert!(a < b);
        assert!(m.f(8, 4) < m.f(8, 20));
    }

    #[test]
    fn mis_spec_penalty_reduced_by_ready_values() {
        let m = model(4);
        // C_delay=10, C_spn=3: re-execution gains 7 cycles.
        let with_gain = m.t_mis_spec(8, 10, 0.5, 100);
        let no_gain = m.t_mis_spec(8, 3, 0.5, 100);
        assert!(with_gain < no_gain);
        // penalty = 8 + 15 − 7 = 16; 0.5 · 100 squashes → 800.
        assert!((with_gain - 800.0).abs() < 1e-9);
    }

    #[test]
    fn zero_probability_costs_nothing() {
        let m = model(4);
        assert_eq!(m.t_mis_spec(8, 4, 0.0, 1000), 0.0);
        assert!((m.total(8, 4, 0.0, 10) - m.t_nomiss(8, 4, 10)).abs() < 1e-12);
    }

    #[test]
    fn candidates_sorted_by_cost() {
        let m = model(4);
        let cands = m.candidates(8, 12, 12);
        assert!(!cands.is_empty());
        for w in cands.windows(2) {
            assert!(w[0].2 <= w[1].2);
        }
        // The cheapest candidate uses the smallest (II, C_delay).
        assert_eq!(cands[0].0, 8);
        assert_eq!(cands[0].1, m.costs.min_c_delay());
        // All C_delay values start at the Definition-2 minimum.
        assert!(cands.iter().all(|c| c.1 >= m.costs.min_c_delay()));
    }

    #[test]
    fn candidate_c_delay_respects_caller_cap() {
        let m = model(4);
        let cands = m.candidates(8, 10, 15);
        assert!(cands.iter().all(|&(_, cd, _)| cd <= 15));
        assert!(cands.iter().any(|&(_, cd, _)| cd == 15));
    }

    /// Reference enumeration: materialise the grid over an arbitrary
    /// ladder and sort by `(key, II, C_delay)`.
    fn sorted_grid(
        m: &CostModel,
        mii: u32,
        ii_max: u32,
        ladder: &[u32],
    ) -> Vec<(u32, u32, CostKey)> {
        let mut v: Vec<(u32, u32, CostKey)> = Vec::new();
        for ii in mii..=ii_max {
            for &cd in ladder {
                v.push((ii, cd, m.cost_key(ii, cd)));
            }
        }
        v.sort_by(|a, b| a.2.cmp(&b.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        v
    }

    #[test]
    fn candidate_stream_matches_materialised_sort() {
        for ncore in [1, 2, 4, 8] {
            let m = model(ncore);
            for (mii, ii_max, cd_max, dense) in [
                (1, 1, 4, true),
                (3, 9, 12, true),
                (8, 40, 60, false),
                (2, 25, 80, false),
            ] {
                let ladder = m.c_delay_ladder(cd_max, dense);
                let want = sorted_grid(&m, mii, ii_max, &ladder);
                let mut stream = m.candidate_stream(mii, ii_max, cd_max, dense);
                assert_eq!(stream.total(), want.len());
                let got: Vec<_> = (0..stream.total()).map(|i| *stream.get(i)).collect();
                assert_eq!(got, want, "ncore={ncore} mii={mii} ii_max={ii_max}");
            }
        }
    }

    #[test]
    fn candidate_stream_random_access_is_stable() {
        let m = model(4);
        let mut stream = m.candidate_stream(5, 20, 30, false);
        let n = stream.total();
        // Jumping ahead then reading back earlier indices returns the
        // memoised values unchanged.
        let late = *stream.get(n - 1);
        let early = *stream.get(0);
        assert_eq!(*stream.get(n - 1), late);
        assert_eq!(early.0, 5);
        assert_eq!(early.1, m.costs.min_c_delay());
    }

    #[test]
    fn coarsen_relatch_composes_monotonically() {
        let m = model(4);
        let mk = || m.candidate_stream(2, 6, 30, true);
        fn drain(s: &mut CandidateStream) -> (Vec<(u32, u32, CostKey)>, u64) {
            let mut out = Vec::new();
            let mut i = 0;
            while let Some(&c) = s.try_get(i) {
                out.push(c);
                i += 1;
            }
            (out, s.skipped())
        }
        let inc_lo = m.cost_key(3, 4);
        let inc_hi = m.cost_key(6, 20);
        assert!(inc_lo < inc_hi);
        // Escalating: a second, stronger latch composes to exactly the
        // stream a single latch at the composed parameters produces.
        let mut twice = mk();
        twice.coarsen(2, inc_hi, 2);
        twice.coarsen(4, inc_lo, 2);
        let mut once = mk();
        once.coarsen(4, inc_lo, 2);
        assert_eq!(drain(&mut twice), drain(&mut once));
        // Absorbing: a weaker re-latch (smaller factor, band already
        // covered) leaves the stronger latch in force.
        let mut absorbed = mk();
        absorbed.coarsen(4, inc_lo, 2);
        absorbed.coarsen(2, inc_hi, 2);
        let mut strong = mk();
        strong.coarsen(4, inc_lo, 2);
        assert_eq!(drain(&mut absorbed), drain(&mut strong));
        // Degenerate factor (release behaviour): latch state unchanged.
        if !cfg!(debug_assertions) {
            let mut noop = mk();
            noop.coarsen(1, inc_lo, 2);
            let mut plain = mk();
            assert_eq!(drain(&mut noop), drain(&mut plain));
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "cannot coarsen the ladder")]
    fn degenerate_coarsen_factor_asserts_in_debug() {
        let m = model(4);
        let mut stream = m.candidate_stream(2, 6, 30, true);
        stream.coarsen(1, m.cost_key(3, 4), 2);
    }

    #[test]
    fn ladder_matches_dense_and_thinned_shapes() {
        let m = model(4);
        let cd_min = m.costs.min_c_delay();
        let dense = m.c_delay_ladder(cd_min + 40, true);
        assert_eq!(dense, (cd_min..=cd_min + 40).collect::<Vec<_>>());
        let thin = m.c_delay_ladder(cd_min + 40, false);
        // Dense through min+8, stride 2 to min+24, stride 4 after, cap
        // always present.
        assert!(thin.windows(2).all(|w| w[1] > w[0]));
        assert!((cd_min..=cd_min + 8).all(|cd| thin.contains(&cd)));
        assert!(thin.contains(&(cd_min + 40)));
        assert!(thin.len() < dense.len());
        // A cap below the minimum still yields the minimum.
        assert_eq!(m.c_delay_ladder(0, false), vec![cd_min]);
    }

    #[test]
    fn floor_key_bounds_every_candidate_key() {
        let m = model(4);
        for ii in 1..40 {
            for cd in 0..40 {
                assert!(m.floor_key(ii) <= m.cost_key(ii, cd));
            }
            // Monotone in II as well, so a floor crossing the incumbent
            // stays crossed for all larger II at the same C_delay.
            assert!(m.floor_key(ii) <= m.floor_key(ii + 1));
        }
    }

    #[test]
    fn preserves_requires_earlier_producer_and_enough_skew() {
        // sync(u,v)=6, memory dep x(row 5, lat 1) -> y(row 0), δ=1:
        // need 6 ≥ 5 + 1 − 0 = 6 ✓ with row(u)=0 < row(x)=5.
        assert!(preserves(6, 0, 5, 0, 1, 1));
        // Insufficient skew.
        assert!(!preserves(5, 0, 5, 0, 1, 1));
        // Producer not earlier than x.
        assert!(!preserves(10, 6, 5, 0, 1, 1));
        // Larger δ multiplies the skew.
        assert!(preserves(3, 0, 5, 0, 1, 2));
    }
}
