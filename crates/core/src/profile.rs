//! In-engine placement profiler: per-node attribution and sub-phase
//! timing for the scheduling engine's placement loop.
//!
//! The `tms.phase.*` breakdown says `place` dominates candidate-search
//! time but not *why*: which nodes keep getting ejected, whether probes
//! die on C1 or C2, how deep the forced-placement cascades run. This
//! module holds the accumulator the engine fills when profiling is on
//! ([`crate::TmsConfig::profile`]) and the search folds into its
//! per-loop report.
//!
//! ## Determinism contract
//!
//! A [`PlaceProfile`] carries two kinds of data with different
//! guarantees:
//!
//! - **Attribution counters and histograms** (per-node attempt and
//!   ejection counts, probe outcomes, eject-chain depths, forced
//!   placements) are pure functions of the engine's decisions. Profiled
//!   attempts always run *cold* — the search bypasses warm-start replay
//!   when profiling, because replayed steps skip the scans being
//!   attributed — and per-attempt profiles are folded serially in
//!   candidate-index order, so the merged attribution is bit-identical
//!   at every `--jobs`.
//! - **Sub-phase nanosecond accumulators** (`*_ns`) are wall-clock and
//!   machine-dependent; they are surfaced through trace *timers*
//!   (`tms.place.{scan,probe,fit,eject,force,verify}`), which are
//!   excluded from the deterministic metrics snapshot just like
//!   `tms.phase.*`.
//!
//! Attribution keys are stable: nodes are identified by their dense
//! [`InstId`] index, which is fixed by DDG construction order and
//! independent of scheduling outcome, worker count, or hash state.

use crate::warm::Probe;
use tms_ddg::{Ddg, InstId};
use tms_trace::Histogram;

/// One node's attribution row in a ranked hotspot report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeHotspot {
    /// Dense node index (stable attribution key; see module docs).
    pub node: usize,
    /// Placement attempts: engine visits that scanned a window for
    /// this node (forced rescans of the same visit are not double
    /// counted).
    pub attempts: u64,
    /// Times this node was ejected from the partial schedule by a
    /// forced placement.
    pub ejections: u64,
}

/// Placement-loop profile: deterministic attribution plus wall-clock
/// sub-phase accumulators (see the module docs for the split).
///
/// Merging is a commutative monoid over the attribution fields; the
/// search folds per-attempt profiles serially so the result is still
/// deterministic.
#[derive(Debug, Clone, Default)]
pub struct PlaceProfile {
    /// Per-node placement attempts, indexed by `InstId::index`.
    pub node_attempts: Vec<u64>,
    /// Per-node ejection counts, indexed by `InstId::index`.
    pub node_ejections: Vec<u64>,
    /// Windowed admission scans (one per engine visit of a node).
    pub scans: u64,
    /// Successful forced (IMS-style) placements.
    pub forced: u64,
    /// Nodes ejected across all forced placements.
    pub ejected: u64,
    /// Engine attempts profiled (complete or failed).
    pub engine_attempts: u64,
    /// Probe verdicts, split by whether the policy's specialised
    /// fast-path scan or the generic per-slot reference scan produced
    /// them.
    pub probe_accept_fast: u64,
    /// Accepting probes from the generic scan.
    pub probe_accept_generic: u64,
    /// C1 (sync-delay) rejections from the fast-path scan.
    pub probe_c1_fast: u64,
    /// C1 rejections from the generic scan.
    pub probe_c1_generic: u64,
    /// C2 (misspeculation) rejections from the fast-path scan.
    pub probe_c2_fast: u64,
    /// C2 rejections from the generic scan.
    pub probe_c2_generic: u64,
    /// Opaque probes (policies without probe support).
    pub probe_opaque: u64,
    /// Nodes ejected per forced placement (chain depth).
    pub eject_chain_depth: Histogram,
    /// Forced placements per engine attempt.
    pub forced_per_attempt: Histogram,
    /// Wall-clock ns deriving scheduling windows (topological sweeps).
    pub scan_ns: u64,
    /// Wall-clock ns in windowed admission scans (`scan_window`).
    pub probe_ns: u64,
    /// Wall-clock ns committing placements into the MRT.
    pub fit_ns: u64,
    /// Wall-clock ns finding and evicting eject victims.
    pub eject_ns: u64,
    /// Wall-clock ns in forced-slot admission scans (`scan_forced`).
    pub force_ns: u64,
    /// Wall-clock ns verifying built schedules (post-place).
    pub verify_ns: u64,
    // Per-attempt scratch, sampled into the histograms by
    // `end_attempt`; merge ignores it.
    attempt_forced: u64,
    attempt_max_chain: u64,
}

/// The placement-loop sub-phases, in pipeline order. Timer names are
/// `tms.place.<phase>`.
pub const PLACE_PHASES: &[&str] = &["scan", "probe", "fit", "eject", "force", "verify"];

impl PlaceProfile {
    /// An empty profile for a graph with `num_insts` nodes.
    pub fn new(num_insts: usize) -> Self {
        Self {
            node_attempts: vec![0; num_insts],
            node_ejections: vec![0; num_insts],
            ..Self::default()
        }
    }

    /// Reset the per-attempt scratch. The engine calls this once per
    /// attempt before placing.
    pub(crate) fn begin_attempt(&mut self) {
        self.attempt_forced = 0;
        self.attempt_max_chain = 0;
    }

    /// Close out one engine attempt: sample the per-attempt histograms.
    pub(crate) fn end_attempt(&mut self) {
        self.engine_attempts += 1;
        self.forced_per_attempt.record_sample(self.attempt_forced);
    }

    /// Record one windowed admission scan for node `v`.
    pub(crate) fn note_scan(&mut self, v: InstId) {
        self.scans += 1;
        self.node_attempts[v.index()] += 1;
    }

    /// Record one node ejected by a forced placement.
    pub(crate) fn note_ejected(&mut self, n: InstId) {
        self.ejected += 1;
        self.node_ejections[n.index()] += 1;
    }

    /// Record one successful forced placement that evicted `depth`
    /// nodes in total (row conflicts plus violated neighbours).
    pub(crate) fn note_force(&mut self, depth: u64) {
        self.forced += 1;
        self.eject_chain_depth.record_sample(depth);
        self.attempt_forced += 1;
        self.attempt_max_chain = self.attempt_max_chain.max(depth);
    }

    /// Deepest eject chain of the current attempt (for the Perfetto
    /// counter track).
    pub fn attempt_max_chain(&self) -> u64 {
        self.attempt_max_chain
    }

    /// Classify recorded probe verdicts; `fast` says whether the
    /// policy's fast-path scan produced them.
    pub(crate) fn classify_probes(&mut self, probes: &[Probe], fast: bool) {
        for p in probes {
            let slot = match p {
                Probe::Accept { .. } => {
                    if fast {
                        &mut self.probe_accept_fast
                    } else {
                        &mut self.probe_accept_generic
                    }
                }
                Probe::C1Reject { .. } => {
                    if fast {
                        &mut self.probe_c1_fast
                    } else {
                        &mut self.probe_c1_generic
                    }
                }
                Probe::C2Reject { .. } => {
                    if fast {
                        &mut self.probe_c2_fast
                    } else {
                        &mut self.probe_c2_generic
                    }
                }
                Probe::Opaque => &mut self.probe_opaque,
            };
            *slot += 1;
        }
    }

    /// Fold `other` into `self` (commutative over attribution fields;
    /// the per-attempt scratch does not transfer).
    pub fn merge(&mut self, other: &PlaceProfile) {
        if self.node_attempts.len() < other.node_attempts.len() {
            self.node_attempts.resize(other.node_attempts.len(), 0);
            self.node_ejections.resize(other.node_ejections.len(), 0);
        }
        for (i, n) in other.node_attempts.iter().enumerate() {
            self.node_attempts[i] += n;
        }
        for (i, n) in other.node_ejections.iter().enumerate() {
            self.node_ejections[i] += n;
        }
        self.scans += other.scans;
        self.forced += other.forced;
        self.ejected += other.ejected;
        self.engine_attempts += other.engine_attempts;
        self.probe_accept_fast += other.probe_accept_fast;
        self.probe_accept_generic += other.probe_accept_generic;
        self.probe_c1_fast += other.probe_c1_fast;
        self.probe_c1_generic += other.probe_c1_generic;
        self.probe_c2_fast += other.probe_c2_fast;
        self.probe_c2_generic += other.probe_c2_generic;
        self.probe_opaque += other.probe_opaque;
        self.eject_chain_depth.merge(&other.eject_chain_depth);
        self.forced_per_attempt.merge(&other.forced_per_attempt);
        self.scan_ns += other.scan_ns;
        self.probe_ns += other.probe_ns;
        self.fit_ns += other.fit_ns;
        self.eject_ns += other.eject_ns;
        self.force_ns += other.force_ns;
        self.verify_ns += other.verify_ns;
    }

    /// Total wall-clock ns spent inside the placement loop proper
    /// (everything but `verify`).
    pub fn place_loop_ns(&self) -> u64 {
        self.scan_ns + self.probe_ns + self.fit_ns + self.eject_ns + self.force_ns
    }

    /// Share of placement-loop time spent ejecting and force-placing —
    /// the "how much does the IMS fallback cost" headline number.
    pub fn eject_force_share(&self) -> f64 {
        let total = self.place_loop_ns();
        if total == 0 {
            return 0.0;
        }
        (self.eject_ns + self.force_ns) as f64 / total as f64
    }

    /// Sub-phase wall-clock accumulators in [`PLACE_PHASES`] order.
    pub fn phase_ns(&self) -> [(&'static str, u64); 6] {
        [
            ("scan", self.scan_ns),
            ("probe", self.probe_ns),
            ("fit", self.fit_ns),
            ("eject", self.eject_ns),
            ("force", self.force_ns),
            ("verify", self.verify_ns),
        ]
    }

    /// Name of the sub-phase with the largest wall-clock share.
    pub fn dominant_phase(&self) -> &'static str {
        self.phase_ns()
            .into_iter()
            .max_by_key(|&(_, ns)| ns)
            .map(|(name, _)| name)
            .unwrap_or("scan")
    }

    /// The `n` hottest nodes by attempts + ejections, ranked
    /// descending with the stable node index as tie-break. Nodes with
    /// no recorded activity are omitted. Deterministic: depends only on
    /// the attribution counters.
    pub fn top_nodes(&self, n: usize) -> Vec<NodeHotspot> {
        let mut rows: Vec<NodeHotspot> = self
            .node_attempts
            .iter()
            .zip(&self.node_ejections)
            .enumerate()
            .filter(|&(_, (&a, &e))| a + e > 0)
            .map(|(node, (&attempts, &ejections))| NodeHotspot {
                node,
                attempts,
                ejections,
            })
            .collect();
        rows.sort_by(|a, b| {
            (b.attempts + b.ejections, a.node).cmp(&(a.attempts + a.ejections, b.node))
        });
        rows.truncate(n);
        rows
    }

    /// Resolve a hotspot row's node index to its instruction name.
    pub fn node_name<'d>(&self, ddg: &'d Ddg, node: usize) -> &'d str {
        &ddg.inst(InstId(node as u32)).name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative_over_attribution() {
        let mut a = PlaceProfile::new(3);
        a.note_scan(InstId(0));
        a.note_scan(InstId(1));
        a.note_ejected(InstId(2));
        a.note_force(2);
        a.classify_probes(
            &[Probe::Accept {
                sync_max: 1,
                misspec: None,
            }],
            true,
        );
        let mut b = PlaceProfile::new(3);
        b.note_scan(InstId(0));
        b.classify_probes(&[Probe::C1Reject { sync: 9 }], false);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.node_attempts, ba.node_attempts);
        assert_eq!(ab.node_ejections, ba.node_ejections);
        assert_eq!(ab.scans, 3);
        assert_eq!(ab.probe_accept_fast, ba.probe_accept_fast);
        assert_eq!(ab.probe_c1_generic, 1);
        assert_eq!(ab.eject_chain_depth, ba.eject_chain_depth);
        assert_eq!(ab.top_nodes(8), ba.top_nodes(8));
    }

    #[test]
    fn top_nodes_ranks_by_activity_with_stable_tiebreak() {
        let mut p = PlaceProfile::new(4);
        p.note_scan(InstId(0));
        p.note_scan(InstId(2));
        p.note_scan(InstId(2));
        p.note_scan(InstId(3));
        p.note_ejected(InstId(3));
        let top = p.top_nodes(2);
        assert_eq!(top.len(), 2);
        // Node 3 (1 attempt + 1 ejection) ties node 2 (2 attempts):
        // the lower node index wins the tie.
        assert_eq!(top[0].node, 2);
        assert_eq!(top[1].node, 3);
        assert_eq!(p.top_nodes(10).len(), 3);
    }

    #[test]
    fn per_attempt_histograms_sample_on_end() {
        let mut p = PlaceProfile::new(2);
        p.begin_attempt();
        p.note_force(1);
        p.note_force(3);
        assert_eq!(p.attempt_max_chain(), 3);
        p.end_attempt();
        p.begin_attempt();
        p.end_attempt();
        assert_eq!(p.engine_attempts, 2);
        assert_eq!(p.forced_per_attempt.count, 2);
        assert_eq!(p.forced_per_attempt.sum, 2);
        assert_eq!(p.eject_chain_depth.count, 2);
        assert_eq!(p.eject_chain_depth.max, 3);
    }
}
