//! Scheduling windows.
//!
//! SMS assigns each node a window of `II` consecutive cycles derived
//! from its already-placed neighbours, scanned in a direction that
//! keeps the node as close as possible to them (the "lifetime-minimal"
//! strategy the paper's §4.1 example illustrates with n6's window
//! `[7,0]`).
//!
//! One refinement over the textbook formulation: bounds are computed as
//! longest paths from (and to) *scheduled* nodes **through unscheduled
//! ones**, not just over direct edges. A direct-edge-only early start
//! can admit slots that are transitively infeasible — e.g. a memory
//! chord `n5 → n2` inside a tight recurrence lets `n2` sit cycles
//! before the position the recurrence itself forces, painting the
//! remaining recurrence nodes into an empty window at *every* II. The
//! transitive bounds collapse to the classic ES/LS whenever only direct
//! neighbours constrain the node, so SMS behaviour is unchanged on the
//! common path.
//!
//! The longest-path relaxation is the engine's hottest loop (it runs
//! twice per node visit, and ejection cascades revisit nodes freely),
//! so the edge sweeps run in a precomputed topological order of the
//! intra-iteration (distance-0) subgraph: a single sweep then reaches
//! the fixpoint unless a loop-carried back edge propagated *behind*
//! the sweep, which is detected per relaxation and triggers classic
//! repeat-until-stable passes. The fixpoint is a pure `max` (resp.
//! `min`) over paths — independent of edge iteration order — so the
//! bounds, and therefore the schedules, are bit-identical to the
//! naive repeated sweep.
//!
//! # Cross-II bound transfer
//!
//! Each sweep additionally reports whether any loop-carried
//! (`distance > 0`) edge relaxation *improved* a distance. When none
//! did — the window is **carried-free** — the bounds are derived purely
//! from distance-0 paths out of placed nodes, whose contributions
//! (`t(u) + Σ delay`) contain no `II` term. Such bounds transfer
//! exactly to any **larger** II under the same placements: a carried
//! candidate in the lower sweep, `dist(src) + delay − II·d` with
//! `d ≥ 1`, only shrinks as II grows (and grows in the upper sweep's
//! mirror), so every carried relaxation that failed to improve at the
//! recorded II still fails at II′ > II, the distance evolution is
//! unchanged, and the recomputed bound — and the carried-free property
//! itself — are identical. Reachedness (whether a bound exists at all)
//! propagates through finite candidates regardless of their value, so
//! the [`WindowKind`] also transfers. [`window_from_facts`] exploits
//! this to rebuild a window at a larger II without running either
//! sweep; the warm-start layer (`crate::warm`) records the facts per
//! engine step.

use crate::schedule::PartialSchedule;
use tms_ddg::analysis::TimeFrames;
use tms_ddg::{Ddg, InstId};

/// The candidate cycles for one node, in the order SMS tries them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Window {
    /// Candidate issue cycles, first-preference first.
    pub cycles: Vec<i64>,
    /// Which neighbour sides were already placed (for diagnostics).
    pub kind: WindowKind,
}

/// How a window was derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Only predecessors placed — scan upward from the early start.
    PredsOnly,
    /// Only successors placed — scan downward from the late start.
    SuccsOnly,
    /// Both sides placed — bounded window scanned upward.
    Both,
    /// Nothing placed — seeded from ASAP, scanned upward.
    Free,
}

/// One edge of a precomputed sweep order, flattened so the relaxation
/// loop touches a single contiguous array: endpoint indices, the edge
/// weight components, and the back-edge flag (`rank[dst] ≤ rank[src]`,
/// the only rank fact a sweep consults) are all baked in at
/// [`WindowScratch::prepare`] time. This replaces the former
/// index-indirection (`order[i] → edges[ei]` plus two `rank` gathers
/// per relaxation) on the engine's hottest loop.
#[derive(Debug, Clone, Copy)]
struct SweepEdge {
    src: u32,
    dst: u32,
    delay: i64,
    distance: i64,
    /// Relaxing this edge writes at or behind the sweep position.
    back: bool,
}

/// Reusable buffers for repeated window computations. One scratch per
/// worker amortises the distance vector, the topological edge orders,
/// and the candidate list across every node of every scheduling
/// attempt.
///
/// [`WindowScratch::prepare`] must run once per DDG before
/// [`window_into`] / [`force_floor_with`] (the engine does this at the
/// top of each attempt); the convenience wrappers [`window_of`] and
/// [`force_floor`] prepare their own scratch.
#[derive(Debug, Default, Clone)]
pub struct WindowScratch {
    /// Distance values; `i64::MIN` / `i64::MAX` sentinels mean
    /// “unreached” in the lower / upper sweeps respectively.
    dist: Vec<i64>,
    /// Topological rank of each node over the distance-0 subgraph
    /// (loop-carried edges excluded; any residual cycle gets arbitrary
    /// ranks — correctness falls back to the repeat passes).
    rank: Vec<u32>,
    /// Edges sorted ascending by `rank[src]` (stable, so rank ties keep
    /// DDG edge order): the forward (early-start) sweep order.
    fwd_edges: Vec<SweepEdge>,
    /// Edges sorted descending by `rank[dst]` (stable): the backward
    /// (late-start) sweep order.
    bwd_edges: Vec<SweepEdge>,
    /// Kahn worklist buffers.
    indeg: Vec<u32>,
    queue: Vec<u32>,
    /// [`Ddg::uid`] the sweep orders were computed for; [`prepare`]
    /// short-circuits when asked for the same graph again, which makes
    /// repeated attempts on one loop pay the `O(V + E log E)` setup
    /// once instead of once per attempt.
    ///
    /// [`prepare`]: WindowScratch::prepare
    prepared_uid: Option<u64>,
    /// Whether the most recent sweep improved any distance through a
    /// loop-carried edge (set by both bound functions, combined into
    /// [`WindowScratch::carried_free`] by [`window_into`]).
    carried_seen: bool,
    /// Candidate cycles of the most recent [`window_into`] call,
    /// first-preference first.
    pub cycles: Vec<i64>,
    /// Early start of the most recent [`window_into`] call (`None` when
    /// no placed node bounded `v` from below).
    pub last_es: Option<i64>,
    /// Late start of the most recent [`window_into`] call (`None` when
    /// no placed node bounded `v` from above).
    pub last_ls: Option<i64>,
    /// Whether the most recent [`window_into`] call was carried-free:
    /// neither sweep improved a distance through a `distance > 0` edge,
    /// so its bounds (and this very property) transfer verbatim to any
    /// larger II under the same placements (see the module docs).
    pub carried_free: bool,
}

impl WindowScratch {
    /// Precompute the topological sweep orders for `ddg`. `O(V + E log
    /// E)` cold; a no-op when the scratch is already prepared for this
    /// exact graph (keyed on [`Ddg::uid`], so a different graph at the
    /// same address or with the same shape can never alias).
    pub fn prepare(&mut self, ddg: &Ddg) {
        if self.prepared_uid == Some(ddg.uid()) {
            return;
        }
        let n = ddg.num_insts();
        let edges = ddg.edges();
        // Kahn over the intra-iteration (distance-0) subgraph, which a
        // legal DDG keeps acyclic. Nodes stuck on a residual cycle (a
        // malformed graph) are ranked after all others in index order;
        // the back-edge detection then simply forces repeat passes.
        self.indeg.clear();
        self.indeg.resize(n, 0);
        for e in edges {
            if e.distance == 0 && e.src != e.dst {
                self.indeg[e.dst.index()] += 1;
            }
        }
        self.queue.clear();
        self.queue
            .extend((0..n as u32).filter(|&i| self.indeg[i as usize] == 0));
        self.rank.clear();
        self.rank.resize(n, u32::MAX);
        let mut next_rank = 0u32;
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            self.rank[u as usize] = next_rank;
            next_rank += 1;
            for (_, e) in ddg.succ_edges(InstId(u)) {
                if e.distance == 0 && e.src != e.dst {
                    let d = e.dst.index();
                    self.indeg[d] -= 1;
                    if self.indeg[d] == 0 {
                        self.queue.push(d as u32);
                    }
                }
            }
        }
        for r in &mut self.rank {
            if *r == u32::MAX {
                *r = next_rank;
                next_rank += 1;
            }
        }
        let flat = |e: &tms_ddg::Edge| SweepEdge {
            src: e.src.index() as u32,
            dst: e.dst.index() as u32,
            delay: e.delay,
            distance: e.distance as i64,
            back: self.rank[e.dst.index()] <= self.rank[e.src.index()],
        };
        self.fwd_edges.clear();
        self.fwd_edges.extend(edges.iter().map(flat));
        self.fwd_edges.sort_by_key(|se| self.rank[se.src as usize]);
        self.bwd_edges.clear();
        self.bwd_edges.extend(edges.iter().map(flat));
        self.bwd_edges
            .sort_by_key(|se| u32::MAX - self.rank[se.dst as usize]);
        self.prepared_uid = Some(ddg.uid());
    }
}

/// Longest-path lower bound on `t(v)` from scheduled nodes through
/// unscheduled intermediates: `max` over paths `p : u ⤳ v` with `u`
/// scheduled and interior nodes unscheduled of
/// `t(u) + Σ_e (delay(e) − II·distance(e))`.
///
/// Requires [`WindowScratch::prepare`] for this DDG.
fn lower_bound_with(
    ddg: &Ddg,
    ps: &PartialSchedule,
    v: InstId,
    scratch: &mut WindowScratch,
) -> Option<i64> {
    let ii = ps.ii() as i64;
    debug_assert_eq!(
        scratch.rank.len(),
        ddg.num_insts(),
        "WindowScratch::prepare was not run for this DDG"
    );
    let dist = &mut scratch.dist;
    dist.clear();
    dist.extend(ddg.inst_ids().map(|u| ps.time(u).unwrap_or(i64::MIN)));
    // Scheduled times are fixed, so only edges into unscheduled nodes
    // can relax anything; v participates as an unscheduled node (its
    // entry starts at the `i64::MIN` sentinel, the “unreached” value).
    // Each sweep runs in topological order — a relaxation that writes
    // at or behind its own sweep position (the precomputed `back`
    // flag, i.e. a loop-carried back edge that actually fired) is the
    // only way a sweep can miss the fixpoint, so sweeps repeat exactly
    // until one completes without such a write (no separate
    // confirmation pass is needed).
    let mut carried = false;
    for _ in 0..=scratch.fwd_edges.len() {
        let mut rerun = false;
        for e in &scratch.fwd_edges {
            if ps.is_placed(InstId(e.dst)) {
                continue;
            }
            let ds = dist[e.src as usize];
            if ds != i64::MIN {
                let cand = ds + e.delay - ii * e.distance;
                if cand > dist[e.dst as usize] {
                    dist[e.dst as usize] = cand;
                    carried |= e.distance > 0;
                    rerun |= e.back;
                }
            }
        }
        if !rerun {
            break;
        }
    }
    scratch.carried_seen = carried;
    let d = dist[v.index()];
    (d != i64::MIN).then_some(d)
}

/// Symmetric upper bound on `t(v)` toward scheduled successors.
///
/// Requires [`WindowScratch::prepare`] for this DDG.
fn upper_bound_with(
    ddg: &Ddg,
    ps: &PartialSchedule,
    v: InstId,
    scratch: &mut WindowScratch,
) -> Option<i64> {
    let ii = ps.ii() as i64;
    debug_assert_eq!(
        scratch.rank.len(),
        ddg.num_insts(),
        "WindowScratch::prepare was not run for this DDG"
    );
    let dist = &mut scratch.dist;
    dist.clear();
    dist.extend(ddg.inst_ids().map(|u| ps.time(u).unwrap_or(i64::MAX)));
    // Mirror image of the forward sweep: propagation flows dst → src,
    // so sweeps run in reverse topological order (sentinel `i64::MAX`,
    // `min` relaxation) and a relaxation with `rank[src] ≥ rank[dst]`
    // — the same precomputed `back` flag — forces another sweep.
    let mut carried = false;
    for _ in 0..=scratch.bwd_edges.len() {
        let mut rerun = false;
        for e in &scratch.bwd_edges {
            if ps.is_placed(InstId(e.src)) {
                continue;
            }
            let dd = dist[e.dst as usize];
            if dd != i64::MAX {
                let cand = dd - e.delay + ii * e.distance;
                if cand < dist[e.src as usize] {
                    dist[e.src as usize] = cand;
                    carried |= e.distance > 0;
                    rerun |= e.back;
                }
            }
        }
        if !rerun {
            break;
        }
    }
    scratch.carried_seen = carried;
    let d = dist[v.index()];
    (d != i64::MAX).then_some(d)
}

/// The floor for a *forced* (IMS-style) placement of `v`: the
/// transitive lower bound from placed predecessors, or `v`'s ASAP frame
/// when nothing upstream is placed. Upper bounds are deliberately
/// ignored — forcing past them is the point; violated successors get
/// ejected and rescheduled.
pub fn force_floor(ddg: &Ddg, ps: &PartialSchedule, frames: &TimeFrames, v: InstId) -> i64 {
    let mut scratch = WindowScratch::default();
    scratch.prepare(ddg);
    force_floor_with(ddg, ps, frames, v, &mut scratch)
}

/// [`force_floor`] with caller-provided buffers. Requires
/// [`WindowScratch::prepare`] for this DDG.
pub fn force_floor_with(
    ddg: &Ddg,
    ps: &PartialSchedule,
    frames: &TimeFrames,
    v: InstId,
    scratch: &mut WindowScratch,
) -> i64 {
    lower_bound_with(ddg, ps, v, scratch).unwrap_or(frames.asap[v.index()])
}

/// Compute the scheduling window of `v` against the partial schedule.
///
/// * early start `ES` — the transitive lower bound (direct form:
///   `max over placed preds u of t(u) + delay − II·d`)
/// * late start `LS` — the transitive upper bound (direct form:
///   `min over placed succs w of t(w) − delay + II·d`)
///
/// Windows never exceed `II` candidates: any legal modulo row appears
/// exactly once among `II` consecutive cycles.
pub fn window_of(ddg: &Ddg, ps: &PartialSchedule, frames: &TimeFrames, v: InstId) -> Window {
    let mut scratch = WindowScratch::default();
    scratch.prepare(ddg);
    let kind = window_into(ddg, ps, frames, v, &mut scratch);
    Window {
        cycles: scratch.cycles,
        kind,
    }
}

/// [`window_of`] into reusable buffers: the candidate cycles land in
/// `scratch.cycles` (replacing its previous contents) and the derived
/// [`WindowKind`] is returned. Requires [`WindowScratch::prepare`] for
/// this DDG.
pub fn window_into(
    ddg: &Ddg,
    ps: &PartialSchedule,
    frames: &TimeFrames,
    v: InstId,
    scratch: &mut WindowScratch,
) -> WindowKind {
    let ii = ps.ii() as i64;
    let early = lower_bound_with(ddg, ps, v, scratch);
    let lo_carried = scratch.carried_seen;
    let late = upper_bound_with(ddg, ps, v, scratch);
    scratch.carried_free = !(lo_carried || scratch.carried_seen);
    scratch.last_es = early;
    scratch.last_ls = late;

    scratch.cycles.clear();
    match (early, late) {
        (Some(es), None) => {
            scratch.cycles.extend(es..es + ii);
            WindowKind::PredsOnly
        }
        (None, Some(ls)) => {
            scratch.cycles.extend((ls - ii + 1..=ls).rev());
            WindowKind::SuccsOnly
        }
        (Some(es), Some(ls)) => {
            scratch.cycles.extend(es..=ls.min(es + ii - 1));
            WindowKind::Both
        }
        (None, None) => {
            let asap = frames.asap[v.index()];
            scratch.cycles.extend(asap..asap + ii);
            WindowKind::Free
        }
    }
}

/// Rebuild the candidate-cycle list a [`window_into`] call would
/// produce, from its recorded derivation facts instead of the two
/// longest-path sweeps. Sound only when the recording was
/// **carried-free** and `ii` is **no smaller** than the II it was
/// recorded at, against an identical partial schedule — exactly the
/// conditions under which the module-doc transfer argument guarantees
/// the sweeps would recompute the same `es`/`ls` (and the same
/// Some/None pattern, hence the same `kind`). `asap` is the node's
/// ASAP frame at the *new* II, which is all the `Free` case reads.
///
/// The warm-start layer enforces the conditions (and debug-asserts the
/// equivalence differentially); this function just replays the range
/// constructions of [`window_into`] verbatim.
pub fn window_from_facts(
    kind: WindowKind,
    es: Option<i64>,
    ls: Option<i64>,
    ii: u32,
    asap: i64,
    cycles: &mut Vec<i64>,
) {
    let ii = ii as i64;
    cycles.clear();
    match kind {
        WindowKind::PredsOnly => {
            let es = es.expect("PredsOnly window recorded without an early start");
            cycles.extend(es..es + ii);
        }
        WindowKind::SuccsOnly => {
            let ls = ls.expect("SuccsOnly window recorded without a late start");
            cycles.extend((ls - ii + 1..=ls).rev());
        }
        WindowKind::Both => {
            let es = es.expect("Both window recorded without an early start");
            let ls = ls.expect("Both window recorded without a late start");
            cycles.extend(es..=ls.min(es + ii - 1));
        }
        WindowKind::Free => cycles.extend(asap..asap + ii),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_ddg::{DdgBuilder, OpClass};
    use tms_machine::MachineModel;

    /// The `prepare` memoisation keys on [`Ddg::uid`], so one scratch
    /// re-used across *different* graphs must transparently re-prepare
    /// — a stale topological order would corrupt every window bound.
    #[test]
    fn scratch_reprepares_across_distinct_graphs() {
        let build = |name: &str, lat: u32| {
            let mut b = DdgBuilder::new(name);
            let a = b.inst_lat("a", OpClass::FpMul, lat);
            let c = b.inst("c", OpClass::IntAlu);
            b.reg_flow(a, c, 0);
            (b.build().unwrap(), a, c)
        };
        let (g1, a1, c1) = build("w1", 4);
        let (g2, a2, c2) = build("w2", 2);
        let m = MachineModel::icpp2008();
        let mut shared = WindowScratch::default();
        for (g, a, c) in [(&g1, a1, c1), (&g2, a2, c2), (&g1, a1, c1)] {
            let frames = TimeFrames::compute(g, 4).unwrap();
            let mut ps = PartialSchedule::new(g, 4, &m);
            ps.place(g, a, 0);
            shared.prepare(g);
            let kind = window_into(g, &ps, &frames, c, &mut shared);
            let fresh = window_of(g, &ps, &frames, c);
            assert_eq!(kind, fresh.kind, "{}: kind drifted", g.name());
            assert_eq!(shared.cycles, fresh.cycles, "{}: cycles drifted", g.name());
        }
        // Same graph twice in a row: the memo hit must be inert.
        shared.prepare(&g1);
        shared.prepare(&g1);
    }

    #[test]
    fn preds_only_scans_upward() {
        let mut b = DdgBuilder::new("w");
        let a = b.inst_lat("a", OpClass::FpMul, 4);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let frames = TimeFrames::compute(&g, 4).unwrap();
        let mut ps = PartialSchedule::new(&g, 4, &m);
        ps.place(&g, a, 0);
        let w = window_of(&g, &ps, &frames, c);
        assert_eq!(w.kind, WindowKind::PredsOnly);
        assert_eq!(w.cycles, vec![4, 5, 6, 7]);
    }

    #[test]
    fn succs_only_scans_downward_like_paper_n6() {
        // Reproduce n6's window [7,0] from the motivating example:
        // unit-latency n6 feeds n0 (placed at 0) across distance 1 with
        // II=8: LS = 0 - 1 + 8 = 7, window scanned 7,6,...,0.
        let mut b = DdgBuilder::new("n6");
        let n0 = b.inst("n0", OpClass::IntAlu);
        let n6 = b.inst("n6", OpClass::IntAlu);
        b.reg_flow(n6, n0, 1);
        b.reg_flow(n6, n6, 1);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let frames = TimeFrames::compute(&g, 8).unwrap();
        let mut ps = PartialSchedule::new(&g, 8, &m);
        ps.place(&g, n0, 0);
        let w = window_of(&g, &ps, &frames, n6);
        assert_eq!(w.kind, WindowKind::SuccsOnly);
        assert_eq!(w.cycles, vec![7, 6, 5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn both_sides_bound_the_window() {
        let mut b = DdgBuilder::new("both");
        let a = b.inst("a", OpClass::IntAlu); // lat 1
        let v = b.inst("v", OpClass::IntAlu); // lat 1
        let z = b.inst("z", OpClass::IntAlu);
        b.reg_flow(a, v, 0);
        b.reg_flow(v, z, 0);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let frames = TimeFrames::compute(&g, 4).unwrap();
        let mut ps = PartialSchedule::new(&g, 4, &m);
        ps.place(&g, a, 0);
        ps.place(&g, z, 3);
        let w = window_of(&g, &ps, &frames, v);
        assert_eq!(w.kind, WindowKind::Both);
        assert_eq!(w.cycles, vec![1, 2]);
    }

    #[test]
    fn infeasible_both_window_is_empty() {
        let mut b = DdgBuilder::new("infeasible");
        let a = b.inst_lat("a", OpClass::FpDiv, 12);
        let v = b.inst("v", OpClass::IntAlu);
        let z = b.inst("z", OpClass::IntAlu);
        b.reg_flow(a, v, 0);
        b.reg_flow(v, z, 0);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let frames = TimeFrames::compute(&g, 4).unwrap();
        let mut ps = PartialSchedule::new(&g, 4, &m);
        ps.place(&g, a, 0);
        ps.place(&g, z, 3); // v needs >= 12 but <= 2 — impossible
        let w = window_of(&g, &ps, &frames, v);
        assert!(w.cycles.is_empty());
    }

    #[test]
    fn free_window_starts_at_asap() {
        let mut b = DdgBuilder::new("free");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let frames = TimeFrames::compute(&g, 2).unwrap();
        let ps = PartialSchedule::new(&g, 2, &m);
        let w = window_of(&g, &ps, &frames, c);
        assert_eq!(w.kind, WindowKind::Free);
        assert_eq!(w.cycles, vec![1, 2]);
    }

    #[test]
    fn self_dependence_does_not_constrain_own_slot() {
        let mut b = DdgBuilder::new("self");
        let a = b.inst_lat("a", OpClass::FpAdd, 4);
        b.reg_flow(a, a, 1);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let frames = TimeFrames::compute(&g, 4).unwrap();
        let ps = PartialSchedule::new(&g, 4, &m);
        let w = window_of(&g, &ps, &frames, a);
        assert_eq!(w.kind, WindowKind::Free);
        assert_eq!(w.cycles.len(), 4);
    }

    #[test]
    fn transitive_bound_tightens_chorded_recurrence() {
        // Tight recurrence n0(3) -> n1(1) -> n2(1) -> n4(2) -> n5(1)
        // -> n0 (d=1) at II=8, plus a memory chord n5 -> n2 (d=1).
        // With n5 at 7 and n4 at 5 placed, n2's direct-edge ES would be
        // 0 (the chord), but the recurrence transitively forces 4.
        let mut b = DdgBuilder::new("chord");
        let n0 = b.inst_lat("n0", OpClass::Load, 3);
        let n1 = b.inst_lat("n1", OpClass::IntAlu, 1);
        let n2 = b.inst_lat("n2", OpClass::IntAlu, 1);
        let n4 = b.inst_lat("n4", OpClass::IntAlu, 2);
        let n5 = b.inst_lat("n5", OpClass::Store, 1);
        b.reg_flow(n0, n1, 0);
        b.reg_flow(n1, n2, 0);
        b.reg_flow(n2, n4, 0);
        b.reg_flow(n4, n5, 0);
        b.reg_flow(n5, n0, 1);
        b.mem_flow(n5, n2, 1, 0.02);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let frames = TimeFrames::compute(&g, 8).unwrap();
        let mut ps = PartialSchedule::new(&g, 8, &m);
        ps.place(&g, n5, 7);
        ps.place(&g, n4, 5);
        let w = window_of(&g, &ps, &frames, n2);
        assert_eq!(w.kind, WindowKind::Both);
        assert_eq!(w.cycles, vec![4], "recurrence forces exactly cycle 4");
    }

    /// Carried-free flag semantics: bounds derived purely from
    /// distance-0 paths report carried-free; a loop-carried edge that
    /// actually improves a distance clears it.
    #[test]
    fn carried_free_tracks_loop_carried_relaxations() {
        // Acyclic chain: a(placed) -> c. Pure d=0 derivation.
        let mut b = DdgBuilder::new("cf-acyclic");
        let a = b.inst_lat("a", OpClass::FpMul, 4);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let frames = TimeFrames::compute(&g, 4).unwrap();
        let mut ps = PartialSchedule::new(&g, 4, &m);
        ps.place(&g, a, 0);
        let mut scratch = WindowScratch::default();
        scratch.prepare(&g);
        window_into(&g, &ps, &frames, c, &mut scratch);
        assert!(scratch.carried_free, "d=0-only bounds must be carried-free");
        assert_eq!(scratch.last_es, Some(4));
        assert_eq!(scratch.last_ls, None);

        // The paper's n6 shape: the bound comes through a distance-1
        // edge (LS = 0 − 1 + 8), so it is II-dependent.
        let mut b = DdgBuilder::new("cf-carried");
        let n0 = b.inst("n0", OpClass::IntAlu);
        let n6 = b.inst("n6", OpClass::IntAlu);
        b.reg_flow(n6, n0, 1);
        b.reg_flow(n6, n6, 1);
        let g = b.build().unwrap();
        let frames = TimeFrames::compute(&g, 8).unwrap();
        let mut ps = PartialSchedule::new(&g, 8, &m);
        ps.place(&g, n0, 0);
        let mut scratch = WindowScratch::default();
        scratch.prepare(&g);
        window_into(&g, &ps, &frames, n6, &mut scratch);
        assert!(
            !scratch.carried_free,
            "a distance-1 relaxation fixed the bound — not transferable"
        );
    }

    /// The transfer theorem, end to end: a carried-free window's facts
    /// rebuilt at a strictly larger II must equal the fresh sweeps at
    /// that II under the same placements.
    #[test]
    fn carried_free_facts_transfer_to_larger_ii() {
        let mut b = DdgBuilder::new("transfer");
        let a = b.inst_lat("a", OpClass::FpMul, 4);
        let v = b.inst("v", OpClass::IntAlu);
        let z = b.inst("z", OpClass::IntAlu);
        b.reg_flow(a, v, 0);
        b.reg_flow(v, z, 0);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let mut scratch = WindowScratch::default();
        scratch.prepare(&g);
        // Record at II=4 with a and z placed (a Both window).
        let frames4 = TimeFrames::compute(&g, 4).unwrap();
        let mut ps4 = PartialSchedule::new(&g, 4, &m);
        ps4.place(&g, a, 0);
        ps4.place(&g, z, 7);
        let kind = window_into(&g, &ps4, &frames4, v, &mut scratch);
        assert!(scratch.carried_free);
        let (es, ls) = (scratch.last_es, scratch.last_ls);
        for ii2 in [5u32, 6, 9] {
            let frames2 = TimeFrames::compute(&g, ii2).unwrap();
            let mut ps2 = PartialSchedule::new(&g, ii2, &m);
            ps2.place(&g, a, 0);
            ps2.place(&g, z, 7);
            let fresh_kind = window_into(&g, &ps2, &frames2, v, &mut scratch);
            let fresh: Vec<i64> = scratch.cycles.clone();
            assert_eq!(fresh_kind, kind, "II={ii2}: kind must transfer");
            assert!(scratch.carried_free, "II={ii2}: carried-free transfers");
            assert_eq!((scratch.last_es, scratch.last_ls), (es, ls));
            let mut regen = Vec::new();
            window_from_facts(kind, es, ls, ii2, frames2.asap[v.index()], &mut regen);
            assert_eq!(regen, fresh, "II={ii2}: regenerated window diverged");
        }
    }

    #[test]
    fn topological_sweep_matches_naive_fixpoint() {
        // Differential check of the ordered sweep against a reference
        // repeat-until-stable relaxation, across partial placements of
        // a loop whose back edges actually fire (a two-cycle recurrence
        // with a chord). Bounds are fixpoints of order-independent
        // max/min relaxations, so both must agree exactly.
        let mut b = DdgBuilder::new("diff");
        let n0 = b.inst_lat("n0", OpClass::Load, 3);
        let n1 = b.inst_lat("n1", OpClass::FpMul, 4);
        let n2 = b.inst_lat("n2", OpClass::IntAlu, 1);
        let n3 = b.inst_lat("n3", OpClass::Store, 1);
        b.reg_flow(n0, n1, 0);
        b.reg_flow(n1, n2, 0);
        b.reg_flow(n2, n0, 1); // recurrence
        b.reg_flow(n2, n3, 0);
        b.mem_flow(n3, n0, 1, 0.05); // loop-carried chord
        b.reg_flow(n3, n1, 2); // second back edge
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let ii = 9u32;

        // Reference: naive Bellman over all edges until stable.
        let naive = |ps: &PartialSchedule, v: InstId, upper: bool| -> Option<i64> {
            let iil = ii as i64;
            let mut dist: Vec<Option<i64>> = g.inst_ids().map(|u| ps.time(u)).collect();
            for _ in 0..=g.edges().len() {
                let mut changed = false;
                for e in g.edges() {
                    if upper {
                        if ps.is_placed(e.src) {
                            continue;
                        }
                        if let Some(dd) = dist[e.dst.index()] {
                            let cand = dd - e.delay + iil * e.distance as i64;
                            if dist[e.src.index()].is_none_or(|d| cand < d) {
                                dist[e.src.index()] = Some(cand);
                                changed = true;
                            }
                        }
                    } else {
                        if ps.is_placed(e.dst) {
                            continue;
                        }
                        if let Some(ds) = dist[e.src.index()] {
                            let cand = ds + e.delay - iil * e.distance as i64;
                            if dist[e.dst.index()].is_none_or(|d| cand > d) {
                                dist[e.dst.index()] = Some(cand);
                                changed = true;
                            }
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
            dist[v.index()]
        };

        let mut scratch = WindowScratch::default();
        scratch.prepare(&g);
        let nodes = [n0, n1, n2, n3];
        // Every subset of placements at representative slots.
        for mask in 0u32..16 {
            let mut ps = PartialSchedule::new(&g, ii, &m);
            for (i, &n) in nodes.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    ps.place(&g, n, (i as i64) * 3 + 1);
                }
            }
            for &v in &nodes {
                if ps.is_placed(v) {
                    continue;
                }
                assert_eq!(
                    lower_bound_with(&g, &ps, v, &mut scratch),
                    naive(&ps, v, false),
                    "lower bound diverged (mask {mask:#06b}, node {v:?})"
                );
                assert_eq!(
                    upper_bound_with(&g, &ps, v, &mut scratch),
                    naive(&ps, v, true),
                    "upper bound diverged (mask {mask:#06b}, node {v:?})"
                );
            }
        }
    }
}
