//! Swing modulo scheduling (SMS) — the baseline the paper builds on —
//! and the shared scheduling engine that TMS plugs into.
//!
//! The engine walks the SMS node order, computes each node's scheduling
//! window and places it at the first candidate cycle that is (a)
//! resource-feasible in the MRT and (b) accepted by a [`SlotPolicy`].
//! SMS's policy accepts everything (pure "lifetime-minimal" placement);
//! TMS's policy (in [`crate::tms`]) adds the C1/C2 thread-sensitivity
//! checks of Figure 3 — exactly how the paper describes TMS "dropping
//! into" SMS.

use crate::order::sms_order;
use crate::profile::PlaceProfile;
use crate::schedule::{PartialSchedule, Schedule};
use crate::warm::{AttemptLog, FailKind, Probe, Step, StepAction, WinFacts};
use crate::window::{force_floor_with, window_from_facts, window_into, WindowScratch};
use std::time::Instant;
use tms_ddg::analysis::{AcyclicPriorities, TimeFrames};
use tms_ddg::{Ddg, InstId};
use tms_machine::{mii, MachineModel};

/// Reusable per-worker buffers for repeated scheduling attempts.
///
/// One `try_schedule` attempt allocates a partial schedule (times +
/// MRT), a priority map, a forced-slot floor, two longest-path distance
/// vectors and a candidate-cycle list. The TMS search makes hundreds to
/// thousands of attempts per loop, and the workload sweeps schedule
/// hundreds of loops — hoisting those allocations into a scratch that
/// each worker thread owns removes the allocator from the inner loop
/// entirely. A scratch is plain state: dropping it any time is safe,
/// and reusing it never changes results.
#[derive(Default)]
pub struct SchedScratch {
    ps: Option<PartialSchedule>,
    pos: Vec<usize>,
    earliest: Vec<i64>,
    win: WindowScratch,
    occupants: Vec<InstId>,
    ejected: Vec<InstId>,
}

impl SchedScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-slot admission control: the hook that turns SMS into TMS.
pub trait SlotPolicy {
    /// May `v` be placed at `cycle` given the current partial schedule?
    /// Resource feasibility has already been checked.
    fn accept(&self, ddg: &Ddg, ps: &PartialSchedule, v: InstId, cycle: i64) -> bool;

    /// [`accept`](SlotPolicy::accept) that also reports the
    /// knob-independent facts behind the verdict, for warm-start replay
    /// (see [`crate::warm`]). The default records [`Probe::Opaque`] —
    /// correct for any policy, but opaque probes never revalidate, so
    /// such policies simply get no replay reuse.
    fn accept_probed(
        &self,
        ddg: &Ddg,
        ps: &PartialSchedule,
        v: InstId,
        cycle: i64,
        probe: &mut Probe,
    ) -> bool {
        *probe = Probe::Opaque;
        self.accept(ddg, ps, v, cycle)
    }

    /// Would a probe recorded by an earlier attempt yield the same
    /// verdict under this policy's current knobs? `false` is always
    /// safe — the engine falls back to a cold evaluation of the step.
    fn probe_holds(&self, _probe: &Probe) -> bool {
        false
    }

    /// First cycle of `cycles` (in order) that is resource-feasible and
    /// policy-accepted, or `None`. When `probes` is given, the probe of
    /// every policy evaluation is pushed in scan order — resource-
    /// blocked cycles evaluate no probe — exactly as a per-cycle
    /// [`accept_probed`](SlotPolicy::accept_probed) loop would record
    /// them. Policies may override this with an equivalent faster scan;
    /// the contract is byte-identical results *and* recordings.
    fn scan_window(
        &self,
        ddg: &Ddg,
        ps: &PartialSchedule,
        v: InstId,
        cycles: &[i64],
        probes: Option<&mut Vec<Probe>>,
    ) -> Option<i64> {
        generic_scan_window(self, ddg, ps, v, cycles, probes)
    }

    /// First cycle in `floor..floor + II` the policy accepts, or
    /// `None`. Forced (IMS-style) placement: resource conflicts are
    /// *not* checked — the engine ejects occupants afterwards. The
    /// recording contract matches [`scan_window`](Self::scan_window).
    fn scan_forced(
        &self,
        ddg: &Ddg,
        ps: &PartialSchedule,
        v: InstId,
        floor: i64,
        probes: Option<&mut Vec<Probe>>,
    ) -> Option<i64> {
        generic_scan_forced(self, ddg, ps, v, floor, probes)
    }

    /// Whether the policy's most recent scan (`scan_window` /
    /// `scan_forced`) took a specialised fast path rather than the
    /// generic per-slot reference scan. Purely informational: the
    /// placement profiler uses it to split probe-outcome attribution.
    /// Policies without a fast path keep the default.
    fn scan_was_fast(&self) -> bool {
        false
    }
}

/// The reference windowed scan every [`SlotPolicy::scan_window`]
/// override must agree with: first resource-feasible, policy-accepted
/// cycle, probing (and recording) in scan order.
pub fn generic_scan_window<P: SlotPolicy + ?Sized>(
    policy: &P,
    ddg: &Ddg,
    ps: &PartialSchedule,
    v: InstId,
    cycles: &[i64],
    mut probes: Option<&mut Vec<Probe>>,
) -> Option<i64> {
    let mut probe = Probe::Opaque;
    for &c in cycles {
        if !ps.fits(ddg, v, c) {
            continue;
        }
        let ok = match probes.as_deref_mut() {
            Some(rec) => {
                let ok = policy.accept_probed(ddg, ps, v, c, &mut probe);
                rec.push(probe);
                ok
            }
            None => policy.accept(ddg, ps, v, c),
        };
        if ok {
            return Some(c);
        }
    }
    None
}

/// The reference forced scan every [`SlotPolicy::scan_forced`] override
/// must agree with (no resource check; see the trait method).
pub fn generic_scan_forced<P: SlotPolicy + ?Sized>(
    policy: &P,
    ddg: &Ddg,
    ps: &PartialSchedule,
    v: InstId,
    floor: i64,
    mut probes: Option<&mut Vec<Probe>>,
) -> Option<i64> {
    let mut probe = Probe::Opaque;
    for x in floor..floor + ps.ii() as i64 {
        let ok = match probes.as_deref_mut() {
            Some(rec) => {
                let ok = policy.accept_probed(ddg, ps, v, x, &mut probe);
                rec.push(probe);
                ok
            }
            None => policy.accept(ddg, ps, v, x),
        };
        if ok {
            return Some(x);
        }
    }
    None
}

/// SMS's policy: any resource-feasible slot in the window is fine.
pub struct AcceptAll;

impl SlotPolicy for AcceptAll {
    #[inline]
    fn accept(&self, _ddg: &Ddg, _ps: &PartialSchedule, _v: InstId, _cycle: i64) -> bool {
        true
    }
}

/// Why scheduling failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// No II up to the configured bound admitted a schedule.
    NoScheduleFound {
        /// The loop that failed.
        loop_name: String,
        /// Largest II tried.
        ii_tried: u32,
    },
    /// The machine lacks a unit class the loop requires.
    Unschedulable {
        /// The loop that failed.
        loop_name: String,
    },
}

impl std::fmt::Display for SchedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchedError::NoScheduleFound {
                loop_name,
                ii_tried,
            } => {
                write!(f, "no schedule for '{loop_name}' up to II={ii_tried}")
            }
            SchedError::Unschedulable { loop_name } => {
                write!(f, "'{loop_name}' needs units the machine lacks")
            }
        }
    }
}

impl std::error::Error for SchedError {}

/// Attempt to schedule `ddg` at a fixed `ii` under `policy`, using the
/// supplied node `order`. Returns `None` if any node finds no slot.
///
/// When every slot of a non-empty window is resource-blocked, the
/// engine falls back to Rau-style **ejection**: the node takes the
/// window's preferred slot and the lowest-priority occupants of that
/// modulo row are unscheduled and retried later. This handles the
/// width-1 `Both` windows that tight recurrences produce, where
/// increasing II alone can never resolve the conflict (zero-distance
/// chains keep their relative positions at every II). A budget bounds
/// the ejection churn; on exhaustion the II is rejected as usual.
pub fn try_schedule(
    ddg: &Ddg,
    machine: &MachineModel,
    ii: u32,
    order: &[InstId],
    policy: &dyn SlotPolicy,
) -> Option<Schedule> {
    let frames = TimeFrames::compute(ddg, ii)?;
    try_schedule_with(
        ddg,
        machine,
        ii,
        order,
        policy,
        &frames,
        &mut SchedScratch::new(),
    )
}

/// Priority map of a node order: `result[n] = position of n in order`
/// (lower = higher priority). Attempt-invariant — the TMS search
/// computes it once per loop and shares it across every candidate
/// attempt via [`try_schedule_prepared`].
pub fn order_priorities(order: &[InstId], num_insts: usize) -> Vec<usize> {
    let mut pos = vec![usize::MAX; num_insts];
    for (i, &n) in order.iter().enumerate() {
        pos[n.index()] = i;
    }
    pos
}

/// [`try_schedule`] with attempt-invariant inputs hoisted out: the
/// caller supplies the [`TimeFrames`] for this `ii` (memoizable across
/// `P_max` retries at the same candidate) and a [`SchedScratch`] whose
/// buffers are reused across attempts. Results are identical to
/// [`try_schedule`].
pub fn try_schedule_with(
    ddg: &Ddg,
    machine: &MachineModel,
    ii: u32,
    order: &[InstId],
    policy: &dyn SlotPolicy,
    frames: &TimeFrames,
    scratch: &mut SchedScratch,
) -> Option<Schedule> {
    // Priority of each node = its position in the SMS order.
    let mut pos = std::mem::take(&mut scratch.pos);
    pos.clear();
    pos.resize(ddg.num_insts(), usize::MAX);
    for (i, &n) in order.iter().enumerate() {
        pos[n.index()] = i;
    }
    let out = try_schedule_prepared(ddg, machine, ii, order, &pos, policy, frames, scratch);
    scratch.pos = pos;
    out
}

/// [`try_schedule_with`] for callers that also hoisted the
/// order-priority map (see [`order_priorities`]) out of the attempt
/// loop. Results are identical to [`try_schedule`].
#[allow(clippy::too_many_arguments)]
pub fn try_schedule_prepared(
    ddg: &Ddg,
    machine: &MachineModel,
    ii: u32,
    order: &[InstId],
    pos: &[usize],
    policy: &dyn SlotPolicy,
    frames: &TimeFrames,
    scratch: &mut SchedScratch,
) -> Option<Schedule> {
    debug_assert_eq!(frames.ii, ii, "frames computed for a different II");
    run_prepared(
        ddg, machine, ii, order, pos, policy, frames, scratch, None, None,
    )
}

/// [`try_schedule_prepared`] with warm-start record/replay through an
/// [`AttemptLog`] (see [`crate::warm`]). The log carries the decision
/// trace of the previous attempt at this `ii`; steps whose recorded
/// policy verdicts still hold under `policy`'s current knobs are
/// applied without recomputing windows or consulting the policy, and
/// the remainder runs cold, refreshing the log. Results are
/// byte-identical to [`try_schedule_prepared`] for *any* log contents —
/// the log only changes how much work is recomputed. Pass a log
/// recorded for a different loop, order, or II and the first probe
/// mismatch simply falls back to the cold path (callers key their
/// caches accordingly; see the TMS search).
#[allow(clippy::too_many_arguments)]
pub fn try_schedule_logged(
    ddg: &Ddg,
    machine: &MachineModel,
    ii: u32,
    order: &[InstId],
    pos: &[usize],
    policy: &dyn SlotPolicy,
    frames: &TimeFrames,
    scratch: &mut SchedScratch,
    log: &mut AttemptLog,
) -> Option<Schedule> {
    run_prepared(
        ddg,
        machine,
        ii,
        order,
        pos,
        policy,
        frames,
        scratch,
        Some(log),
        None,
    )
}

/// [`try_schedule_prepared`] with the placement profiler attached (see
/// [`crate::profile`]). The attempt runs cold — no warm-start log — and
/// fills `prof` with per-node attribution, probe outcomes, eject
/// accounting and sub-phase wall-clock accumulators. Scheduling results
/// are byte-identical to [`try_schedule_prepared`]; the profiler only
/// observes.
#[allow(clippy::too_many_arguments)]
pub fn try_schedule_profiled(
    ddg: &Ddg,
    machine: &MachineModel,
    ii: u32,
    order: &[InstId],
    pos: &[usize],
    policy: &dyn SlotPolicy,
    frames: &TimeFrames,
    scratch: &mut SchedScratch,
    prof: &mut PlaceProfile,
) -> Option<Schedule> {
    run_prepared(
        ddg,
        machine,
        ii,
        order,
        pos,
        policy,
        frames,
        scratch,
        None,
        Some(prof),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_prepared(
    ddg: &Ddg,
    machine: &MachineModel,
    ii: u32,
    order: &[InstId],
    pos: &[usize],
    policy: &dyn SlotPolicy,
    frames: &TimeFrames,
    scratch: &mut SchedScratch,
    log: Option<&mut AttemptLog>,
    mut prof: Option<&mut PlaceProfile>,
) -> Option<Schedule> {
    debug_assert_eq!(frames.ii, ii, "frames computed for a different II");
    let mut ps = match scratch.ps.take() {
        Some(mut ps) => {
            ps.reset_for(ddg, ii, machine);
            ps
        }
        None => PartialSchedule::new(ddg, ii, machine),
    };
    if let Some(p) = prof.as_deref_mut() {
        p.begin_attempt();
    }
    let complete = schedule_all(
        ddg,
        &mut ps,
        ii,
        order,
        pos,
        policy,
        frames,
        scratch,
        log,
        prof.as_deref_mut(),
    );
    if let Some(p) = prof {
        p.end_attempt();
    }
    let out = complete.then(|| ps.snapshot(ddg));
    scratch.ps = Some(ps);
    out
}

/// The engine proper: place every node or report failure. Split from
/// [`try_schedule_with`] so the partial schedule can be returned to the
/// scratch on every exit path.
///
/// With `log = Some(..)` the engine first replays the log's validated
/// prefix (see [`crate::warm`]), then runs the cold loop from the
/// resulting state, recording every executed step. With `None` it is
/// the plain cold engine. Both modes take byte-identical decisions.
///
/// With `prof = Some(..)` the placement profiler observes the cold
/// loop: per-node attribution, probe classification, eject accounting
/// and sub-phase wall clocks (see [`crate::profile`]). Steps applied by
/// warm replay skip the scans being attributed and are therefore *not*
/// profiled — the TMS search runs profiled attempts cold so attribution
/// covers every decision.
#[allow(clippy::too_many_arguments)]
fn schedule_all(
    ddg: &Ddg,
    ps: &mut PartialSchedule,
    ii: u32,
    order: &[InstId],
    pos: &[usize],
    policy: &dyn SlotPolicy,
    frames: &TimeFrames,
    scratch: &mut SchedScratch,
    mut log: Option<&mut AttemptLog>,
    mut prof: Option<&mut PlaceProfile>,
) -> bool {
    let mut eject_budget = (ddg.num_insts() * 10).max(100);
    // Topological sweep orders for the window bounds: DDG-static,
    // memoized on the graph's uid and reused by every probe below.
    scratch.win.prepare(ddg);
    // Monotone forced-slot floor per node (IMS forward progress).
    let earliest = &mut scratch.earliest;
    earliest.clear();
    earliest.resize(ddg.num_insts(), i64::MIN);

    // --- Cross-II guide adoption: a log recorded at a *smaller* II is
    // not probe-replayable (its facts are functions of rows mod II),
    // but its per-step window facts transfer upward (see
    // `crate::warm`). Demote the steps to a passive guide for the cold
    // loop below; the log itself re-records from scratch at this II.
    // A log from a *larger* II is discarded — bounds transfer in one
    // direction only.
    let mut guide: Vec<Step> = Vec::new();
    if let Some(log) = log.as_deref_mut() {
        log.cross_replayed = 0;
        if log.ii != 0 && log.ii != ii {
            let steps = std::mem::take(&mut log.steps);
            if log.ii < ii {
                guide = steps;
            }
            log.complete = false;
        }
        log.ii = ii;
    }
    let mut guide_pos = 0usize;
    let mut guide_live = !guide.is_empty();

    // --- Warm replay: apply the log's prefix while its recorded
    // verdicts still hold under the current policy knobs. A validated
    // step is exactly the step the cold loop would take from this
    // state, so applying it directly — no window computation, no
    // policy calls — preserves byte-identical behaviour. The first
    // diverging step truncates the log; the cold loop below resumes
    // from the intermediate state (its cursor rescan skips whatever is
    // already placed) and appends fresh steps.
    if let Some(log) = log.as_deref_mut() {
        log.replayed = 0;
        log.executed = 0;
        let mut upto = 0usize;
        'replay: for step in &log.steps {
            if !step.probes.iter().all(|p| policy.probe_holds(p)) {
                break 'replay;
            }
            match &step.action {
                StepAction::Place { v, cycle } => ps.place(ddg, *v, *cycle),
                StepAction::Force {
                    v,
                    cycle,
                    eject_before,
                    eject_after,
                } => {
                    debug_assert!(eject_budget > 0, "replay exceeded the cold budget");
                    eject_budget -= 1;
                    scratch.earliest[v.index()] = cycle + 1;
                    for &n in eject_before {
                        ps.remove(ddg, n);
                    }
                    ps.place(ddg, *v, *cycle);
                    for &n in eject_after {
                        ps.remove(ddg, n);
                    }
                }
                StepAction::Fail(_) => {
                    // The whole attempt still fails at this step; the
                    // partial state is discarded by the caller, so the
                    // recorded post-probe mutations need not be applied.
                    log.replayed = (upto + 1) as u64;
                    return false;
                }
            }
            upto += 1;
        }
        log.replayed = upto as u64;
        if upto < log.steps.len() {
            log.steps.truncate(upto);
            log.complete = false;
        }
    }
    let profiling = prof.is_some();
    // The profiler reuses the warm-start probe recording to classify
    // verdicts, so either consumer turns it on.
    let recording = log.is_some() || profiling;

    // Next-unplaced cursor: nodes before it are placed, so the common
    // (ejection-free) path walks `order` once instead of rescanning it
    // per placement. Ejections unplace arbitrary nodes — rewind.
    let mut cursor = 0usize;
    while let Some(off) = order[cursor..].iter().position(|&n| !ps.is_placed(n)) {
        cursor += off;
        let v = order[cursor];
        // While the guide is live, every executed action so far equals
        // the recorded one, so the placed state is the recorded run's —
        // a guide step whose facts are carried-free provably reproduces
        // the sweeps at this larger II, and the sweeps are skipped. A
        // guide step for a different node is a divergence in the making
        // (the action comparison below will retire the guide); compute
        // cold. The engine's hottest work is exactly these two sweeps,
        // which is what makes the cross-II carryover pay.
        let guide_facts = match guide.get(guide_pos) {
            _ if !guide_live => None,
            Some(gs) if gs.win.v == v && gs.win.carried_free => Some(gs.win),
            Some(_) => None,
            None => {
                guide_live = false;
                None
            }
        };
        let t_scan = profiling.then(Instant::now);
        let facts = match guide_facts {
            Some(f) => {
                window_from_facts(
                    f.kind,
                    f.es,
                    f.ls,
                    ii,
                    frames.asap[v.index()],
                    &mut scratch.win.cycles,
                );
                // Differential check: the transferred facts must match
                // what the sweeps compute at this II and state.
                #[cfg(debug_assertions)]
                {
                    let regen = std::mem::take(&mut scratch.win.cycles);
                    let kind = window_into(ddg, ps, frames, v, &mut scratch.win);
                    debug_assert_eq!(kind, f.kind, "cross-II window kind diverged");
                    debug_assert_eq!(scratch.win.cycles, regen, "cross-II window cycles diverged");
                    scratch.win.cycles = regen;
                }
                if let Some(log) = log.as_deref_mut() {
                    log.cross_replayed += 1;
                }
                f
            }
            None => {
                let kind = window_into(ddg, ps, frames, v, &mut scratch.win);
                WinFacts {
                    v,
                    kind,
                    es: scratch.win.last_es,
                    ls: scratch.win.last_ls,
                    carried_free: scratch.win.carried_free,
                }
            }
        };
        if let Some(p) = prof.as_deref_mut() {
            p.scan_ns += t_scan.unwrap().elapsed().as_nanos() as u64;
            p.note_scan(v);
        }
        let mut probes: Vec<Probe> = Vec::new();
        let t_probe = profiling.then(Instant::now);
        let slot = policy.scan_window(
            ddg,
            ps,
            v,
            &scratch.win.cycles,
            recording.then_some(&mut probes),
        );
        if let Some(p) = prof.as_deref_mut() {
            p.probe_ns += t_probe.unwrap().elapsed().as_nanos() as u64;
            p.classify_probes(&probes, policy.scan_was_fast());
        }
        match slot {
            Some(c) => {
                let t_fit = profiling.then(Instant::now);
                ps.place(ddg, v, c);
                if let Some(p) = prof.as_deref_mut() {
                    p.fit_ns += t_fit.unwrap().elapsed().as_nanos() as u64;
                }
                cursor += 1;
                if let Some(log) = log.as_deref_mut() {
                    let action = StepAction::Place { v, cycle: c };
                    advance_guide(&guide, &mut guide_pos, &mut guide_live, &action);
                    log.executed += 1;
                    log.steps.push(Step {
                        probes,
                        action,
                        win: facts,
                    });
                }
            }
            None => {
                if eject_budget == 0 {
                    record_fail(log, probes, facts, FailKind::EjectBudget);
                    return false;
                }
                eject_budget -= 1;
                // IMS forced placement: take a slot at or after the
                // window's lower bound (the predecessor-derived floor
                // when the window is empty), never earlier than the
                // last forced slot for v plus one (guaranteed
                // progress), ejecting whoever is in the way — both the
                // row's resource occupants and any neighbour whose
                // dependence the forced slot violates. Violations
                // against non-adjacent placed nodes surface as empty
                // windows of the nodes in between, which then force in
                // turn — the cascade terminates because every floor is
                // monotone and the budget is finite.
                let t_floor = profiling.then(Instant::now);
                let lb = match scratch.win.cycles.iter().min().copied() {
                    Some(lb) => lb,
                    None if guide_facts.is_some() => {
                        // An empty window is always a `Both` whose late
                        // start undercuts the early one (the other
                        // kinds emit exactly II candidates), so the
                        // transferred early start *is* what the forced
                        // floor's lower sweep would recompute.
                        let floor = facts.es.expect("empty window implies a bounded node");
                        #[cfg(debug_assertions)]
                        debug_assert_eq!(
                            floor,
                            force_floor_with(ddg, ps, frames, v, &mut scratch.win),
                            "cross-II forced floor diverged"
                        );
                        floor
                    }
                    None => force_floor_with(ddg, ps, frames, v, &mut scratch.win),
                };
                let floor = lb.max(scratch.earliest[v.index()]);
                if let Some(p) = prof.as_deref_mut() {
                    // The forced floor's lower sweep is window work.
                    p.scan_ns += t_floor.unwrap().elapsed().as_nanos() as u64;
                }
                let probes_pre_force = probes.len();
                let t_force = profiling.then(Instant::now);
                let forced =
                    policy.scan_forced(ddg, ps, v, floor, recording.then_some(&mut probes));
                if let Some(p) = prof.as_deref_mut() {
                    p.force_ns += t_force.unwrap().elapsed().as_nanos() as u64;
                    p.classify_probes(&probes[probes_pre_force..], policy.scan_was_fast());
                }
                let Some(c) = forced else {
                    record_fail(log, probes, facts, FailKind::NoForcedSlot);
                    return false;
                };
                scratch.earliest[v.index()] = c + 1;
                let mut eject_before = std::mem::take(&mut scratch.ejected);
                eject_before.clear();
                let t_eject = profiling.then(Instant::now);
                eject_row_conflicts(
                    ddg,
                    ps,
                    v,
                    c,
                    pos,
                    &mut scratch.occupants,
                    &mut eject_before,
                );
                if let Some(p) = prof.as_deref_mut() {
                    p.eject_ns += t_eject.unwrap().elapsed().as_nanos() as u64;
                    for &n in &eject_before {
                        p.note_ejected(n);
                    }
                }
                let chain_before = eject_before.len() as u64;
                let t_fit = profiling.then(Instant::now);
                if !ps.fits(ddg, v, c) {
                    scratch.ejected = eject_before;
                    record_fail(log, probes, facts, FailKind::ForcedUnfit);
                    return false;
                }
                ps.place(ddg, v, c);
                if let Some(p) = prof.as_deref_mut() {
                    p.fit_ns += t_fit.unwrap().elapsed().as_nanos() as u64;
                }
                let t_eject2 = profiling.then(Instant::now);
                if let Some(log) = log.as_deref_mut() {
                    let mut eject_after = Vec::new();
                    eject_violated_neighbours(ddg, ps, v, ii, &mut eject_after);
                    if let Some(p) = prof.as_deref_mut() {
                        p.eject_ns += t_eject2.unwrap().elapsed().as_nanos() as u64;
                        for &n in &eject_after {
                            p.note_ejected(n);
                        }
                        p.note_force(chain_before + eject_after.len() as u64);
                    }
                    let action = StepAction::Force {
                        v,
                        cycle: c,
                        eject_before,
                        eject_after,
                    };
                    advance_guide(&guide, &mut guide_pos, &mut guide_live, &action);
                    log.executed += 1;
                    log.steps.push(Step {
                        probes,
                        action,
                        win: facts,
                    });
                } else {
                    // Reuse the scratch buffer for the second eviction
                    // list too — nothing reads it when not recording a
                    // log (the profiler accounts for it right here).
                    eject_before.clear();
                    eject_violated_neighbours(ddg, ps, v, ii, &mut eject_before);
                    if let Some(p) = prof.as_deref_mut() {
                        p.eject_ns += t_eject2.unwrap().elapsed().as_nanos() as u64;
                        for &n in &eject_before {
                            p.note_ejected(n);
                        }
                        p.note_force(chain_before + eject_before.len() as u64);
                    }
                    scratch.ejected = eject_before;
                }
                cursor = 0;
            }
        }
    }
    if let Some(log) = log {
        log.complete = true;
    }
    true
}

/// Terminal failure step of a recorded attempt.
fn record_fail(log: Option<&mut AttemptLog>, probes: Vec<Probe>, win: WinFacts, kind: FailKind) {
    if let Some(log) = log {
        log.executed += 1;
        log.steps.push(Step {
            probes,
            action: StepAction::Fail(kind),
            win,
        });
        log.complete = false;
    }
}

/// Advance the cross-II guide past an executed step, or retire it on
/// the first divergence. Action equality — eviction sets included — is
/// what inductively pins the engine's placed state to the recorded
/// run's, which is the soundness condition for consuming the guide's
/// window facts on the *next* step.
fn advance_guide(guide: &[Step], pos: &mut usize, live: &mut bool, action: &StepAction) {
    if !*live {
        return;
    }
    match guide.get(*pos) {
        Some(gs) if gs.action == *action => *pos += 1,
        _ => *live = false,
    }
}

/// After a forced placement of `v`, unschedule every placed neighbour
/// whose dependence with `v` the new slot violates; they will be
/// rescheduled on a later pass. Victims are appended to `removed` (in
/// eviction order) so warm-start recording can replay them verbatim.
fn eject_violated_neighbours(
    ddg: &Ddg,
    ps: &mut PartialSchedule,
    v: InstId,
    ii: u32,
    removed: &mut Vec<InstId>,
) {
    let iil = ii as i64;
    loop {
        let victim = ddg.edges().iter().find_map(|e| {
            if e.src != v && e.dst != v {
                return None;
            }
            let (Some(ts), Some(td)) = (ps.time(e.src), ps.time(e.dst)) else {
                return None;
            };
            if td < ts + e.delay - iil * e.distance as i64 {
                Some(if e.src == v { e.dst } else { e.src })
            } else {
                None
            }
        });
        match victim {
            Some(n) if n != v => {
                ps.remove(ddg, n);
                removed.push(n);
            }
            // A violated self-edge means the II itself is too small;
            // leave it for the legality check to reject.
            _ => break,
        }
    }
}

/// Unschedule the lowest-priority occupants of `cycle`'s modulo row
/// until `v` fits there: first same-resource-class ops, then (if the
/// issue width still blocks) any op. Victims are appended to `removed`
/// (in eviction order) so warm-start recording can replay them
/// verbatim.
fn eject_row_conflicts(
    ddg: &Ddg,
    ps: &mut PartialSchedule,
    v: InstId,
    cycle: i64,
    pos: &[usize],
    occupants: &mut Vec<InstId>,
    removed: &mut Vec<InstId>,
) {
    use tms_machine::ResourceClass;
    let class = ResourceClass::for_op(ddg.inst(v).op);
    while !ps.fits(ddg, v, cycle) {
        occupants.clear();
        occupants.extend(ps.placed_in_row(cycle));
        // Prefer evicting an op of the same class; otherwise anything
        // (the issue width is the blocker).
        let victim = occupants
            .iter()
            .copied()
            .filter(|&n| ResourceClass::for_op(ddg.inst(n).op) == class)
            .max_by_key(|&n| pos[n.index()])
            .or_else(|| occupants.iter().copied().max_by_key(|&n| pos[n.index()]));
        match victim {
            Some(n) => {
                ps.remove(ddg, n);
                removed.push(n);
            }
            None => return, // row empty yet still unfit: impossible
        }
    }
}

/// Result of running SMS on a loop.
#[derive(Debug, Clone)]
pub struct SmsResult {
    /// The final schedule.
    pub schedule: Schedule,
    /// The minimum II (`max(ResII, RecII)`).
    pub mii: u32,
    /// The SMS node order used (TMS reuses it).
    pub order: Vec<InstId>,
    /// Longest dependence path of the loop.
    pub ldp: i64,
}

/// A sane II search ceiling: the flat critical path plus total latency
/// always admits a trivial schedule, so searching beyond it is wasted.
pub fn ii_search_ceiling(ddg: &Ddg, start: u32) -> u32 {
    ii_search_ceiling_from(ddg, start, AcyclicPriorities::compute(ddg).ldp)
}

/// [`ii_search_ceiling`] for callers that already computed the LDP.
pub fn ii_search_ceiling_from(ddg: &Ddg, start: u32, ldp: i64) -> u32 {
    (start as u64 + ldp as u64 + ddg.total_latency() + ddg.num_insts() as u64).min(u32::MAX as u64)
        as u32
}

/// Run SMS: iteratively increase II from MII until a schedule exists
/// (Figure 3 with the boxed TMS lines removed).
pub fn schedule_sms(ddg: &Ddg, machine: &MachineModel) -> Result<SmsResult, SchedError> {
    let order = sms_order(ddg);
    let ldp = AcyclicPriorities::compute(ddg).ldp;
    schedule_sms_with(ddg, machine, order, ldp, &mut SchedScratch::new())
}

/// [`schedule_sms`] with the loop-invariant inputs (node order, LDP)
/// supplied by the caller and scratch buffers reused across the II
/// search. `schedule_tms` computes order and LDP once per loop and
/// shares them with its SMS baseline through this entry point.
pub fn schedule_sms_with(
    ddg: &Ddg,
    machine: &MachineModel,
    order: Vec<InstId>,
    ldp: i64,
    scratch: &mut SchedScratch,
) -> Result<SmsResult, SchedError> {
    let m = mii(ddg, machine);
    if m == u32::MAX {
        return Err(SchedError::Unschedulable {
            loop_name: ddg.name().to_string(),
        });
    }
    let ceiling = ii_search_ceiling_from(ddg, m, ldp);
    for ii in m..=ceiling {
        let Some(frames) = TimeFrames::compute(ddg, ii) else {
            continue;
        };
        if let Some(schedule) =
            try_schedule_with(ddg, machine, ii, &order, &AcceptAll, &frames, scratch)
        {
            debug_assert!(schedule.check_legal(ddg).is_none());
            debug_assert!(schedule.check_resources(ddg, machine));
            return Ok(SmsResult {
                schedule,
                mii: m,
                order,
                ldp,
            });
        }
    }
    Err(SchedError::NoScheduleFound {
        loop_name: ddg.name().to_string(),
        ii_tried: ceiling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_ddg::{DdgBuilder, OpClass};

    fn machine() -> MachineModel {
        MachineModel::icpp2008()
    }

    #[test]
    fn schedules_simple_chain_at_mii() {
        let mut b = DdgBuilder::new("chain");
        let l = b.inst("ld", OpClass::Load);
        let m = b.inst("mul", OpClass::FpMul);
        let s = b.inst("st", OpClass::Store);
        b.reg_flow(l, m, 0);
        b.reg_flow(m, s, 0);
        let g = b.build().unwrap();
        let r = schedule_sms(&g, &machine()).unwrap();
        assert_eq!(r.schedule.ii(), 1);
        assert!(r.schedule.check_legal(&g).is_none());
        assert!(r.schedule.check_resources(&g, &machine()));
    }

    #[test]
    fn recurrence_forces_ii() {
        let mut b = DdgBuilder::new("rec");
        let a = b.inst_lat("acc", OpClass::FpAdd, 2);
        let x = b.inst("x", OpClass::Load);
        b.reg_flow(x, a, 0);
        b.reg_flow(a, a, 1);
        let g = b.build().unwrap();
        let r = schedule_sms(&g, &machine()).unwrap();
        assert_eq!(r.mii, 2);
        assert_eq!(r.schedule.ii(), 2);
    }

    #[test]
    fn resource_pressure_forces_ii() {
        // Five independent FP multiplies on one unit: II = 5.
        let mut b = DdgBuilder::new("fpmul5");
        for i in 0..5 {
            b.inst(format!("m{i}"), OpClass::FpMul);
        }
        let g = b.build().unwrap();
        let r = schedule_sms(&g, &machine()).unwrap();
        assert_eq!(r.schedule.ii(), 5);
        assert!(r.schedule.check_resources(&g, &machine()));
    }

    #[test]
    fn schedule_is_legal_on_dense_graph() {
        let mut b = DdgBuilder::new("dense");
        let n: Vec<_> = (0..8)
            .map(|i| {
                b.inst_lat(
                    format!("n{i}"),
                    if i % 2 == 0 {
                        OpClass::FpAdd
                    } else {
                        OpClass::FpMul
                    },
                    1 + (i % 3) as u32,
                )
            })
            .collect();
        for i in 0..7 {
            b.reg_flow(n[i], n[i + 1], 0);
        }
        b.reg_flow(n[4], n[1], 1);
        b.reg_flow(n[7], n[0], 2);
        b.mem_flow(n[6], n[2], 1, 0.1);
        let g = b.build().unwrap();
        let r = schedule_sms(&g, &machine()).unwrap();
        assert!(r.schedule.check_legal(&g).is_none(), "illegal schedule");
        assert!(r.schedule.check_resources(&g, &machine()));
    }

    #[test]
    fn unschedulable_machine_reports_error() {
        let mut b = DdgBuilder::new("fp");
        b.inst("f", OpClass::FpAdd);
        let g = b.build().unwrap();
        let no_fp = MachineModel {
            units: [2, 1, 0, 1, 2],
            ..MachineModel::icpp2008()
        };
        assert!(matches!(
            schedule_sms(&g, &no_fp),
            Err(SchedError::Unschedulable { .. })
        ));
    }

    #[test]
    fn sms_minimises_distance_to_consumer() {
        // The motivating-example shape: a producer whose only scheduled
        // neighbour is its next-iteration consumer gets pushed to the
        // latest slot of its window (closest in time to the consumer).
        let mut b = DdgBuilder::new("close");
        let cons = b.inst_lat("cons", OpClass::FpAdd, 8); // fixes II=8
        let prod = b.inst("prod", OpClass::IntAlu);
        b.reg_flow(cons, cons, 1); // recurrence: RecII 8
        b.reg_flow(prod, cons, 1);
        let g = b.build().unwrap();
        let r = schedule_sms(&g, &machine()).unwrap();
        assert_eq!(r.schedule.ii(), 8);
        // cons is ordered first (recurrence); prod's window is
        // successor-bounded and scanned downward, so prod lands as late
        // as possible: t(cons) − 1 + 8 = t(cons) + 7.
        let tc = r.schedule.time(InstId(0));
        let tp = r.schedule.time(InstId(1));
        assert_eq!(tp - tc, 7, "SMS should pick the latest window slot");
    }
}
