//! Register lifetimes and the MaxLive metric.
//!
//! MaxLive — "the number of scalar live ranges that are simultaneously
//! live at a program point" (§5) — is computed over the kernel: a value
//! defined at cycle `t_u` and last read at `max_v (t_v + II·d(u,v))`
//! overlaps kernel cycle `r` once for every concurrent iteration whose
//! copy of the range covers `r`.

use crate::schedule::Schedule;
use tms_ddg::{Ddg, InstId};

/// One register live range in the flat schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveRange {
    /// Producing instruction.
    pub producer: InstId,
    /// Definition cycle (the producer's issue slot).
    pub start: i64,
    /// Last-use cycle: `max` over register-flow consumers of
    /// `t(consumer) + II·distance`. Equals `start` for dead values.
    pub end: i64,
}

impl LiveRange {
    /// Length of the range in cycles.
    pub fn len(&self) -> i64 {
        self.end - self.start
    }

    /// Whether the value is never consumed through a register.
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }
}

/// Compute the live range of every register-producing instruction.
pub fn live_ranges(ddg: &Ddg, schedule: &Schedule) -> Vec<LiveRange> {
    let ii = schedule.ii() as i64;
    ddg.inst_ids()
        .map(|u| {
            let start = schedule.time(u);
            let end = ddg
                .succ_edges(u)
                .filter(|(_, e)| e.is_register_flow())
                .map(|(_, e)| schedule.time(e.dst) + ii * e.distance as i64)
                .max()
                .unwrap_or(start)
                .max(start);
            LiveRange {
                producer: u,
                start,
                end,
            }
        })
        .collect()
}

/// MaxLive over the kernel.
///
/// For kernel cycle `r ∈ [0, II)`, a range `[start, end)` of length `L`
/// contributes one live value for each `k ≥ 0` with
/// `start + ((r − start) mod II) + k·II < end`; summing over all ranges
/// and maximising over `r` yields MaxLive.
pub fn max_live(ddg: &Ddg, schedule: &Schedule) -> u32 {
    let ii = schedule.ii() as i64;
    let ranges = live_ranges(ddg, schedule);
    let mut best = 0i64;
    for r in 0..ii {
        let mut live = 0i64;
        for lr in &ranges {
            let l = lr.len();
            if l == 0 {
                continue;
            }
            let off = (r - lr.start).rem_euclid(ii);
            // Overlapping copies: ceil((L − off) / II) clamped at 0.
            let remaining = l - off;
            if remaining > 0 {
                live += (remaining + ii - 1) / ii;
            }
        }
        best = best.max(live);
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_ddg::{DdgBuilder, OpClass};

    fn sched(g: &Ddg, ii: u32, times: Vec<i64>) -> Schedule {
        Schedule::from_times(g, ii, times)
    }

    #[test]
    fn dead_value_has_empty_range() {
        let mut b = DdgBuilder::new("dead");
        b.inst("a", OpClass::IntAlu);
        let g = b.build().unwrap();
        let s = sched(&g, 1, vec![0]);
        let r = live_ranges(&g, &s);
        assert!(r[0].is_empty());
        assert_eq!(max_live(&g, &s), 0);
    }

    #[test]
    fn simple_chain_single_value() {
        let mut b = DdgBuilder::new("c");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        let g = b.build().unwrap();
        // II=2, a at 0, c at 1: one value live 1 cycle.
        let s = sched(&g, 2, vec![0, 1]);
        let r = live_ranges(&g, &s);
        assert_eq!(r[0].start, 0);
        assert_eq!(r[0].end, 1);
        assert_eq!(max_live(&g, &s), 1);
    }

    #[test]
    fn long_lifetime_overlaps_iterations() {
        let mut b = DdgBuilder::new("long");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        let g = b.build().unwrap();
        // II=2 but the consumer reads 5 cycles later: the value from
        // up to 3 concurrent iterations is live at once.
        let s = sched(&g, 2, vec![0, 5]);
        assert_eq!(max_live(&g, &s), 3);
    }

    #[test]
    fn loop_carried_use_extends_lifetime() {
        let mut b = DdgBuilder::new("lc");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, c, 2);
        let g = b.build().unwrap();
        // II=4: range [0, 1 + 8) = 9 cycles => ceil(9/4) = 3 copies at
        // some kernel cycle.
        let s = sched(&g, 4, vec![0, 1]);
        let r = live_ranges(&g, &s);
        assert_eq!(r[0].end, 1 + 8);
        assert_eq!(max_live(&g, &s), 3);
    }

    #[test]
    fn max_over_consumers_counts() {
        let mut b = DdgBuilder::new("two-uses");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        let d = b.inst("d", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        b.reg_flow(a, d, 1);
        let g = b.build().unwrap();
        let s = sched(&g, 3, vec![0, 1, 2]);
        let r = live_ranges(&g, &s);
        // end = max(1, 2 + 3) = 5.
        assert_eq!(r[0].end, 5);
    }

    #[test]
    fn disjoint_values_sum_at_shared_cycle() {
        let mut b = DdgBuilder::new("sum");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        let x = b.inst("x", OpClass::FpAdd);
        let y = b.inst("y", OpClass::FpAdd);
        b.reg_flow(a, x, 0);
        b.reg_flow(c, y, 0);
        let g = b.build().unwrap();
        // Both values live during cycle 1 (II=4).
        let s = sched(&g, 4, vec![0, 0, 2, 2]);
        assert_eq!(max_live(&g, &s), 2);
    }

    #[test]
    fn max_live_invariant_under_kernel_rotation() {
        // Shifting the whole schedule by one cycle must not change
        // MaxLive (the kernel is cyclic).
        let mut b = DdgBuilder::new("rot");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        let d = b.inst("d", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        b.reg_flow(a, d, 1);
        let g = b.build().unwrap();
        let m0 = max_live(&g, &sched(&g, 3, vec![0, 2, 4]));
        let m1 = max_live(&g, &sched(&g, 3, vec![1, 3, 5]));
        assert_eq!(m0, m1);
    }
}
