//! Structured schedule diagnostics.
//!
//! The scheduling and metric layers answer "is this schedule
//! acceptable?" with `Option`/`bool` — fine for control flow, useless
//! for understanding *why* a candidate died. [`verify_schedule`]
//! re-checks a finished schedule against every invariant the system
//! relies on and reports each violation as a [`Diagnostic`]: the exact
//! edge and slots for legality, the per-row pressure for resource
//! overflows, the Definition-2 delay against the `C_delay` threshold,
//! and the eq. 3 probability against `P_max` with the non-preserved
//! dependences named. `schedule_tms` records these for every rejected
//! candidate instead of silently `continue`-ing, and the `tms-verify`
//! crate drives the same checks over fuzzed and workload populations.

use crate::cost::sync_delay;
use crate::metrics::{kernel_misspec_prob, unpreserved_memory_deps};
use crate::mrt::Mrt;
use crate::schedule::Schedule;
use serde::{Serialize, Value};
use std::fmt;
use tms_ddg::{Ddg, InstId};
use tms_machine::{CostConstants, MachineModel, ResourceClass};

/// One violated invariant of a finished schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum Diagnostic {
    /// A dependence edge is scheduled too early:
    /// `t(dst) < t(src) + delay − II·distance`.
    IllegalEdge {
        /// Producer name.
        src: String,
        /// Consumer name.
        dst: String,
        /// Iteration distance of the edge.
        distance: u32,
        /// Required issue-slot separation.
        delay: i64,
        /// Producer issue slot.
        t_src: i64,
        /// Consumer issue slot.
        t_dst: i64,
        /// Cycles missing: `t(src) + delay − II·distance − t(dst)` > 0.
        deficit: i64,
    },
    /// A modulo row issues more operations than the machine width.
    IssueOverflow {
        /// The oversubscribed row.
        row: u32,
        /// Operations issued in the row (including the overflowing
        /// one).
        placed: u32,
        /// Machine issue width.
        width: u32,
    },
    /// A functional-unit class is oversubscribed in a modulo row.
    UnitOverflow {
        /// The oversubscribed row.
        row: u32,
        /// Functional-unit class.
        class: ResourceClass,
        /// Unit-cycles already busy in the row.
        used: u32,
        /// Units of the class the machine has.
        units: u32,
    },
    /// An inter-thread register dependence synchronises slower than the
    /// candidate's `C_delay` threshold (condition C1, Definition 2).
    SyncExceeded {
        /// Producer name.
        src: String,
        /// Consumer name.
        dst: String,
        /// Kernel distance of the edge (Definition 1).
        d_ker: i64,
        /// Achieved synchronisation delay.
        sync: i64,
        /// The violated threshold.
        threshold: u32,
    },
    /// The kernel's combined misspeculation probability exceeds `P_max`
    /// (condition C2, eq. 3).
    MisspecExceeded {
        /// Combined probability of the non-preserved dependences.
        prob: f64,
        /// The violated threshold.
        p_max: f64,
        /// The non-preserved memory dependences, as `"src->dst"` names.
        unpreserved: Vec<String>,
    },
    /// The kernel uses more stages than the configured cap — the eq. 2
    /// cost model prices threads at `T_lb ≈ II + overheads`, so deep
    /// kernels would be accepted far below their real cost.
    StageOverflow {
        /// Stages of the finished kernel.
        stages: u32,
        /// The violated cap.
        max_stages: u32,
    },
    /// The TMS candidate search ran out of its attempt/deadline budget
    /// before accepting a thread-sensitive schedule, and the loop was
    /// degraded to the plain SMS schedule. Not a legality violation —
    /// the fallback schedule is still verified — but reported so
    /// sweeps can distinguish "SMS won on cost" from "TMS never got to
    /// finish".
    DegradedToSms {
        /// The degraded loop.
        loop_name: String,
        /// Candidate attempts actually spent.
        attempts: usize,
        /// The exhausted budget (0 when a deadline, not the attempt
        /// budget, cut the search short).
        budget: usize,
    },
}

impl Diagnostic {
    /// Short machine-readable tag (stable across renders).
    pub fn kind(&self) -> &'static str {
        match self {
            Diagnostic::IllegalEdge { .. } => "illegal-edge",
            Diagnostic::IssueOverflow { .. } => "issue-overflow",
            Diagnostic::UnitOverflow { .. } => "unit-overflow",
            Diagnostic::SyncExceeded { .. } => "sync-exceeded",
            Diagnostic::MisspecExceeded { .. } => "misspec-exceeded",
            Diagnostic::StageOverflow { .. } => "stage-overflow",
            Diagnostic::DegradedToSms { .. } => "degraded-to-sms",
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Diagnostic::IllegalEdge {
                src,
                dst,
                distance,
                delay,
                t_src,
                t_dst,
                deficit,
            } => write!(
                f,
                "illegal edge {src}->{dst} (d={distance}, delay={delay}): \
                 t(src)={t_src}, t(dst)={t_dst}, {deficit} cycle(s) short"
            ),
            Diagnostic::IssueOverflow { row, placed, width } => {
                write!(f, "row {row} issues {placed} ops, width is {width}")
            }
            Diagnostic::UnitOverflow {
                row,
                class,
                used,
                units,
            } => write!(
                f,
                "row {row} needs more {class:?} units: {used} busy of {units}"
            ),
            Diagnostic::SyncExceeded {
                src,
                dst,
                d_ker,
                sync,
                threshold,
            } => write!(
                f,
                "sync {src}->{dst} (d_ker={d_ker}) takes {sync} > C_delay {threshold}"
            ),
            Diagnostic::MisspecExceeded {
                prob,
                p_max,
                unpreserved,
            } => write!(
                f,
                "misspeculation {prob:.4} > P_max {p_max} over [{}]",
                unpreserved.join(", ")
            ),
            Diagnostic::StageOverflow { stages, max_stages } => {
                write!(f, "kernel has {stages} stages, cap is {max_stages}")
            }
            Diagnostic::DegradedToSms {
                loop_name,
                attempts,
                budget,
            } => write!(
                f,
                "{loop_name}: TMS search exhausted its budget \
                 ({attempts} of {budget} attempts), degraded to SMS"
            ),
        }
    }
}

// Hand-written: the vendored derive handles unit-only enums, and the
// reports want a flat `kind` tag next to the fields anyway.
impl Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        let mut obj: Vec<(String, Value)> =
            vec![("kind".to_string(), Value::Str(self.kind().to_string()))];
        let mut put = |k: &str, v: Value| obj.push((k.to_string(), v));
        match self {
            Diagnostic::IllegalEdge {
                src,
                dst,
                distance,
                delay,
                t_src,
                t_dst,
                deficit,
            } => {
                put("src", src.to_value());
                put("dst", dst.to_value());
                put("distance", distance.to_value());
                put("delay", delay.to_value());
                put("t_src", t_src.to_value());
                put("t_dst", t_dst.to_value());
                put("deficit", deficit.to_value());
            }
            Diagnostic::IssueOverflow { row, placed, width } => {
                put("row", row.to_value());
                put("placed", placed.to_value());
                put("width", width.to_value());
            }
            Diagnostic::UnitOverflow {
                row,
                class,
                used,
                units,
            } => {
                put("row", row.to_value());
                put("class", Value::Str(format!("{class:?}")));
                put("used", used.to_value());
                put("units", units.to_value());
            }
            Diagnostic::SyncExceeded {
                src,
                dst,
                d_ker,
                sync,
                threshold,
            } => {
                put("src", src.to_value());
                put("dst", dst.to_value());
                put("d_ker", d_ker.to_value());
                put("sync", sync.to_value());
                put("threshold", threshold.to_value());
            }
            Diagnostic::MisspecExceeded {
                prob,
                p_max,
                unpreserved,
            } => {
                put("prob", prob.to_value());
                put("p_max", p_max.to_value());
                put("unpreserved", unpreserved.to_value());
            }
            Diagnostic::StageOverflow { stages, max_stages } => {
                put("stages", stages.to_value());
                put("max_stages", max_stages.to_value());
            }
            Diagnostic::DegradedToSms {
                loop_name,
                attempts,
                budget,
            } => {
                put("loop", loop_name.to_value());
                put("attempts", attempts.to_value());
                put("budget", budget.to_value());
            }
        }
        Value::Object(obj)
    }
}

/// Thresholds [`verify_schedule`] checks beyond the unconditional
/// legality and resource invariants. `None` skips that check.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyLimits {
    /// `C_delay` threshold for condition C1.
    pub c_delay: Option<u32>,
    /// `P_max` threshold for condition C2.
    pub p_max: Option<f64>,
    /// Stage cap of the accepted kernel.
    pub max_stages: Option<u32>,
}

fn edge_name(ddg: &Ddg, src: InstId, dst: InstId) -> (String, String) {
    (ddg.inst(src).name.clone(), ddg.inst(dst).name.clone())
}

/// Re-check every invariant of a finished schedule and report each
/// violation. An empty result means the schedule is legal, resource
/// feasible, and within the given thresholds.
pub fn verify_schedule(
    ddg: &Ddg,
    schedule: &Schedule,
    machine: &MachineModel,
    costs: &CostConstants,
    limits: &VerifyLimits,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ii = schedule.ii();

    // --- Legality: every edge, not just the first violation.
    for e in ddg.edges() {
        let need = schedule.time(e.src) + e.delay - ii as i64 * e.distance as i64;
        let have = schedule.time(e.dst);
        if have < need {
            let (src, dst) = edge_name(ddg, e.src, e.dst);
            out.push(Diagnostic::IllegalEdge {
                src,
                dst,
                distance: e.distance,
                delay: e.delay,
                t_src: schedule.time(e.src),
                t_dst: have,
                deficit: need - have,
            });
        }
    }

    // --- Resources: replay the placements through a fresh MRT and
    // report the row pressure behind every failed claim.
    let mut mrt = Mrt::new(ii, machine);
    for n in ddg.inst_ids() {
        let op = ddg.inst(n).op;
        let t = schedule.time(n);
        if mrt.can_place(op, t) {
            mrt.place(op, t);
            continue;
        }
        let row = mrt.row_of(t);
        if mrt.row_occupancy(row) >= machine.issue_width {
            out.push(Diagnostic::IssueOverflow {
                row: row as u32,
                placed: mrt.row_occupancy(row) + 1,
                width: machine.issue_width,
            });
        } else {
            let class = ResourceClass::for_op(op);
            out.push(Diagnostic::UnitOverflow {
                row: row as u32,
                class,
                used: mrt.used_in_row(row, class),
                units: machine.units_of(class),
            });
        }
        // The op stays unplaced so the replay can continue and surface
        // every oversubscribed row, not just the first.
    }

    // --- C1 against the threshold.
    if let Some(c_delay) = limits.c_delay {
        for e in ddg.edges() {
            if !e.is_register_flow() {
                continue;
            }
            let d_ker = schedule.d_ker(e);
            if d_ker < 1 {
                continue;
            }
            let sync = sync_delay(
                schedule.row(e.src) as i64,
                schedule.row(e.dst) as i64,
                ddg.inst(e.src).latency,
                costs,
            );
            if sync > c_delay as i64 {
                let (src, dst) = edge_name(ddg, e.src, e.dst);
                out.push(Diagnostic::SyncExceeded {
                    src,
                    dst,
                    d_ker,
                    sync,
                    threshold: c_delay,
                });
            }
        }
    }

    // --- C2 against the threshold.
    if let Some(p_max) = limits.p_max {
        let prob = kernel_misspec_prob(ddg, schedule, costs);
        if prob > p_max + 1e-12 {
            let unpreserved = unpreserved_memory_deps(ddg, schedule, costs)
                .into_iter()
                .map(|i| {
                    let e = &ddg.edges()[i];
                    let (s, d) = edge_name(ddg, e.src, e.dst);
                    format!("{s}->{d}")
                })
                .collect();
            out.push(Diagnostic::MisspecExceeded {
                prob,
                p_max,
                unpreserved,
            });
        }
    }

    // --- Stage cap.
    if let Some(max_stages) = limits.max_stages {
        if schedule.stage_count() > max_stages {
            out.push(Diagnostic::StageOverflow {
                stages: schedule.stage_count(),
                max_stages,
            });
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_ddg::{DdgBuilder, OpClass};
    use tms_machine::ArchParams;

    fn chain() -> Ddg {
        let mut b = DdgBuilder::new("chain");
        let a = b.inst_lat("a", OpClass::IntAlu, 2);
        let c = b.inst_lat("c", OpClass::IntAlu, 1);
        b.reg_flow(a, c, 0);
        b.build().unwrap()
    }

    #[test]
    fn clean_schedule_yields_no_diagnostics() {
        let g = chain();
        let machine = MachineModel::icpp2008();
        let costs = ArchParams::icpp2008().costs;
        let s = Schedule::from_times(&g, 2, vec![0, 2]);
        let d = verify_schedule(
            &g,
            &s,
            &machine,
            &costs,
            &VerifyLimits {
                c_delay: Some(20),
                p_max: Some(1.0),
                max_stages: Some(8),
            },
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn illegal_edge_reports_deficit() {
        let g = chain();
        let machine = MachineModel::icpp2008();
        let costs = ArchParams::icpp2008().costs;
        let s = Schedule::from_times(&g, 2, vec![0, 1]);
        let d = verify_schedule(&g, &s, &machine, &costs, &VerifyLimits::default());
        assert_eq!(d.len(), 1);
        match &d[0] {
            Diagnostic::IllegalEdge { deficit, .. } => assert_eq!(*deficit, 1),
            other => panic!("unexpected: {other}"),
        }
        assert_eq!(d[0].kind(), "illegal-edge");
    }

    #[test]
    fn sync_threshold_is_enforced() {
        // a feeds c in the next kernel iteration (d=1, same stage).
        let mut b = DdgBuilder::new("sync");
        let a = b.inst_lat("a", OpClass::IntAlu, 1);
        let c = b.inst_lat("c", OpClass::IntAlu, 1);
        b.reg_flow(a, c, 1);
        let g = b.build().unwrap();
        let s = Schedule::from_times(&g, 8, vec![6, 0]);
        // sync = row 6 − row 0 + lat 1 + C_reg_com 3 = 10.
        let costs = ArchParams::icpp2008().costs;
        let machine = MachineModel::icpp2008();
        let lim = |cd| VerifyLimits {
            c_delay: Some(cd),
            ..VerifyLimits::default()
        };
        assert!(verify_schedule(&g, &s, &machine, &costs, &lim(10)).is_empty());
        let d = verify_schedule(&g, &s, &machine, &costs, &lim(9));
        assert_eq!(d.len(), 1);
        match &d[0] {
            Diagnostic::SyncExceeded { sync, .. } => assert_eq!(*sync, 10),
            other => panic!("unexpected: {other}"),
        }
    }

    #[test]
    fn unit_overflow_names_the_row() {
        // Three loads in one row of a 1-row kernel on a machine with
        // two memory ports.
        let mut b = DdgBuilder::new("mem");
        for i in 0..3 {
            b.inst(format!("l{i}"), OpClass::Load);
        }
        let g = b.build().unwrap();
        let machine = MachineModel::icpp2008();
        let costs = ArchParams::icpp2008().costs;
        let s = Schedule::from_times(&g, 1, vec![0, 0, 0]);
        let d = verify_schedule(&g, &s, &machine, &costs, &VerifyLimits::default());
        assert!(
            d.iter()
                .any(|d| matches!(d, Diagnostic::UnitOverflow { row: 0, .. })),
            "{d:?}"
        );
    }

    #[test]
    fn stage_cap_reports_overflow() {
        let g = chain();
        let machine = MachineModel::icpp2008();
        let costs = ArchParams::icpp2008().costs;
        let s = Schedule::from_times(&g, 1, vec![0, 2]);
        let d = verify_schedule(
            &g,
            &s,
            &machine,
            &costs,
            &VerifyLimits {
                max_stages: Some(2),
                ..VerifyLimits::default()
            },
        );
        assert_eq!(
            d,
            vec![Diagnostic::StageOverflow {
                stages: 3,
                max_stages: 2
            }]
        );
    }

    #[test]
    fn serialises_with_kind_tag() {
        let d = Diagnostic::StageOverflow {
            stages: 5,
            max_stages: 4,
        };
        let v = d.to_value();
        let obj = v.as_object().unwrap();
        assert_eq!(obj[0].0, "kind");
        assert_eq!(obj[0].1.as_str(), Some("stage-overflow"));
    }
}
