//! Modulo schedules and kernels.
//!
//! A finished [`Schedule`] maps every instruction to an absolute issue
//! cycle; the *kernel* view folds those cycles modulo `II` into rows and
//! stages (Definition 1 of the paper). The [`PartialSchedule`] is the
//! incremental structure both SMS and TMS build (Figure 3's `PS`).

use crate::mrt::Mrt;
use serde::{Deserialize, Serialize};
use tms_ddg::{Ddg, Edge, InstId};
use tms_machine::MachineModel;

/// An in-progress schedule: assigned issue cycles plus the MRT.
#[derive(Debug, Clone)]
pub struct PartialSchedule {
    ii: u32,
    times: Vec<Option<i64>>,
    mrt: Mrt,
    placed: usize,
    /// Cached minimum placed cycle — the slot-admission policies query
    /// it on every probe, so it is maintained incrementally: O(1) on
    /// place, a rescan only when the current minimum is removed.
    min_time: Option<i64>,
}

impl PartialSchedule {
    /// Empty partial schedule for `ddg` at interval `ii`.
    pub fn new(ddg: &Ddg, ii: u32, machine: &MachineModel) -> Self {
        PartialSchedule {
            ii,
            times: vec![None; ddg.num_insts()],
            mrt: Mrt::new(ii, machine),
            placed: 0,
            min_time: None,
        }
    }

    /// Clear the partial schedule and retarget it to a new loop/`II`,
    /// reusing the times and MRT buffers. Equivalent to
    /// [`PartialSchedule::new`] without the allocations.
    pub fn reset_for(&mut self, ddg: &Ddg, ii: u32, machine: &MachineModel) {
        self.ii = ii;
        self.times.clear();
        self.times.resize(ddg.num_insts(), None);
        self.mrt.reset(ii, machine);
        self.placed = 0;
        self.min_time = None;
    }

    /// The initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Issue cycle of `n`, if placed.
    #[inline]
    pub fn time(&self, n: InstId) -> Option<i64> {
        self.times[n.index()]
    }

    /// Whether `n` has been placed.
    #[inline]
    pub fn is_placed(&self, n: InstId) -> bool {
        self.times[n.index()].is_some()
    }

    /// Number of placed instructions.
    pub fn num_placed(&self) -> usize {
        self.placed
    }

    /// Earliest placed issue cycle — the origin the final schedule will
    /// be normalised to. `None` while nothing is placed.
    #[inline]
    pub fn min_time(&self) -> Option<i64> {
        self.min_time
    }

    /// The reservation table.
    pub fn mrt(&self) -> &Mrt {
        &self.mrt
    }

    /// Modulo row of a placed instruction.
    pub fn row(&self, n: InstId) -> Option<i64> {
        self.time(n).map(|t| t.rem_euclid(self.ii as i64))
    }

    /// Provisional stage of a placed instruction (floor division by II;
    /// final stages are recomputed after normalisation).
    pub fn stage(&self, n: InstId) -> Option<i64> {
        self.time(n).map(|t| t.div_euclid(self.ii as i64))
    }

    /// Provisional kernel distance of an edge whose endpoints are both
    /// placed: `d_ker(u,v) = d(u,v) + s_v − s_u` (Definition 1).
    pub fn d_ker(&self, e: &Edge) -> Option<i64> {
        let su = self.stage(e.src)?;
        let sv = self.stage(e.dst)?;
        Some(e.distance as i64 + sv - su)
    }

    /// Place `n` (an op of class taken from `ddg`) at `cycle`.
    ///
    /// Placing an already-placed node is an engine bug; like the MRT's
    /// occupancy check, it is asserted in debug builds only — this is
    /// the innermost call of every scheduling attempt.
    pub fn place(&mut self, ddg: &Ddg, n: InstId, cycle: i64) {
        debug_assert!(self.times[n.index()].is_none(), "{n} placed twice");
        self.mrt.place(ddg.inst(n).op, cycle);
        self.times[n.index()] = Some(cycle);
        self.placed += 1;
        if self.min_time.is_none_or(|m| cycle < m) {
            self.min_time = Some(cycle);
        }
    }

    /// Whether `n` could issue at `cycle` without resource conflicts.
    pub fn fits(&self, ddg: &Ddg, n: InstId, cycle: i64) -> bool {
        self.mrt.can_place(ddg.inst(n).op, cycle)
    }

    /// Unschedule a placed instruction (Rau-style ejection).
    pub fn remove(&mut self, ddg: &Ddg, n: InstId) {
        let t = self.times[n.index()].expect("removing unplaced node");
        self.mrt.remove(ddg.inst(n).op, t);
        self.times[n.index()] = None;
        self.placed -= 1;
        if self.min_time == Some(t) {
            self.min_time = self.times.iter().flatten().min().copied();
        }
    }

    /// Placed instructions currently occupying modulo row `row`.
    pub fn placed_in_row(&self, row: i64) -> impl Iterator<Item = InstId> + '_ {
        let ii = self.ii as i64;
        self.times
            .iter()
            .enumerate()
            .filter_map(move |(i, t)| match t {
                Some(t) if t.rem_euclid(ii) == row.rem_euclid(ii) => Some(InstId(i as u32)),
                _ => None,
            })
    }

    /// Finalise: every instruction must be placed. Cycles are shifted
    /// so the earliest is 0, then rows/stages are derived.
    pub fn finish(self, ddg: &Ddg) -> Schedule {
        self.snapshot(ddg)
    }

    /// Non-consuming [`PartialSchedule::finish`]: the partial schedule
    /// (and its buffers) stays usable for the next attempt.
    pub fn snapshot(&self, ddg: &Ddg) -> Schedule {
        assert_eq!(self.placed, ddg.num_insts(), "incomplete schedule");
        // The running minimum is maintained incrementally, so the
        // normalisation origin needs no rescan.
        let min = self.min_time.expect("non-empty");
        debug_assert_eq!(self.times.iter().flatten().min().copied(), Some(min));
        let times: Vec<i64> = self.times.iter().map(|t| t.unwrap() - min).collect();
        Schedule::from_times(ddg, self.ii, times)
    }
}

/// A complete modulo schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Schedule {
    ii: u32,
    /// Normalised issue cycle per instruction (min is 0).
    times: Vec<i64>,
    /// Stage per instruction: `times[n] / ii`.
    stages: Vec<u32>,
    /// Number of kernel stages (max stage + 1).
    stage_count: u32,
}

impl Schedule {
    /// Build from explicit times (already non-negative).
    pub fn from_times(ddg: &Ddg, ii: u32, times: Vec<i64>) -> Self {
        assert_eq!(times.len(), ddg.num_insts());
        assert!(times.iter().all(|&t| t >= 0), "times must be normalised");
        let stages: Vec<u32> = times.iter().map(|&t| (t / ii as i64) as u32).collect();
        let stage_count = stages.iter().copied().max().unwrap_or(0) + 1;
        Schedule {
            ii,
            times,
            stages,
            stage_count,
        }
    }

    /// Initiation interval.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Normalised issue cycle of `n`.
    #[inline]
    pub fn time(&self, n: InstId) -> i64 {
        self.times[n.index()]
    }

    /// Kernel row of `n`: `time % II`.
    #[inline]
    pub fn row(&self, n: InstId) -> u32 {
        (self.time(n) % self.ii as i64) as u32
    }

    /// Stage number of `n` (Definition 1's `s_u`).
    #[inline]
    pub fn stage(&self, n: InstId) -> u32 {
        self.stages[n.index()]
    }

    /// Number of stages in the kernel.
    pub fn stage_count(&self) -> u32 {
        self.stage_count
    }

    /// Total length of the flat (single-iteration) schedule: last issue
    /// cycle plus the issuing instruction's latency.
    pub fn flat_length(&self, ddg: &Ddg) -> i64 {
        ddg.inst_ids()
            .map(|n| self.time(n) + ddg.inst(n).latency as i64)
            .max()
            .unwrap_or(0)
    }

    /// Kernel distance of an edge (Definition 1):
    /// `d_ker(u,v) = d(u,v) + s_v − s_u`.
    pub fn d_ker(&self, e: &Edge) -> i64 {
        e.distance as i64 + self.stages[e.dst.index()] as i64 - self.stages[e.src.index()] as i64
    }

    /// All edges of `ddg` paired with their kernel distances.
    pub fn kernel_deps<'a>(&'a self, ddg: &'a Ddg) -> impl Iterator<Item = (&'a Edge, i64)> + 'a {
        ddg.edges().iter().map(move |e| (e, self.d_ker(e)))
    }

    /// Verify the fundamental legality property: for every dependence,
    /// `t(dst) ≥ t(src) + delay − II·distance`. Returns the first
    /// violated edge, or `None` when legal.
    pub fn check_legal<'a>(&self, ddg: &'a Ddg) -> Option<&'a Edge> {
        ddg.edges().iter().find(|e| {
            self.time(e.dst) < self.time(e.src) + e.delay - self.ii as i64 * e.distance as i64
        })
    }

    /// Verify MRT feasibility of the finished schedule against a
    /// machine model (used by tests and property checks).
    pub fn check_resources(&self, ddg: &Ddg, machine: &MachineModel) -> bool {
        let mut mrt = Mrt::new(self.ii, machine);
        for n in ddg.inst_ids() {
            if !mrt.can_place(ddg.inst(n).op, self.time(n)) {
                return false;
            }
            mrt.place(ddg.inst(n).op, self.time(n));
        }
        true
    }

    /// Render the kernel as rows of `(row, [inst names with stage])`,
    /// matching the paper's Figure 2(b)/(e) presentation.
    pub fn kernel_text(&self, ddg: &Ddg) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for r in 0..self.ii {
            let mut cells: Vec<String> = Vec::new();
            for n in ddg.inst_ids() {
                if self.row(n) == r {
                    cells.push(format!("{}[s{}]", ddg.inst(n).name, self.stage(n)));
                }
            }
            let _ = writeln!(out, "row {r:>3}: {}", cells.join("  "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_ddg::{DdgBuilder, OpClass};

    fn simple() -> Ddg {
        let mut b = DdgBuilder::new("s");
        let a = b.inst("a", OpClass::Load); // lat 3
        let c = b.inst("c", OpClass::FpAdd); // lat 2
        b.reg_flow(a, c, 0);
        b.build().unwrap()
    }

    #[test]
    fn partial_place_and_finish_normalises() {
        let g = simple();
        let m = MachineModel::icpp2008();
        let mut ps = PartialSchedule::new(&g, 2, &m);
        ps.place(&g, InstId(1), 5);
        ps.place(&g, InstId(0), 2);
        assert_eq!(ps.num_placed(), 2);
        let s = ps.finish(&g);
        assert_eq!(s.time(InstId(0)), 0);
        assert_eq!(s.time(InstId(1)), 3);
        assert_eq!(s.stage(InstId(0)), 0);
        assert_eq!(s.stage(InstId(1)), 1);
        assert_eq!(s.stage_count(), 2);
        assert_eq!(s.row(InstId(1)), 1);
    }

    #[test]
    fn d_ker_matches_definition_one() {
        // n8 -> n5 with d=1 in the paper becomes d_ker=0 when n5 lands
        // one stage after n8.
        let g = {
            let mut b = DdgBuilder::new("dker");
            let n8 = b.inst("n8", OpClass::IntAlu);
            let n5 = b.inst("n5", OpClass::IntAlu);
            b.reg_flow(n8, n5, 1);
            b.build().unwrap()
        };
        let s = Schedule::from_times(&g, 4, vec![6, 1]); // stages 1, 0
        let e = &g.edges()[0];
        assert_eq!(s.d_ker(e), 0); // 1 + s_dst(0) − s_src(1)
    }

    #[test]
    fn legality_check_flags_violations() {
        let g = simple();
        // Load latency 3, so c at time 1 violates with II=2, d=0:
        // t(c)=1 < t(a)=0 + 3 - 0.
        let bad = Schedule::from_times(&g, 2, vec![0, 1]);
        assert!(bad.check_legal(&g).is_some());
        let good = Schedule::from_times(&g, 2, vec![0, 3]);
        assert!(good.check_legal(&g).is_none());
    }

    #[test]
    fn loop_carried_edges_relax_legality() {
        let mut b = DdgBuilder::new("lc");
        let a = b.inst_lat("a", OpClass::FpMul, 4);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, c, 1);
        let g = b.build().unwrap();
        // II=4: t(c) >= 0 + 4 - 4 = 0 — legal at 0.
        let s = Schedule::from_times(&g, 4, vec![0, 0]);
        assert!(s.check_legal(&g).is_none());
        // II=2: t(c) >= 0 + 4 - 2 = 2 — time 0 illegal.
        let s = Schedule::from_times(&g, 2, vec![0, 0]);
        assert!(s.check_legal(&g).is_some());
    }

    #[test]
    fn resource_check_detects_conflicts() {
        let mut b = DdgBuilder::new("res");
        let a = b.inst("m1", OpClass::FpMul);
        let c = b.inst("m2", OpClass::FpMul);
        b.reg_flow(a, c, 1);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        // Same modulo row (II=2, times 0 and 2) on one FP mul unit.
        let s = Schedule::from_times(&g, 2, vec![0, 2]);
        assert!(!s.check_resources(&g, &m));
        let s = Schedule::from_times(&g, 2, vec![0, 5]);
        assert!(s.check_resources(&g, &m));
    }

    #[test]
    fn flat_length_includes_latency() {
        let g = simple();
        let s = Schedule::from_times(&g, 2, vec![0, 3]);
        assert_eq!(s.flat_length(&g), 5);
    }

    #[test]
    fn kernel_text_lists_all_rows() {
        let g = simple();
        let s = Schedule::from_times(&g, 2, vec![0, 3]);
        let txt = s.kernel_text(&g);
        assert!(txt.contains("row   0: a[s0]"));
        assert!(txt.contains("row   1: c[s1]"));
    }
}
