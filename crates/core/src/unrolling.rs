//! TMS with loop unrolling — the paper's stated extension
//! ("incorporating loop unrolling into TMS to allow us to tradeoff
//! between communication and parallelism by varying thread
//! granularities", §6).
//!
//! Unrolling by `f` makes each thread execute `f` original iterations:
//! communication amortises (one SEND/RECV chain per `f` iterations)
//! while per-thread work grows. The driver schedules each candidate
//! factor and keeps the one with the lowest cost **per original
//! iteration** — `F(II_f, C_delay_f) / f` — comparing exactly via
//! cross-multiplied integer keys.

use crate::cost::CostModel;
use crate::sms::SchedError;
use crate::tms::{schedule_tms, TmsConfig, TmsResult};
use tms_ddg::{unroll, Ddg};
use tms_machine::MachineModel;

/// Result of the unrolling search.
#[derive(Debug, Clone)]
pub struct UnrolledTms {
    /// The winning unroll factor.
    pub factor: u32,
    /// The unrolled loop that was scheduled (factor copies of the
    /// original body).
    pub unrolled_ddg: Ddg,
    /// The TMS result on the unrolled loop.
    pub result: TmsResult,
}

impl UnrolledTms {
    /// Estimated cycles per *original* iteration under the cost model.
    pub fn cost_per_iteration(&self, model: &CostModel) -> f64 {
        model.f(self.result.ii, self.result.c_delay_threshold) / self.factor as f64
    }
}

/// Schedule `ddg` with TMS at every factor in `factors`, returning the
/// candidate with the smallest per-original-iteration cost key
/// (ties favour the smaller factor — less code, less MaxLive).
pub fn schedule_tms_unrolled(
    ddg: &Ddg,
    machine: &MachineModel,
    model: &CostModel,
    config: &TmsConfig,
    factors: &[u32],
) -> Result<UnrolledTms, SchedError> {
    let mut best: Option<UnrolledTms> = None;
    for &f in factors {
        let f = f.max(1);
        let unrolled_ddg = match unroll(ddg, f) {
            Ok(g) => g,
            Err(_) => continue, // factor produced an invalid graph
        };
        let result = match schedule_tms(&unrolled_ddg, machine, model, config) {
            Ok(r) => r,
            Err(_) => continue,
        };
        let candidate = UnrolledTms {
            factor: f,
            unrolled_ddg,
            result,
        };
        let better = match &best {
            None => true,
            Some(b) => {
                // candidate.key / candidate.f < best.key / best.f ?
                let lhs = candidate.result.cost_key.0 as i128 * b.factor as i128;
                let rhs = b.result.cost_key.0 as i128 * candidate.factor as i128;
                lhs < rhs
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best.ok_or_else(|| SchedError::NoScheduleFound {
        loop_name: ddg.name().to_string(),
        ii_tried: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_ddg::{DdgBuilder, OpClass};
    use tms_machine::ArchParams;

    fn model() -> CostModel {
        let arch = ArchParams::icpp2008();
        CostModel::new(arch.costs, arch.ncore)
    }

    /// A tiny loop in the spirit of art's 11-instruction loops the
    /// paper unrolls four times: a short body with a cheap carried
    /// register value.
    fn tiny_art_like() -> Ddg {
        let mut b = DdgBuilder::new("tiny");
        let ld = b.inst("ld", OpClass::Load);
        let m = b.inst("mul", OpClass::FpMul);
        let a = b.inst("acc", OpClass::FpAdd);
        let ix = b.inst("i++", OpClass::IntAlu);
        b.reg_flow(ld, m, 0);
        b.reg_flow(m, a, 0);
        b.reg_flow(a, a, 1);
        b.reg_flow(ix, ix, 1);
        b.reg_flow(ix, ld, 1);
        b.build().unwrap()
    }

    #[test]
    fn search_returns_a_valid_schedule() {
        let g = tiny_art_like();
        let machine = MachineModel::icpp2008();
        let r = schedule_tms_unrolled(&g, &machine, &model(), &TmsConfig::default(), &[1, 2, 4])
            .unwrap();
        assert!(r.result.schedule.check_legal(&r.unrolled_ddg).is_none());
        assert!(r.result.schedule.check_resources(&r.unrolled_ddg, &machine));
        assert!([1, 2, 4].contains(&r.factor));
    }

    #[test]
    fn unrolling_amortises_tiny_loops() {
        // A tiny body pays the fixed per-thread costs (spawn, commit,
        // minimum sync) every iteration; unrolling must win.
        let g = tiny_art_like();
        let machine = MachineModel::icpp2008();
        let m = model();
        let r = schedule_tms_unrolled(&g, &machine, &m, &TmsConfig::default(), &[1, 2, 4]).unwrap();
        assert!(r.factor > 1, "tiny loop should want unrolling");
        // Per-iteration cost beats (or equals) the factor-1 schedule's.
        let base = schedule_tms_unrolled(&g, &machine, &m, &TmsConfig::default(), &[1]).unwrap();
        assert!(r.cost_per_iteration(&m) <= base.cost_per_iteration(&m) + 1e-9);
    }

    #[test]
    fn factor_list_of_one_is_plain_tms() {
        let g = tiny_art_like();
        let machine = MachineModel::icpp2008();
        let m = model();
        let r = schedule_tms_unrolled(&g, &machine, &m, &TmsConfig::default(), &[1]).unwrap();
        let plain = schedule_tms(&g, &machine, &m, &TmsConfig::default()).unwrap();
        assert_eq!(r.factor, 1);
        assert_eq!(r.result.ii, plain.ii);
        assert_eq!(r.result.c_delay_threshold, plain.c_delay_threshold);
    }

    #[test]
    fn empty_factor_list_errors() {
        let g = tiny_art_like();
        assert!(schedule_tms_unrolled(
            &g,
            &MachineModel::icpp2008(),
            &model(),
            &TmsConfig::default(),
            &[]
        )
        .is_err());
    }
}
