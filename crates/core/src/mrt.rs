//! The modulo reservation table (MRT).
//!
//! A schedule at initiation interval `II` may place at most
//! `units(class)` operations of each functional-unit class — and at
//! most `issue_width` operations in total — in each of the `II` modulo
//! rows. Non-pipelined units (occupancy > 1) keep their unit busy for
//! several consecutive rows. The MRT tracks row occupancy as
//! instructions are placed and removed during the iterative scheduling
//! process.

use tms_ddg::OpClass;
use tms_machine::{MachineModel, ResourceClass};

/// Bit `r % 64` of word `r / 64`.
#[inline]
fn bit_at(words: &[u64], r: usize) -> bool {
    words[r >> 6] >> (r & 63) & 1 != 0
}

#[inline]
fn set_bit(words: &mut [u64], r: usize) {
    words[r >> 6] |= 1u64 << (r & 63);
}

#[inline]
fn clear_bit(words: &mut [u64], r: usize) {
    words[r >> 6] &= !(1u64 << (r & 63));
}

/// The low `n` bits set, for `n ≤ 64`.
#[inline]
fn low_mask(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Occupancy of the `II` modulo rows of a partial schedule.
///
/// Row availability is mirrored into per-class `u64` bitsets (bit set ⇔
/// the row can still take one more op of that class / one more issue
/// slot), so the hot [`Mrt::can_place`] probe is a couple of word tests
/// with no allocation; the exact `used` counters remain authoritative
/// for placement, removal and diagnostics.
#[derive(Debug, Clone)]
pub struct Mrt {
    ii: u32,
    machine: MachineModel,
    /// `used[row * 5 + class]` — unit-cycles of `class` busy in `row`.
    used: Vec<u32>,
    /// Operations issued in each row (issue-width accounting).
    row_total: Vec<u32>,
    /// Words per bitset row map: `ceil(ii / 64)`.
    nwords: usize,
    /// `free_unit[class * nwords ..][r]` — row `r` has a free unit of
    /// `class` (`used < units`).
    free_unit: Vec<u64>,
    /// Row `r` has issue bandwidth left (`row_total < issue_width`).
    free_issue: Vec<u64>,
}

impl Mrt {
    /// An empty table for the given `II` and machine.
    pub fn new(ii: u32, machine: &MachineModel) -> Self {
        let mut mrt = Mrt {
            ii: 0,
            machine: machine.clone(),
            used: Vec::new(),
            row_total: Vec::new(),
            nwords: 0,
            free_unit: Vec::new(),
            free_issue: Vec::new(),
        };
        mrt.reset(ii, machine);
        mrt
    }

    /// The II this table was built for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Clear the table and retarget it to a new `II`, reusing the
    /// existing row buffers. Equivalent to `Mrt::new` without the
    /// allocations — the scheduling engines call this once per attempt.
    pub fn reset(&mut self, ii: u32, machine: &MachineModel) {
        assert!(ii >= 1, "II must be at least 1");
        if &self.machine != machine {
            self.machine = machine.clone();
        }
        self.ii = ii;
        self.used.clear();
        self.used.resize(ii as usize * ResourceClass::ALL.len(), 0);
        self.row_total.clear();
        self.row_total.resize(ii as usize, 0);
        self.nwords = (ii as usize).div_ceil(64);
        self.free_unit.clear();
        self.free_unit
            .resize(ResourceClass::ALL.len() * self.nwords, 0);
        self.free_issue.clear();
        self.free_issue.resize(self.nwords, 0);
        // An empty row is available wherever capacity exists at all.
        for w in 0..self.nwords {
            let live = low_mask((ii as usize - w * 64).min(64) as u32);
            if self.machine.issue_width > 0 {
                self.free_issue[w] = live;
            }
            for class in ResourceClass::ALL {
                if self.machine.units_of(class) > 0 {
                    self.free_unit[class.index() * self.nwords + w] = live;
                }
            }
        }
    }

    /// Modulo row of an absolute issue cycle (cycles may be negative
    /// while a schedule is under construction).
    #[inline]
    pub fn row_of(&self, cycle: i64) -> usize {
        cycle.rem_euclid(self.ii as i64) as usize
    }

    /// Rows an op of `class` occupies when issued at `cycle`: the issue
    /// row plus `occupancy − 1` successors (modulo II), clamped so a
    /// slow unit at small II simply occupies every row once.
    #[inline]
    fn occupancy_span(&self, class: ResourceClass) -> u32 {
        self.machine.occupancy_of(class).min(self.ii)
    }

    /// Whether an operation of class `op` can issue at `cycle` without
    /// oversubscribing a unit (across its whole occupancy) or the issue
    /// width (at the issue row).
    #[inline]
    pub fn can_place(&self, op: OpClass, cycle: i64) -> bool {
        let class = ResourceClass::for_op(op);
        let r = self.row_of(cycle);
        if !bit_at(&self.free_issue, r) {
            return false;
        }
        let base = class.index() * self.nwords;
        let unit = &self.free_unit[base..base + self.nwords];
        let occ = self.occupancy_span(class);
        if occ == 1 {
            // Fully pipelined (the common case): one bit test.
            return bit_at(unit, r);
        }
        if self.ii <= 64 {
            // The occupancy span as a mask rotated to start at row r,
            // within the live low `ii` bits: free iff every spanned row
            // is free, i.e. the mask survives ANDing with the word.
            let span = low_mask(occ);
            let rot = r as u32;
            let wrapped = if rot == 0 {
                span
            } else {
                (span << rot | span >> (self.ii - rot)) & low_mask(self.ii)
            };
            return unit[0] & wrapped == wrapped;
        }
        (0..occ as i64).all(|k| bit_at(unit, self.row_of(cycle + k)))
    }

    /// Reserve a slot. Callers must check [`Mrt::can_place`] first —
    /// debug builds assert it, release builds trust the probe the
    /// scheduling engines already performed.
    pub fn place(&mut self, op: OpClass, cycle: i64) {
        debug_assert!(self.can_place(op, cycle), "MRT slot oversubscribed");
        let class = ResourceClass::for_op(op);
        let units = self.machine.units_of(class);
        let base = class.index() * self.nwords;
        for k in 0..self.occupancy_span(class) as i64 {
            let row = self.row_of(cycle + k);
            let cell = &mut self.used[row * ResourceClass::ALL.len() + class.index()];
            *cell += 1;
            if *cell >= units {
                clear_bit(&mut self.free_unit[base..base + self.nwords], row);
            }
        }
        let issue_row = self.row_of(cycle);
        self.row_total[issue_row] += 1;
        if self.row_total[issue_row] >= self.machine.issue_width {
            clear_bit(&mut self.free_issue, issue_row);
        }
    }

    /// Release a previously reserved slot.
    pub fn remove(&mut self, op: OpClass, cycle: i64) {
        let class = ResourceClass::for_op(op);
        let units = self.machine.units_of(class);
        let base = class.index() * self.nwords;
        for k in 0..self.occupancy_span(class) as i64 {
            let row = self.row_of(cycle + k);
            let cell = &mut self.used[row * ResourceClass::ALL.len() + class.index()];
            assert!(*cell > 0, "removing empty unit slot");
            *cell -= 1;
            if *cell < units {
                set_bit(&mut self.free_unit[base..base + self.nwords], row);
            }
        }
        let issue_row = self.row_of(cycle);
        let total = &mut self.row_total[issue_row];
        assert!(*total > 0, "removing empty issue slot");
        *total -= 1;
        if *total < self.machine.issue_width {
            set_bit(&mut self.free_issue, issue_row);
        }
    }

    /// Operations currently issued in `row`.
    pub fn row_occupancy(&self, row: usize) -> u32 {
        self.row_total[row]
    }

    /// Unit-cycles of `class` busy in `row` (diagnostic row pressure).
    pub fn used_in_row(&self, row: usize, class: ResourceClass) -> u32 {
        self.used[row * ResourceClass::ALL.len() + class.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrt(ii: u32) -> Mrt {
        Mrt::new(ii, &MachineModel::icpp2008())
    }

    #[test]
    fn unit_saturation_blocks_placement() {
        let mut m = mrt(4);
        // One FpMulDiv unit: a second FP multiply in the same row must
        // be rejected; a different row is fine.
        assert!(m.can_place(OpClass::FpMul, 0));
        m.place(OpClass::FpMul, 0);
        assert!(!m.can_place(OpClass::FpMul, 0));
        assert!(!m.can_place(OpClass::FpMul, 4)); // same modulo row
        assert!(m.can_place(OpClass::FpMul, 1));
    }

    #[test]
    fn issue_width_blocks_row() {
        let mut m = mrt(2);
        // Fill row 0 to the 4-wide issue limit with mixed classes.
        m.place(OpClass::IntAlu, 0);
        m.place(OpClass::IntAlu, 0);
        m.place(OpClass::Load, 0);
        m.place(OpClass::Load, 0);
        assert_eq!(m.row_occupancy(0), 4);
        assert!(!m.can_place(OpClass::FpAdd, 0), "width exhausted");
        assert!(m.can_place(OpClass::FpAdd, 1));
    }

    #[test]
    fn negative_cycles_map_to_rows() {
        let m = mrt(4);
        assert_eq!(m.row_of(-1), 3);
        assert_eq!(m.row_of(-4), 0);
        assert_eq!(m.row_of(7), 3);
    }

    #[test]
    fn remove_frees_the_slot() {
        let mut m = mrt(3);
        m.place(OpClass::FpMul, 5); // row 2
        assert!(!m.can_place(OpClass::FpMul, 2));
        m.remove(OpClass::FpMul, 5);
        assert!(m.can_place(OpClass::FpMul, 2));
    }

    /// The oversubscription probe in `place` is a `debug_assert!` —
    /// the engines always probe `can_place` first, so release builds
    /// skip the duplicate scan — but debug builds must still catch a
    /// caller that skips the probe.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "oversubscribed")]
    fn double_place_panics_in_debug() {
        let mut m = mrt(1);
        m.place(OpClass::FpMul, 0);
        m.place(OpClass::FpMul, 0);
    }

    #[test]
    fn non_pipelined_unit_occupies_following_rows() {
        // Figure 1's machine: the FP multiplier is busy 4 cycles.
        let mut m = Mrt::new(8, &MachineModel::figure1_example());
        m.place(OpClass::FpMul, 1);
        // The unit is busy rows 1–4; any issue whose 4-row occupancy
        // overlaps them is rejected (row 0 covers 0–3, rows 2–4 start
        // inside the busy span).
        for row in 0..5 {
            assert!(!m.can_place(OpClass::FpMul, row), "row {row} overlaps");
        }
        assert!(m.can_place(OpClass::FpMul, 5)); // occupies 5,6,7,0
                                                 // The busy unit does not consume issue width in later rows.
        assert_eq!(m.row_occupancy(2), 0);
        m.remove(OpClass::FpMul, 1);
        assert!(m.can_place(OpClass::FpMul, 2));
    }

    /// A counter-backed reference model: the bitset fast paths must
    /// agree with first-principles `used < units` / `row_total <
    /// issue_width` checks under an arbitrary place/remove history.
    fn reference_can_place(m: &Mrt, op: OpClass, cycle: i64) -> bool {
        let class = ResourceClass::for_op(op);
        if m.row_occupancy(m.row_of(cycle)) >= m.machine.issue_width {
            return false;
        }
        let occ = m.machine.occupancy_of(class).min(m.ii()) as i64;
        (0..occ).all(|k| m.used_in_row(m.row_of(cycle + k), class) < m.machine.units_of(class))
    }

    #[test]
    fn bitset_probe_matches_counter_reference() {
        // Mixed pipelined + non-pipelined classes, IIs straddling the
        // single-word boundary, deterministic pseudo-random history.
        for ii in [1u32, 3, 17, 63, 64, 65, 130] {
            let mut m = Mrt::new(ii, &MachineModel::figure1_example());
            let mut placed: Vec<(OpClass, i64)> = Vec::new();
            let mut state = 0x2008_u64;
            for step in 0..400 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let op = match state >> 60 & 3 {
                    0 => OpClass::FpMul,
                    1 => OpClass::IntAlu,
                    2 => OpClass::Load,
                    _ => OpClass::FpAdd,
                };
                let cycle = (state >> 8 & 0x1ff) as i64 - 200;
                assert_eq!(
                    m.can_place(op, cycle),
                    reference_can_place(&m, op, cycle),
                    "ii={ii} step={step} op={op:?} cycle={cycle}"
                );
                if m.can_place(op, cycle) && state & 1 == 0 {
                    m.place(op, cycle);
                    placed.push((op, cycle));
                } else if !placed.is_empty() && state & 2 == 0 {
                    let (op, cycle) = placed.swap_remove((state >> 16) as usize % placed.len());
                    m.remove(op, cycle);
                }
            }
        }
    }

    #[test]
    fn wide_ii_spans_multiple_words() {
        // II = 100 needs two bitset words; saturate a row far into the
        // second word and check the modulo aliases.
        let mut m = Mrt::new(100, &MachineModel::icpp2008());
        assert!(m.can_place(OpClass::FpMul, 90));
        m.place(OpClass::FpMul, 90);
        assert!(!m.can_place(OpClass::FpMul, 90));
        assert!(!m.can_place(OpClass::FpMul, 190)); // same modulo row
        assert!(m.can_place(OpClass::FpMul, 91));
        m.remove(OpClass::FpMul, 90);
        assert!(m.can_place(OpClass::FpMul, 190));
    }

    #[test]
    fn non_pipelined_occupancy_crosses_word_boundary() {
        // Occupancy 4 issued at row 62 of II=66 spans rows 62..65 —
        // straddling the u64 boundary — and wraps at row 65 of II=66.
        let mut m = Mrt::new(66, &MachineModel::figure1_example());
        m.place(OpClass::FpMul, 62);
        for row in [62, 63, 64, 65] {
            assert!(!m.can_place(OpClass::FpMul, row), "row {row} busy");
        }
        assert!(m.can_place(OpClass::FpMul, 2));
        // Issue width is only consumed at the issue row.
        assert_eq!(m.row_occupancy(64), 0);
    }

    #[test]
    fn occupancy_wraps_modulo_ii() {
        // Occupancy 4 at II 3: every row gets covered (clamped), so a
        // second multiply cannot fit anywhere.
        let mut m = Mrt::new(3, &MachineModel::figure1_example());
        assert!(m.can_place(OpClass::FpMul, 0));
        m.place(OpClass::FpMul, 0);
        for row in 0..3 {
            assert!(!m.can_place(OpClass::FpMul, row));
        }
    }
}
