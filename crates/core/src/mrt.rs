//! The modulo reservation table (MRT).
//!
//! A schedule at initiation interval `II` may place at most
//! `units(class)` operations of each functional-unit class — and at
//! most `issue_width` operations in total — in each of the `II` modulo
//! rows. Non-pipelined units (occupancy > 1) keep their unit busy for
//! several consecutive rows. The MRT tracks row occupancy as
//! instructions are placed and removed during the iterative scheduling
//! process.

use tms_ddg::OpClass;
use tms_machine::{MachineModel, ResourceClass};

/// Occupancy of the `II` modulo rows of a partial schedule.
#[derive(Debug, Clone)]
pub struct Mrt {
    ii: u32,
    machine: MachineModel,
    /// `used[row * 5 + class]` — unit-cycles of `class` busy in `row`.
    used: Vec<u32>,
    /// Operations issued in each row (issue-width accounting).
    row_total: Vec<u32>,
}

impl Mrt {
    /// An empty table for the given `II` and machine.
    pub fn new(ii: u32, machine: &MachineModel) -> Self {
        assert!(ii >= 1, "II must be at least 1");
        Mrt {
            ii,
            machine: machine.clone(),
            used: vec![0; ii as usize * ResourceClass::ALL.len()],
            row_total: vec![0; ii as usize],
        }
    }

    /// The II this table was built for.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Clear the table and retarget it to a new `II`, reusing the
    /// existing row buffers. Equivalent to `Mrt::new` without the
    /// allocations — the scheduling engines call this once per attempt.
    pub fn reset(&mut self, ii: u32, machine: &MachineModel) {
        assert!(ii >= 1, "II must be at least 1");
        if &self.machine != machine {
            self.machine = machine.clone();
        }
        self.ii = ii;
        self.used.clear();
        self.used.resize(ii as usize * ResourceClass::ALL.len(), 0);
        self.row_total.clear();
        self.row_total.resize(ii as usize, 0);
    }

    /// Modulo row of an absolute issue cycle (cycles may be negative
    /// while a schedule is under construction).
    #[inline]
    pub fn row_of(&self, cycle: i64) -> usize {
        cycle.rem_euclid(self.ii as i64) as usize
    }

    /// Rows an op of `class` occupies when issued at `cycle`: the issue
    /// row plus `occupancy − 1` successors (modulo II), clamped so a
    /// slow unit at small II simply occupies every row once.
    fn occupied_rows(&self, class: ResourceClass, cycle: i64) -> Vec<usize> {
        let occ = self.machine.occupancy_of(class).min(self.ii) as i64;
        (0..occ).map(|k| self.row_of(cycle + k)).collect()
    }

    /// Whether an operation of class `op` can issue at `cycle` without
    /// oversubscribing a unit (across its whole occupancy) or the issue
    /// width (at the issue row).
    pub fn can_place(&self, op: OpClass, cycle: i64) -> bool {
        let class = ResourceClass::for_op(op);
        if self.row_total[self.row_of(cycle)] >= self.machine.issue_width {
            return false;
        }
        let units = self.machine.units_of(class);
        self.occupied_rows(class, cycle)
            .into_iter()
            .all(|row| self.used[row * ResourceClass::ALL.len() + class.index()] < units)
    }

    /// Reserve a slot. Panics if the slot would be oversubscribed —
    /// callers must check [`Mrt::can_place`] first.
    pub fn place(&mut self, op: OpClass, cycle: i64) {
        assert!(self.can_place(op, cycle), "MRT slot oversubscribed");
        let class = ResourceClass::for_op(op);
        for row in self.occupied_rows(class, cycle) {
            self.used[row * ResourceClass::ALL.len() + class.index()] += 1;
        }
        let issue_row = self.row_of(cycle);
        self.row_total[issue_row] += 1;
    }

    /// Release a previously reserved slot.
    pub fn remove(&mut self, op: OpClass, cycle: i64) {
        let class = ResourceClass::for_op(op);
        for row in self.occupied_rows(class, cycle) {
            let cell = &mut self.used[row * ResourceClass::ALL.len() + class.index()];
            assert!(*cell > 0, "removing empty unit slot");
            *cell -= 1;
        }
        let issue_row = self.row_of(cycle);
        let total = &mut self.row_total[issue_row];
        assert!(*total > 0, "removing empty issue slot");
        *total -= 1;
    }

    /// Operations currently issued in `row`.
    pub fn row_occupancy(&self, row: usize) -> u32 {
        self.row_total[row]
    }

    /// Unit-cycles of `class` busy in `row` (diagnostic row pressure).
    pub fn used_in_row(&self, row: usize, class: ResourceClass) -> u32 {
        self.used[row * ResourceClass::ALL.len() + class.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mrt(ii: u32) -> Mrt {
        Mrt::new(ii, &MachineModel::icpp2008())
    }

    #[test]
    fn unit_saturation_blocks_placement() {
        let mut m = mrt(4);
        // One FpMulDiv unit: a second FP multiply in the same row must
        // be rejected; a different row is fine.
        assert!(m.can_place(OpClass::FpMul, 0));
        m.place(OpClass::FpMul, 0);
        assert!(!m.can_place(OpClass::FpMul, 0));
        assert!(!m.can_place(OpClass::FpMul, 4)); // same modulo row
        assert!(m.can_place(OpClass::FpMul, 1));
    }

    #[test]
    fn issue_width_blocks_row() {
        let mut m = mrt(2);
        // Fill row 0 to the 4-wide issue limit with mixed classes.
        m.place(OpClass::IntAlu, 0);
        m.place(OpClass::IntAlu, 0);
        m.place(OpClass::Load, 0);
        m.place(OpClass::Load, 0);
        assert_eq!(m.row_occupancy(0), 4);
        assert!(!m.can_place(OpClass::FpAdd, 0), "width exhausted");
        assert!(m.can_place(OpClass::FpAdd, 1));
    }

    #[test]
    fn negative_cycles_map_to_rows() {
        let m = mrt(4);
        assert_eq!(m.row_of(-1), 3);
        assert_eq!(m.row_of(-4), 0);
        assert_eq!(m.row_of(7), 3);
    }

    #[test]
    fn remove_frees_the_slot() {
        let mut m = mrt(3);
        m.place(OpClass::FpMul, 5); // row 2
        assert!(!m.can_place(OpClass::FpMul, 2));
        m.remove(OpClass::FpMul, 5);
        assert!(m.can_place(OpClass::FpMul, 2));
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn double_place_panics() {
        let mut m = mrt(1);
        m.place(OpClass::FpMul, 0);
        m.place(OpClass::FpMul, 0);
    }

    #[test]
    fn non_pipelined_unit_occupies_following_rows() {
        // Figure 1's machine: the FP multiplier is busy 4 cycles.
        let mut m = Mrt::new(8, &MachineModel::figure1_example());
        m.place(OpClass::FpMul, 1);
        // The unit is busy rows 1–4; any issue whose 4-row occupancy
        // overlaps them is rejected (row 0 covers 0–3, rows 2–4 start
        // inside the busy span).
        for row in 0..5 {
            assert!(!m.can_place(OpClass::FpMul, row), "row {row} overlaps");
        }
        assert!(m.can_place(OpClass::FpMul, 5)); // occupies 5,6,7,0
                                                 // The busy unit does not consume issue width in later rows.
        assert_eq!(m.row_occupancy(2), 0);
        m.remove(OpClass::FpMul, 1);
        assert!(m.can_place(OpClass::FpMul, 2));
    }

    #[test]
    fn occupancy_wraps_modulo_ii() {
        // Occupancy 4 at II 3: every row gets covered (clamped), so a
        // second multiply cannot fit anywhere.
        let mut m = Mrt::new(3, &MachineModel::figure1_example());
        assert!(m.can_place(OpClass::FpMul, 0));
        m.place(OpClass::FpMul, 0);
        for row in 0..3 {
            assert!(!m.can_place(OpClass::FpMul, row));
        }
    }
}
