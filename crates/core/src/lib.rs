//! Swing (SMS) and Thread-Sensitive (TMS) modulo scheduling.
//!
//! This crate is the primary contribution of the reproduction of
//! *Thread-Sensitive Modulo Scheduling for Multicore Processors*
//! (Gao, Nguyen, Li, Xue, Ngai — ICPP 2008):
//!
//! * [`sms`] — the baseline Swing Modulo Scheduler (node ordering,
//!   scheduling windows, modulo reservation table) and the shared
//!   scheduling engine with its [`sms::SlotPolicy`] hook;
//! * [`tms`] — the thread-sensitive generalisation: a cost-model-driven
//!   enumeration of `(II, C_delay)` candidates plus the C1/C2 slot
//!   admission checks of the paper's Figure 3;
//! * [`cost`] — the §4.2 cost model (`T_nomiss`, `T_mis_spec`,
//!   Definition 2's `sync`, Definition 3's *preserved* test);
//! * [`postpass`] — copy insertion and SEND/RECV planning;
//! * [`lifetimes`] / [`metrics`] — MaxLive, `C_delay` and the other
//!   §5 reporting metrics;
//! * [`list_sched`] — a non-pipelined list scheduler (a lower-bound
//!   reference; Figure 5's actual baseline is `tms-sim`'s out-of-order
//!   sequential model).
//!
//! # Quick start
//!
//! ```
//! use tms_ddg::{DdgBuilder, OpClass};
//! use tms_machine::{ArchParams, MachineModel};
//! use tms_core::cost::CostModel;
//! use tms_core::{schedule_sms, schedule_tms, TmsConfig};
//!
//! // A tiny DOACROSS loop: an accumulation plus independent work.
//! let mut b = DdgBuilder::new("example");
//! let acc = b.inst_lat("acc", OpClass::FpAdd, 2);
//! let ld = b.inst("ld", OpClass::Load);
//! let st = b.inst("st", OpClass::Store);
//! b.reg_flow(ld, acc, 0);
//! b.reg_flow(acc, acc, 1);
//! b.reg_flow(acc, st, 0);
//! let ddg = b.build().unwrap();
//!
//! let machine = MachineModel::icpp2008();
//! let arch = ArchParams::icpp2008();
//! let model = CostModel::new(arch.costs, arch.ncore);
//!
//! let sms = schedule_sms(&ddg, &machine).unwrap();
//! let tms = schedule_tms(&ddg, &machine, &model, &TmsConfig::default()).unwrap();
//! assert!(tms.schedule.check_legal(&ddg).is_none());
//! assert!(sms.schedule.check_legal(&ddg).is_none());
//! ```

pub mod codegen;
pub mod cost;
pub mod diagnostics;
pub mod ims;
pub mod lifetimes;
pub mod list_sched;
pub mod metrics;
pub mod mrt;
pub mod order;
pub mod par;
pub mod postpass;
pub mod profile;
pub mod schedule;
pub mod sms;
pub mod tms;
pub mod unrolling;
pub mod viz;
pub mod warm;
pub mod window;

pub use codegen::PipelinedLoop;
pub use cost::CostModel;
pub use diagnostics::{verify_schedule, Diagnostic, VerifyLimits};
pub use ims::{schedule_ims, ImsResult};
pub use metrics::LoopMetrics;
pub use par::{par_map, par_map_with, Parallelism};
pub use postpass::CommPlan;
pub use profile::{NodeHotspot, PlaceProfile};
pub use schedule::{PartialSchedule, Schedule};
pub use sms::{schedule_sms, schedule_sms_with, SchedError, SchedScratch, SmsResult};
pub use tms::{schedule_tms, schedule_tms_traced, CandidateReject, TmsConfig, TmsResult};
pub use unrolling::{schedule_tms_unrolled, UnrolledTms};
pub use warm::AttemptLog;
