//! Pipelined-loop code generation: prologue, kernel, epilogue.
//!
//! A modulo schedule with `S` stages executes `N` iterations as
//!
//! * a **prologue** of `S − 1` blocks that fill the pipeline (block
//!   `p` issues the instructions of stages `0..=p`, operating on
//!   iterations `p − s_u`),
//! * the **kernel**, executed `N − S + 1` times, each pass issuing
//!   every instruction once (instruction `u` of pass `j` works on
//!   iteration `j + (S − 1) − s_u`... i.e. stage `s_u` lags the newest
//!   iteration by `s_u`),
//! * an **epilogue** of `S − 1` blocks draining stages `p..S`.
//!
//! In the paper's SpMT execution the kernel passes become speculative
//! threads, so this module is what a code emitter — or the simulator's
//! [`crate::postpass::CommPlan`]-driven lowering — consumes. It also
//! gives tests an independent way to prove instance coverage: every
//! `(instruction, iteration)` pair executes exactly once.

use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use tms_ddg::{Ddg, InstId};

/// One emitted instruction instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Emitted {
    /// The instruction.
    pub inst: InstId,
    /// Cycle offset within its block.
    pub cycle: u32,
    /// Iteration-lag relative to the block's newest iteration: an
    /// instruction of stage `s` works on `newest − s`.
    pub stage: u32,
}

/// A straight-line block of the generated loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Block {
    /// Block label, e.g. `"prologue.0"`, `"kernel"`, `"epilogue.1"`.
    pub label: String,
    /// Instances in issue order.
    pub code: Vec<Emitted>,
}

/// The generated pipelined loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelinedLoop {
    /// `S − 1` fill blocks.
    pub prologue: Vec<Block>,
    /// The steady-state kernel (executed `N − S + 1` times).
    pub kernel: Block,
    /// `S − 1` drain blocks.
    pub epilogue: Vec<Block>,
    /// Stage count `S`.
    pub stages: u32,
    /// Initiation interval.
    pub ii: u32,
}

impl PipelinedLoop {
    /// Generate from a finished schedule.
    pub fn generate(ddg: &Ddg, schedule: &Schedule) -> Self {
        let s = schedule.stage_count();
        let ii = schedule.ii();
        let by_row = |filter: &dyn Fn(u32) -> bool| -> Vec<Emitted> {
            let mut v: Vec<Emitted> = ddg
                .inst_ids()
                .filter(|&n| filter(schedule.stage(n)))
                .map(|n| Emitted {
                    inst: n,
                    cycle: schedule.row(n),
                    stage: schedule.stage(n),
                })
                .collect();
            v.sort_by_key(|e| (e.cycle, e.inst));
            v
        };

        let prologue = (0..s.saturating_sub(1))
            .map(|p| Block {
                label: format!("prologue.{p}"),
                code: by_row(&|stage| stage <= p),
            })
            .collect();
        let kernel = Block {
            label: "kernel".into(),
            code: by_row(&|_| true),
        };
        let epilogue = (1..s)
            .map(|p| Block {
                label: format!("epilogue.{p}"),
                code: by_row(&|stage| stage >= p),
            })
            .collect();
        PipelinedLoop {
            prologue,
            kernel,
            epilogue,
            stages: s,
            ii,
        }
    }

    /// Total instances emitted when the loop runs `n_iter ≥ stages`
    /// iterations.
    pub fn total_instances(&self, n_iter: u64) -> u64 {
        let pro: u64 = self.prologue.iter().map(|b| b.code.len() as u64).sum();
        let epi: u64 = self.epilogue.iter().map(|b| b.code.len() as u64).sum();
        pro + epi + (n_iter - self.stages as u64 + 1) * self.kernel.code.len() as u64
    }

    /// Expand the generated loop into the explicit multiset of
    /// `(instruction, iteration)` instances it executes for `n_iter`
    /// iterations — the coverage oracle used by tests.
    pub fn expand(&self, n_iter: u64) -> Vec<(InstId, u64)> {
        assert!(n_iter >= self.stages as u64, "loop shorter than pipeline");
        let mut out = Vec::new();
        // Prologue block p: newest iteration = p.
        for (p, block) in self.prologue.iter().enumerate() {
            for e in &block.code {
                out.push((e.inst, p as u64 - e.stage as u64));
            }
        }
        // Kernel pass j (0-based): newest iteration = S − 1 + j.
        let passes = n_iter - self.stages as u64 + 1;
        for j in 0..passes {
            let newest = self.stages as u64 - 1 + j;
            for e in &self.kernel.code {
                out.push((e.inst, newest - e.stage as u64));
            }
        }
        // Epilogue block p (p = 1..S): drains stages >= p; the newest
        // live iteration keeps its distance: stage s works on
        // N − 1 − (s − p).
        for block in &self.epilogue {
            let p: u64 = block
                .label
                .strip_prefix("epilogue.")
                .and_then(|x| x.parse().ok())
                .expect("label");
            for e in &block.code {
                out.push((e.inst, n_iter - 1 - (e.stage as u64 - p)));
            }
        }
        out
    }

    /// Render as pseudo-assembly.
    pub fn text(&self, ddg: &Ddg) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let block = |out: &mut String, b: &Block| {
            let _ = writeln!(out, "{}:", b.label);
            for e in &b.code {
                let _ = writeln!(
                    out,
                    "  [c{:>2}] {:<14} ; stage {}",
                    e.cycle,
                    ddg.inst(e.inst).name,
                    e.stage
                );
            }
        };
        for b in &self.prologue {
            block(&mut out, b);
        }
        block(&mut out, &self.kernel);
        let _ = writeln!(out, "  ; repeat kernel N-{} times", self.stages - 1);
        for b in &self.epilogue {
            block(&mut out, b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sms::schedule_sms;
    use std::collections::HashMap;
    use tms_ddg::{DdgBuilder, OpClass};
    use tms_machine::MachineModel;

    fn three_stage() -> (Ddg, Schedule) {
        let mut b = DdgBuilder::new("p3");
        let a = b.inst("a", OpClass::Load); // 3
        let c = b.inst_lat("c", OpClass::FpMul, 4);
        let d = b.inst("d", OpClass::Store);
        b.reg_flow(a, c, 0);
        b.reg_flow(c, d, 0);
        let g = b.build().unwrap();
        // II=3: a@0 (s0), c@3 (s1), d@7 (s2).
        let s = Schedule::from_times(&g, 3, vec![0, 3, 7]);
        (g, s)
    }

    #[test]
    fn block_counts_match_stages() {
        let (g, s) = three_stage();
        let p = PipelinedLoop::generate(&g, &s);
        assert_eq!(p.stages, 3);
        assert_eq!(p.prologue.len(), 2);
        assert_eq!(p.epilogue.len(), 2);
        assert_eq!(p.kernel.code.len(), 3);
        // prologue.0 has only stage-0 instructions.
        assert_eq!(p.prologue[0].code.len(), 1);
        assert_eq!(p.prologue[1].code.len(), 2);
        // epilogue.1 drains stages 1..3, epilogue.2 only stage 2.
        assert_eq!(p.epilogue[0].code.len(), 2);
        assert_eq!(p.epilogue[1].code.len(), 1);
    }

    #[test]
    fn expansion_covers_every_instance_exactly_once() {
        let (g, s) = three_stage();
        let p = PipelinedLoop::generate(&g, &s);
        let n_iter = 10u64;
        let inst = p.expand(n_iter);
        assert_eq!(inst.len() as u64, p.total_instances(n_iter));
        let mut count: HashMap<(InstId, u64), u32> = HashMap::new();
        for x in inst {
            *count.entry(x).or_insert(0) += 1;
        }
        for n in g.inst_ids() {
            for it in 0..n_iter {
                assert_eq!(
                    count.get(&(n, it)).copied().unwrap_or(0),
                    1,
                    "instance ({n}, {it}) coverage"
                );
            }
        }
        assert_eq!(count.len() as u64, g.num_insts() as u64 * n_iter);
    }

    #[test]
    fn single_stage_loop_has_no_prologue() {
        let mut b = DdgBuilder::new("flat");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        let g = b.build().unwrap();
        let s = Schedule::from_times(&g, 4, vec![0, 1]);
        let p = PipelinedLoop::generate(&g, &s);
        assert!(p.prologue.is_empty());
        assert!(p.epilogue.is_empty());
        let inst = p.expand(5);
        assert_eq!(inst.len(), 10);
    }

    #[test]
    fn coverage_holds_for_real_schedules() {
        let g = tms_workloads::figure1();
        let s = schedule_sms(&g, &MachineModel::icpp2008())
            .unwrap()
            .schedule;
        let p = PipelinedLoop::generate(&g, &s);
        let n_iter = 12u64.max(p.stages as u64);
        let mut count: HashMap<(InstId, u64), u32> = HashMap::new();
        for x in p.expand(n_iter) {
            *count.entry(x).or_insert(0) += 1;
        }
        assert_eq!(count.len() as u64, g.num_insts() as u64 * n_iter);
        assert!(count.values().all(|&c| c == 1));
    }

    #[test]
    fn text_renders_blocks_in_order() {
        let (g, s) = three_stage();
        let p = PipelinedLoop::generate(&g, &s);
        let t = p.text(&g);
        let pro = t.find("prologue.0").unwrap();
        let ker = t.find("kernel:").unwrap();
        let epi = t.find("epilogue.1").unwrap();
        assert!(pro < ker && ker < epi);
        assert!(t.contains("repeat kernel"));
    }
}
