//! Thread-sensitive modulo scheduling (TMS) — Figure 3 of the paper.
//!
//! TMS wraps the SMS engine with two additions:
//!
//! 1. an outer enumeration of `(II, C_delay)` pairs in increasing
//!    cost-model order (the `F_min++` loop), and
//! 2. a [`SlotPolicy`] that admits a slot only if the new
//!    inter-iteration register dependences stay within the current
//!    `C_delay` budget (condition **C1**) and the accumulated
//!    misspeculation frequency of non-preserved inter-iteration memory
//!    dependences stays within `P_max` (condition **C2**).

use crate::cost::{
    misspec_probability, preserves, sync_delay, CandidateStream, CostKey, CostModel,
};
use crate::diagnostics::{verify_schedule, Diagnostic, VerifyLimits};
use crate::order::sms_order;
use crate::par::{par_map_with_slots, Parallelism};
use crate::profile::PlaceProfile;
use crate::schedule::{PartialSchedule, Schedule};
use crate::sms::{
    generic_scan_forced, generic_scan_window, ii_search_ceiling_from, order_priorities,
    schedule_sms_with, try_schedule_logged, try_schedule_prepared, try_schedule_profiled,
    SchedError, SchedScratch, SlotPolicy,
};
use crate::warm::{AttemptLog, Probe};
use std::collections::{BTreeMap, HashMap};
use tms_ddg::analysis::{AcyclicPriorities, TimeFrames};
use tms_ddg::{Ddg, InstId};
use tms_machine::{mii, CostConstants, MachineModel};
use tms_trace::Trace;

/// Tunables of the TMS search.
#[derive(Debug, Clone)]
pub struct TmsConfig {
    /// `P_max` values to try per `(II, C_delay)` candidate, in order.
    /// Figure 3 treats `P_max` as a tunable parameter in `[0,1]`; the
    /// paper tries several and keeps the best schedule.
    pub p_max_values: Vec<f64>,
    /// Upper bound on II. Defaults to `max(MII, LDP)` — the paper notes
    /// II "can be bounded by the longest critical path in the DDG".
    pub ii_max: Option<u32>,
    /// Upper bound on the `C_delay` threshold. Defaults to
    /// `II_max + max latency + C_reg_com` — the largest Definition-2
    /// sync any schedule at `II_max` can produce. (The paper suggests
    /// `II/ncore` as a bound, but its own Table 3 contains loops —
    /// lucas — whose `C_delay` is close to II; the cost ordering makes
    /// large thresholds naturally last, so a generous cap is safe.)
    pub c_delay_max: Option<u32>,
    /// Safety cap on the number of `(II, C_delay, P_max)` attempts.
    pub max_attempts: usize,
    /// Graceful-degradation budget: when set, the search stops after
    /// this many attempts and *degrades* to the SMS schedule (reported
    /// as [`Diagnostic::DegradedToSms`] in [`TmsResult::degraded`])
    /// instead of erroring — even when [`TmsConfig::allow_sms_fallback`]
    /// is off, because running out of budget is an operational
    /// condition, not an infeasibility proof. Unlike
    /// [`TmsConfig::max_attempts`] (a correctness backstop), exhausting
    /// this budget is always reported. Deterministic: the same budget
    /// degrades the same loops at every worker count.
    pub attempt_budget: Option<usize>,
    /// Wall-clock analogue of [`TmsConfig::attempt_budget`]: checked
    /// before every attempt in both the serial and wavefront folds (the
    /// cadence is aligned, the wall clock is not), so a pathological
    /// loop cannot stall a sweep indefinitely. Inherently
    /// machine-dependent — campaigns that need bit-identical reports
    /// use `attempt_budget` instead. `Duration::ZERO` degrades before
    /// the first attempt, deterministically.
    pub deadline: Option<std::time::Duration>,
    /// Try every integer `C_delay` candidate. When false (default) the
    /// grid is thinned for large thresholds — dense near the minimum,
    /// stride 2 beyond `min+8`, stride 4 beyond `min+24` — trading an
    /// `F` within one stride of optimal for an order of magnitude fewer
    /// attempts on recurrence-bound loops.
    pub dense_candidates: bool,
    /// Branch-and-bound pruning of the candidate sweep (default on).
    /// Two admissible cuts, both provably resolution-preserving — the
    /// pruned search returns bit-identical schedules to the exhaustive
    /// one, only the `attempts`/`pruned` accounting differs:
    ///
    /// * **cost bound** — a candidate at `II` whose admissible floor
    ///   [`CostModel::floor_key`] already exceeds the SMS baseline's
    ///   key can only ever build a schedule that loses to the baseline
    ///   (the realised key of *any* schedule at that II is ≥ the
    ///   floor), so it is skipped without dispatch. Only applies when
    ///   [`TmsConfig::allow_sms_fallback`] provides the incumbent.
    /// * **`P_max` dedup** — a loop with no memory-flow dependence is
    ///   insensitive to `P_max` (condition C2 is vacuous), so only the
    ///   first `P_max` of each `(II, C_delay)` candidate is dispatched.
    pub prune: bool,
    /// If no candidate admits a schedule, fall back to plain SMS
    /// (always succeeds when the loop is schedulable at all).
    pub allow_sms_fallback: bool,
    /// Stage-count slack accepted beyond the dependence-forced minimum
    /// `⌈LDP / II⌉`. Without a bound the search can satisfy a small
    /// `C_delay` by scattering instructions across many stages — every
    /// split dependence individually synchronises cheaply, but the
    /// schedule drowns in SEND/RECV pairs and register copies. The
    /// paper's TMS instead trades II up ("TMS exhibits a larger II but
    /// a much smaller C_delay", §5.1) and only "slightly larger"
    /// MaxLive; bounding stages forces the same trade.
    pub max_extra_stages: u32,
    /// Worker threads for the candidate search. Candidates are
    /// independent, so the search dispatches them in cost-ordered
    /// wavefront chunks and accepts the lowest-index success — results
    /// (including the `attempts`/`rejects` accounting) are bit-identical
    /// to the serial search at every worker count. Defaults to
    /// [`Parallelism::Serial`]: callers that already parallelise at the
    /// loop level (sweeps, benches) keep the inner search serial.
    pub parallelism: Parallelism,
    /// Warm-start attempts across the candidate stream (default on).
    /// The search keeps one [`AttemptLog`] per II and replays the
    /// recorded decision prefix of the previous attempt at that II
    /// under the new `(C_delay, P_max)` knobs, re-running the engine
    /// only from the first step whose policy verdict changed. The first
    /// attempt at a new II seeds its log from the nearest *smaller* II
    /// already tried, demoted to a cross-II guide: window bounds whose
    /// derivation was carried-free transfer to the larger II and skip
    /// the longest-path sweeps, while probes, fits, and ejections are
    /// recomputed live (see `crate::warm`'s module docs and DESIGN.md
    /// §9.4). Replay and guiding are both equivalence-preserving —
    /// schedules and accounting are byte-identical to the cold path
    /// (`tests/bnb_equivalence.rs` pins this) — so the flag exists for
    /// A/B measurement, not correctness. Wavefront workers carry their
    /// own per-II log slots across chunks ([`par_map_with_slots`]);
    /// which attempts seed a worker's slot is scheduling-dependent, but
    /// warm≡cold per attempt keeps the folded results identical at
    /// every worker count. The `tms.reuse.*` counters stay serial-only.
    pub warm_start: bool,
    /// Counter-driven adaptive candidate density (default **off**).
    /// When the rejection diagnostics of dispatched attempts are
    /// dominated by sync-delay infeasibility, the search coarsens the
    /// `C_delay` ladder for the rest of the stream — except within a
    /// refinement band near the SMS incumbent's cost key, where the
    /// full grid is kept. Changes which candidates are visited, so the
    /// resolved schedule may differ from the exhaustive search (always
    /// to a candidate the exhaustive grid also contains); excluded from
    /// the serial≡parallel identity guarantee and off in every default
    /// path.
    pub adaptive: bool,
    /// In-engine placement profiler (default **off**; see
    /// [`crate::profile`]). When on, every dispatched attempt runs
    /// *cold* — warm-start replay is bypassed, because replayed steps
    /// skip exactly the scans being attributed — and fills a
    /// per-attempt [`PlaceProfile`] that the search folds serially in
    /// candidate-index order. Schedules are unchanged (warm ≡ cold per
    /// attempt); attribution counters and histograms are bit-identical
    /// at every worker count and recorded under `tms.place.*`, and the
    /// folded profile is surfaced as [`TmsResult::profile`]. Sub-phase
    /// wall clocks land in the `tms.place.{scan,probe,fit,eject,force,
    /// verify}` trace timers, which — like `tms.phase.*` — are excluded
    /// from the deterministic snapshot. Profiling costs real time (two
    /// clock reads per engine step plus probe recording), so it is a
    /// measurement mode, not a default.
    pub profile: bool,
}

impl Default for TmsConfig {
    fn default() -> Self {
        TmsConfig {
            p_max_values: vec![0.01, 0.05, 0.20],
            ii_max: None,
            c_delay_max: None,
            max_attempts: 200_000,
            attempt_budget: None,
            deadline: None,
            dense_candidates: false,
            prune: true,
            allow_sms_fallback: true,
            max_extra_stages: 2,
            parallelism: Parallelism::Serial,
            warm_start: true,
            adaptive: false,
            profile: false,
        }
    }
}

impl TmsConfig {
    /// Configuration for the speculation ablation of §5.2: a `P_max`
    /// of exactly 0 forbids any non-preserved speculated dependence, so
    /// every inter-thread memory dependence must end up synchronised
    /// (preserved) in the schedule.
    pub fn no_speculation() -> Self {
        TmsConfig {
            p_max_values: vec![0.0],
            ..Self::default()
        }
    }
}

/// One `(II, C_delay, P_max)` candidate whose schedule was built but
/// failed the post-search verification, with the diagnostics that
/// rejected it.
#[derive(Debug, Clone)]
pub struct CandidateReject {
    /// II of the rejected candidate.
    pub ii: u32,
    /// `C_delay` threshold of the rejected candidate.
    pub c_delay: u32,
    /// `P_max` of the rejected candidate.
    pub p_max: f64,
    /// What the finished kernel violated.
    pub diagnostics: Vec<Diagnostic>,
}

/// At most this many [`CandidateReject`] records are retained per
/// search (the total count is always exact in
/// [`TmsResult::rejected_candidates`]).
pub const REJECT_LOG_CAP: usize = 32;

/// Outcome of a TMS run.
#[derive(Debug, Clone)]
pub struct TmsResult {
    /// The accepted schedule.
    pub schedule: Schedule,
    /// Minimum II of the loop.
    pub mii: u32,
    /// Longest dependence path of the loop.
    pub ldp: i64,
    /// II of the accepted schedule.
    pub ii: u32,
    /// The `C_delay` threshold the accepted candidate used.
    pub c_delay_threshold: u32,
    /// The `P_max` the accepted candidate used.
    pub p_max: f64,
    /// Cost key (`F · ncore`) of the accepted schedule, computed from
    /// its *achieved* `C_delay` (≤ the candidate threshold).
    pub cost_key: CostKey,
    /// True if every thread-sensitive candidate failed and the result
    /// is the plain SMS schedule.
    pub fell_back_to_sms: bool,
    /// `(II, C_delay, P_max)` attempts actually made by the search
    /// (dispatched to the engine; pruned candidates are not attempts).
    pub attempts: usize,
    /// Candidates the branch-and-bound cuts skipped without dispatch
    /// (cost bound + `P_max` dedup). `pruned + attempts` covers the
    /// same candidate prefix the exhaustive search would have examined.
    pub pruned: usize,
    /// Candidates whose schedule was built but rejected by the
    /// post-search verification (exact count; the stored records are
    /// capped at [`REJECT_LOG_CAP`]).
    pub rejected_candidates: usize,
    /// Candidates whose schedule was built and verified but whose
    /// realised cost key lost to the SMS baseline; the search keeps
    /// going past them (a later, costlier candidate can still beat the
    /// baseline on *achieved* `C_delay`).
    pub lost_to_baseline: usize,
    /// Diagnostics of up to [`REJECT_LOG_CAP`] rejected candidates.
    pub rejects: Vec<CandidateReject>,
    /// The attempt budget cut the search short of a resolution (the
    /// result is the degraded SMS fallback). Deterministic at every
    /// worker count.
    pub budget_cut: bool,
    /// The wall-clock deadline cut the search short of a resolution.
    /// Inherently machine- and load-dependent: deadline cuts are
    /// **excluded** from the bit-identical-across-`--jobs` guarantee
    /// (the check cadence is aligned — before every attempt in both the
    /// serial and wavefront folds — but wall time is not).
    pub deadline_cut: bool,
    /// Set iff the search was cut short by its attempt/deadline budget
    /// and the result is the degraded SMS fallback (always a
    /// [`Diagnostic::DegradedToSms`]). `None` for accepted candidates
    /// *and* for ordinary cost-driven SMS fallbacks.
    pub degraded: Option<Diagnostic>,
    /// Folded placement profile of every consumed attempt, present iff
    /// [`TmsConfig::profile`] was on. Attribution fields are
    /// bit-identical at every worker count; the `*_ns` accumulators are
    /// wall clock (see [`crate::profile`]).
    pub profile: Option<PlaceProfile>,
}

/// One incident edge of the C1 scan, flattened to exactly the fields
/// the probe reads. Entries keep the probe's original visit order
/// (successor edges first, then predecessor edges minus self loops);
/// edges that are neither register nor memory flow are dropped at build
/// time — they can neither reject a slot nor flag a speculated
/// dependence, so their absence is invisible to the verdict *and* to
/// the first-violation `sync` a `C1Reject` records.
#[derive(Debug, Clone, Copy)]
struct C1Entry {
    /// Far endpoint (equal to the probed node for self edges).
    other: u32,
    distance: i64,
    /// Latency of the edge *source* (what `sync_delay` charges).
    lat_src: u32,
    /// The probed node is the edge source (a successor-side edge).
    src_is_v: bool,
    is_reg: bool,
}

/// A register- or memory-flow edge of the C2 whole-graph scans,
/// flattened the same way (kept in `Ddg::edges` order).
#[derive(Debug, Clone, Copy)]
struct FlatEdge {
    src: u32,
    dst: u32,
    distance: i64,
    lat_src: u32,
    /// Misspeculation probability (memory-flow edges only; 0 for
    /// register flow, which never reads it).
    prob: f64,
}

/// Probe geometry precomputed once per DDG: the C1 incident scan as a
/// CSR over nodes, and the C2 `R_all`/`M_all` scans prefiltered to the
/// only edge kinds they inspect. [`TmsPolicy`] borrows one plan across
/// every `(C_delay, P_max)` attempt on the loop — the probe is the
/// engine's innermost call (tens of millions of evaluations per
/// benchmark loop), and walking contiguous pre-projected entries
/// replaces an iterator chain over the full `Edge` structs with their
/// per-edge kind tests and latency gathers.
#[derive(Debug, Clone)]
pub struct ProbePlan {
    /// [`Ddg::uid`] the plan was built for (debug-checked at probe
    /// time).
    uid: u64,
    /// CSR offsets into `c1`, one slot per node plus a final sentinel.
    starts: Vec<u32>,
    c1: Vec<C1Entry>,
    /// Per node: no incident memory-flow edge at all, so condition C2
    /// is vacuous at every slot the node could probe (`v_adds_mem_dep`
    /// can never fire) — the gate for the closed-form scan fast path.
    mem_free: Vec<bool>,
    /// All register-flow edges (the `R_all` candidates).
    reg: Vec<FlatEdge>,
    /// All memory-flow edges (the `M_all` candidates).
    mem: Vec<FlatEdge>,
}

impl ProbePlan {
    /// Build the plan for `ddg`. `O(V + E)`.
    pub fn new(ddg: &Ddg) -> Self {
        let flat = |e: &tms_ddg::Edge| FlatEdge {
            src: e.src.index() as u32,
            dst: e.dst.index() as u32,
            distance: e.distance as i64,
            lat_src: ddg.inst(e.src).latency,
            prob: e.prob,
        };
        let mut starts = Vec::with_capacity(ddg.num_insts() + 1);
        let mut c1 = Vec::new();
        let mut mem_free = Vec::with_capacity(ddg.num_insts());
        for v in ddg.inst_ids() {
            starts.push(c1.len() as u32);
            mem_free.push(
                ddg.succ_edges(v)
                    .chain(ddg.pred_edges(v))
                    .all(|(_, e)| !e.is_memory_flow()),
            );
            for (_, e) in ddg.succ_edges(v) {
                if e.is_register_flow() || e.is_memory_flow() {
                    c1.push(C1Entry {
                        other: e.dst.index() as u32,
                        distance: e.distance as i64,
                        lat_src: ddg.inst(e.src).latency,
                        src_is_v: true,
                        is_reg: e.is_register_flow(),
                    });
                }
            }
            for (_, e) in ddg.pred_edges(v) {
                if e.src != e.dst && (e.is_register_flow() || e.is_memory_flow()) {
                    c1.push(C1Entry {
                        other: e.src.index() as u32,
                        distance: e.distance as i64,
                        lat_src: ddg.inst(e.src).latency,
                        src_is_v: false,
                        is_reg: e.is_register_flow(),
                    });
                }
            }
        }
        starts.push(c1.len() as u32);
        ProbePlan {
            uid: ddg.uid(),
            starts,
            c1,
            mem_free,
            reg: ddg
                .edges()
                .iter()
                .filter(|e| e.is_register_flow())
                .map(flat)
                .collect(),
            mem: ddg
                .edges()
                .iter()
                .filter(|e| e.is_memory_flow())
                .map(flat)
                .collect(),
        }
    }
}

/// One C1 constraint of a scan fast path, reduced to its closed form.
/// Over a scan the placed state is frozen, so for each incident
/// register edge the sync delay is *linear in the probed row* —
/// `s = a·row + b` with `a ∈ {+1, 0, −1}` — and the `d_ker ≥ 1`
/// activity condition is a stage-interval test `q_lo ≤ stage ≤ q_hi`.
#[derive(Debug, Clone, Copy)]
struct ScanEntry {
    a: i64,
    b: i64,
    q_lo: i64,
    q_hi: i64,
}

/// The TMS slot admission policy (conditions C1 and C2 of Figure 3).
pub struct TmsPolicy<'a> {
    costs: &'a CostConstants,
    plan: &'a ProbePlan,
    c_delay: u32,
    p_max: f64,
    /// Reusable buffer for the scan fast path (policies are built,
    /// used and dropped within one attempt on one thread).
    scan_buf: std::cell::RefCell<Vec<ScanEntry>>,
    /// Whether the most recent scan took the closed-form fast path
    /// (see [`SlotPolicy::scan_was_fast`]). The flag is a deterministic
    /// function of the partial-schedule state, so profiler attribution
    /// keyed on it stays worker-count-independent.
    last_scan_fast: std::cell::Cell<bool>,
}

impl<'a> TmsPolicy<'a> {
    /// Policy for one `(C_delay, P_max)` candidate. The [`ProbePlan`]
    /// must have been built for the DDG the policy will probe.
    pub fn new(costs: &'a CostConstants, plan: &'a ProbePlan, c_delay: u32, p_max: f64) -> Self {
        TmsPolicy {
            costs,
            plan,
            c_delay,
            p_max,
            scan_buf: std::cell::RefCell::new(Vec::new()),
            last_scan_fast: std::cell::Cell::new(false),
        }
    }

    /// Closed-form scan precondition. The fast path needs two frozen
    /// facts the per-slot [`probe`](Self::probe) derives dynamically:
    ///
    /// * **C2 vacuous at every slot** — `v` has no incident memory-flow
    ///   edge, so `v_adds_mem_dep` cannot fire at any cycle;
    /// * **a fixed normalisation base** — every probed cycle is at or
    ///   above the placed minimum, so `base = min_time` for the whole
    ///   scan (a cycle *below* the minimum re-anchors the base and
    ///   shifts every row).
    ///
    /// Returns the base, or `None` → caller takes the generic per-slot
    /// scan.
    fn fast_scan_base(&self, ps: &PartialSchedule, v: InstId, lowest_cycle: i64) -> Option<i64> {
        if !self.plan.mem_free[v.index()] {
            return None;
        }
        let m = ps.min_time()?;
        (lowest_cycle >= m).then_some(m)
    }

    /// Project `v`'s incident register edges against the frozen placed
    /// state into [`ScanEntry`]s (CSR order preserved; edges that can
    /// never constrain — far endpoint unplaced, or a `distance 0` self
    /// edge — are dropped, exactly the edges the per-slot probe skips).
    fn build_scan_entries(&self, ps: &PartialSchedule, v: InstId, base: i64, ii: i64) {
        let mut entries = self.scan_buf.borrow_mut();
        entries.clear();
        let c_reg = self.costs.c_reg_com as i64;
        let vi = v.index();
        let row_range = self.plan.starts[vi] as usize..self.plan.starts[vi + 1] as usize;
        for ent in &self.plan.c1[row_range] {
            debug_assert!(ent.is_reg, "mem_free gate admitted a memory edge");
            let lat = ent.lat_src as i64;
            if ent.other as usize == vi {
                // Self edge: d_ker = distance, sync = lat + C_reg_com.
                if ent.distance >= 1 {
                    entries.push(ScanEntry {
                        a: 0,
                        b: lat + c_reg,
                        q_lo: i64::MIN,
                        q_hi: i64::MAX,
                    });
                }
                continue;
            }
            let Some(t) = ps.time(InstId(ent.other)) else {
                continue;
            };
            let dt = t - base;
            debug_assert!(dt >= 0);
            let (q_o, r_o) = (dt / ii, dt % ii);
            if ent.src_is_v {
                // v produces: d_ker = dist + q_o − q_v ≥ 1,
                // s = row_v − r_o + lat + C.
                entries.push(ScanEntry {
                    a: 1,
                    b: lat + c_reg - r_o,
                    q_lo: i64::MIN,
                    q_hi: q_o + ent.distance - 1,
                });
            } else {
                // v consumes: d_ker = dist + q_v − q_o ≥ 1,
                // s = r_o − row_v + lat + C.
                entries.push(ScanEntry {
                    a: -1,
                    b: r_o + lat + c_reg,
                    q_lo: q_o - ent.distance + 1,
                    q_hi: i64::MAX,
                });
            }
        }
    }

    /// Evaluate one cycle against the projected entries: the C1 verdict
    /// the per-slot probe would reach. `Err(sync)` is the first
    /// violating constraint in probe order; `Ok(sync_max)` aggregates
    /// every active constraint (`i64::MIN` when none are).
    fn eval_scan(entries: &[ScanEntry], q: i64, r: i64, cd: i64) -> Result<i64, i64> {
        let mut sync_max = i64::MIN;
        for e in entries {
            if q < e.q_lo || q > e.q_hi {
                continue;
            }
            let s = e.a * r + e.b;
            if s > cd {
                return Err(s);
            }
            sync_max = sync_max.max(s);
        }
        Ok(sync_max)
    }

    /// Evaluate conditions C1/C2 for placing `v` at `c`, returning the
    /// verdict together with the knob-independent facts behind it (the
    /// sync delays and misspeculation product are pure functions of the
    /// placement — `c_delay`/`p_max` enter only as comparison
    /// thresholds), which is what lets warm-start replay revalidate the
    /// verdict under different knobs without re-deriving the facts.
    fn probe(&self, ddg: &Ddg, ps: &PartialSchedule, v: InstId, c: i64) -> Probe {
        debug_assert_eq!(
            self.plan.uid,
            ddg.uid(),
            "ProbePlan was built for a different DDG"
        );
        let ii = ps.ii() as i64;
        // Rows and stages are normalisation-dependent (the final
        // schedule shifts its minimum time to 0); anchoring the
        // provisional values to the running minimum keeps the C1/C2
        // checks consistent with the final kernel unless a later
        // placement dips below the current minimum — the post-search
        // verification in `schedule_tms` catches that residual case.
        let base = ps.min_time().map_or(c, |m| m.min(c));
        // `base` is the minimum over every placed time and `c` itself,
        // so `t − base` is never negative and one plain division gives
        // stage and row together (`div_euclid`/`rem_euclid` agree with
        // `/`/`%` on non-negative operands). One call per endpoint
        // replaces the former two-division closures on the hottest
        // arithmetic in the engine.
        let split = move |t: i64| {
            let dt = t - base;
            debug_assert!(dt >= 0, "time {t} below the normalisation base {base}");
            (dt / ii, dt % ii)
        };
        let (stage_v, row_v) = split(c);

        // --- C1: every NEW inter-iteration register dependence formed
        // by placing v must synchronise within C_delay (Definition 2).
        // Only edges incident to v can be new — the plan's CSR row
        // replaces a scan of the whole edge set (self-edges appear on
        // the successor side only). Only the far endpoint's time needs
        // a split: v's side is the hoisted `(stage_v, row_v)`.
        let mut v_adds_mem_dep = false;
        let mut sync_max = i64::MIN;
        let vi = v.index();
        let row_range = self.plan.starts[vi] as usize..self.plan.starts[vi + 1] as usize;
        for ent in &self.plan.c1[row_range] {
            let (stage_o, row_o) = if ent.other as usize == vi {
                (stage_v, row_v)
            } else {
                let Some(t) = ps.time(InstId(ent.other)) else {
                    continue;
                };
                split(t)
            };
            let d_ker = ent.distance
                + if ent.src_is_v {
                    stage_o - stage_v
                } else {
                    stage_v - stage_o
                };
            if d_ker < 1 {
                continue; // intra-thread in the kernel
            }
            if ent.is_reg {
                let s = if ent.src_is_v {
                    sync_delay(row_v, row_o, ent.lat_src, self.costs)
                } else {
                    sync_delay(row_o, row_v, ent.lat_src, self.costs)
                };
                if s > self.c_delay as i64 {
                    return Probe::C1Reject { sync: s };
                }
                sync_max = sync_max.max(s);
            } else {
                v_adds_mem_dep = true;
            }
        }

        // --- C2: only checked when v introduces a new speculated
        // dependence (M_v ≠ ∅ in Figure 3).
        if !v_adds_mem_dep {
            return Probe::Accept {
                sync_max,
                misspec: None,
            };
        }

        // R_all: all inter-iteration register flow dependences among
        // placed ∪ {v}, as (sync, producer-row) pairs for Definition 3.
        let time_of = |n: u32| {
            if n as usize == vi {
                Some(c)
            } else {
                ps.time(InstId(n))
            }
        };
        let mut r_all: Vec<(i64, i64)> = Vec::new();
        for e in &self.plan.reg {
            let (Some(ts), Some(td)) = (time_of(e.src), time_of(e.dst)) else {
                continue;
            };
            let (stage_s, row_s) = split(ts);
            let (stage_d, row_d) = split(td);
            let d_ker = e.distance + stage_d - stage_s;
            if d_ker >= 1 {
                let s = sync_delay(row_s, row_d, e.lat_src, self.costs);
                r_all.push((s, row_s));
            }
        }

        // M_all: non-preserved inter-iteration memory flow dependences
        // among placed ∪ {v}.
        let mut probs: Vec<f64> = Vec::new();
        for e in &self.plan.mem {
            let (Some(ts), Some(td)) = (time_of(e.src), time_of(e.dst)) else {
                continue;
            };
            let (stage_s, rx) = split(ts);
            let (stage_d, ry) = split(td);
            let d_ker = e.distance + stage_d - stage_s;
            if d_ker < 1 {
                continue;
            }
            let kept = r_all
                .iter()
                .any(|&(s_uv, row_u)| preserves(s_uv, row_u, rx, ry, e.lat_src, d_ker));
            if !kept {
                probs.push(e.prob);
            }
        }
        let misspec = misspec_probability(probs);
        if misspec <= self.p_max {
            Probe::Accept {
                sync_max,
                misspec: Some(misspec),
            }
        } else {
            Probe::C2Reject { sync_max, misspec }
        }
    }
}

impl SlotPolicy for TmsPolicy<'_> {
    fn accept(&self, ddg: &Ddg, ps: &PartialSchedule, v: InstId, c: i64) -> bool {
        self.probe(ddg, ps, v, c).accepted()
    }

    fn accept_probed(
        &self,
        ddg: &Ddg,
        ps: &PartialSchedule,
        v: InstId,
        c: i64,
        probe: &mut Probe,
    ) -> bool {
        *probe = self.probe(ddg, ps, v, c);
        probe.accepted()
    }

    /// Revalidation rules per [`Probe`] variant. Each rule asks: does
    /// the cold engine, evaluated at the identical partial-schedule
    /// state, reach the *same verdict* under the current knobs? (Not
    /// necessarily for the same reason — a slot recorded as a C2
    /// rejection may now reject via C1; the verdict, and therefore the
    /// engine's next action, is unchanged.)
    fn probe_holds(&self, probe: &Probe) -> bool {
        let cd = self.c_delay as i64;
        match *probe {
            Probe::Opaque => false,
            // Some new register dependence still exceeds the threshold.
            Probe::C1Reject { sync } => sync > cd,
            // Either the register sync or the misspeculation product
            // still rejects.
            Probe::C2Reject { sync_max, misspec } => sync_max > cd || misspec > self.p_max,
            // Both conditions still pass (`misspec == None` means C2
            // was vacuous — a placement fact, stable across knobs).
            Probe::Accept { sync_max, misspec } => {
                sync_max <= cd && misspec.is_none_or(|q| q <= self.p_max)
            }
        }
    }

    /// Closed-form windowed scan. When the precondition holds (see
    /// [`fast_scan_base`](TmsPolicy::fast_scan_base)) the placed state
    /// is projected into [`ScanEntry`]s once, and each candidate cycle
    /// is a handful of compares instead of a full [`probe`]
    /// (TmsPolicy::probe) — the C2 machinery, per-cycle endpoint
    /// splits and per-entry kind branches all drop out. Every cycle's
    /// verdict (and recorded probe) is asserted against the per-slot
    /// probe in debug builds.
    fn scan_window(
        &self,
        ddg: &Ddg,
        ps: &PartialSchedule,
        v: InstId,
        cycles: &[i64],
        mut probes: Option<&mut Vec<Probe>>,
    ) -> Option<i64> {
        let Some(lowest) = cycles.iter().copied().min() else {
            self.last_scan_fast.set(false);
            return None;
        };
        let Some(base) = self.fast_scan_base(ps, v, lowest) else {
            self.last_scan_fast.set(false);
            return generic_scan_window(self, ddg, ps, v, cycles, probes);
        };
        self.last_scan_fast.set(true);
        let ii = ps.ii() as i64;
        self.build_scan_entries(ps, v, base, ii);
        let entries = self.scan_buf.borrow();
        let cd = self.c_delay as i64;
        for &c in cycles {
            if !ps.fits(ddg, v, c) {
                continue;
            }
            let dt = c - base;
            let probe = match Self::eval_scan(&entries, dt / ii, dt % ii, cd) {
                Ok(sync_max) => Probe::Accept {
                    sync_max,
                    misspec: None,
                },
                Err(sync) => Probe::C1Reject { sync },
            };
            #[cfg(debug_assertions)]
            {
                let mut want = Probe::Opaque;
                self.accept_probed(ddg, ps, v, c, &mut want);
                debug_assert_eq!(
                    probe, want,
                    "windowed fast scan diverged from probe at cycle {c}"
                );
            }
            if let Some(rec) = probes.as_deref_mut() {
                rec.push(probe);
            }
            if probe.accepted() {
                return Some(c);
            }
        }
        None
    }

    /// Closed-form forced scan: same fast path as
    /// [`scan_window`](SlotPolicy::scan_window) over `floor..floor+II`
    /// without the resource check (forced placement ejects occupants
    /// afterwards).
    fn scan_forced(
        &self,
        ddg: &Ddg,
        ps: &PartialSchedule,
        v: InstId,
        floor: i64,
        mut probes: Option<&mut Vec<Probe>>,
    ) -> Option<i64> {
        let Some(base) = self.fast_scan_base(ps, v, floor) else {
            self.last_scan_fast.set(false);
            return generic_scan_forced(self, ddg, ps, v, floor, probes);
        };
        self.last_scan_fast.set(true);
        let ii = ps.ii() as i64;
        self.build_scan_entries(ps, v, base, ii);
        let entries = self.scan_buf.borrow();
        let cd = self.c_delay as i64;
        for x in floor..floor + ii {
            let dt = x - base;
            let probe = match Self::eval_scan(&entries, dt / ii, dt % ii, cd) {
                Ok(sync_max) => Probe::Accept {
                    sync_max,
                    misspec: None,
                },
                Err(sync) => Probe::C1Reject { sync },
            };
            #[cfg(debug_assertions)]
            {
                let mut want = Probe::Opaque;
                self.accept_probed(ddg, ps, v, x, &mut want);
                debug_assert_eq!(
                    probe, want,
                    "forced fast scan diverged from probe at cycle {x}"
                );
            }
            if let Some(rec) = probes.as_deref_mut() {
                rec.push(probe);
            }
            if probe.accepted() {
                return Some(x);
            }
        }
        None
    }

    fn scan_was_fast(&self) -> bool {
        self.last_scan_fast.get()
    }
}

/// Fetch (or create) the warm-start log for an II row. A row visited
/// before returns its own log; a fresh row seeds from a *clone* of the
/// nearest smaller II's log — the engine demotes it to a cross-II guide
/// (`crate::warm`'s module docs) — or starts empty when no smaller row
/// exists. Cloning (rather than moving) keeps the smaller row warm for
/// the out-of-numeric-order revisits the cost shells produce.
fn warm_log_for(logs: &mut BTreeMap<u32, AttemptLog>, ii: u32) -> &mut AttemptLog {
    if !logs.contains_key(&ii) {
        let seed = logs
            .range(..ii)
            .next_back()
            .map(|(_, log)| log.clone())
            .unwrap_or_default();
        logs.insert(ii, seed);
    }
    logs.get_mut(&ii).expect("entry just ensured")
}

/// Run TMS on a loop.
///
/// Candidates `(II, C_delay)` are visited in increasing `F` (exact
/// integer cost keys), each tried with every configured `P_max`; the
/// first success is, by construction, a minimum-`F` schedule — the
/// equivalent of Figure 3's iterative `F_min` increase.
pub fn schedule_tms(
    ddg: &Ddg,
    machine: &MachineModel,
    model: &CostModel,
    config: &TmsConfig,
) -> Result<TmsResult, SchedError> {
    schedule_tms_traced(ddg, machine, model, config, &Trace::disabled())
}

/// [`schedule_tms`] with instrumentation: a span per `(II, C_delay,
/// P_max)` attempt, per-phase timers (ordering, LDP, slot placement,
/// verification), and counters for every attempt outcome keyed by
/// [`Diagnostic::kind`].
///
/// Counters and value histograms are recorded only in the serial fold
/// (never in worker threads), so the metrics snapshot is bit-identical
/// at every [`TmsConfig::parallelism`] level; span/timer *durations*
/// are wall-clock and carry no such guarantee.
pub fn schedule_tms_traced(
    ddg: &Ddg,
    machine: &MachineModel,
    model: &CostModel,
    config: &TmsConfig,
    trace: &Trace,
) -> Result<TmsResult, SchedError> {
    let m = mii(ddg, machine);
    if m == u32::MAX {
        trace.count("tms.unschedulable", 1);
        return Err(SchedError::Unschedulable {
            loop_name: ddg.name().to_string(),
        });
    }
    let order = trace.time("tms.phase.order", || sms_order(ddg));
    let ldp = trace.time("tms.phase.ldp", || AcyclicPriorities::compute(ddg).ldp);
    let mut scratch = SchedScratch::new();

    // SMS runs first: its II floors the candidate ceiling (on loops
    // where ejection pressure pushes SMS well past both MII and LDP, a
    // ceiling of max(MII, LDP) would leave TMS no feasible candidate at
    // all), and its schedule is the ready-made fallback. The node order
    // and LDP are attempt-invariant, so they are computed once here and
    // shared with every candidate attempt below.
    let sms = trace.time("tms.phase.sms_baseline", || {
        schedule_sms_with(ddg, machine, order, ldp, &mut scratch)
    })?;
    let order = &sms.order;
    // Attempt-invariant priority state derived from the SMS order,
    // computed once and shared by every candidate attempt.
    let pos = order_priorities(order, ddg.num_insts());
    let ii_max = config
        .ii_max
        .unwrap_or((ldp as u32).max(m).max(sms.schedule.ii() + 2));
    let max_lat = ddg.insts().iter().map(|i| i.latency).max().unwrap_or(1);
    let cd_max = config
        .c_delay_max
        .unwrap_or(ii_max + max_lat + model.costs.c_reg_com);
    // Candidates are generated lazily in cost order, one shell at a
    // time: a search that resolves (or prunes) early never materialises
    // or sorts the full grid.
    let mut stream = model.candidate_stream(m, ii_max, cd_max, config.dense_candidates);

    let sms_achieved = crate::metrics::achieved_c_delay(ddg, &sms.schedule, &model.costs);
    let sms_key = model.cost_key(sms.schedule.ii(), sms_achieved);

    // Probe geometry is candidate-invariant: one plan serves every
    // `(II, C_delay, P_max)` attempt, serial and wavefront alike.
    let probe_plan = ProbePlan::new(ddg);

    // Placement-independent C1 floor on the C_delay threshold. A self
    // register-flow dependence with distance ≥ 1 always forms an
    // inter-iteration dependence whose producer and consumer rows
    // coincide, so its synchronisation delay is the slot-independent
    // constant `latency + C_reg_com`: every `accept` probe for that
    // node rejects whenever `C_delay` sits below it, windowed and
    // forced placements alike. Attempts under the floor therefore
    // cannot place the node at any slot — the engine would burn its
    // whole ejection budget rediscovering a rejection the edge list
    // already proves, so `run_attempt` short-circuits them to the
    // identical `NoSchedule` outcome.
    let c_delay_floor: i64 = ddg
        .edges()
        .iter()
        .filter(|e| e.is_register_flow() && e.src == e.dst && e.distance >= 1)
        .map(|e| sync_delay(0, 0, ddg.inst(e.src).latency, &model.costs))
        .max()
        .unwrap_or(i64::MIN);

    // Attempts are indexed candidate-major: index `idx` is candidate
    // `idx / P` tried with `p_max_values[idx % P]` — exactly the
    // iteration order of the nested serial loops.
    let p_count = config.p_max_values.len();
    let total_indices = stream.total().saturating_mul(p_count);
    // Branch-and-bound cuts (see `TmsConfig::prune`). The cost bound
    // needs the SMS incumbent; the `P_max` dedup only needs the loop to
    // be free of memory-flow dependences.
    let cost_bound = (config.prune && config.allow_sms_fallback).then_some(sms_key);
    let p_max_dup = config.prune && !ddg.edges().iter().any(|e| e.is_memory_flow());
    // The degradation budget and the safety cap both limit *dispatched*
    // attempts (pruned candidates cost nothing); only the budget is
    // reported as a cut, because exhausting it degrades to SMS while
    // the safety cap falls through to the ordinary resolution paths.
    let budget = config.attempt_budget.unwrap_or(usize::MAX);
    let attempt_cap = budget.min(config.max_attempts);
    let mut budget_cut = false;
    let search_started = std::time::Instant::now();
    let past_deadline = || {
        config
            .deadline
            .is_some_and(|d| search_started.elapsed() >= d)
    };
    let mut deadline_cut = false;

    // One `(II, C_delay, P_max)` attempt. Pure given its index: reads
    // only attempt-invariant state (plus the frames cache and a
    // per-worker scratch), so attempts can run in any order on any
    // thread and yield identical outcomes.
    let run_attempt = |ii: u32,
                       c_delay: u32,
                       key: CostKey,
                       p_max: f64,
                       frames: Option<&TimeFrames>,
                       scratch: &mut SchedScratch,
                       log: Option<&mut AttemptLog>|
     -> (AttemptOutcome, Option<Box<PlaceProfile>>) {
        // Per-attempt placement profile (`TmsConfig::profile`): a pure
        // function of the attempt index like the outcome itself, so the
        // serial fold of consumed attempts' profiles is bit-identical
        // at every worker count.
        let mut prof = config
            .profile
            .then(|| Box::new(PlaceProfile::new(ddg.num_insts())));
        let mut span = trace.span("tms", "attempt");
        span.arg("loop", ddg.name());
        span.arg("ii", ii);
        span.arg("c_delay", c_delay);
        span.arg("p_max", p_max);
        let Some(frames) = frames else {
            return (AttemptOutcome::NoSchedule, prof);
        };
        if (c_delay as i64) < c_delay_floor {
            // A self reg-flow dependence needs sync ≤ C_delay at every
            // slot; below the floor the engine provably cannot place
            // its node (same outcome, decided without running it).
            return (AttemptOutcome::NoSchedule, prof);
        }
        let policy = TmsPolicy::new(&model.costs, &probe_plan, c_delay, p_max);
        let t_place = prof.as_ref().map(|_| std::time::Instant::now());
        let prof_ref = prof.as_deref_mut();
        let placed = trace.time("tms.phase.place", || match (log, prof_ref) {
            // Warm path (serial search only): replay the previous
            // attempt's validated decision prefix, run cold from the
            // first divergence. Byte-identical to the cold call below.
            (Some(log), None) => {
                try_schedule_logged(ddg, machine, ii, order, &pos, &policy, frames, scratch, log)
            }
            // Profiled attempts run cold (replay skips the scans being
            // attributed; the callers pass no log when profiling).
            (_, Some(p)) => {
                try_schedule_profiled(ddg, machine, ii, order, &pos, &policy, frames, scratch, p)
            }
            (None, None) => {
                try_schedule_prepared(ddg, machine, ii, order, &pos, &policy, frames, scratch)
            }
        });
        if let Some(p) = prof.as_deref() {
            // Sub-phase timers, one sample per attempt — wall clock,
            // excluded from the deterministic snapshot like
            // `tms.phase.*` — plus the Perfetto counter tracks for
            // per-attempt place time and deepest eject chain.
            let place_ns = t_place.unwrap().elapsed().as_nanos() as u64;
            trace.time_ns("tms.place.scan", p.scan_ns);
            trace.time_ns("tms.place.probe", p.probe_ns);
            trace.time_ns("tms.place.fit", p.fit_ns);
            trace.time_ns("tms.place.eject", p.eject_ns);
            trace.time_ns("tms.place.force", p.force_ns);
            trace.counter_sample_now(
                "tms.counter",
                || "tms.place.attempt_ns".to_string(),
                place_ns,
            );
            trace.counter_sample_now(
                "tms.counter",
                || "tms.place.max_eject_chain".to_string(),
                p.attempt_max_chain(),
            );
        }
        let Some(schedule) = placed else {
            return (AttemptOutcome::NoSchedule, prof);
        };
        // Post-search verification on the *normalised* kernel: the
        // incremental C1/C2 checks run against provisional stages, so
        // the final kernel can exceed the thresholds the slots were
        // accepted under. Every rejection is recorded with its
        // diagnostics instead of vanishing into a bare `continue`.
        let min_stages = (ldp as u32).div_ceil(ii.max(1)).max(1);
        let limits = VerifyLimits {
            c_delay: Some(c_delay),
            p_max: Some(p_max),
            max_stages: Some(min_stages + config.max_extra_stages),
        };
        let t_verify = prof.as_ref().map(|_| std::time::Instant::now());
        let diagnostics = trace.time("tms.phase.verify", || {
            verify_schedule(ddg, &schedule, machine, &model.costs, &limits)
        });
        if let Some(p) = prof.as_deref_mut() {
            let verify_ns = t_verify.unwrap().elapsed().as_nanos() as u64;
            p.verify_ns += verify_ns;
            trace.time_ns("tms.place.verify", verify_ns);
        }
        if !diagnostics.is_empty() {
            return (AttemptOutcome::Rejected(diagnostics), prof);
        }
        let achieved = crate::metrics::achieved_c_delay(ddg, &schedule, &model.costs);
        let tms_key = model.cost_key(ii, achieved);
        // The achieved C_delay is ≤ the candidate threshold and the
        // cost key is monotone in C_delay, so the candidate key is an
        // upper bound on the realised key.
        debug_assert!(
            tms_key <= key,
            "achieved key {tms_key:?} exceeds candidate bound {key:?}"
        );
        (AttemptOutcome::Built { schedule, tms_key }, prof)
    };

    // Fold one outcome into the serial accounting. Mirrors the serial
    // loop body exactly: every dispatched attempt counts, rejections are
    // logged in attempt order, and the first *accepted* `Built` outcome
    // resolves the search. A schedule that builds but loses to the SMS
    // baseline under the same eq. 2 cost does *not* resolve: the search
    // keeps going, because a later candidate in cost order can still
    // realise a cheaper key (its achieved C_delay may undercut the
    // threshold it was tried at). This is also what makes the cost
    // lower bound admissible — pruning a candidate whose floor exceeds
    // the SMS key can only skip lost-to-baseline outcomes.
    let mut attempts = 0usize;
    let mut rejected = 0usize;
    let mut lost = 0usize;
    let mut rejects: Vec<CandidateReject> = Vec::new();
    let mut resolution: Option<Accepted> = None;
    let fold = |ii: u32,
                c_delay: u32,
                p_max: f64,
                outcome: AttemptOutcome,
                attempts: &mut usize,
                rejected: &mut usize,
                lost: &mut usize,
                rejects: &mut Vec<CandidateReject>|
     -> Option<Accepted> {
        *attempts += 1;
        trace.count("tms.attempts", 1);
        match outcome {
            AttemptOutcome::NoSchedule => {
                trace.count("tms.reject.no-schedule", 1);
                None
            }
            AttemptOutcome::Rejected(diagnostics) => {
                *rejected += 1;
                trace.count("tms.rejected", 1);
                for d in &diagnostics {
                    trace.count_keyed("tms.reject.", d.kind(), 1);
                }
                if rejects.len() < REJECT_LOG_CAP {
                    rejects.push(CandidateReject {
                        ii,
                        c_delay,
                        p_max,
                        diagnostics,
                    });
                }
                None
            }
            AttemptOutcome::Built { schedule, tms_key } => {
                if config.allow_sms_fallback && sms_key < tms_key {
                    *lost += 1;
                    trace.count("tms.reject.lost-to-baseline", 1);
                    None
                } else {
                    Some(Accepted {
                        schedule,
                        ii,
                        c_delay,
                        p_max,
                        tms_key,
                    })
                }
            }
        }
    };

    // Classify one candidate-major index without dispatching it.
    // Returns which prune (if any) removes it; classification order is
    // fixed (P_max dedup before cost bound) so the per-kind counters
    // are deterministic. `None` means the stream ran out of candidates
    // before `total_indices` — possible only after adaptive coarsening
    // shrank the grid (`total()` is then an upper bound).
    let mut pruned_cost = 0usize;
    let mut pruned_pmax = 0usize;
    let classify = |stream: &mut CandidateStream,
                    idx: usize|
     -> Option<(u32, u32, CostKey, f64, Option<PruneKind>)> {
        let p_idx = idx % p_count;
        let &(ii, c_delay, key) = stream.try_get(idx / p_count)?;
        let p_max = config.p_max_values[p_idx];
        let prune = if p_max_dup && p_idx != 0 {
            Some(PruneKind::PMaxDup)
        } else if cost_bound.is_some_and(|b| model.floor_key(ii) > b) {
            Some(PruneKind::CostBound)
        } else {
            None
        };
        Some((ii, c_delay, key, p_max, prune))
    };

    // Scheduling windows depend only on (DDG, II), not on the C_delay /
    // P_max of the attempt, so the ASAP/ALAP frames are memoised per II
    // across the whole search — including across adjacent II rows the
    // cost shells revisit out of numeric order.
    let mut frames_cache: HashMap<u32, Option<TimeFrames>> = HashMap::new();
    // Per-II decision logs for the warm-started serial search (ordered
    // so a new II row can seed from the nearest smaller one — see
    // `warm_log_for`), plus the reuse accounting recorded as
    // `tms.reuse.*` after the search. The wavefront path keeps
    // per-worker log maps in `par_map_with_slots` slots instead, and
    // contributes nothing to the reuse counters: which attempts warmed
    // a worker's slot is scheduling-dependent, and the counters promise
    // bit-identity across worker counts.
    let mut warm_logs: BTreeMap<u32, AttemptLog> = BTreeMap::new();
    let mut warm_attempts = 0u64;
    let mut steps_replayed = 0u64;
    let mut steps_executed = 0u64;
    let mut cross_attempts = 0u64;
    let mut cross_steps = 0u64;
    // Adaptive-density accounting (serial search only; all stay zero
    // when `TmsConfig::adaptive` is off or in the wavefront).
    let mut sync_rejections = 0u64;
    let mut coarsened = 0u64;

    // Folded placement profile (`TmsConfig::profile`): merged serially,
    // in candidate-index order, over exactly the consumed attempts —
    // the same set every worker count consumes — so the attribution
    // counters are bit-identical at `--jobs 1` and `--jobs N`.
    let mut search_prof: Option<PlaceProfile> =
        config.profile.then(|| PlaceProfile::new(ddg.num_insts()));

    let workers = config.parallelism.workers();
    if workers <= 1 || total_indices <= 1 {
        // Serial search: lazily generated candidates, lazily computed
        // frames, one persistent scratch. Prunes cost no attempt: the
        // budget / deadline gates sit *after* the prune checks so a
        // pruned index never trips them.
        //
        // Adaptive grid density (`TmsConfig::adaptive`): a sliding
        // window of dispatched attempts watches for rejection evidence
        // that the low-`C_delay` region is sync-infeasible — the engine
        // failing to place anything at all, or a built kernel rejected
        // for `sync-exceeded` — and, once a window is dominated by it,
        // latches the stream into a coarser `C_delay` ladder outside a
        // refinement band near the SMS incumbent's key. Serial-only
        // (the wavefront search never coarsens), and keyed to the
        // loop's workload family: DOALL-like loops carry few carried
        // sync edges, so rejection pressure there is weak evidence and
        // gets a long window with gentle coarsening, while speculative
        // DOACROSS loops reject for sync reasons structurally and get a
        // short window with an aggressive ladder. After a latch the
        // watcher keeps running; sustained pressure escalates by
        // re-latching at double the factor (capped) — re-latching
        // composes, see `CandidateStream::coarsen`.
        let (adapt_window, adapt_factor) = match tms_ddg::classify(ddg).class {
            tms_ddg::LoopClass::Doall | tms_ddg::LoopClass::DoallWithInductions => (24u32, 2u32),
            tms_ddg::LoopClass::DoacrossRegister => (16, 4),
            tms_ddg::LoopClass::DoacrossSpeculativeMemory => (12, 4),
        };
        const ADAPT_FACTOR_CAP: u32 = 8;
        let adapt_margin = (sms_key.0 / 8).max(4);
        let mut adapt_seen = 0u32;
        let mut adapt_sync = 0u32;
        let mut coarsen_factor = 0u32;
        let mut idx = 0usize;
        while idx < total_indices {
            let Some((ii, c_delay, key, p_max, prune)) = classify(&mut stream, idx) else {
                break; // coarsened stream exhausted below total()
            };
            match prune {
                Some(PruneKind::PMaxDup) => {
                    pruned_pmax += 1;
                    idx += 1;
                    continue;
                }
                Some(PruneKind::CostBound) => {
                    pruned_cost += 1;
                    idx += 1;
                    continue;
                }
                None => {}
            }
            if attempts >= budget {
                budget_cut = true;
                break;
            }
            if attempts >= config.max_attempts {
                break;
            }
            if past_deadline() {
                deadline_cut = true;
                break;
            }
            let frames = frames_cache
                .entry(ii)
                .or_insert_with(|| trace.time("tms.phase.frames", || TimeFrames::compute(ddg, ii)))
                .as_ref();
            // Profiled searches run every attempt cold: warm replay
            // skips the window scans and probes being attributed, so a
            // warm attempt would under-count exactly the hot paths the
            // profiler exists to expose. Cold and warm attempts build
            // byte-identical schedules, so only the timings shift.
            let (outcome, attempt_prof) = if config.warm_start && !config.profile {
                let log = warm_log_for(&mut warm_logs, ii);
                // The floor/no-frames short-circuits in `run_attempt`
                // return without entering the engine; zeroing here keeps
                // the reuse accounting from re-counting the previous
                // attempt's figures on such an early exit.
                log.replayed = 0;
                log.executed = 0;
                log.cross_replayed = 0;
                let outcome = run_attempt(
                    ii,
                    c_delay,
                    key,
                    p_max,
                    frames,
                    &mut scratch,
                    Some(&mut *log),
                );
                if log.replayed > 0 {
                    warm_attempts += 1;
                }
                steps_replayed += log.replayed;
                steps_executed += log.executed;
                if log.cross_replayed > 0 {
                    cross_attempts += 1;
                }
                cross_steps += log.cross_replayed;
                outcome
            } else {
                run_attempt(ii, c_delay, key, p_max, frames, &mut scratch, None)
            };
            if let (Some(sp), Some(p)) = (search_prof.as_mut(), attempt_prof.as_deref()) {
                sp.merge(p);
            }
            // The fold consumes the outcome, so the adaptive evidence is
            // taken off it first: an engine that placed nothing at all
            // (a knob-independent failure persists across the whole
            // ladder; a knob-dependent one at low `C_delay` is C1
            // rejection pressure), or a built kernel rejected for
            // `sync-exceeded`.
            let sync_infeasible = match &outcome {
                AttemptOutcome::NoSchedule => true,
                AttemptOutcome::Rejected(ds) => ds
                    .iter()
                    .any(|d| matches!(d, Diagnostic::SyncExceeded { .. })),
                AttemptOutcome::Built { .. } => false,
            };
            resolution = fold(
                ii,
                c_delay,
                p_max,
                outcome,
                &mut attempts,
                &mut rejected,
                &mut lost,
                &mut rejects,
            );
            if resolution.is_some() {
                break;
            }
            if config.adaptive {
                if sync_infeasible {
                    sync_rejections += 1;
                }
                if coarsen_factor < ADAPT_FACTOR_CAP {
                    adapt_seen += 1;
                    if sync_infeasible {
                        adapt_sync += 1;
                    }
                    if adapt_seen >= adapt_window {
                        if adapt_sync * 2 > adapt_seen {
                            let factor = if coarsen_factor == 0 {
                                adapt_factor
                            } else {
                                (coarsen_factor * 2).min(ADAPT_FACTOR_CAP)
                            };
                            if factor > coarsen_factor {
                                stream.coarsen(factor, sms_key, adapt_margin);
                                coarsen_factor = factor;
                                coarsened += 1;
                            }
                        }
                        adapt_seen = 0;
                        adapt_sync = 0;
                    }
                }
            }
            idx += 1;
        }
    } else {
        // Wavefront search: collect the next chunk of *dispatchable*
        // cost-ordered attempts (prunes are classified serially while
        // building the chunk and attributed to the spec that follows
        // them), run them on the worker pool, then fold the outcomes in
        // index order. The first resolving attempt wins and everything
        // after it in the chunk — prunes included — is discarded:
        // byte-for-byte the serial result, because each attempt is
        // independent and the fold consumes them in serial order.
        // Chunks ramp up so a success among the cheap early candidates
        // wastes little work.
        let mut idx = 0usize;
        let mut chunk = workers;
        // Persistent per-worker state: the usual scheduling scratch plus
        // a per-II warm-log map, carried across chunks so each worker
        // warm-starts from the attempts *it* ran previously. The slot
        // contents are scheduling-dependent (which worker gets which
        // spec is a race), but every attempt is warm≡cold byte-identical
        // (`tests/bnb_equivalence.rs`), so the serial fold below cannot
        // observe the difference.
        let mut worker_state: Vec<(SchedScratch, BTreeMap<u32, AttemptLog>)> = Vec::new();
        'wave: while idx < total_indices {
            if past_deadline() {
                deadline_cut = true;
                break;
            }
            let room = attempt_cap.saturating_sub(attempts);
            if room == 0 {
                // No attempt may be dispatched; scan forward through
                // prunes to learn whether a dispatchable index remains
                // (that is what distinguishes a budget cut from a fully
                // swept range), counting the prunes exactly as the
                // serial loop would before it hit the gate.
                while idx < total_indices {
                    let Some((_, _, _, _, prune)) = classify(&mut stream, idx) else {
                        idx = total_indices; // stream exhausted: fully swept
                        break;
                    };
                    match prune {
                        Some(PruneKind::PMaxDup) => pruned_pmax += 1,
                        Some(PruneKind::CostBound) => pruned_cost += 1,
                        None => break,
                    }
                    idx += 1;
                }
                if idx < total_indices && attempts >= budget {
                    budget_cut = true;
                }
                break;
            }
            // Build the chunk: up to `chunk` dispatchable specs, each
            // carrying the prune counts encountered since the previous
            // spec so the fold can replay them in serial order.
            let want = chunk.min(room);
            let mut specs: Vec<AttemptSpec> = Vec::with_capacity(want);
            let mut tail_cost = 0usize;
            let mut tail_pmax = 0usize;
            while idx < total_indices && specs.len() < want {
                let Some((ii, c_delay, key, p_max, prune)) = classify(&mut stream, idx) else {
                    idx = total_indices; // stream exhausted: fully swept
                    break;
                };
                match prune {
                    Some(PruneKind::PMaxDup) => tail_pmax += 1,
                    Some(PruneKind::CostBound) => tail_cost += 1,
                    None => {
                        specs.push(AttemptSpec {
                            ii,
                            c_delay,
                            key,
                            p_max,
                            pruned_cost_before: tail_cost,
                            pruned_pmax_before: tail_pmax,
                        });
                        tail_cost = 0;
                        tail_pmax = 0;
                    }
                }
                idx += 1;
            }
            if specs.is_empty() {
                // The whole remaining range pruned away.
                pruned_cost += tail_cost;
                pruned_pmax += tail_pmax;
                continue;
            }
            // Frames for the chunk's IIs are filled serially up front;
            // workers then share the cache read-only.
            for spec in &specs {
                frames_cache.entry(spec.ii).or_insert_with(|| {
                    trace.time("tms.phase.frames", || TimeFrames::compute(ddg, spec.ii))
                });
            }
            let cache = &frames_cache;
            let outcomes = par_map_with_slots(
                config.parallelism,
                &specs,
                &mut worker_state,
                || (SchedScratch::new(), BTreeMap::new()),
                |(scratch, logs), _, spec| {
                    let frames = cache.get(&spec.ii).and_then(|f| f.as_ref());
                    // Profiled attempts run cold here too — see the
                    // serial loop; per-attempt profiles come back with
                    // the outcomes and are folded below in spec order.
                    let log = (config.warm_start && !config.profile).then(|| {
                        let log = warm_log_for(logs, spec.ii);
                        log.replayed = 0;
                        log.executed = 0;
                        log.cross_replayed = 0;
                        log
                    });
                    run_attempt(
                        spec.ii,
                        spec.c_delay,
                        spec.key,
                        spec.p_max,
                        frames,
                        scratch,
                        log,
                    )
                },
            );
            for (spec, (outcome, attempt_prof)) in specs.iter().zip(outcomes) {
                pruned_cost += spec.pruned_cost_before;
                pruned_pmax += spec.pruned_pmax_before;
                if past_deadline() {
                    deadline_cut = true;
                    break 'wave;
                }
                // Merge before the fold so the resolving attempt's own
                // profile is included — the same set of attempts the
                // serial search would have consumed.
                if let (Some(sp), Some(p)) = (search_prof.as_mut(), attempt_prof.as_deref()) {
                    sp.merge(p);
                }
                resolution = fold(
                    spec.ii,
                    spec.c_delay,
                    spec.p_max,
                    outcome,
                    &mut attempts,
                    &mut rejected,
                    &mut lost,
                    &mut rejects,
                );
                if resolution.is_some() {
                    break 'wave;
                }
            }
            // The chunk folded without resolving; the prunes past its
            // last spec are now committed too.
            pruned_cost += tail_cost;
            pruned_pmax += tail_pmax;
            chunk = (chunk * 2).min(workers * 8);
        }
    }

    // Pruning counters are recorded once, serially, after the search:
    // their values come from the serial-order accounting above, so the
    // trace is bit-identical at every worker count. `count` always
    // inserts the key, so the schema holds even at zero.
    let pruned = pruned_cost + pruned_pmax;
    trace.count("tms.pruned.cost-bound", pruned_cost as u64);
    trace.count("tms.pruned.p-max-dup", pruned_pmax as u64);
    // Warm-start reuse accounting: attempts that replayed ≥ 1 recorded
    // step, the step totals replayed vs executed cold, and the cross-II
    // figures (attempts whose guide rebuilt ≥ 1 window from transferred
    // facts, and those window-rebuild totals). All zero in the
    // wavefront search — its workers do warm-start, but which attempts
    // hit a worker's slot is scheduling-dependent, so `tms.reuse.*`
    // describes only the serial engine's work saved and, like
    // wall-clock timers, is excluded from the serial≡parallel
    // metric-identity guarantee.
    trace.count("tms.reuse.warm-attempts", warm_attempts);
    trace.count("tms.reuse.cross-ii-attempts", cross_attempts);
    trace.count("tms.reuse.cross-ii-steps-replayed", cross_steps);
    trace.count("tms.reuse.steps-replayed", steps_replayed);
    trace.count("tms.reuse.steps-executed", steps_executed);
    // Adaptive-density accounting: attempts whose outcome evidenced
    // sync-delay infeasibility, how many times the coarsening latch
    // fired (initial latch plus escalating re-latches), and the ladder
    // rungs the coarsened stream dropped. All zero on the default
    // (adaptive-off) path.
    trace.count("tms.adaptive.sync-rejections", sync_rejections);
    trace.count("tms.adaptive.coarsened", coarsened);
    trace.count("tms.adaptive.skipped", stream.skipped());
    trace.record("tms.pruned_per_loop", pruned as u64);
    trace.record("tms.attempts_per_loop", attempts as u64);
    // Wall-clock counter track: attempts spent on each loop, sampled
    // as the scheduler finishes it, so a sweep's hot loops stand out
    // as spikes in Perfetto.
    trace.counter_sample_now(
        "tms.counter",
        || "tms.attempts_per_loop".to_string(),
        attempts as u64,
    );
    // Placement attribution (`TmsConfig::profile`): recorded here, once,
    // from the serially folded profile, so the counters and value
    // histograms land in the deterministic snapshot bit-identically at
    // every worker count. The per-attempt wall-clock timers were flushed
    // inside `run_attempt` and live only in the (non-deterministic)
    // timers section.
    if let Some(p) = &search_prof {
        trace.count("tms.place.scans", p.scans);
        trace.count("tms.place.forced", p.forced);
        trace.count("tms.place.ejected", p.ejected);
        trace.count("tms.place.probe.accept-fast", p.probe_accept_fast);
        trace.count("tms.place.probe.accept-generic", p.probe_accept_generic);
        trace.count("tms.place.probe.c1-reject-fast", p.probe_c1_fast);
        trace.count("tms.place.probe.c1-reject-generic", p.probe_c1_generic);
        trace.count("tms.place.probe.c2-reject-fast", p.probe_c2_fast);
        trace.count("tms.place.probe.c2-reject-generic", p.probe_c2_generic);
        trace.count("tms.place.probe.opaque", p.probe_opaque);
        trace.record_histogram("tms.place.eject_chain_depth", &p.eject_chain_depth);
        trace.record_histogram("tms.place.forced_per_attempt", &p.forced_per_attempt);
    }
    // The search degraded iff its budget (attempts or deadline) cut it
    // short of a resolution; a full, unresolved sweep of the candidate
    // space is the ordinary fallback/unschedulable path instead.
    let exhausted_early = resolution.is_none() && (deadline_cut || budget_cut);
    match resolution {
        Some(Accepted {
            schedule,
            ii,
            c_delay,
            p_max,
            tms_key,
        }) => {
            trace.count("tms.accepted", 1);
            Ok(TmsResult {
                schedule,
                mii: m,
                ldp,
                ii,
                c_delay_threshold: c_delay,
                p_max,
                cost_key: tms_key,
                fell_back_to_sms: false,
                attempts,
                rejected_candidates: rejected,
                rejects,
                pruned,
                lost_to_baseline: lost,
                budget_cut: false,
                deadline_cut: false,
                degraded: None,
                profile: search_prof,
            })
        }
        // An unresolved sweep (every built schedule lost to the SMS
        // baseline, or nothing built at all) falls back to SMS; a
        // budget- or deadline-exhausted search falls back here too —
        // degrading to SMS is an operational answer, erroring would
        // lose the loop.
        None if config.allow_sms_fallback || exhausted_early => {
            let degraded = if exhausted_early {
                trace.count("tms.degraded_to_sms", 1);
                Some(Diagnostic::DegradedToSms {
                    loop_name: ddg.name().to_string(),
                    attempts,
                    budget: config.attempt_budget.unwrap_or(0),
                })
            } else {
                None
            };
            trace.count("tms.fallback", 1);
            let ii = sms.schedule.ii();
            Ok(TmsResult {
                schedule: sms.schedule,
                mii: m,
                ldp,
                ii,
                c_delay_threshold: sms_achieved,
                p_max: 1.0,
                cost_key: sms_key,
                fell_back_to_sms: true,
                attempts,
                rejected_candidates: rejected,
                rejects,
                pruned,
                lost_to_baseline: lost,
                budget_cut,
                deadline_cut,
                degraded,
                profile: search_prof,
            })
        }
        None => {
            trace.count("tms.unschedulable", 1);
            Err(SchedError::NoScheduleFound {
                loop_name: ddg.name().to_string(),
                ii_tried: ii_search_ceiling_from(ddg, m, ldp),
            })
        }
    }
}

/// Result of running one candidate attempt, before the serial-order
/// fold. `Send` so attempts can come back from worker threads.
enum AttemptOutcome {
    /// The engine could not place every instruction.
    NoSchedule,
    /// A schedule was built but the post-search verification rejected
    /// it.
    Rejected(Vec<Diagnostic>),
    /// A verified schedule with its realised cost key.
    Built {
        schedule: Schedule,
        tms_key: CostKey,
    },
}

/// The accepted candidate that resolved the search. A built schedule
/// that loses to the SMS baseline does *not* resolve — the fold counts
/// it and keeps searching — so `None` after the sweep means "fall back
/// to SMS" (or error, with fallback disabled).
struct Accepted {
    schedule: Schedule,
    ii: u32,
    c_delay: u32,
    p_max: f64,
    tms_key: CostKey,
}

/// Which branch-and-bound cut removed a candidate index without
/// dispatching it. Classification order is fixed — `P_max` dedup is
/// checked before the cost bound — so the per-kind counters are
/// deterministic.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PruneKind {
    /// Duplicate attempt: on a loop with no memory-flow dependence the
    /// C2 check is vacuous, so every `P_max` value yields the same
    /// outcome and only the first is dispatched.
    PMaxDup,
    /// The candidate's admissible cost floor already exceeds the SMS
    /// incumbent, so any schedule it built would lose to the baseline.
    CostBound,
}

/// One dispatchable attempt collected for a wavefront chunk, carrying
/// the prune counts encountered since the previous spec so the fold
/// can replay the serial accounting exactly.
struct AttemptSpec {
    ii: u32,
    c_delay: u32,
    key: CostKey,
    p_max: f64,
    pruned_cost_before: usize,
    pruned_pmax_before: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::achieved_c_delay;
    use crate::sms::schedule_sms;
    use tms_ddg::{DdgBuilder, OpClass};
    use tms_machine::ArchParams;

    fn machine() -> MachineModel {
        MachineModel::icpp2008()
    }

    fn model(ncore: u32) -> CostModel {
        CostModel::new(ArchParams::icpp2008().costs, ncore)
    }

    /// A loop shaped like the motivating example: a long recurrence
    /// fixing II, plus a producer feeding the next iteration's start.
    fn motivating_shape() -> Ddg {
        let mut b = DdgBuilder::new("shape");
        let n0 = b.inst_lat("n0", OpClass::Load, 3);
        let n1 = b.inst_lat("n1", OpClass::IntAlu, 1);
        let n2 = b.inst_lat("n2", OpClass::IntAlu, 1);
        let n4 = b.inst_lat("n4", OpClass::IntAlu, 2);
        let n5 = b.inst_lat("n5", OpClass::Store, 1);
        let n6 = b.inst_lat("n6", OpClass::IntAlu, 1);
        b.reg_flow(n0, n1, 0);
        b.reg_flow(n1, n2, 0);
        b.reg_flow(n2, n4, 0);
        b.reg_flow(n4, n5, 0);
        // As in Figure 1, the recurrence closes through a *memory*
        // dependence with small probability — that is exactly what TMS
        // speculates on. RecII is still 8 (modulo scheduling respects
        // memory dependences regardless of probability).
        b.mem_flow(n5, n0, 1, 0.01);
        b.reg_flow(n6, n0, 1); // cross-thread register dependence
        b.reg_flow(n6, n6, 1);
        b.mem_flow(n5, n2, 1, 0.02);
        b.build().unwrap()
    }

    #[test]
    fn tms_reduces_sync_delay_vs_sms() {
        let g = motivating_shape();
        let costs = ArchParams::icpp2008().costs;
        let sms = schedule_sms(&g, &machine()).unwrap();
        let tms = schedule_tms(&g, &machine(), &model(2), &TmsConfig::default()).unwrap();
        assert!(!tms.fell_back_to_sms);
        let sms_cd = achieved_c_delay(&g, &sms.schedule, &costs);
        let tms_cd = achieved_c_delay(&g, &tms.schedule, &costs);
        assert!(
            tms_cd < sms_cd,
            "TMS C_delay {tms_cd} should beat SMS {sms_cd}"
        );
    }

    #[test]
    fn tms_schedule_is_legal() {
        let g = motivating_shape();
        let r = schedule_tms(&g, &machine(), &model(4), &TmsConfig::default()).unwrap();
        assert!(r.schedule.check_legal(&g).is_none());
        assert!(r.schedule.check_resources(&g, &machine()));
    }

    #[test]
    fn tms_honours_its_own_threshold() {
        let g = motivating_shape();
        let costs = ArchParams::icpp2008().costs;
        let r = schedule_tms(&g, &machine(), &model(4), &TmsConfig::default()).unwrap();
        if !r.fell_back_to_sms {
            let achieved = achieved_c_delay(&g, &r.schedule, &costs);
            assert!(
                achieved <= r.c_delay_threshold,
                "achieved {achieved} > threshold {}",
                r.c_delay_threshold
            );
        }
    }

    #[test]
    fn doall_loop_schedules_with_minimal_c_delay() {
        // No loop-carried register deps at all: any C_delay works, so
        // TMS should accept the very first (cheapest) candidate.
        let mut b = DdgBuilder::new("doall");
        let l = b.inst("ld", OpClass::Load);
        let m = b.inst("mul", OpClass::FpMul);
        let s = b.inst("st", OpClass::Store);
        b.reg_flow(l, m, 0);
        b.reg_flow(m, s, 0);
        let g = b.build().unwrap();
        let model = model(4);
        let r = schedule_tms(&g, &machine(), &model, &TmsConfig::default()).unwrap();
        assert!(!r.fell_back_to_sms);
        assert_eq!(r.c_delay_threshold, model.costs.min_c_delay());
    }

    #[test]
    fn zero_p_max_synchronises_everything() {
        // With P_max = 0 any non-preserved speculated dependence is
        // rejected; the loop below can only be scheduled by making the
        // memory dependence preserved (or falling back to SMS whose
        // serialising delays preserve it accidentally).
        let g = motivating_shape();
        let r = schedule_tms(&g, &machine(), &model(4), &TmsConfig::no_speculation()).unwrap();
        // Whatever path was taken, the result must be legal.
        assert!(r.schedule.check_legal(&g).is_none());
    }

    #[test]
    fn exhausted_attempt_budget_degrades_to_sms() {
        let g = motivating_shape();
        // One attempt is nowhere near enough for this loop (its
        // cheapest candidates fail C1/C2), so the search must degrade
        // instead of erroring — even with the fallback switched off.
        let cfg = TmsConfig {
            attempt_budget: Some(1),
            allow_sms_fallback: false,
            ..TmsConfig::default()
        };
        let r = schedule_tms(&g, &machine(), &model(4), &cfg).unwrap();
        assert!(r.fell_back_to_sms);
        assert!(r.attempts <= 1);
        match &r.degraded {
            Some(Diagnostic::DegradedToSms {
                loop_name, budget, ..
            }) => {
                assert_eq!(loop_name, "shape");
                assert_eq!(*budget, 1);
            }
            other => panic!("expected DegradedToSms, got {other:?}"),
        }
        // The degraded schedule is still the legal SMS kernel.
        assert!(r.schedule.check_legal(&g).is_none());
        assert!(r.schedule.check_resources(&g, &machine()));
    }

    #[test]
    fn zero_deadline_degrades_before_the_first_attempt() {
        let g = motivating_shape();
        let cfg = TmsConfig {
            deadline: Some(std::time::Duration::ZERO),
            ..TmsConfig::default()
        };
        let r = schedule_tms(&g, &machine(), &model(4), &cfg).unwrap();
        assert!(r.fell_back_to_sms);
        assert_eq!(r.attempts, 0);
        assert!(matches!(r.degraded, Some(Diagnostic::DegradedToSms { .. })));
    }

    #[test]
    fn generous_budget_is_not_reported_as_degraded() {
        let g = motivating_shape();
        let cfg = TmsConfig {
            attempt_budget: Some(1_000_000),
            ..TmsConfig::default()
        };
        let r = schedule_tms(&g, &machine(), &model(2), &cfg).unwrap();
        assert!(!r.fell_back_to_sms);
        assert!(r.degraded.is_none());
    }

    #[test]
    fn budget_degradation_is_identical_at_any_worker_count() {
        let g = motivating_shape();
        for budget in [1usize, 3, 7] {
            let serial = schedule_tms(
                &g,
                &machine(),
                &model(4),
                &TmsConfig {
                    attempt_budget: Some(budget),
                    ..TmsConfig::default()
                },
            )
            .unwrap();
            let parallel = schedule_tms(
                &g,
                &machine(),
                &model(4),
                &TmsConfig {
                    attempt_budget: Some(budget),
                    parallelism: Parallelism::Jobs(4),
                    ..TmsConfig::default()
                },
            )
            .unwrap();
            assert_eq!(serial.attempts, parallel.attempts, "budget={budget}");
            assert_eq!(
                serial.fell_back_to_sms, parallel.fell_back_to_sms,
                "budget={budget}"
            );
            assert_eq!(serial.degraded, parallel.degraded, "budget={budget}");
            assert_eq!(serial.ii, parallel.ii, "budget={budget}");
        }
    }

    #[test]
    fn budget_and_deadline_cuts_are_reported_distinctly() {
        let g = motivating_shape();
        // Attempt budget: budget_cut set, deadline_cut not.
        let r = schedule_tms(
            &g,
            &machine(),
            &model(4),
            &TmsConfig {
                attempt_budget: Some(1),
                ..TmsConfig::default()
            },
        )
        .unwrap();
        assert!(r.budget_cut, "budget of 1 must report a budget cut");
        assert!(!r.deadline_cut);
        // Wall-clock deadline of zero: deadline_cut set, budget_cut not.
        let r = schedule_tms(
            &g,
            &machine(),
            &model(4),
            &TmsConfig {
                deadline: Some(std::time::Duration::ZERO),
                ..TmsConfig::default()
            },
        )
        .unwrap();
        assert!(r.deadline_cut, "zero deadline must report a deadline cut");
        assert!(!r.budget_cut);
        // An accepted schedule reports neither.
        let r = schedule_tms(&g, &machine(), &model(4), &TmsConfig::default()).unwrap();
        assert!(!r.fell_back_to_sms);
        assert!(!r.budget_cut && !r.deadline_cut);
    }

    /// The branch-and-bound cuts must change accounting only: prune on
    /// and off resolve to the same schedule, and on a loop with no
    /// memory-flow dependence the `P_max` dedup visibly fires.
    #[test]
    fn pruning_preserves_resolution_and_fires_on_mem_free_loops() {
        let mut b = DdgBuilder::new("mem_free");
        let l = b.inst("ld", OpClass::Load);
        let a = b.inst("add", OpClass::IntAlu);
        let s = b.inst("st", OpClass::Store);
        b.reg_flow(l, a, 0);
        b.reg_flow(a, s, 0);
        b.reg_flow(a, a, 1);
        let g = b.build().unwrap();
        let model = model(4);
        for g in [&g, &motivating_shape()] {
            let bnb = schedule_tms(
                g,
                &machine(),
                &model,
                &TmsConfig {
                    prune: true,
                    ..TmsConfig::default()
                },
            )
            .unwrap();
            let exh = schedule_tms(
                g,
                &machine(),
                &model,
                &TmsConfig {
                    prune: false,
                    ..TmsConfig::default()
                },
            )
            .unwrap();
            let times = |r: &TmsResult| -> Vec<i64> {
                (0..g.num_insts())
                    .map(|i| r.schedule.time(InstId(i as u32)))
                    .collect()
            };
            assert_eq!(times(&bnb), times(&exh), "{}", g.name());
            assert_eq!(bnb.ii, exh.ii, "{}", g.name());
            assert_eq!(bnb.cost_key, exh.cost_key, "{}", g.name());
            assert_eq!(bnb.fell_back_to_sms, exh.fell_back_to_sms, "{}", g.name());
            assert_eq!(exh.pruned, 0, "exhaustive search must not prune");
            assert!(
                bnb.attempts <= exh.attempts,
                "pruning may only remove attempts"
            );
        }
        // The mem-free loop resolves on its very first candidate, so
        // nothing is pruned *before* resolution — but rebuilding with a
        // budget forces the sweep deeper and the dedup must bite.
        let deep = schedule_tms(
            &g,
            &machine(),
            &model,
            &TmsConfig {
                prune: true,
                allow_sms_fallback: false,
                p_max_values: vec![0.01, 0.05, 0.20],
                attempt_budget: Some(5),
                ..TmsConfig::default()
            },
        )
        .unwrap();
        // Resolution on the first dispatched attempt leaves pruned at
        // 0; if the loop was instead swept, the dedup fired. Either
        // way, dispatched attempts never repeat a P_max duplicate:
        // attempts ≤ the number of distinct (II, C_delay) candidates
        // examined. A sanity bound suffices here — the equivalence
        // property test covers the exact accounting.
        assert!(deep.attempts <= 5);
    }

    #[test]
    fn lost_to_baseline_keeps_searching_instead_of_resolving() {
        // Any loop where some candidate builds a schedule worse than
        // SMS exercises the continue path; the motivating shape with a
        // generous sweep does. The invariant: a result that did not
        // fall back has a key no worse than SMS, *and* any recorded
        // lost_to_baseline outcomes did not stop the search from
        // finding it.
        let g = motivating_shape();
        let model = model(4);
        let r = schedule_tms(&g, &machine(), &model, &TmsConfig::default()).unwrap();
        let sms = schedule_sms(&g, &machine()).unwrap();
        let sms_key = model.cost_key(
            sms.schedule.ii(),
            achieved_c_delay(&g, &sms.schedule, &ArchParams::icpp2008().costs),
        );
        if !r.fell_back_to_sms {
            assert!(r.cost_key <= sms_key);
        }
        // The accounting identity: every dispatched attempt is exactly
        // one of accepted / no-schedule / rejected / lost-to-baseline.
        // (no-schedule outcomes are the remainder.)
        assert!(r.rejected_candidates + r.lost_to_baseline < r.attempts + 1);
    }

    #[test]
    fn c_delay_floor_short_circuit_matches_engine_outcome() {
        // A high-latency self register-flow recurrence pins the C1
        // synchronisation delay of its own edge at the
        // placement-independent constant `latency + C_reg_com`. The
        // search short-circuits attempts whose C_delay threshold sits
        // below that floor; this test discharges the proof obligation
        // by running the engine directly at a doomed threshold and
        // checking it indeed finds no schedule, then confirms the full
        // search resolves at or above the floor.
        let costs = ArchParams::icpp2008().costs;
        let mut b = DdgBuilder::new("self-recurrence");
        let a = b.inst_lat("a", OpClass::FpDiv, 12);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, a, 1); // sync fixed at 12 + C_reg_com
        b.reg_flow(a, c, 0);
        let g = b.build().unwrap();
        let floor = sync_delay(0, 0, 12, &costs);
        assert_eq!(floor, 12 + costs.c_reg_com as i64);

        let m = machine();
        let model = model(4);
        let order = sms_order(&g);
        let mut scratch = SchedScratch::new();
        let plan = ProbePlan::new(&g);
        for ii in [12u32, 16, 24] {
            let frames = TimeFrames::compute(&g, ii).unwrap();
            for c_delay in [costs.min_c_delay(), floor as u32 - 1] {
                let policy = TmsPolicy::new(&costs, &plan, c_delay, 1.0);
                let got = crate::sms::try_schedule_with(
                    &g,
                    &m,
                    ii,
                    &order,
                    &policy,
                    &frames,
                    &mut scratch,
                );
                assert!(
                    got.is_none(),
                    "engine built a schedule at C_delay {c_delay} < floor {floor} (ii {ii})"
                );
            }
        }

        let r = schedule_tms(&g, &m, &model, &TmsConfig::default()).unwrap();
        if !r.fell_back_to_sms {
            assert!(
                r.c_delay_threshold as i64 >= floor,
                "resolved below the provable C_delay floor"
            );
        }
    }

    #[test]
    fn tms_cost_never_worse_than_sms_cost() {
        let g = motivating_shape();
        let costs = ArchParams::icpp2008().costs;
        let model = model(4);
        let sms = schedule_sms(&g, &machine()).unwrap();
        let sms_key = model.cost_key(
            sms.schedule.ii(),
            achieved_c_delay(&g, &sms.schedule, &costs),
        );
        let tms = schedule_tms(&g, &machine(), &model, &TmsConfig::default()).unwrap();
        assert!(
            tms.cost_key <= sms_key,
            "TMS key {:?} worse than SMS {:?}",
            tms.cost_key,
            sms_key
        );
    }
}
