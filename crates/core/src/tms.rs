//! Thread-sensitive modulo scheduling (TMS) — Figure 3 of the paper.
//!
//! TMS wraps the SMS engine with two additions:
//!
//! 1. an outer enumeration of `(II, C_delay)` pairs in increasing
//!    cost-model order (the `F_min++` loop), and
//! 2. a [`SlotPolicy`] that admits a slot only if the new
//!    inter-iteration register dependences stay within the current
//!    `C_delay` budget (condition **C1**) and the accumulated
//!    misspeculation frequency of non-preserved inter-iteration memory
//!    dependences stays within `P_max` (condition **C2**).

use crate::cost::{misspec_probability, preserves, sync_delay, CostKey, CostModel};
use crate::diagnostics::{verify_schedule, Diagnostic, VerifyLimits};
use crate::order::sms_order;
use crate::par::{par_map_with, Parallelism};
use crate::schedule::{PartialSchedule, Schedule};
use crate::sms::{
    ii_search_ceiling_from, schedule_sms_with, try_schedule_with, SchedError, SchedScratch,
    SlotPolicy,
};
use std::collections::HashMap;
use tms_ddg::analysis::{AcyclicPriorities, TimeFrames};
use tms_ddg::{Ddg, InstId};
use tms_machine::{mii, CostConstants, MachineModel};
use tms_trace::Trace;

/// Tunables of the TMS search.
#[derive(Debug, Clone)]
pub struct TmsConfig {
    /// `P_max` values to try per `(II, C_delay)` candidate, in order.
    /// Figure 3 treats `P_max` as a tunable parameter in `[0,1]`; the
    /// paper tries several and keeps the best schedule.
    pub p_max_values: Vec<f64>,
    /// Upper bound on II. Defaults to `max(MII, LDP)` — the paper notes
    /// II "can be bounded by the longest critical path in the DDG".
    pub ii_max: Option<u32>,
    /// Upper bound on the `C_delay` threshold. Defaults to
    /// `II_max + max latency + C_reg_com` — the largest Definition-2
    /// sync any schedule at `II_max` can produce. (The paper suggests
    /// `II/ncore` as a bound, but its own Table 3 contains loops —
    /// lucas — whose `C_delay` is close to II; the cost ordering makes
    /// large thresholds naturally last, so a generous cap is safe.)
    pub c_delay_max: Option<u32>,
    /// Safety cap on the number of `(II, C_delay, P_max)` attempts.
    pub max_attempts: usize,
    /// Graceful-degradation budget: when set, the search stops after
    /// this many attempts and *degrades* to the SMS schedule (reported
    /// as [`Diagnostic::DegradedToSms`] in [`TmsResult::degraded`])
    /// instead of erroring — even when [`TmsConfig::allow_sms_fallback`]
    /// is off, because running out of budget is an operational
    /// condition, not an infeasibility proof. Unlike
    /// [`TmsConfig::max_attempts`] (a correctness backstop), exhausting
    /// this budget is always reported. Deterministic: the same budget
    /// degrades the same loops at every worker count.
    pub attempt_budget: Option<usize>,
    /// Wall-clock analogue of [`TmsConfig::attempt_budget`]: checked
    /// between attempts (serial) or wavefront chunks (parallel), so a
    /// pathological loop cannot stall a sweep indefinitely. Inherently
    /// machine-dependent — campaigns that need bit-identical reports
    /// use `attempt_budget` instead. `Duration::ZERO` degrades before
    /// the first attempt, deterministically.
    pub deadline: Option<std::time::Duration>,
    /// Try every integer `C_delay` candidate. When false (default) the
    /// grid is thinned for large thresholds — dense near the minimum,
    /// stride 2 beyond `min+8`, stride 4 beyond `min+24` — trading an
    /// `F` within one stride of optimal for an order of magnitude fewer
    /// attempts on recurrence-bound loops.
    pub dense_candidates: bool,
    /// If no candidate admits a schedule, fall back to plain SMS
    /// (always succeeds when the loop is schedulable at all).
    pub allow_sms_fallback: bool,
    /// Stage-count slack accepted beyond the dependence-forced minimum
    /// `⌈LDP / II⌉`. Without a bound the search can satisfy a small
    /// `C_delay` by scattering instructions across many stages — every
    /// split dependence individually synchronises cheaply, but the
    /// schedule drowns in SEND/RECV pairs and register copies. The
    /// paper's TMS instead trades II up ("TMS exhibits a larger II but
    /// a much smaller C_delay", §5.1) and only "slightly larger"
    /// MaxLive; bounding stages forces the same trade.
    pub max_extra_stages: u32,
    /// Worker threads for the candidate search. Candidates are
    /// independent, so the search dispatches them in cost-ordered
    /// wavefront chunks and accepts the lowest-index success — results
    /// (including the `attempts`/`rejects` accounting) are bit-identical
    /// to the serial search at every worker count. Defaults to
    /// [`Parallelism::Serial`]: callers that already parallelise at the
    /// loop level (sweeps, benches) keep the inner search serial.
    pub parallelism: Parallelism,
}

impl Default for TmsConfig {
    fn default() -> Self {
        TmsConfig {
            p_max_values: vec![0.01, 0.05, 0.20],
            ii_max: None,
            c_delay_max: None,
            max_attempts: 200_000,
            attempt_budget: None,
            deadline: None,
            dense_candidates: false,
            allow_sms_fallback: true,
            max_extra_stages: 2,
            parallelism: Parallelism::Serial,
        }
    }
}

impl TmsConfig {
    /// Configuration for the speculation ablation of §5.2: a `P_max`
    /// of exactly 0 forbids any non-preserved speculated dependence, so
    /// every inter-thread memory dependence must end up synchronised
    /// (preserved) in the schedule.
    pub fn no_speculation() -> Self {
        TmsConfig {
            p_max_values: vec![0.0],
            ..Self::default()
        }
    }
}

/// One `(II, C_delay, P_max)` candidate whose schedule was built but
/// failed the post-search verification, with the diagnostics that
/// rejected it.
#[derive(Debug, Clone)]
pub struct CandidateReject {
    /// II of the rejected candidate.
    pub ii: u32,
    /// `C_delay` threshold of the rejected candidate.
    pub c_delay: u32,
    /// `P_max` of the rejected candidate.
    pub p_max: f64,
    /// What the finished kernel violated.
    pub diagnostics: Vec<Diagnostic>,
}

/// At most this many [`CandidateReject`] records are retained per
/// search (the total count is always exact in
/// [`TmsResult::rejected_candidates`]).
pub const REJECT_LOG_CAP: usize = 32;

/// Outcome of a TMS run.
#[derive(Debug, Clone)]
pub struct TmsResult {
    /// The accepted schedule.
    pub schedule: Schedule,
    /// Minimum II of the loop.
    pub mii: u32,
    /// Longest dependence path of the loop.
    pub ldp: i64,
    /// II of the accepted schedule.
    pub ii: u32,
    /// The `C_delay` threshold the accepted candidate used.
    pub c_delay_threshold: u32,
    /// The `P_max` the accepted candidate used.
    pub p_max: f64,
    /// Cost key (`F · ncore`) of the accepted schedule, computed from
    /// its *achieved* `C_delay` (≤ the candidate threshold).
    pub cost_key: CostKey,
    /// True if every thread-sensitive candidate failed and the result
    /// is the plain SMS schedule.
    pub fell_back_to_sms: bool,
    /// `(II, C_delay, P_max)` attempts actually made by the search.
    pub attempts: usize,
    /// Candidates whose schedule was built but rejected by the
    /// post-search verification (exact count; the stored records are
    /// capped at [`REJECT_LOG_CAP`]).
    pub rejected_candidates: usize,
    /// Diagnostics of up to [`REJECT_LOG_CAP`] rejected candidates.
    pub rejects: Vec<CandidateReject>,
    /// Set iff the search was cut short by its attempt/deadline budget
    /// and the result is the degraded SMS fallback (always a
    /// [`Diagnostic::DegradedToSms`]). `None` for accepted candidates
    /// *and* for ordinary cost-driven SMS fallbacks.
    pub degraded: Option<Diagnostic>,
}

/// The TMS slot admission policy (conditions C1 and C2 of Figure 3).
pub struct TmsPolicy<'a> {
    costs: &'a CostConstants,
    c_delay: u32,
    p_max: f64,
}

impl<'a> TmsPolicy<'a> {
    /// Policy for one `(C_delay, P_max)` candidate.
    pub fn new(costs: &'a CostConstants, c_delay: u32, p_max: f64) -> Self {
        TmsPolicy {
            costs,
            c_delay,
            p_max,
        }
    }

    /// Issue time of `n` under the tentative placement of `v` at `c`.
    #[inline]
    fn time_with(ps: &PartialSchedule, v: InstId, c: i64, n: InstId) -> Option<i64> {
        if n == v {
            Some(c)
        } else {
            ps.time(n)
        }
    }
}

impl SlotPolicy for TmsPolicy<'_> {
    fn accept(&self, ddg: &Ddg, ps: &PartialSchedule, v: InstId, c: i64) -> bool {
        let ii = ps.ii() as i64;
        // Rows and stages are normalisation-dependent (the final
        // schedule shifts its minimum time to 0); anchoring the
        // provisional values to the running minimum keeps the C1/C2
        // checks consistent with the final kernel unless a later
        // placement dips below the current minimum — the post-search
        // verification in `schedule_tms` catches that residual case.
        let base = ps.min_time().map_or(c, |m| m.min(c));
        let stage = move |t: i64| (t - base).div_euclid(ii);
        let row = move |t: i64| (t - base).rem_euclid(ii);

        // --- C1: every NEW inter-iteration register dependence formed
        // by placing v must synchronise within C_delay (Definition 2).
        let mut v_adds_mem_dep = false;
        for e in ddg.edges() {
            if e.src != v && e.dst != v {
                continue;
            }
            let (Some(ts), Some(td)) = (
                Self::time_with(ps, v, c, e.src),
                Self::time_with(ps, v, c, e.dst),
            ) else {
                continue;
            };
            let d_ker = e.distance as i64 + stage(td) - stage(ts);
            if d_ker < 1 {
                continue; // intra-thread in the kernel
            }
            if e.is_register_flow() {
                let s = sync_delay(row(ts), row(td), ddg.inst(e.src).latency, self.costs);
                if s > self.c_delay as i64 {
                    return false;
                }
            } else if e.is_memory_flow() {
                v_adds_mem_dep = true;
            }
        }

        // --- C2: only checked when v introduces a new speculated
        // dependence (M_v ≠ ∅ in Figure 3).
        if !v_adds_mem_dep {
            return true;
        }

        // R_all: all inter-iteration register flow dependences among
        // placed ∪ {v}, as (sync, producer-row) pairs for Definition 3.
        let mut r_all: Vec<(i64, i64)> = Vec::new();
        for e in ddg.edges() {
            if !e.is_register_flow() {
                continue;
            }
            let (Some(ts), Some(td)) = (
                Self::time_with(ps, v, c, e.src),
                Self::time_with(ps, v, c, e.dst),
            ) else {
                continue;
            };
            let d_ker = e.distance as i64 + stage(td) - stage(ts);
            if d_ker >= 1 {
                let s = sync_delay(row(ts), row(td), ddg.inst(e.src).latency, self.costs);
                r_all.push((s, row(ts)));
            }
        }

        // M_all: non-preserved inter-iteration memory flow dependences
        // among placed ∪ {v}.
        let mut probs: Vec<f64> = Vec::new();
        for e in ddg.edges() {
            if !e.is_memory_flow() {
                continue;
            }
            let (Some(ts), Some(td)) = (
                Self::time_with(ps, v, c, e.src),
                Self::time_with(ps, v, c, e.dst),
            ) else {
                continue;
            };
            let d_ker = e.distance as i64 + stage(td) - stage(ts);
            if d_ker < 1 {
                continue;
            }
            let (rx, ry) = (row(ts), row(td));
            let lat_x = ddg.inst(e.src).latency;
            let kept = r_all
                .iter()
                .any(|&(s_uv, row_u)| preserves(s_uv, row_u, rx, ry, lat_x, d_ker));
            if !kept {
                probs.push(e.prob);
            }
        }
        misspec_probability(probs) <= self.p_max
    }
}

/// Thinned `(II, C_delay)` candidate grid, sorted by cost key: dense
/// `C_delay` values near the Definition-2 minimum, stride 2 beyond
/// `min+8`, stride 4 beyond `min+24` (the maximum is always included).
fn thinned_candidates(
    model: &CostModel,
    mii: u32,
    ii_max: u32,
    cd_max: u32,
) -> Vec<(u32, u32, CostKey)> {
    let cd_min = model.costs.min_c_delay();
    let cd_hi = cd_max.max(cd_min);
    let mut cds: Vec<u32> = Vec::new();
    let mut cd = cd_min;
    while cd <= cd_hi {
        cds.push(cd);
        cd += if cd < cd_min + 8 {
            1
        } else if cd < cd_min + 24 {
            2
        } else {
            4
        };
    }
    if *cds.last().unwrap() != cd_hi {
        cds.push(cd_hi);
    }
    let mut v: Vec<(u32, u32, CostKey)> = Vec::new();
    for ii in mii..=ii_max.max(mii) {
        for &cd in &cds {
            v.push((ii, cd, model.cost_key(ii, cd)));
        }
    }
    v.sort_by(|a, b| a.2.cmp(&b.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
    v
}

/// Run TMS on a loop.
///
/// Candidates `(II, C_delay)` are visited in increasing `F` (exact
/// integer cost keys), each tried with every configured `P_max`; the
/// first success is, by construction, a minimum-`F` schedule — the
/// equivalent of Figure 3's iterative `F_min` increase.
pub fn schedule_tms(
    ddg: &Ddg,
    machine: &MachineModel,
    model: &CostModel,
    config: &TmsConfig,
) -> Result<TmsResult, SchedError> {
    schedule_tms_traced(ddg, machine, model, config, &Trace::disabled())
}

/// [`schedule_tms`] with instrumentation: a span per `(II, C_delay,
/// P_max)` attempt, per-phase timers (ordering, LDP, slot placement,
/// verification), and counters for every attempt outcome keyed by
/// [`Diagnostic::kind`].
///
/// Counters and value histograms are recorded only in the serial fold
/// (never in worker threads), so the metrics snapshot is bit-identical
/// at every [`TmsConfig::parallelism`] level; span/timer *durations*
/// are wall-clock and carry no such guarantee.
pub fn schedule_tms_traced(
    ddg: &Ddg,
    machine: &MachineModel,
    model: &CostModel,
    config: &TmsConfig,
    trace: &Trace,
) -> Result<TmsResult, SchedError> {
    let m = mii(ddg, machine);
    if m == u32::MAX {
        trace.count("tms.unschedulable", 1);
        return Err(SchedError::Unschedulable {
            loop_name: ddg.name().to_string(),
        });
    }
    let order = trace.time("tms.phase.order", || sms_order(ddg));
    let ldp = trace.time("tms.phase.ldp", || AcyclicPriorities::compute(ddg).ldp);
    let mut scratch = SchedScratch::new();

    // SMS runs first: its II floors the candidate ceiling (on loops
    // where ejection pressure pushes SMS well past both MII and LDP, a
    // ceiling of max(MII, LDP) would leave TMS no feasible candidate at
    // all), and its schedule is the ready-made fallback. The node order
    // and LDP are attempt-invariant, so they are computed once here and
    // shared with every candidate attempt below.
    let sms = trace.time("tms.phase.sms_baseline", || {
        schedule_sms_with(ddg, machine, order, ldp, &mut scratch)
    })?;
    let order = &sms.order;
    let ii_max = config
        .ii_max
        .unwrap_or((ldp as u32).max(m).max(sms.schedule.ii() + 2));
    let max_lat = ddg.insts().iter().map(|i| i.latency).max().unwrap_or(1);
    let cd_max = config
        .c_delay_max
        .unwrap_or(ii_max + max_lat + model.costs.c_reg_com);
    let candidates = if config.dense_candidates {
        model.candidates(m, ii_max, cd_max)
    } else {
        thinned_candidates(model, m, ii_max, cd_max)
    };

    let sms_achieved = crate::metrics::achieved_c_delay(ddg, &sms.schedule, &model.costs);
    let sms_key = model.cost_key(sms.schedule.ii(), sms_achieved);

    // Attempts are indexed candidate-major: attempt `idx` is candidate
    // `idx / P` tried with `p_max_values[idx % P]` — exactly the
    // iteration order of the nested serial loops. The attempt budget is
    // folded into the index range (serially the budget was checked
    // before each attempt, so at most `max_attempts` ever ran).
    let p_count = config.p_max_values.len();
    let natural_total = candidates
        .len()
        .saturating_mul(p_count)
        .min(config.max_attempts);
    // The degradation budget caps the index range on top of the safety
    // cap; `budget_cut` records that it actually bit, so exhausting the
    // range without a resolution degrades instead of erroring.
    let total = natural_total.min(config.attempt_budget.unwrap_or(usize::MAX));
    let budget_cut = total < natural_total;
    let search_started = std::time::Instant::now();
    let past_deadline = || {
        config
            .deadline
            .is_some_and(|d| search_started.elapsed() >= d)
    };
    let mut deadline_cut = false;

    // One `(II, C_delay, P_max)` attempt. Pure given its index: reads
    // only attempt-invariant state (plus the frames cache and a
    // per-worker scratch), so attempts can run in any order on any
    // thread and yield identical outcomes.
    let run_attempt = |ii: u32,
                       c_delay: u32,
                       key: CostKey,
                       p_max: f64,
                       frames: Option<&TimeFrames>,
                       scratch: &mut SchedScratch|
     -> AttemptOutcome {
        let mut span = trace.span("tms", "attempt");
        span.arg("loop", ddg.name());
        span.arg("ii", ii);
        span.arg("c_delay", c_delay);
        span.arg("p_max", p_max);
        let Some(frames) = frames else {
            return AttemptOutcome::NoSchedule;
        };
        let policy = TmsPolicy::new(&model.costs, c_delay, p_max);
        let Some(schedule) = trace.time("tms.phase.place", || {
            try_schedule_with(ddg, machine, ii, order, &policy, frames, scratch)
        }) else {
            return AttemptOutcome::NoSchedule;
        };
        // Post-search verification on the *normalised* kernel: the
        // incremental C1/C2 checks run against provisional stages, so
        // the final kernel can exceed the thresholds the slots were
        // accepted under. Every rejection is recorded with its
        // diagnostics instead of vanishing into a bare `continue`.
        let min_stages = (ldp as u32).div_ceil(ii.max(1)).max(1);
        let limits = VerifyLimits {
            c_delay: Some(c_delay),
            p_max: Some(p_max),
            max_stages: Some(min_stages + config.max_extra_stages),
        };
        let diagnostics = trace.time("tms.phase.verify", || {
            verify_schedule(ddg, &schedule, machine, &model.costs, &limits)
        });
        if !diagnostics.is_empty() {
            return AttemptOutcome::Rejected(diagnostics);
        }
        let achieved = crate::metrics::achieved_c_delay(ddg, &schedule, &model.costs);
        let tms_key = model.cost_key(ii, achieved);
        // The achieved C_delay is ≤ the candidate threshold and the
        // cost key is monotone in C_delay, so the candidate key is an
        // upper bound on the realised key.
        debug_assert!(
            tms_key <= key,
            "achieved key {tms_key:?} exceeds candidate bound {key:?}"
        );
        AttemptOutcome::Built { schedule, tms_key }
    };

    // Fold one outcome into the serial accounting. Mirrors the serial
    // loop body exactly: every dispatched attempt counts, rejections are
    // logged in attempt order, and the first `Built` outcome resolves
    // the search (accept, or yield to a strictly cheaper SMS baseline).
    let mut attempts = 0usize;
    let mut rejected = 0usize;
    let mut rejects: Vec<CandidateReject> = Vec::new();
    let mut resolution: Option<Resolution> = None;
    let fold = |ii: u32,
                c_delay: u32,
                p_max: f64,
                outcome: AttemptOutcome,
                attempts: &mut usize,
                rejected: &mut usize,
                rejects: &mut Vec<CandidateReject>|
     -> Option<Resolution> {
        *attempts += 1;
        trace.count("tms.attempts", 1);
        match outcome {
            AttemptOutcome::NoSchedule => {
                trace.count("tms.reject.no-schedule", 1);
                None
            }
            AttemptOutcome::Rejected(diagnostics) => {
                *rejected += 1;
                trace.count("tms.rejected", 1);
                for d in &diagnostics {
                    trace.count_keyed("tms.reject.", d.kind(), 1);
                }
                if rejects.len() < REJECT_LOG_CAP {
                    rejects.push(CandidateReject {
                        ii,
                        c_delay,
                        p_max,
                        diagnostics,
                    });
                }
                None
            }
            AttemptOutcome::Built { schedule, tms_key } => {
                // If the plain SMS schedule is *strictly* cheaper under
                // the same eq. 2 cost, it is the better thread schedule
                // and TMS must not lose to its own baseline.
                if config.allow_sms_fallback && sms_key < tms_key {
                    Some(Resolution::Fallback)
                } else {
                    Some(Resolution::Accept {
                        schedule,
                        ii,
                        c_delay,
                        p_max,
                        tms_key,
                    })
                }
            }
        }
    };

    // Scheduling windows depend only on (DDG, II), not on the C_delay /
    // P_max of the attempt, so the ASAP/ALAP frames are memoised per II
    // across the whole search.
    let mut frames_cache: HashMap<u32, Option<TimeFrames>> = HashMap::new();
    let cand_of = |idx: usize| {
        let (ii, c_delay, key) = candidates[idx / p_count];
        (ii, c_delay, key, config.p_max_values[idx % p_count])
    };

    let workers = config.parallelism.workers();
    if workers <= 1 || total <= 1 {
        // Serial search: lazily computed frames, one persistent scratch.
        for idx in 0..total {
            if past_deadline() {
                deadline_cut = true;
                break;
            }
            let (ii, c_delay, key, p_max) = cand_of(idx);
            let frames = frames_cache
                .entry(ii)
                .or_insert_with(|| TimeFrames::compute(ddg, ii))
                .as_ref();
            let outcome = run_attempt(ii, c_delay, key, p_max, frames, &mut scratch);
            resolution = fold(
                ii,
                c_delay,
                p_max,
                outcome,
                &mut attempts,
                &mut rejected,
                &mut rejects,
            );
            if resolution.is_some() {
                break;
            }
        }
    } else {
        // Wavefront search: dispatch the next chunk of cost-ordered
        // attempts to the worker pool, then fold the outcomes *in index
        // order*. The first resolving attempt wins and everything after
        // it in the chunk is discarded — byte-for-byte the serial
        // result, because each attempt is independent of all others and
        // the fold consumes them in serial order. Chunks ramp up so a
        // success among the cheap early candidates wastes little work.
        let mut base = 0usize;
        let mut chunk = workers;
        'wave: while base < total {
            if past_deadline() {
                deadline_cut = true;
                break;
            }
            let len = chunk.min(total - base);
            // Frames for the chunk's IIs are filled serially up front;
            // workers then share the cache read-only.
            for idx in base..base + len {
                let ii = candidates[idx / p_count].0;
                frames_cache
                    .entry(ii)
                    .or_insert_with(|| TimeFrames::compute(ddg, ii));
            }
            let indices: Vec<usize> = (base..base + len).collect();
            let cache = &frames_cache;
            let outcomes = par_map_with(
                config.parallelism,
                &indices,
                SchedScratch::new,
                |scratch, _, &idx| {
                    let (ii, c_delay, key, p_max) = cand_of(idx);
                    let frames = cache.get(&ii).and_then(|f| f.as_ref());
                    run_attempt(ii, c_delay, key, p_max, frames, scratch)
                },
            );
            for (off, outcome) in outcomes.into_iter().enumerate() {
                let (ii, c_delay, _, p_max) = cand_of(base + off);
                resolution = fold(
                    ii,
                    c_delay,
                    p_max,
                    outcome,
                    &mut attempts,
                    &mut rejected,
                    &mut rejects,
                );
                if resolution.is_some() {
                    break 'wave;
                }
            }
            base += len;
            chunk = (chunk * 2).min(workers * 8);
        }
    }

    trace.record("tms.attempts_per_loop", attempts as u64);
    // Wall-clock counter track: attempts spent on each loop, sampled
    // as the scheduler finishes it, so a sweep's hot loops stand out
    // as spikes in Perfetto.
    trace.counter_sample_now(
        "tms.counter",
        || "tms.attempts_per_loop".to_string(),
        attempts as u64,
    );
    // The search degraded iff its budget (attempts or deadline) cut it
    // short of a resolution; a full, unresolved sweep of the candidate
    // space is the ordinary fallback/unschedulable path instead.
    let exhausted_early = resolution.is_none() && (deadline_cut || budget_cut);
    match resolution {
        Some(Resolution::Accept {
            schedule,
            ii,
            c_delay,
            p_max,
            tms_key,
        }) => {
            trace.count("tms.accepted", 1);
            Ok(TmsResult {
                schedule,
                mii: m,
                ldp,
                ii,
                c_delay_threshold: c_delay,
                p_max,
                cost_key: tms_key,
                fell_back_to_sms: false,
                attempts,
                rejected_candidates: rejected,
                rejects,
                degraded: None,
            })
        }
        // `Resolution::Fallback` only arises with `allow_sms_fallback`;
        // a budget-exhausted search falls back here too — degrading to
        // SMS is an operational answer, erroring would lose the loop.
        _ if config.allow_sms_fallback || exhausted_early => {
            let degraded = if exhausted_early {
                trace.count("tms.degraded_to_sms", 1);
                Some(Diagnostic::DegradedToSms {
                    loop_name: ddg.name().to_string(),
                    attempts,
                    budget: config.attempt_budget.unwrap_or(0),
                })
            } else {
                None
            };
            trace.count("tms.fallback", 1);
            let ii = sms.schedule.ii();
            Ok(TmsResult {
                schedule: sms.schedule,
                mii: m,
                ldp,
                ii,
                c_delay_threshold: sms_achieved,
                p_max: 1.0,
                cost_key: sms_key,
                fell_back_to_sms: true,
                attempts,
                rejected_candidates: rejected,
                rejects,
                degraded,
            })
        }
        _ => {
            trace.count("tms.unschedulable", 1);
            Err(SchedError::NoScheduleFound {
                loop_name: ddg.name().to_string(),
                ii_tried: ii_search_ceiling_from(ddg, m, ldp),
            })
        }
    }
}

/// Result of running one candidate attempt, before the serial-order
/// fold. `Send` so attempts can come back from worker threads.
enum AttemptOutcome {
    /// The engine could not place every instruction.
    NoSchedule,
    /// A schedule was built but the post-search verification rejected
    /// it.
    Rejected(Vec<Diagnostic>),
    /// A verified schedule with its realised cost key.
    Built {
        schedule: Schedule,
        tms_key: CostKey,
    },
}

/// How the candidate search resolved (before exhausting all attempts).
enum Resolution {
    /// Accept this candidate's schedule.
    Accept {
        schedule: Schedule,
        ii: u32,
        c_delay: u32,
        p_max: f64,
        tms_key: CostKey,
    },
    /// A candidate succeeded but the SMS baseline is strictly cheaper.
    Fallback,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::achieved_c_delay;
    use crate::sms::schedule_sms;
    use tms_ddg::{DdgBuilder, OpClass};
    use tms_machine::ArchParams;

    fn machine() -> MachineModel {
        MachineModel::icpp2008()
    }

    fn model(ncore: u32) -> CostModel {
        CostModel::new(ArchParams::icpp2008().costs, ncore)
    }

    /// A loop shaped like the motivating example: a long recurrence
    /// fixing II, plus a producer feeding the next iteration's start.
    fn motivating_shape() -> Ddg {
        let mut b = DdgBuilder::new("shape");
        let n0 = b.inst_lat("n0", OpClass::Load, 3);
        let n1 = b.inst_lat("n1", OpClass::IntAlu, 1);
        let n2 = b.inst_lat("n2", OpClass::IntAlu, 1);
        let n4 = b.inst_lat("n4", OpClass::IntAlu, 2);
        let n5 = b.inst_lat("n5", OpClass::Store, 1);
        let n6 = b.inst_lat("n6", OpClass::IntAlu, 1);
        b.reg_flow(n0, n1, 0);
        b.reg_flow(n1, n2, 0);
        b.reg_flow(n2, n4, 0);
        b.reg_flow(n4, n5, 0);
        // As in Figure 1, the recurrence closes through a *memory*
        // dependence with small probability — that is exactly what TMS
        // speculates on. RecII is still 8 (modulo scheduling respects
        // memory dependences regardless of probability).
        b.mem_flow(n5, n0, 1, 0.01);
        b.reg_flow(n6, n0, 1); // cross-thread register dependence
        b.reg_flow(n6, n6, 1);
        b.mem_flow(n5, n2, 1, 0.02);
        b.build().unwrap()
    }

    #[test]
    fn tms_reduces_sync_delay_vs_sms() {
        let g = motivating_shape();
        let costs = ArchParams::icpp2008().costs;
        let sms = schedule_sms(&g, &machine()).unwrap();
        let tms = schedule_tms(&g, &machine(), &model(2), &TmsConfig::default()).unwrap();
        assert!(!tms.fell_back_to_sms);
        let sms_cd = achieved_c_delay(&g, &sms.schedule, &costs);
        let tms_cd = achieved_c_delay(&g, &tms.schedule, &costs);
        assert!(
            tms_cd < sms_cd,
            "TMS C_delay {tms_cd} should beat SMS {sms_cd}"
        );
    }

    #[test]
    fn tms_schedule_is_legal() {
        let g = motivating_shape();
        let r = schedule_tms(&g, &machine(), &model(4), &TmsConfig::default()).unwrap();
        assert!(r.schedule.check_legal(&g).is_none());
        assert!(r.schedule.check_resources(&g, &machine()));
    }

    #[test]
    fn tms_honours_its_own_threshold() {
        let g = motivating_shape();
        let costs = ArchParams::icpp2008().costs;
        let r = schedule_tms(&g, &machine(), &model(4), &TmsConfig::default()).unwrap();
        if !r.fell_back_to_sms {
            let achieved = achieved_c_delay(&g, &r.schedule, &costs);
            assert!(
                achieved <= r.c_delay_threshold,
                "achieved {achieved} > threshold {}",
                r.c_delay_threshold
            );
        }
    }

    #[test]
    fn doall_loop_schedules_with_minimal_c_delay() {
        // No loop-carried register deps at all: any C_delay works, so
        // TMS should accept the very first (cheapest) candidate.
        let mut b = DdgBuilder::new("doall");
        let l = b.inst("ld", OpClass::Load);
        let m = b.inst("mul", OpClass::FpMul);
        let s = b.inst("st", OpClass::Store);
        b.reg_flow(l, m, 0);
        b.reg_flow(m, s, 0);
        let g = b.build().unwrap();
        let model = model(4);
        let r = schedule_tms(&g, &machine(), &model, &TmsConfig::default()).unwrap();
        assert!(!r.fell_back_to_sms);
        assert_eq!(r.c_delay_threshold, model.costs.min_c_delay());
    }

    #[test]
    fn zero_p_max_synchronises_everything() {
        // With P_max = 0 any non-preserved speculated dependence is
        // rejected; the loop below can only be scheduled by making the
        // memory dependence preserved (or falling back to SMS whose
        // serialising delays preserve it accidentally).
        let g = motivating_shape();
        let r = schedule_tms(&g, &machine(), &model(4), &TmsConfig::no_speculation()).unwrap();
        // Whatever path was taken, the result must be legal.
        assert!(r.schedule.check_legal(&g).is_none());
    }

    #[test]
    fn exhausted_attempt_budget_degrades_to_sms() {
        let g = motivating_shape();
        // One attempt is nowhere near enough for this loop (its
        // cheapest candidates fail C1/C2), so the search must degrade
        // instead of erroring — even with the fallback switched off.
        let cfg = TmsConfig {
            attempt_budget: Some(1),
            allow_sms_fallback: false,
            ..TmsConfig::default()
        };
        let r = schedule_tms(&g, &machine(), &model(4), &cfg).unwrap();
        assert!(r.fell_back_to_sms);
        assert!(r.attempts <= 1);
        match &r.degraded {
            Some(Diagnostic::DegradedToSms {
                loop_name, budget, ..
            }) => {
                assert_eq!(loop_name, "shape");
                assert_eq!(*budget, 1);
            }
            other => panic!("expected DegradedToSms, got {other:?}"),
        }
        // The degraded schedule is still the legal SMS kernel.
        assert!(r.schedule.check_legal(&g).is_none());
        assert!(r.schedule.check_resources(&g, &machine()));
    }

    #[test]
    fn zero_deadline_degrades_before_the_first_attempt() {
        let g = motivating_shape();
        let cfg = TmsConfig {
            deadline: Some(std::time::Duration::ZERO),
            ..TmsConfig::default()
        };
        let r = schedule_tms(&g, &machine(), &model(4), &cfg).unwrap();
        assert!(r.fell_back_to_sms);
        assert_eq!(r.attempts, 0);
        assert!(matches!(r.degraded, Some(Diagnostic::DegradedToSms { .. })));
    }

    #[test]
    fn generous_budget_is_not_reported_as_degraded() {
        let g = motivating_shape();
        let cfg = TmsConfig {
            attempt_budget: Some(1_000_000),
            ..TmsConfig::default()
        };
        let r = schedule_tms(&g, &machine(), &model(2), &cfg).unwrap();
        assert!(!r.fell_back_to_sms);
        assert!(r.degraded.is_none());
    }

    #[test]
    fn budget_degradation_is_identical_at_any_worker_count() {
        let g = motivating_shape();
        for budget in [1usize, 3, 7] {
            let serial = schedule_tms(
                &g,
                &machine(),
                &model(4),
                &TmsConfig {
                    attempt_budget: Some(budget),
                    ..TmsConfig::default()
                },
            )
            .unwrap();
            let parallel = schedule_tms(
                &g,
                &machine(),
                &model(4),
                &TmsConfig {
                    attempt_budget: Some(budget),
                    parallelism: Parallelism::Jobs(4),
                    ..TmsConfig::default()
                },
            )
            .unwrap();
            assert_eq!(serial.attempts, parallel.attempts, "budget={budget}");
            assert_eq!(
                serial.fell_back_to_sms, parallel.fell_back_to_sms,
                "budget={budget}"
            );
            assert_eq!(serial.degraded, parallel.degraded, "budget={budget}");
            assert_eq!(serial.ii, parallel.ii, "budget={budget}");
        }
    }

    #[test]
    fn tms_cost_never_worse_than_sms_cost() {
        let g = motivating_shape();
        let costs = ArchParams::icpp2008().costs;
        let model = model(4);
        let sms = schedule_sms(&g, &machine()).unwrap();
        let sms_key = model.cost_key(
            sms.schedule.ii(),
            achieved_c_delay(&g, &sms.schedule, &costs),
        );
        let tms = schedule_tms(&g, &machine(), &model, &TmsConfig::default()).unwrap();
        assert!(
            tms.cost_key <= sms_key,
            "TMS key {:?} worse than SMS {:?}",
            tms.cost_key,
            sms_key
        );
    }
}
