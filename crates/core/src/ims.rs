//! Iterative Modulo Scheduling (Rau, MICRO-27) — the paper's reference
//! [15] and the classic alternative to SMS.
//!
//! IMS differs from SMS in two ways: operations are prioritised by
//! *height* alone (no swing ordering, no lifetime minimisation), and
//! scheduling is operation-driven with unbounded ejection — an
//! operation that finds no free slot takes `max(early start, previous
//! slot + 1)` and evicts whatever blocks it, with a budget bounding the
//! churn. The paper adopts SMS instead because it "finds the best
//! schedules in general" (Codina et al. [3]); this implementation lets
//! the benches substantiate that choice: IMS matches SMS on II but
//! tends to produce longer lifetimes (larger MaxLive).

use crate::schedule::{PartialSchedule, Schedule};
use crate::sms::SchedError;
use crate::window::force_floor;
use tms_ddg::analysis::{AcyclicPriorities, TimeFrames};
use tms_ddg::{Ddg, InstId};
use tms_machine::{mii, MachineModel, ResourceClass};

/// Result of running IMS on a loop.
#[derive(Debug, Clone)]
pub struct ImsResult {
    /// The final schedule.
    pub schedule: Schedule,
    /// The minimum II.
    pub mii: u32,
}

/// Height-ordered priority list (ties broken by id for determinism).
fn priority_order(ddg: &Ddg) -> Vec<InstId> {
    let prio = AcyclicPriorities::compute(ddg);
    let mut order: Vec<InstId> = ddg.inst_ids().collect();
    order.sort_by(|&a, &b| {
        prio.height[b.index()]
            .cmp(&prio.height[a.index()])
            .then(a.cmp(&b))
    });
    order
}

/// Attempt IMS at a fixed `ii`.
fn try_ims(ddg: &Ddg, machine: &MachineModel, ii: u32) -> Option<Schedule> {
    let frames = TimeFrames::compute(ddg, ii)?;
    let mut ps = PartialSchedule::new(ddg, ii, machine);
    let order = priority_order(ddg);
    let mut pos = vec![usize::MAX; ddg.num_insts()];
    for (i, &n) in order.iter().enumerate() {
        pos[n.index()] = i;
    }
    let mut earliest: Vec<i64> = vec![i64::MIN; ddg.num_insts()];
    let mut budget = (ddg.num_insts() * 12).max(120);

    while let Some(&v) = order.iter().find(|&&n| !ps.is_placed(n)) {
        // Early start from placed predecessors (transitive); IMS has no
        // upper bound — violated successors get ejected.
        let es = force_floor(ddg, &ps, &frames, v);
        let slot = (es..es + ii as i64).find(|&c| ps.fits(ddg, v, c));
        match slot {
            Some(c) => {
                ps.place(ddg, v, c);
                eject_violated(ddg, &mut ps, v, ii);
            }
            None => {
                if budget == 0 {
                    return None;
                }
                budget -= 1;
                let c = es.max(earliest[v.index()]);
                earliest[v.index()] = c + 1;
                evict_row(ddg, &mut ps, v, c, &pos);
                if !ps.fits(ddg, v, c) {
                    return None;
                }
                ps.place(ddg, v, c);
                eject_violated(ddg, &mut ps, v, ii);
            }
        }
    }
    Some(ps.finish(ddg))
}

/// Eject placed neighbours whose dependence with `v` is violated.
fn eject_violated(ddg: &Ddg, ps: &mut PartialSchedule, v: InstId, ii: u32) {
    let iil = ii as i64;
    loop {
        let victim = ddg.edges().iter().find_map(|e| {
            if e.src != v && e.dst != v {
                return None;
            }
            let (Some(ts), Some(td)) = (ps.time(e.src), ps.time(e.dst)) else {
                return None;
            };
            if td < ts + e.delay - iil * e.distance as i64 {
                Some(if e.src == v { e.dst } else { e.src })
            } else {
                None
            }
        });
        match victim {
            Some(n) if n != v => ps.remove(ddg, n),
            _ => break,
        }
    }
}

/// Evict the lowest-priority occupants of `cycle`'s row until `v` fits.
fn evict_row(ddg: &Ddg, ps: &mut PartialSchedule, v: InstId, cycle: i64, pos: &[usize]) {
    let class = ResourceClass::for_op(ddg.inst(v).op);
    while !ps.fits(ddg, v, cycle) {
        let occupants: Vec<InstId> = ps.placed_in_row(cycle).collect();
        let victim = occupants
            .iter()
            .copied()
            .filter(|&n| ResourceClass::for_op(ddg.inst(n).op) == class)
            .max_by_key(|&n| pos[n.index()])
            .or_else(|| occupants.iter().copied().max_by_key(|&n| pos[n.index()]));
        match victim {
            Some(n) => ps.remove(ddg, n),
            None => return,
        }
    }
}

/// Run IMS: iterate II upward from MII until a schedule exists.
pub fn schedule_ims(ddg: &Ddg, machine: &MachineModel) -> Result<ImsResult, SchedError> {
    let m = mii(ddg, machine);
    if m == u32::MAX {
        return Err(SchedError::Unschedulable {
            loop_name: ddg.name().to_string(),
        });
    }
    let ceiling = crate::sms::ii_search_ceiling(ddg, m);
    for ii in m..=ceiling {
        if let Some(schedule) = try_ims(ddg, machine, ii) {
            debug_assert!(schedule.check_legal(ddg).is_none());
            debug_assert!(schedule.check_resources(ddg, machine));
            return Ok(ImsResult { schedule, mii: m });
        }
    }
    Err(SchedError::NoScheduleFound {
        loop_name: ddg.name().to_string(),
        ii_tried: ceiling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetimes::max_live;
    use crate::sms::schedule_sms;
    use tms_ddg::{DdgBuilder, OpClass};

    fn machine() -> MachineModel {
        MachineModel::icpp2008()
    }

    #[test]
    fn schedules_chain_at_mii() {
        let mut b = DdgBuilder::new("chain");
        let l = b.inst("ld", OpClass::Load);
        let m = b.inst("mul", OpClass::FpMul);
        let s = b.inst("st", OpClass::Store);
        b.reg_flow(l, m, 0);
        b.reg_flow(m, s, 0);
        let g = b.build().unwrap();
        let r = schedule_ims(&g, &machine()).unwrap();
        assert_eq!(r.schedule.ii(), 1);
        assert!(r.schedule.check_legal(&g).is_none());
    }

    #[test]
    fn respects_recurrences() {
        let mut b = DdgBuilder::new("rec");
        let a = b.inst_lat("acc", OpClass::FpAdd, 2);
        let x = b.inst("x", OpClass::Load);
        b.reg_flow(x, a, 0);
        b.reg_flow(a, a, 1);
        let g = b.build().unwrap();
        let r = schedule_ims(&g, &machine()).unwrap();
        assert_eq!(r.schedule.ii(), 2);
        assert!(r.schedule.check_resources(&g, &machine()));
    }

    #[test]
    fn handles_resource_saturation() {
        let mut b = DdgBuilder::new("mul5");
        for i in 0..5 {
            b.inst(format!("m{i}"), OpClass::FpMul);
        }
        let g = b.build().unwrap();
        let r = schedule_ims(&g, &machine()).unwrap();
        assert_eq!(r.schedule.ii(), 5);
    }

    #[test]
    fn matches_sms_ii_on_workloads_but_not_lifetimes() {
        // Codina et al.'s finding, which the paper cites to justify
        // SMS: both reach comparable IIs; SMS wins on register
        // pressure. Verify II parity on a spread of loops and that
        // MaxLive never strongly favours IMS.
        let mut sms_maxlive_total = 0u64;
        let mut ims_maxlive_total = 0u64;
        for seed in 0..8u64 {
            let spec = tms_workloads::LoopSpec::basic("cmp", 18 + (seed as u32 % 9), seed);
            let g = tms_workloads::generate_loop(&spec);
            let sms = schedule_sms(&g, &machine()).unwrap();
            let ims = schedule_ims(&g, &machine()).unwrap();
            assert!(
                (ims.schedule.ii() as i64 - sms.schedule.ii() as i64).abs() <= 2,
                "seed {seed}: IMS II {} vs SMS II {}",
                ims.schedule.ii(),
                sms.schedule.ii()
            );
            sms_maxlive_total += max_live(&g, &sms.schedule) as u64;
            ims_maxlive_total += max_live(&g, &ims.schedule) as u64;
        }
        assert!(
            sms_maxlive_total <= ims_maxlive_total + 4,
            "SMS should not lose the lifetime comparison: {sms_maxlive_total} vs {ims_maxlive_total}"
        );
    }

    #[test]
    fn figure1_schedules_at_mii() {
        let g = tms_workloads::figure1();
        let r = schedule_ims(&g, &machine()).unwrap();
        assert_eq!(r.mii, 8);
        assert!(r.schedule.ii() <= 10);
        assert!(r.schedule.check_legal(&g).is_none());
    }
}
