//! SMS node ordering (the "swing" phase).
//!
//! Nodes are ordered so that, when the scheduler places them one by
//! one, each node has only already-placed predecessors or only
//! already-placed successors — never both sides unplaced around it —
//! and critical recurrences come first. This is the ordering phase of
//! Llosa's Swing Modulo Scheduling, operating on the partial order of
//! SCC-derived node sets, alternating bottom-up and top-down sweeps.

use tms_ddg::analysis::AcyclicPriorities;
use tms_ddg::mii::recurrence_info;
use tms_ddg::scc::SccDecomposition;
use tms_ddg::{Ddg, InstId};

/// Compute the SMS scheduling order for `ddg`.
///
/// Priorities: recurrence SCCs in decreasing RecII; between consecutive
/// SCCs, the nodes on condensation paths joining them; finally all
/// remaining nodes. Within each set the swing sweep alternates
/// directions, choosing by height (top-down) or depth (bottom-up) with
/// mobility-style tie-breaks on lower id for determinism.
pub fn sms_order(ddg: &Ddg) -> Vec<InstId> {
    let scc = SccDecomposition::compute(ddg);
    let rec = recurrence_info(ddg, &scc);
    let prio = AcyclicPriorities::compute(ddg);

    let sets = build_node_sets(ddg, &scc, &rec.scc_rec_ii);
    let mut order: Vec<InstId> = Vec::with_capacity(ddg.num_insts());
    let mut ordered = vec![false; ddg.num_insts()];
    for set in sets {
        order_one_set(ddg, &prio, &set, &mut order, &mut ordered);
    }
    debug_assert_eq!(order.len(), ddg.num_insts());
    order
}

/// Partition nodes into the ordered sequence of sets the swing sweep
/// consumes.
fn build_node_sets(ddg: &Ddg, scc: &SccDecomposition, scc_rec_ii: &[u32]) -> Vec<Vec<InstId>> {
    let ncomp = scc.num_components();

    // Condensation reachability: reach[a][b] = path from comp a to b.
    let reach = condensation_reachability(ddg, scc);

    // Recurrence components sorted by decreasing RecII (ties: lower
    // component id, deterministic).
    let mut recs: Vec<usize> = (0..ncomp).filter(|&c| scc_rec_ii[c] > 0).collect();
    recs.sort_by(|&a, &b| scc_rec_ii[b].cmp(&scc_rec_ii[a]).then(a.cmp(&b)));

    let mut in_set = vec![false; ncomp];
    let mut sets: Vec<Vec<InstId>> = Vec::new();
    let mut placed_comps: Vec<usize> = Vec::new();

    for &rc in &recs {
        if in_set[rc] {
            continue;
        }
        let mut comps: Vec<usize> = vec![rc];
        // Nodes on condensation paths between already-placed components
        // and this one (in either direction) join the same set.
        for mid in 0..ncomp {
            if in_set[mid] || mid == rc {
                continue;
            }
            let on_path = placed_comps.iter().any(|&pc| {
                (reach[pc][mid] && reach[mid][rc]) || (reach[rc][mid] && reach[mid][pc])
            });
            if on_path {
                comps.push(mid);
            }
        }
        let mut set: Vec<InstId> = Vec::new();
        for &c in &comps {
            in_set[c] = true;
            placed_comps.push(c);
            set.extend_from_slice(scc.members(c));
        }
        set.sort();
        sets.push(set);
    }

    // Remaining nodes form the final set.
    let mut rest: Vec<InstId> = (0..ncomp)
        .filter(|&c| !in_set[c])
        .flat_map(|c| scc.members(c).iter().copied())
        .collect();
    if !rest.is_empty() {
        rest.sort();
        sets.push(rest);
    }
    sets
}

/// All-pairs reachability over the condensation DAG (component count is
/// tiny for loop bodies, so the O(C²·E) sweep is fine).
fn condensation_reachability(ddg: &Ddg, scc: &SccDecomposition) -> Vec<Vec<bool>> {
    let ncomp = scc.num_components();
    let mut reach = vec![vec![false; ncomp]; ncomp];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); ncomp];
    for e in ddg.edges() {
        let (a, b) = (scc.component_of(e.src), scc.component_of(e.dst));
        if a != b {
            adj[a].push(b);
        }
    }
    for (start, row) in reach.iter_mut().enumerate() {
        let mut stack = vec![start];
        while let Some(c) = stack.pop() {
            for &d in &adj[c] {
                if !row[d] {
                    row[d] = true;
                    stack.push(d);
                }
            }
        }
    }
    reach
}

#[derive(Clone, Copy, PartialEq)]
enum Dir {
    TopDown,
    BottomUp,
}

/// Swing-order the nodes of one set, appending to `order`.
fn order_one_set(
    ddg: &Ddg,
    prio: &AcyclicPriorities,
    set: &[InstId],
    order: &mut Vec<InstId>,
    ordered: &mut [bool],
) {
    let in_set = |n: InstId| set.binary_search(&n).is_ok();
    let remaining = |ordered: &[bool], n: InstId| in_set(n) && !ordered[n.index()];

    // Successors of already-ordered nodes that lie in this set.
    let succ_of_ordered = |order: &[InstId], ordered: &[bool]| -> Vec<InstId> {
        let mut v: Vec<InstId> = order
            .iter()
            .flat_map(|&o| ddg.successors(o))
            .filter(|&n| remaining(ordered, n))
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let pred_of_ordered = |order: &[InstId], ordered: &[bool]| -> Vec<InstId> {
        let mut v: Vec<InstId> = order
            .iter()
            .flat_map(|&o| ddg.predecessors(o))
            .filter(|&n| remaining(ordered, n))
            .collect();
        v.sort();
        v.dedup();
        v
    };

    // Initial worklist and direction. Checking successors first makes
    // nodes fed by already-ordered recurrences (like n3 in the
    // motivating example) come before the feeders of ordered nodes,
    // matching the paper's published order n5 n4 n2 n1 n0 n3 n6 n8 n7.
    let (mut work, mut dir) = {
        let s = succ_of_ordered(order, ordered);
        if !s.is_empty() {
            (s, Dir::TopDown)
        } else {
            let p = pred_of_ordered(order, ordered);
            if !p.is_empty() {
                (p, Dir::BottomUp)
            } else {
                // Fresh set (typically the highest-priority recurrence):
                // start from the node with the highest ASAP-like depth,
                // i.e. the deepest node, sweeping bottom-up.
                let seed = set
                    .iter()
                    .copied()
                    .filter(|&n| !ordered[n.index()])
                    .max_by(|&a, &b| {
                        prio.depth[a.index()]
                            .cmp(&prio.depth[b.index()])
                            .then(b.cmp(&a)) // prefer lower id on ties
                    });
                match seed {
                    Some(s) => (vec![s], Dir::BottomUp),
                    None => return,
                }
            }
        }
    };

    let total: usize = set.iter().filter(|&&n| !ordered[n.index()]).count();
    let mut placed = 0;
    while placed < total {
        if work.is_empty() {
            // Flip direction, refilling from the frontier of the order.
            let (w, d) = match dir {
                Dir::TopDown => (pred_of_ordered(order, ordered), Dir::BottomUp),
                Dir::BottomUp => (succ_of_ordered(order, ordered), Dir::TopDown),
            };
            if !w.is_empty() {
                work = w;
                dir = d;
            } else {
                // Disconnected remainder: reseed by depth.
                let seed = set
                    .iter()
                    .copied()
                    .filter(|&n| !ordered[n.index()])
                    .max_by(|&a, &b| {
                        prio.depth[a.index()]
                            .cmp(&prio.depth[b.index()])
                            .then(b.cmp(&a))
                    })
                    .expect("unordered node must exist");
                work = vec![seed];
                dir = Dir::BottomUp;
            }
        }
        while !work.is_empty() {
            let pick = match dir {
                // Top-down: most critical below first — highest height.
                Dir::TopDown => work
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        prio.height[a.index()]
                            .cmp(&prio.height[b.index()])
                            .then(b.cmp(&a))
                    })
                    .unwrap(),
                // Bottom-up: most critical above first — highest depth.
                Dir::BottomUp => work
                    .iter()
                    .copied()
                    .max_by(|&a, &b| {
                        prio.depth[a.index()]
                            .cmp(&prio.depth[b.index()])
                            .then(b.cmp(&a))
                    })
                    .unwrap(),
            };
            work.retain(|&n| n != pick);
            ordered[pick.index()] = true;
            order.push(pick);
            placed += 1;
            let next: Vec<InstId> = match dir {
                Dir::TopDown => ddg.successors(pick).collect(),
                Dir::BottomUp => ddg.predecessors(pick).collect(),
            };
            for n in next {
                if remaining(ordered, n) && !work.contains(&n) {
                    work.push(n);
                }
            }
        }
        // Inner worklist drained; outer loop flips direction.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_ddg::{DdgBuilder, OpClass};

    fn pos(order: &[InstId], n: InstId) -> usize {
        order.iter().position(|&x| x == n).unwrap()
    }

    #[test]
    fn every_node_ordered_exactly_once() {
        let mut b = DdgBuilder::new("g");
        let a = b.inst("a", OpClass::Load);
        let c = b.inst("c", OpClass::FpMul);
        let d = b.inst("d", OpClass::FpAdd);
        let e = b.inst("e", OpClass::Store);
        b.reg_flow(a, c, 0);
        b.reg_flow(c, d, 0);
        b.reg_flow(d, e, 0);
        b.reg_flow(d, c, 1);
        let g = b.build().unwrap();
        let o = sms_order(&g);
        assert_eq!(o.len(), 4);
        let mut s = o.clone();
        s.sort();
        s.dedup();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn recurrence_nodes_come_first() {
        let mut b = DdgBuilder::new("rec-first");
        // Recurrence c <-> d; independent chain a -> e.
        let a = b.inst("a", OpClass::Load);
        let e = b.inst("e", OpClass::Store);
        let c = b.inst("c", OpClass::FpAdd);
        let d = b.inst("d", OpClass::FpMul);
        b.reg_flow(a, e, 0);
        b.reg_flow(c, d, 0);
        b.reg_flow(d, c, 1);
        let g = b.build().unwrap();
        let o = sms_order(&g);
        assert!(pos(&o, c) < pos(&o, a));
        assert!(pos(&o, d) < pos(&o, a));
        assert!(pos(&o, d) < pos(&o, e));
    }

    #[test]
    fn higher_rec_ii_scc_ordered_earlier() {
        let mut b = DdgBuilder::new("two-recs");
        let a = b.inst_lat("a", OpClass::FpAdd, 2); // RecII 2
        let c = b.inst_lat("c", OpClass::FpDiv, 12); // RecII 12
        b.reg_flow(a, a, 1);
        b.reg_flow(c, c, 1);
        let g = b.build().unwrap();
        let o = sms_order(&g);
        assert!(pos(&o, c) < pos(&o, a));
    }

    #[test]
    fn neighbourhood_property_holds() {
        // Once ordering is done, walking it and "scheduling" each node
        // must never find both an unscheduled predecessor and an
        // unscheduled successor that are themselves in earlier sets —
        // the swing property. We verify the weaker, testable form: for
        // every node, at the moment of its ordering, it does not have
        // BOTH an ordered predecessor and an ordered successor unless
        // it belongs to a recurrence (where that is unavoidable).
        let mut b = DdgBuilder::new("swing");
        let a = b.inst("a", OpClass::Load);
        let c = b.inst("c", OpClass::FpMul);
        let d = b.inst("d", OpClass::FpAdd);
        let e = b.inst("e", OpClass::Store);
        b.reg_flow(a, c, 0);
        b.reg_flow(c, d, 0);
        b.reg_flow(d, e, 0);
        let g = b.build().unwrap();
        let o = sms_order(&g);
        let mut seen = vec![false; g.num_insts()];
        for &n in &o {
            let pred_seen = g.predecessors(n).any(|p| seen[p.index()]);
            let succ_seen = g.successors(n).any(|s| seen[s.index()]);
            assert!(
                !(pred_seen && succ_seen),
                "node {n} ordered between placed neighbours"
            );
            seen[n.index()] = true;
        }
    }

    #[test]
    fn deterministic_order() {
        let mut b = DdgBuilder::new("det");
        let a = b.inst("a", OpClass::FpAdd);
        let c = b.inst("c", OpClass::FpAdd);
        let d = b.inst("d", OpClass::FpAdd);
        b.reg_flow(a, c, 0);
        b.reg_flow(a, d, 0);
        let g = b.build().unwrap();
        assert_eq!(sms_order(&g), sms_order(&g));
    }
}
