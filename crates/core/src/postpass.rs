//! Post-scheduling passes (§3 / end of §4.3 of the paper):
//!
//! * **modulo variable expansion via copies** — every inter-iteration
//!   register dependence whose kernel distance exceeds 1 is relayed
//!   through copy instructions so that all communicated distances
//!   become exactly 1 (values then always move between adjacent cores
//!   on the ring);
//! * **SEND/RECV insertion** — one SEND/RECV pair per producer per
//!   thread hop; dependences sharing a producer share the communication
//!   (the paper's n6→n0 / n6→n6 example).

use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use tms_ddg::{Ddg, InstId};

/// One synchronised communication: a producer whose value must reach
/// `hops` successive threads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Communication {
    /// The producing instruction.
    pub producer: InstId,
    /// Kernel row at which the value becomes available
    /// (`row(producer)`; the SEND issues as soon after as possible).
    pub send_row: u32,
    /// How many consecutive threads ahead the value must travel —
    /// `max d_ker` over the producer's inter-thread register consumers.
    pub hops: u32,
    /// Consumers in later threads: `(consumer, d_ker)` pairs.
    pub consumers: Vec<(InstId, u32)>,
}

/// The complete communication plan of a scheduled loop.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CommPlan {
    /// One entry per producer with at least one inter-thread register
    /// consumer.
    pub communications: Vec<Communication>,
    /// Relay copy instructions inserted: `Σ max(hops − 1, 0)`.
    pub num_copies: u32,
    /// SEND/RECV pairs executed per kernel iteration: `Σ hops` — the
    /// original SEND plus one re-SEND per relay copy.
    pub send_recv_pairs: u32,
}

impl CommPlan {
    /// Build the plan from a finished schedule.
    ///
    /// Only register **flow** dependences with kernel distance ≥ 1 are
    /// synchronised; intra-thread dependences need no communication and
    /// memory dependences are speculated, not synchronised.
    pub fn build(ddg: &Ddg, schedule: &Schedule) -> Self {
        let mut communications: Vec<Communication> = Vec::new();
        for u in ddg.inst_ids() {
            let mut consumers: Vec<(InstId, u32)> = Vec::new();
            let mut hops = 0u32;
            for (_, e) in ddg.succ_edges(u) {
                if !e.is_register_flow() {
                    continue;
                }
                let d_ker = schedule.d_ker(e);
                if d_ker >= 1 {
                    let d = d_ker as u32;
                    consumers.push((e.dst, d));
                    hops = hops.max(d);
                }
            }
            if hops >= 1 {
                consumers.sort();
                consumers.dedup();
                communications.push(Communication {
                    producer: u,
                    send_row: schedule.row(u),
                    hops,
                    consumers,
                });
            }
        }
        let num_copies = communications
            .iter()
            .map(|c| c.hops.saturating_sub(1))
            .sum();
        let send_recv_pairs = communications.iter().map(|c| c.hops).sum();
        CommPlan {
            communications,
            num_copies,
            send_recv_pairs,
        }
    }

    /// Producers that communicate.
    pub fn num_producers(&self) -> usize {
        self.communications.len()
    }

    /// After this pass, every communicated register dependence travels
    /// hop by hop — distances are all 1 (the paper's §3 invariant).
    /// Exposed as a checkable predicate for tests.
    pub fn all_distances_unit(&self) -> bool {
        // By construction each Communication moves one hop at a time;
        // the invariant can only break if a consumer records a hop
        // count above the producer's.
        self.communications
            .iter()
            .all(|c| c.consumers.iter().all(|&(_, d)| d <= c.hops))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_ddg::{DdgBuilder, OpClass};

    #[test]
    fn shared_producer_uses_one_communication() {
        // n6 -> n0 (d=1) and n6 -> n6 (d=1): one SEND/RECV pair.
        let mut b = DdgBuilder::new("share");
        let n0 = b.inst("n0", OpClass::IntAlu);
        let n6 = b.inst("n6", OpClass::IntAlu);
        b.reg_flow(n6, n0, 1);
        b.reg_flow(n6, n6, 1);
        let g = b.build().unwrap();
        let s = Schedule::from_times(&g, 8, vec![0, 1]);
        let plan = CommPlan::build(&g, &s);
        assert_eq!(plan.num_producers(), 1);
        assert_eq!(plan.send_recv_pairs, 1);
        assert_eq!(plan.num_copies, 0);
        assert_eq!(plan.communications[0].consumers.len(), 2);
    }

    #[test]
    fn multi_hop_dependence_needs_relays() {
        let mut b = DdgBuilder::new("far");
        let p = b.inst("p", OpClass::IntAlu);
        let q = b.inst("q", OpClass::IntAlu);
        b.reg_flow(p, q, 3);
        let g = b.build().unwrap();
        let s = Schedule::from_times(&g, 4, vec![0, 1]); // same stage
        let plan = CommPlan::build(&g, &s);
        assert_eq!(plan.communications[0].hops, 3);
        assert_eq!(plan.num_copies, 2);
        assert_eq!(plan.send_recv_pairs, 3);
        assert!(plan.all_distances_unit());
    }

    #[test]
    fn intra_thread_dependences_need_no_communication() {
        let mut b = DdgBuilder::new("intra");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        let g = b.build().unwrap();
        let s = Schedule::from_times(&g, 2, vec![0, 1]);
        let plan = CommPlan::build(&g, &s);
        assert_eq!(plan.num_producers(), 0);
        assert_eq!(plan.send_recv_pairs, 0);
    }

    #[test]
    fn pipelined_distance_folds_into_stage() {
        // d=1 but the consumer sits one stage earlier: d_ker = 0 — the
        // paper's n8 -> n5 case. No communication needed.
        let mut b = DdgBuilder::new("fold");
        let n8 = b.inst("n8", OpClass::IntAlu);
        let n5 = b.inst("n5", OpClass::IntAlu);
        b.reg_flow(n8, n5, 1);
        let g = b.build().unwrap();
        let s = Schedule::from_times(&g, 4, vec![4, 1]); // stages 1, 0
        let plan = CommPlan::build(&g, &s);
        assert_eq!(plan.num_producers(), 0);
    }

    #[test]
    fn memory_dependences_are_not_synchronised() {
        let mut b = DdgBuilder::new("mem");
        let st = b.inst("st", OpClass::Store);
        let ld = b.inst("ld", OpClass::Load);
        b.mem_flow(st, ld, 1, 0.5);
        let g = b.build().unwrap();
        let s = Schedule::from_times(&g, 2, vec![0, 1]);
        let plan = CommPlan::build(&g, &s);
        assert_eq!(plan.num_producers(), 0);
    }

    #[test]
    fn two_producers_two_pairs() {
        let mut b = DdgBuilder::new("two");
        let p1 = b.inst("p1", OpClass::IntAlu);
        let p2 = b.inst("p2", OpClass::IntAlu);
        let c1 = b.inst("c1", OpClass::IntAlu);
        let c2 = b.inst("c2", OpClass::IntAlu);
        b.reg_flow(p1, c1, 1);
        b.reg_flow(p2, c2, 1);
        let g = b.build().unwrap();
        let s = Schedule::from_times(&g, 4, vec![0, 1, 2, 3]);
        let plan = CommPlan::build(&g, &s);
        assert_eq!(plan.num_producers(), 2);
        assert_eq!(plan.send_recv_pairs, 2);
    }
}
