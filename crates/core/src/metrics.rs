//! Loop-level metrics: the quantities Tables 2 and 3 report.

use crate::cost::{misspec_probability, preserves, sync_delay};
use crate::lifetimes::max_live;
use crate::postpass::CommPlan;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};
use tms_ddg::analysis::AcyclicPriorities;
use tms_ddg::mii::recurrence_info;
use tms_ddg::scc::SccDecomposition;
use tms_ddg::Ddg;
use tms_machine::{mii, res_ii, CostConstants, MachineModel};

/// Achieved `C_delay` of a finished schedule: the largest Definition-2
/// synchronisation delay over all inter-thread register flow
/// dependences (0 when the kernel has none).
///
/// Multi-hop dependences (kernel distance > 1) are approximated by the
/// same formula on the end rows — after the copy post-pass the relay
/// chain's per-hop delay is bounded by it.
pub fn achieved_c_delay(ddg: &Ddg, schedule: &Schedule, costs: &CostConstants) -> u32 {
    let mut worst = 0i64;
    for e in ddg.edges() {
        if !e.is_register_flow() || schedule.d_ker(e) < 1 {
            continue;
        }
        let s = sync_delay(
            schedule.row(e.src) as i64,
            schedule.row(e.dst) as i64,
            ddg.inst(e.src).latency,
            costs,
        );
        worst = worst.max(s);
    }
    worst.max(0) as u32
}

/// Indices (into `ddg.edges()`) of the inter-thread memory flow
/// dependences **not** preserved by any synchronised register
/// dependence (Definition 3) — the dependences the kernel speculates
/// on, whose probabilities eq. 3 combines.
pub fn unpreserved_memory_deps(
    ddg: &Ddg,
    schedule: &Schedule,
    costs: &CostConstants,
) -> Vec<usize> {
    // Synchronised register dependences available to preserve memory
    // dependences: (sync, producer row) pairs.
    let r_all: Vec<(i64, i64)> = ddg
        .edges()
        .iter()
        .filter(|e| e.is_register_flow() && schedule.d_ker(e) >= 1)
        .map(|e| {
            (
                sync_delay(
                    schedule.row(e.src) as i64,
                    schedule.row(e.dst) as i64,
                    ddg.inst(e.src).latency,
                    costs,
                ),
                schedule.row(e.src) as i64,
            )
        })
        .collect();

    ddg.edges()
        .iter()
        .enumerate()
        .filter_map(|(i, e)| {
            if !e.is_memory_flow() {
                return None;
            }
            let d_ker = schedule.d_ker(e);
            if d_ker < 1 {
                return None;
            }
            let rx = schedule.row(e.src) as i64;
            let ry = schedule.row(e.dst) as i64;
            let lat = ddg.inst(e.src).latency;
            let kept = r_all
                .iter()
                .any(|&(s, ru)| preserves(s, ru, rx, ry, lat, d_ker));
            (!kept).then_some(i)
        })
        .collect()
}

/// Combined misspeculation probability of the kernel (eq. 3 over the
/// non-preserved inter-thread memory flow dependences, per Def. 3).
pub fn kernel_misspec_prob(ddg: &Ddg, schedule: &Schedule, costs: &CostConstants) -> f64 {
    misspec_probability(
        unpreserved_memory_deps(ddg, schedule, costs)
            .into_iter()
            .map(|i| ddg.edges()[i].prob),
    )
}

/// Everything Tables 2/3 report about one scheduled loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LoopMetrics {
    /// Loop name.
    pub name: String,
    /// Instruction count.
    pub num_insts: usize,
    /// Number of *recurrence* SCCs (multi-node components or self
    /// loops — singleton non-recurrent nodes are not counted, matching
    /// how Table 3 reports "#SCC" for fine-grained loops).
    pub num_sccs: usize,
    /// Resource-constrained II bound.
    pub res_ii: u32,
    /// Recurrence-constrained II bound.
    pub rec_ii: u32,
    /// `MII = max(ResII, RecII)`.
    pub mii: u32,
    /// Longest dependence path (§5 metric).
    pub ldp: i64,
    /// Achieved initiation interval.
    pub ii: u32,
    /// MaxLive over the kernel.
    pub max_live: u32,
    /// Achieved `C_delay`.
    pub c_delay: u32,
    /// Kernel stages.
    pub stage_count: u32,
    /// Relay copies inserted by the post-pass.
    pub num_copies: u32,
    /// SEND/RECV pairs per kernel iteration.
    pub send_recv_pairs: u32,
    /// Combined misspeculation probability of the kernel (eq. 3).
    pub misspec_prob: f64,
}

impl LoopMetrics {
    /// Compute every metric for a finished schedule.
    pub fn compute(
        ddg: &Ddg,
        machine: &MachineModel,
        schedule: &Schedule,
        costs: &CostConstants,
    ) -> Self {
        let scc = SccDecomposition::compute(ddg);
        let rec = recurrence_info(ddg, &scc);
        let prio = AcyclicPriorities::compute(ddg);
        let plan = CommPlan::build(ddg, schedule);
        LoopMetrics {
            name: ddg.name().to_string(),
            num_insts: ddg.num_insts(),
            num_sccs: scc.recurrence_components(ddg).count(),
            res_ii: res_ii(ddg, machine),
            rec_ii: rec.rec_ii,
            mii: mii(ddg, machine),
            ldp: prio.ldp,
            ii: schedule.ii(),
            max_live: max_live(ddg, schedule),
            c_delay: achieved_c_delay(ddg, schedule, costs),
            stage_count: schedule.stage_count(),
            num_copies: plan.num_copies,
            send_recv_pairs: plan.send_recv_pairs,
            misspec_prob: kernel_misspec_prob(ddg, schedule, costs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sms::schedule_sms;
    use tms_ddg::{DdgBuilder, OpClass};
    use tms_machine::ArchParams;

    fn costs() -> CostConstants {
        ArchParams::icpp2008().costs
    }

    #[test]
    fn c_delay_zero_without_inter_thread_deps() {
        let mut b = DdgBuilder::new("doall");
        let l = b.inst("ld", OpClass::Load);
        let s = b.inst("st", OpClass::Store);
        b.reg_flow(l, s, 0);
        let g = b.build().unwrap();
        // Both in stage 0 (II=4): the dependence stays intra-thread.
        let sch = Schedule::from_times(&g, 4, vec![0, 3]);
        assert_eq!(achieved_c_delay(&g, &sch, &costs()), 0);
        assert_eq!(kernel_misspec_prob(&g, &sch, &costs()), 0.0);
    }

    #[test]
    fn c_delay_matches_paper_formula() {
        // Producer at row 7 (lat 1) feeding row 0 next iteration:
        // sync = 7 − 0 + 1 + 3 = 11 — the paper's SMS number.
        let mut b = DdgBuilder::new("n6n0");
        let n0 = b.inst("n0", OpClass::IntAlu);
        let n6 = b.inst("n6", OpClass::IntAlu);
        b.reg_flow(n6, n0, 1);
        let g = b.build().unwrap();
        let sch = Schedule::from_times(&g, 8, vec![0, 7]);
        assert_eq!(achieved_c_delay(&g, &sch, &costs()), 11);
    }

    #[test]
    fn misspec_prob_counts_unpreserved_memory_deps() {
        let mut b = DdgBuilder::new("spec");
        let st = b.inst("st", OpClass::Store);
        let ld = b.inst("ld", OpClass::Load);
        b.mem_flow(st, ld, 1, 0.3);
        let g = b.build().unwrap();
        // No synchronised register deps — nothing can preserve it.
        let sch = Schedule::from_times(&g, 4, vec![0, 1]);
        let p = kernel_misspec_prob(&g, &sch, &costs());
        assert!((p - 0.3).abs() < 1e-12);
    }

    #[test]
    fn preserved_memory_dep_costs_nothing() {
        // A serialising register dependence (large sync) makes the
        // memory dependence preserved per Definition 3. All times stay
        // in stage 0 (II = 8) so kernel distances equal edge distances.
        let mut b = DdgBuilder::new("kept");
        let u = b.inst("u", OpClass::IntAlu);
        let v = b.inst("v", OpClass::IntAlu);
        let st = b.inst_lat("st", OpClass::Store, 1);
        let ld = b.inst("ld", OpClass::Load);
        b.reg_flow(u, v, 1);
        b.mem_flow(st, ld, 1, 0.9);
        let g = b.build().unwrap();
        // u row 2, v row 0: sync = 2 − 0 + 1 + 3 = 6. Memory dep st
        // (row 7, lat 1) → ld (row 0), δ = 1: preservation needs
        // row(u)=2 < row(st)=7 ✓ but 6 < 7 + 1 − 0 = 8 → NOT kept.
        let sch = Schedule::from_times(&g, 8, vec![2, 0, 7, 0]);
        let p = kernel_misspec_prob(&g, &sch, &costs());
        assert!((p - 0.9).abs() < 1e-12);
        // Slower producer row: u row 5 → sync = 5 + 1 + 3 = 9 ≥ 8 ✓.
        let sch = Schedule::from_times(&g, 8, vec![5, 0, 7, 0]);
        let p = kernel_misspec_prob(&g, &sch, &costs());
        assert_eq!(p, 0.0);
    }

    #[test]
    fn metrics_struct_is_coherent() {
        let mut b = DdgBuilder::new("loop");
        let a = b.inst_lat("acc", OpClass::FpAdd, 2);
        let x = b.inst("x", OpClass::Load);
        let s = b.inst("s", OpClass::Store);
        b.reg_flow(x, a, 0);
        b.reg_flow(a, a, 1);
        b.reg_flow(a, s, 0);
        b.mem_flow(s, x, 1, 0.05);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let r = schedule_sms(&g, &m).unwrap();
        let lm = LoopMetrics::compute(&g, &m, &r.schedule, &costs());
        assert_eq!(lm.num_insts, 3);
        assert_eq!(lm.mii, lm.res_ii.max(lm.rec_ii));
        assert!(lm.ii >= lm.mii);
        assert!(lm.stage_count >= 1);
        assert!(lm.ldp >= 1);
        assert!((0.0..=1.0).contains(&lm.misspec_prob));
    }
}
