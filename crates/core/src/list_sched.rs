//! Non-pipelined reference: resource-constrained list scheduling of
//! one loop iteration.
//!
//! This is the "ordinary sequential code" view of a loop — a
//! height-priority list schedule of one iteration on one core, with
//! iterations executing back to back. The simulator's Figure 5
//! baseline (`tms-sim::seq`) models the out-of-order core that
//! *overlaps* iterations; this module provides the strictly in-order
//! lower bound, the issue order for pseudo-assembly listings, and a
//! sanity reference for tests.

use crate::mrt::Mrt;
use tms_ddg::analysis::{topo_order_zero_dist, AcyclicPriorities};
use tms_ddg::{Ddg, InstId};
use tms_machine::MachineModel;

/// A non-pipelined schedule of one iteration.
#[derive(Debug, Clone)]
pub struct ListSchedule {
    /// Issue cycle of every instruction.
    pub times: Vec<i64>,
    /// Completion time of the iteration (last issue + latency).
    pub length: i64,
}

impl ListSchedule {
    /// Issue time of `n`.
    pub fn time(&self, n: InstId) -> i64 {
        self.times[n.index()]
    }
}

/// Greedy cycle-driven list scheduling with height priority.
///
/// Only intra-iteration (distance 0) dependences constrain the single
/// iteration; loop-carried dependences are honoured by executing
/// iterations sequentially (the next iteration starts after this one's
/// last instruction completes, which trivially satisfies any carried
/// dependence).
pub fn list_schedule(ddg: &Ddg, machine: &MachineModel) -> ListSchedule {
    let n = ddg.num_insts();
    let prio = AcyclicPriorities::compute(ddg);

    // Ready = all intra-iteration predecessors scheduled & completed.
    let order = topo_order_zero_dist(ddg);
    let mut unsched_preds = vec![0usize; n];
    for e in ddg.edges() {
        if e.distance == 0 {
            unsched_preds[e.dst.index()] += 1;
        }
    }

    let mut earliest = vec![0i64; n];
    let mut times = vec![-1i64; n];
    let mut remaining = n;
    let horizon = ddg.total_latency() as i64 + n as i64 + 1;
    // A long-enough MRT: one row per cycle (no modulo wrap needed, so
    // use a table with II = horizon).
    let mut mrt = Mrt::new(horizon.max(1) as u32, machine);

    let mut cycle = 0i64;
    while remaining > 0 && cycle <= horizon {
        // Ready nodes at this cycle sorted by descending height.
        let mut ready: Vec<InstId> = order
            .iter()
            .copied()
            .filter(|&u| {
                times[u.index()] < 0
                    && unsched_preds[u.index()] == 0
                    && earliest[u.index()] <= cycle
            })
            .collect();
        ready.sort_by(|&a, &b| {
            prio.height[b.index()]
                .cmp(&prio.height[a.index()])
                .then(a.cmp(&b))
        });
        for u in ready {
            if !mrt.can_place(ddg.inst(u).op, cycle) {
                continue;
            }
            mrt.place(ddg.inst(u).op, cycle);
            times[u.index()] = cycle;
            remaining -= 1;
            for (_, e) in ddg.succ_edges(u) {
                if e.distance != 0 {
                    continue;
                }
                unsched_preds[e.dst.index()] -= 1;
                let done = cycle + e.delay;
                if done > earliest[e.dst.index()] {
                    earliest[e.dst.index()] = done;
                }
            }
        }
        cycle += 1;
    }
    assert_eq!(remaining, 0, "list scheduling failed to converge");

    let length = ddg
        .inst_ids()
        .map(|u| times[u.index()] + ddg.inst(u).latency as i64)
        .max()
        .unwrap_or(0);
    ListSchedule { times, length }
}

/// Sequential execution time of `n_iter` iterations: iterations run
/// back to back with loop-carried values forwarded through registers
/// (no restart penalty beyond the dependence itself). The recurrence
/// height bounds the steady-state per-iteration cost from below.
pub fn sequential_time(ddg: &Ddg, machine: &MachineModel, n_iter: u64) -> u64 {
    let ls = list_schedule(ddg, machine);
    ls.length as u64 * n_iter
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_ddg::{DdgBuilder, OpClass};

    #[test]
    fn chain_length_is_sum_of_latencies() {
        let mut b = DdgBuilder::new("chain");
        let l = b.inst("ld", OpClass::Load); // 3
        let m = b.inst("mul", OpClass::FpMul); // 4
        let s = b.inst("st", OpClass::Store); // 1
        b.reg_flow(l, m, 0);
        b.reg_flow(m, s, 0);
        let g = b.build().unwrap();
        let ls = list_schedule(&g, &MachineModel::icpp2008());
        assert_eq!(ls.length, 8);
        assert_eq!(ls.time(l), 0);
        assert_eq!(ls.time(m), 3);
        assert_eq!(ls.time(s), 7);
    }

    #[test]
    fn resource_conflicts_serialise() {
        // Three independent FP multiplies on one unit issue on cycles
        // 0, 1, 2; length = 2 + 4 = 6.
        let mut b = DdgBuilder::new("mul3");
        for i in 0..3 {
            b.inst(format!("m{i}"), OpClass::FpMul);
        }
        let g = b.build().unwrap();
        let ls = list_schedule(&g, &MachineModel::icpp2008());
        let mut t: Vec<i64> = ls.times.clone();
        t.sort();
        assert_eq!(t, vec![0, 1, 2]);
        assert_eq!(ls.length, 6);
    }

    #[test]
    fn respects_dependences_not_priorities_alone() {
        let mut b = DdgBuilder::new("dep");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        let g = b.build().unwrap();
        let ls = list_schedule(&g, &MachineModel::scalar());
        assert!(ls.time(c) > ls.time(a));
    }

    #[test]
    fn loop_carried_edges_do_not_stretch_one_iteration() {
        let mut b = DdgBuilder::new("carried");
        let a = b.inst_lat("a", OpClass::FpAdd, 2);
        b.reg_flow(a, a, 1);
        let g = b.build().unwrap();
        let ls = list_schedule(&g, &MachineModel::icpp2008());
        assert_eq!(ls.length, 2);
        assert_eq!(sequential_time(&g, &MachineModel::icpp2008(), 10), 20);
    }

    #[test]
    fn issue_width_limits_parallel_issue() {
        // Eight independent ALU ops, 2 IntUnits: at most 2 per cycle.
        let mut b = DdgBuilder::new("wide");
        for i in 0..8 {
            b.inst(format!("a{i}"), OpClass::IntAlu);
        }
        let g = b.build().unwrap();
        let ls = list_schedule(&g, &MachineModel::icpp2008());
        assert_eq!(ls.length, 4); // last pair issues at cycle 3, +1 lat
    }
}
