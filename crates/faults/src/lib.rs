//! Deterministic fault injection for the TMS pipeline.
//!
//! The paper's premise is surviving failure: TMS schedules *around*
//! misspeculation and the SpMT engine squashes and re-executes violated
//! threads. This crate holds the harness to the same standard. A
//! [`FaultPlan`] is a seeded, deterministic oracle that decides — at
//! named sites spread across the scheduler, the simulator, the worker
//! pool and the trace spill sink — whether a fault fires, and every
//! layer it touches must degrade gracefully instead of aborting:
//!
//! | site | injected fault | expected degradation |
//! |------|----------------|----------------------|
//! | [`SITE_SCHED_BUDGET`] | a tiny `(II, C_delay, P_max)` attempt budget for selected loops | `schedule_tms` falls back to the plain SMS schedule and reports `Diagnostic::DegradedToSms` |
//! | [`SITE_PAR_PANIC`] | a panicking worker on a chosen item (fires once per key) | `tms_core::par` catches the unwind and re-executes the item serially — results stay bit-identical at any `--jobs` |
//! | [`SITE_SPILL_WRITE`] | `ErrorKind::Interrupted`, disk-full, or a short (torn) write on a spill line | the streaming sink retries with bounded backoff, then degrades to the in-memory sink and records `trace.spill.degraded` |
//! | [`SITE_SIM_MISSPEC`] | a forced misspeculation burst on selected `(loop, thread)` pairs | the engine squashes and replays; the committed memory image must still equal the sequential reference |
//! | [`SITE_SIM_JITTER`] | extra cycles on a thread's inter-core ring-queue arrivals | RECV stalls grow; the run slows but stays correct |
//! | [`SITE_DAEMON_ACCEPT`] | `ErrorKind::Interrupted` on selected `tmsd` accepts | the accept loop backs off and retries; the connection stays queued in the listen backlog, never dropped |
//! | [`SITE_DAEMON_CACHE_READ`] | a corrupt schedule-cache entry on first read of selected keys | `tmsd` bypasses the entry (counted), reschedules cold, and overwrites it — never serves a wrong answer |
//! | [`SITE_DAEMON_CACHE_WRITE`] | `Interrupted`, disk-full, or a torn write on a cache-persist line | bounded retry + backoff, then the cache degrades to memory-only; restart recovers the valid file prefix |
//!
//! # Determinism
//!
//! Every decision is a pure function of `(seed, site, key)` — never of
//! wall-clock time or cross-thread arrival order. Callers key decisions
//! by *stable identifiers* (loop name, thread index, spill-write index),
//! so the same plan replayed at `--jobs 1/2/4` injects exactly the same
//! faults and the sweep report and merged metrics stay byte-identical.
//! The only mutable state is the *once-latch* used by sites that must
//! fire at most once per key (a panic that re-fires on the recovery
//! path would defeat the recovery), plus the per-site injection
//! accounting surfaced by [`FaultPlan::injected`]; both are keyed, not
//! ordered, so they too are schedule-independent.
//!
//! A disabled plan ([`FaultPlan::disabled`], also the [`Default`])
//! carries no allocation at all and every query is a one-branch no-op,
//! mirroring `tms_trace::Trace::disabled`.

use std::collections::{BTreeMap, BTreeSet};
use std::io;
use std::sync::{Arc, Mutex, MutexGuard};

/// Scheduler site: force a tiny attempt budget on selected loops.
pub const SITE_SCHED_BUDGET: &str = "sched.budget";
/// Worker-pool site: panic on the first execution of selected items.
pub const SITE_PAR_PANIC: &str = "par.worker_panic";
/// Trace-sink site: fail spill writes (transient, torn, or disk-full).
pub const SITE_SPILL_WRITE: &str = "trace.spill.write";
/// Engine site: force a misspeculation on selected `(loop, thread)`s.
pub const SITE_SIM_MISSPEC: &str = "sim.misspec";
/// Engine site: jitter a thread's ring-queue arrival times.
pub const SITE_SIM_JITTER: &str = "sim.stall_jitter";
/// Daemon site: transient `Interrupted` errors on `tmsd` accepts.
pub const SITE_DAEMON_ACCEPT: &str = "daemon.accept";
/// Daemon site: corrupt a persisted schedule-cache entry on read.
pub const SITE_DAEMON_CACHE_READ: &str = "daemon.cache.read";
/// Daemon site: fail schedule-cache persist writes.
pub const SITE_DAEMON_CACHE_WRITE: &str = "daemon.cache.write";

/// What an injected spill-write fault looks like to the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// `ErrorKind::Interrupted` — transient; a retry should succeed.
    Interrupted,
    /// `ErrorKind::StorageFull` — persistent; retries are futile and
    /// the sink should degrade after its retry budget.
    DiskFull,
    /// Only a prefix of the line reaches the file (a torn write, as a
    /// killed process would leave). The file's tail is no longer
    /// line-atomic; the sink must degrade immediately and readers must
    /// recover the valid prefix.
    ShortWrite,
}

impl IoFault {
    /// Render the fault as the `io::Error` the sink would have seen.
    pub fn to_io_error(self) -> io::Error {
        match self {
            IoFault::Interrupted => {
                io::Error::new(io::ErrorKind::Interrupted, "injected transient write fault")
            }
            IoFault::DiskFull => {
                io::Error::new(io::ErrorKind::StorageFull, "injected disk-full fault")
            }
            IoFault::ShortWrite => {
                io::Error::new(io::ErrorKind::WriteZero, "injected short (torn) write")
            }
        }
    }
}

/// Per-site firing rates and parameters of a plan. Rates are expressed
/// per 1024 keys: a rate of 64 selects ~6% of keys, deterministically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Fraction of loops (per 1024) forced into a tiny attempt budget.
    pub sched_budget_per_1024: u32,
    /// The injected attempt budget for selected loops.
    pub sched_budget_attempts: usize,
    /// Fraction of worker items (per 1024) whose first execution
    /// panics.
    pub worker_panic_per_1024: u32,
    /// Fraction of spill writes (per 1024) hit with a transient
    /// `Interrupted` error.
    pub spill_transient_per_1024: u32,
    /// Spill write index (1-based) past which every write fails with
    /// disk-full. `None` disables the persistent-failure mode.
    pub spill_fail_after: Option<u64>,
    /// Spill write index (1-based) at which exactly one torn write is
    /// injected. `None` disables.
    pub spill_torn_at: Option<u64>,
    /// Fraction of `(loop, thread)` pairs (per 1024) forced to
    /// misspeculate once.
    pub misspec_per_1024: u32,
    /// Fraction of `(loop, thread)` pairs (per 1024) whose ring-queue
    /// arrivals are delayed.
    pub jitter_per_1024: u32,
    /// Largest injected arrival delay, in cycles (the actual delay is
    /// `1..=jitter_max_cycles`, drawn deterministically per key).
    pub jitter_max_cycles: u64,
    /// Fraction of `tmsd` accepts (per 1024) hit with a transient
    /// `Interrupted` error.
    pub accept_transient_per_1024: u32,
    /// Fraction of schedule-cache keys (per 1024) whose persisted entry
    /// reads back corrupt — once per key (the rewrite must stick).
    pub cache_read_corrupt_per_1024: u32,
    /// Fraction of cache persist writes (per 1024) hit with a transient
    /// `Interrupted` error.
    pub cache_write_transient_per_1024: u32,
    /// Cache persist write index (1-based) past which every write fails
    /// with disk-full. `None` disables.
    pub cache_write_fail_after: Option<u64>,
    /// Cache persist write index (1-based) at which exactly one torn
    /// write is injected. `None` disables.
    pub cache_write_torn_at: Option<u64>,
}

impl Default for FaultRates {
    /// The standard `--faults` campaign profile: every site armed, each
    /// at a rate low enough that most loops still exercise the happy
    /// path while every degradation ladder fires somewhere in a sweep.
    fn default() -> Self {
        FaultRates {
            sched_budget_per_1024: 96,
            sched_budget_attempts: 2,
            worker_panic_per_1024: 64,
            spill_transient_per_1024: 8,
            spill_fail_after: None,
            spill_torn_at: Some(5_000),
            misspec_per_1024: 48,
            jitter_per_1024: 48,
            jitter_max_cycles: 24,
            accept_transient_per_1024: 64,
            cache_read_corrupt_per_1024: 32,
            cache_write_transient_per_1024: 16,
            cache_write_fail_after: None,
            cache_write_torn_at: None,
        }
    }
}

struct Inner {
    seed: u64,
    rates: FaultRates,
    /// Once-latches: `(site, key)` pairs that have already fired.
    latched: Mutex<BTreeSet<(&'static str, String)>>,
    /// Injection accounting, per site.
    injected: Mutex<BTreeMap<&'static str, u64>>,
}

/// A seeded, deterministic fault-injection plan. Cheap to clone (all
/// clones share one latch/accounting state); the disabled plan is a
/// null pointer and every query short-circuits.
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => f.write_str("FaultPlan(disabled)"),
            Some(p) => write!(f, "FaultPlan(seed=0x{:X})", p.seed),
        }
    }
}

/// splitmix64 finaliser: a full-avalanche bijection on `u64`.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// FNV-1a over `site`, a separator, and `key`, finished with [`mix`].
fn hash(seed: u64, site: &str, key: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ mix(seed);
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    eat(site.as_bytes());
    eat(&[0xff]);
    eat(key.as_bytes());
    mix(h)
}

/// Stable content hash: FNV-1a over `parts`, each terminated by a
/// `0xff` byte (which never occurs in UTF-8, so part boundaries are
/// unambiguous — including empty and trailing parts), finished with
/// the [`mix`] splitmix64 finaliser. This is the same construction the
/// fault sites use for their decisions, exported for callers that need
/// a deterministic, process-independent key — notably the `tmsd`
/// content-addressed schedule cache. Not a cryptographic hash;
/// collisions are astronomically unlikely for the cache's working-set
/// sizes but an adversary could construct them.
pub fn stable_hash(seed: u64, parts: &[&str]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ mix(seed);
    for part in parts {
        for &b in part.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h = (h ^ 0xff).wrapping_mul(0x0000_0100_0000_01b3);
    }
    mix(h)
}

/// Poison-tolerant lock: a panic while another clone held the guard
/// must not cascade into the fault plan itself.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl FaultPlan {
    /// The inert plan: no site ever fires. This is also the [`Default`].
    pub fn disabled() -> FaultPlan {
        FaultPlan { inner: None }
    }

    /// A plan with the standard campaign profile ([`FaultRates::default`]).
    pub fn seeded(seed: u64) -> FaultPlan {
        Self::with_rates(seed, FaultRates::default())
    }

    /// A plan with explicit per-site rates.
    pub fn with_rates(seed: u64, rates: FaultRates) -> FaultPlan {
        FaultPlan {
            inner: Some(Arc::new(Inner {
                seed,
                rates,
                latched: Mutex::new(BTreeSet::new()),
                injected: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether any site can fire.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The plan's seed (`None` when disabled).
    pub fn seed(&self) -> Option<u64> {
        self.inner.as_ref().map(|p| p.seed)
    }

    /// The plan's rates (`None` when disabled).
    pub fn rates(&self) -> Option<FaultRates> {
        self.inner.as_ref().map(|p| p.rates)
    }

    fn chance(p: &Inner, site: &'static str, key: &str, per_1024: u32) -> bool {
        per_1024 > 0 && hash(p.seed, site, key) % 1024 < u64::from(per_1024)
    }

    fn note(p: &Inner, site: &'static str) {
        *lock(&p.injected).entry(site).or_insert(0) += 1;
    }

    /// Fire-once latch: true the first time `(site, key)` is selected,
    /// false on every later query for the same pair.
    fn latch_once(p: &Inner, site: &'static str, key: &str) -> bool {
        let mut latched = lock(&p.latched);
        if latched.contains(&(site, key.to_string())) {
            return false;
        }
        latched.insert((site, key.to_string()));
        true
    }

    /// The injected attempt budget for `loop_name`, if this plan
    /// selects it ([`SITE_SCHED_BUDGET`]).
    pub fn sched_budget(&self, loop_name: &str) -> Option<usize> {
        let p = self.inner.as_ref()?;
        if !Self::chance(
            p,
            SITE_SCHED_BUDGET,
            loop_name,
            p.rates.sched_budget_per_1024,
        ) {
            return None;
        }
        Self::note(p, SITE_SCHED_BUDGET);
        Some(p.rates.sched_budget_attempts)
    }

    /// True exactly once for each selected `key`: the caller should
    /// panic, and the recovery path's re-execution of the same key will
    /// see `false` ([`SITE_PAR_PANIC`]).
    pub fn worker_panic_once(&self, key: &str) -> bool {
        let Some(p) = &self.inner else { return false };
        if !Self::chance(p, SITE_PAR_PANIC, key, p.rates.worker_panic_per_1024) {
            return false;
        }
        if !Self::latch_once(p, SITE_PAR_PANIC, key) {
            return false;
        }
        Self::note(p, SITE_PAR_PANIC);
        true
    }

    /// The fault injected on spill write number `write_index` (1-based),
    /// if any ([`SITE_SPILL_WRITE`]). Pure in the index, so retries of
    /// the *same* write see the same answer — the sink advances the
    /// index per attempt, which is what lets a transient fault clear.
    pub fn spill_write_fault(&self, write_index: u64) -> Option<IoFault> {
        let p = self.inner.as_ref()?;
        let fault = if p.rates.spill_torn_at == Some(write_index) {
            IoFault::ShortWrite
        } else if p.rates.spill_fail_after.is_some_and(|n| write_index > n) {
            IoFault::DiskFull
        } else {
            let key = write_index.to_string();
            if !Self::chance(p, SITE_SPILL_WRITE, &key, p.rates.spill_transient_per_1024) {
                return None;
            }
            IoFault::Interrupted
        };
        Self::note(p, SITE_SPILL_WRITE);
        Some(fault)
    }

    /// True exactly once for each selected `(loop, thread)` pair: the
    /// engine should treat the thread's first execution as violated and
    /// replay it ([`SITE_SIM_MISSPEC`]). The once-latch is what lets
    /// the replay converge.
    pub fn forced_misspec(&self, loop_key: &str, thread: u64) -> bool {
        let Some(p) = &self.inner else { return false };
        let key = format!("{loop_key}#{thread}");
        if !Self::chance(p, SITE_SIM_MISSPEC, &key, p.rates.misspec_per_1024) {
            return false;
        }
        if !Self::latch_once(p, SITE_SIM_MISSPEC, &key) {
            return false;
        }
        Self::note(p, SITE_SIM_MISSPEC);
        true
    }

    /// Extra cycles injected into the ring-queue arrivals of `thread`
    /// (0 when the pair is not selected) ([`SITE_SIM_JITTER`]). Pure —
    /// replays of the thread see the same jitter.
    pub fn stall_jitter(&self, loop_key: &str, thread: u64) -> u64 {
        let Some(p) = &self.inner else { return 0 };
        let key = format!("{loop_key}#{thread}");
        if !Self::chance(p, SITE_SIM_JITTER, &key, p.rates.jitter_per_1024) {
            return 0;
        }
        Self::note(p, SITE_SIM_JITTER);
        let span = p.rates.jitter_max_cycles.max(1);
        1 + hash(p.seed, SITE_SIM_JITTER, &format!("{key}!amount")) % span
    }

    /// The fault injected on `tmsd` accept attempt `accept_index`
    /// (1-based), if any ([`SITE_DAEMON_ACCEPT`]). Always transient
    /// (`Interrupted`): the accept loop backs off and retries, and the
    /// pending connection waits in the listen backlog. Pure in the
    /// index — the loop advances it per attempt, which is what lets a
    /// transient fault clear.
    pub fn accept_fault(&self, accept_index: u64) -> Option<IoFault> {
        let p = self.inner.as_ref()?;
        let key = accept_index.to_string();
        if !Self::chance(
            p,
            SITE_DAEMON_ACCEPT,
            &key,
            p.rates.accept_transient_per_1024,
        ) {
            return None;
        }
        Self::note(p, SITE_DAEMON_ACCEPT);
        Some(IoFault::Interrupted)
    }

    /// True exactly once for each selected cache key: the daemon should
    /// treat the persisted entry as corrupt, bypass it, and reschedule
    /// cold ([`SITE_DAEMON_CACHE_READ`]). The once-latch is what lets
    /// the overwritten entry be trusted afterwards.
    pub fn cache_read_corrupt(&self, key: &str) -> bool {
        let Some(p) = &self.inner else { return false };
        if !Self::chance(
            p,
            SITE_DAEMON_CACHE_READ,
            key,
            p.rates.cache_read_corrupt_per_1024,
        ) {
            return false;
        }
        if !Self::latch_once(p, SITE_DAEMON_CACHE_READ, key) {
            return false;
        }
        Self::note(p, SITE_DAEMON_CACHE_READ);
        true
    }

    /// The fault injected on cache persist write number `write_index`
    /// (1-based), if any ([`SITE_DAEMON_CACHE_WRITE`]). Same contract
    /// as [`FaultPlan::spill_write_fault`]: pure in the index, torn and
    /// disk-full modes take precedence over the transient rate.
    pub fn cache_write_fault(&self, write_index: u64) -> Option<IoFault> {
        let p = self.inner.as_ref()?;
        let fault = if p.rates.cache_write_torn_at == Some(write_index) {
            IoFault::ShortWrite
        } else if p
            .rates
            .cache_write_fail_after
            .is_some_and(|n| write_index > n)
        {
            IoFault::DiskFull
        } else {
            let key = write_index.to_string();
            if !Self::chance(
                p,
                SITE_DAEMON_CACHE_WRITE,
                &key,
                p.rates.cache_write_transient_per_1024,
            ) {
                return None;
            }
            IoFault::Interrupted
        };
        Self::note(p, SITE_DAEMON_CACHE_WRITE);
        Some(fault)
    }

    /// Per-site injection counts so far, for campaign summaries. Keyed
    /// decisions make the totals (though not the query order)
    /// deterministic for a fixed workload at any worker count.
    pub fn injected(&self) -> BTreeMap<String, u64> {
        match &self.inner {
            None => BTreeMap::new(),
            Some(p) => lock(&p.injected)
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
        }
    }

    /// Total injections across every site.
    pub fn injected_total(&self) -> u64 {
        self.injected().values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let p = FaultPlan::disabled();
        assert!(!p.is_enabled());
        assert_eq!(p.seed(), None);
        for i in 0..2000u64 {
            assert_eq!(p.sched_budget(&format!("l{i}")), None);
            assert!(!p.worker_panic_once(&format!("l{i}")));
            assert_eq!(p.spill_write_fault(i), None);
            assert!(!p.forced_misspec("l", i));
            assert_eq!(p.stall_jitter("l", i), 0);
        }
        assert!(p.injected().is_empty());
        assert!(!FaultPlan::default().is_enabled());
    }

    #[test]
    fn decisions_are_deterministic_and_key_local() {
        let a = FaultPlan::seeded(0xC0FFEE);
        let b = FaultPlan::seeded(0xC0FFEE);
        // Query b in a scrambled order: per-key answers must agree.
        for i in (0..500u64).rev() {
            let name = format!("loop{i}");
            assert_eq!(
                a.sched_budget(&name).is_some(),
                b.sched_budget(&name).is_some()
            );
            assert_eq!(a.stall_jitter(&name, i), b.stall_jitter(&name, i));
        }
        for i in 0..500u64 {
            let name = format!("loop{i}");
            // Re-query: pure sites answer identically.
            assert_eq!(a.sched_budget(&name), b.sched_budget(&name));
        }
    }

    #[test]
    fn seeds_change_the_selection() {
        let a = FaultPlan::seeded(1);
        let b = FaultPlan::seeded(2);
        let pick = |p: &FaultPlan| -> Vec<bool> {
            (0..1024u64)
                .map(|i| p.sched_budget(&format!("l{i}")).is_some())
                .collect()
        };
        assert_ne!(pick(&a), pick(&b), "different seeds, same selection");
    }

    #[test]
    fn rates_scale_the_selection() {
        let hits = |per_1024: u32| -> usize {
            let p = FaultPlan::with_rates(
                7,
                FaultRates {
                    sched_budget_per_1024: per_1024,
                    ..FaultRates::default()
                },
            );
            (0..4096u64)
                .filter(|i| p.sched_budget(&format!("l{i}")).is_some())
                .count()
        };
        assert_eq!(hits(0), 0);
        assert_eq!(hits(1024), 4096);
        let mid = hits(128);
        // 128/1024 = 12.5%; allow wide slack, the point is the scale.
        assert!((200..=900).contains(&mid), "{mid} hits at 128/1024");
    }

    #[test]
    fn panic_site_fires_exactly_once_per_key() {
        let p = FaultPlan::with_rates(
            3,
            FaultRates {
                worker_panic_per_1024: 1024,
                ..FaultRates::default()
            },
        );
        assert!(p.worker_panic_once("k"));
        assert!(!p.worker_panic_once("k"), "latch must hold");
        assert!(p.worker_panic_once("other"));
        assert_eq!(p.injected()[SITE_PAR_PANIC], 2);
    }

    #[test]
    fn forced_misspec_latches_per_thread() {
        let p = FaultPlan::with_rates(
            5,
            FaultRates {
                misspec_per_1024: 1024,
                ..FaultRates::default()
            },
        );
        assert!(p.forced_misspec("loop", 3));
        assert!(!p.forced_misspec("loop", 3), "replay must not re-fire");
        assert!(p.forced_misspec("loop", 4));
    }

    #[test]
    fn spill_faults_cover_all_three_kinds() {
        let p = FaultPlan::with_rates(
            11,
            FaultRates {
                spill_transient_per_1024: 1024,
                spill_fail_after: Some(10),
                spill_torn_at: Some(5),
                ..FaultRates::default()
            },
        );
        assert_eq!(p.spill_write_fault(5), Some(IoFault::ShortWrite));
        assert_eq!(p.spill_write_fault(11), Some(IoFault::DiskFull));
        assert_eq!(p.spill_write_fault(3), Some(IoFault::Interrupted));
        assert_eq!(
            p.spill_write_fault(3).unwrap().to_io_error().kind(),
            io::ErrorKind::Interrupted
        );
        // Below the fail point and off the torn index, a zero transient
        // rate means clean writes.
        let quiet = FaultPlan::with_rates(
            11,
            FaultRates {
                spill_transient_per_1024: 0,
                spill_fail_after: Some(10),
                spill_torn_at: None,
                ..FaultRates::default()
            },
        );
        assert_eq!(quiet.spill_write_fault(3), None);
    }

    #[test]
    fn jitter_is_bounded_and_pure() {
        let p = FaultPlan::with_rates(
            13,
            FaultRates {
                jitter_per_1024: 1024,
                jitter_max_cycles: 8,
                ..FaultRates::default()
            },
        );
        for t in 0..200u64 {
            let j = p.stall_jitter("loop", t);
            assert!((1..=8).contains(&j), "jitter {j} out of range");
            assert_eq!(j, p.stall_jitter("loop", t), "jitter must be pure");
        }
    }

    #[test]
    fn stable_hash_is_deterministic_and_boundary_sensitive() {
        let h = stable_hash(7, &["abc", "def"]);
        assert_eq!(h, stable_hash(7, &["abc", "def"]), "must be pure");
        assert_ne!(h, stable_hash(8, &["abc", "def"]), "seed must matter");
        // Part boundaries matter: "ab"+"cdef" must not collide with
        // "abc"+"def" even though the concatenated bytes agree.
        assert_ne!(h, stable_hash(7, &["ab", "cdef"]));
        assert_ne!(h, stable_hash(7, &["abcdef"]));
        assert_ne!(stable_hash(0, &[]), stable_hash(0, &[""]));
    }

    #[test]
    fn accept_faults_are_transient_and_rate_scaled() {
        let p = FaultPlan::with_rates(
            19,
            FaultRates {
                accept_transient_per_1024: 1024,
                ..FaultRates::default()
            },
        );
        assert_eq!(p.accept_fault(1), Some(IoFault::Interrupted));
        // Pure in the index: the same attempt re-queried agrees.
        assert_eq!(p.accept_fault(1), Some(IoFault::Interrupted));
        let quiet = FaultPlan::with_rates(
            19,
            FaultRates {
                accept_transient_per_1024: 0,
                ..FaultRates::default()
            },
        );
        for i in 1..200u64 {
            assert_eq!(quiet.accept_fault(i), None);
        }
    }

    #[test]
    fn cache_read_corruption_latches_per_key() {
        let p = FaultPlan::with_rates(
            23,
            FaultRates {
                cache_read_corrupt_per_1024: 1024,
                ..FaultRates::default()
            },
        );
        assert!(p.cache_read_corrupt("deadbeef"));
        assert!(
            !p.cache_read_corrupt("deadbeef"),
            "rewritten entry must be trusted"
        );
        assert!(p.cache_read_corrupt("cafebabe"));
        assert_eq!(p.injected()[SITE_DAEMON_CACHE_READ], 2);
    }

    #[test]
    fn cache_write_faults_cover_all_three_kinds() {
        let p = FaultPlan::with_rates(
            29,
            FaultRates {
                cache_write_transient_per_1024: 1024,
                cache_write_fail_after: Some(10),
                cache_write_torn_at: Some(5),
                ..FaultRates::default()
            },
        );
        assert_eq!(p.cache_write_fault(5), Some(IoFault::ShortWrite));
        assert_eq!(p.cache_write_fault(11), Some(IoFault::DiskFull));
        assert_eq!(p.cache_write_fault(3), Some(IoFault::Interrupted));
        let quiet = FaultPlan::with_rates(
            29,
            FaultRates {
                cache_write_transient_per_1024: 0,
                cache_write_fail_after: None,
                cache_write_torn_at: None,
                ..FaultRates::default()
            },
        );
        for i in 1..200u64 {
            assert_eq!(quiet.cache_write_fault(i), None);
        }
    }

    #[test]
    fn accounting_tracks_every_site() {
        let p = FaultPlan::with_rates(
            17,
            FaultRates {
                sched_budget_per_1024: 1024,
                worker_panic_per_1024: 1024,
                misspec_per_1024: 1024,
                jitter_per_1024: 1024,
                spill_transient_per_1024: 1024,
                accept_transient_per_1024: 1024,
                cache_read_corrupt_per_1024: 1024,
                cache_write_transient_per_1024: 1024,
                ..FaultRates::default()
            },
        );
        p.sched_budget("l");
        p.worker_panic_once("l");
        p.forced_misspec("l", 0);
        p.stall_jitter("l", 0);
        p.spill_write_fault(1);
        p.accept_fault(1);
        p.cache_read_corrupt("l");
        p.cache_write_fault(1);
        let counts = p.injected();
        for site in [
            SITE_SCHED_BUDGET,
            SITE_PAR_PANIC,
            SITE_SIM_MISSPEC,
            SITE_SIM_JITTER,
            SITE_SPILL_WRITE,
            SITE_DAEMON_ACCEPT,
            SITE_DAEMON_CACHE_READ,
            SITE_DAEMON_CACHE_WRITE,
        ] {
            assert_eq!(counts.get(site), Some(&1), "{site}");
        }
        assert_eq!(p.injected_total(), 8);
    }
}
