//! The `tmsd` server: accept loop, bounded per-connection queues,
//! batch scheduling through the panic-containing worker pool.
//!
//! # Request lifecycle
//!
//! ```text
//! accept ──▶ reader thread ──▶ bounded queue ──▶ batch worker ──▶ reply
//!   │            │    │              │                │
//!   │            │    └─ metrics/shutdown answered inline (never queued,
//!   │            │       so the daemon stays observable under load)
//!   │            └─ parse error → structured `error` reply
//!   │            └─ queue full → `overloaded` reply (shed, counted)
//!   └─ injected accept fault → bounded backoff + retry (the connection
//!      waits in the listen backlog; it is never dropped)
//! ```
//!
//! Each connection gets one reader thread and one worker loop (run on
//! the connection's own thread). The reader enqueues schedule requests
//! into a bounded queue — full means an immediate `overloaded` reply,
//! the deterministic shed rule being simply `depth == cap` — and the
//! worker drains batches of up to `batch_max`, scheduling them through
//! [`tms_core::par::par_map`] so concurrent requests share the
//! panic-containing pool. Each request body additionally runs under its
//! own `catch_unwind`, so one poisoned DDG yields one structured
//! `error` reply instead of killing the daemon.

use crate::cache::ScheduleCache;
use crate::proto::{
    key_hex, parse_request, reply_error, reply_metrics, reply_ok, reply_overloaded, reply_shutdown,
    salvage_id, Request, ScheduleRequest,
};
use serde_json::Value;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;
use tms_core::cost::CostModel;
use tms_core::par::{par_map, Parallelism};
use tms_core::{schedule_tms_traced, LoopMetrics, TmsConfig, TmsResult};
use tms_faults::FaultPlan;
use tms_machine::ArchParams;
use tms_trace::Trace;

/// How the daemon listens, queues, batches, caches and degrades.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listen address; port 0 binds an ephemeral port (reported via
    /// the `on_ready` callback of [`serve`]).
    pub addr: String,
    /// Bounded per-connection queue depth; beyond it requests are shed
    /// with an `overloaded` reply.
    pub queue_cap: usize,
    /// Most requests a single batch hands to the worker pool.
    pub batch_max: usize,
    /// Worker-pool width for batch scheduling.
    pub jobs: Parallelism,
    /// Persisted-cache path; `None` keeps the cache memory-only.
    pub cache_path: Option<PathBuf>,
    /// Default per-request deadline (a request's `deadline_ms` wins).
    pub deadline: Option<Duration>,
    /// Fault-injection plan (disabled outside chaos runs).
    pub plan: FaultPlan,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_cap: 64,
            batch_max: 8,
            jobs: Parallelism::Auto,
            cache_path: None,
            deadline: None,
            plan: FaultPlan::disabled(),
        }
    }
}

/// Poison-tolerant lock, matching the rest of the workspace: a panic
/// in one request must not poison shared state for the next.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The scheduling engine behind the socket: cache, trace, fault plan
/// and the per-request pipeline. Separated from the networking so
/// tests (and the soak's self-checks) can drive request processing
/// directly.
pub struct Engine {
    /// Live metrics; the `metrics` verb snapshots this.
    pub trace: Trace,
    /// Seeded fault oracle shared by every layer.
    pub plan: FaultPlan,
    cache: Mutex<ScheduleCache>,
    default_deadline: Option<Duration>,
}

impl Engine {
    /// Build an engine, opening (and lossily recovering) the persisted
    /// cache when configured. Corrupt lines dropped during recovery are
    /// counted under `tmsd.cache.bypassed` — they will be rescheduled
    /// cold, never served wrong.
    pub fn new(cfg: &DaemonConfig, trace: Trace) -> Engine {
        let cache = match &cfg.cache_path {
            None => ScheduleCache::in_memory(cfg.plan.clone()),
            Some(path) => {
                let (cache, report) = ScheduleCache::open(path, cfg.plan.clone());
                if report.dropped_corrupt > 0 {
                    trace.count("tmsd.cache.bypassed", report.dropped_corrupt as u64);
                }
                cache
            }
        };
        Engine {
            trace,
            plan: cfg.plan.clone(),
            cache: Mutex::new(cache),
            default_deadline: cfg.deadline,
        }
    }

    /// Resident cache entries (for status lines and tests).
    pub fn cache_len(&self) -> usize {
        lock(&self.cache).len()
    }

    /// Process one schedule request end to end: cache lookup (with
    /// corruption bypass), cold schedule on miss, cache fill, reply
    /// rendering. Panics are contained here — the reply is always a
    /// single structurally valid line.
    pub fn process(&self, req: &ScheduleRequest) -> String {
        let hex = key_hex(req.key);
        {
            let mut cache = lock(&self.cache);
            if let Some(hit) = cache.get(req.key) {
                if self.plan.cache_read_corrupt(&hex) {
                    // Injected corruption: never serve the entry. Drop
                    // it, fall through to a cold schedule, overwrite.
                    self.trace.count("tmsd.cache.bypassed", 1);
                    cache.remove(req.key);
                } else {
                    let hit = hit.to_string();
                    self.trace.count("tmsd.cache.hit", 1);
                    return reply_ok(req.id, true, None, &hit);
                }
            }
        }
        self.trace.count("tmsd.cache.miss", 1);

        let outcome = catch_unwind(AssertUnwindSafe(|| self.schedule_cold(req)));
        match outcome {
            Err(_) => {
                // A panic while scheduling (injected or genuine) is
                // isolated to this request.
                self.trace.count("tmsd.panics", 1);
                self.trace.count("tmsd.errors", 1);
                reply_error(
                    req.id,
                    &format!("internal: worker panicked scheduling '{}'", req.ddg.name()),
                )
            }
            Ok(Err(e)) => {
                self.trace.count("tmsd.errors", 1);
                reply_error(req.id, &format!("schedule: {e}"))
            }
            Ok(Ok((result, degraded))) => {
                match &degraded {
                    None => {
                        // Only settled results are cached: a degraded
                        // result reflects this run's budget/deadline,
                        // not the request's content.
                        let report = {
                            let mut cache = lock(&self.cache);
                            cache.insert(req.key, &result)
                        };
                        if report.retries > 0 {
                            self.trace.count("tmsd.retries", report.retries);
                        }
                        if report.degraded_now {
                            self.trace.count("tmsd.cache.bypassed", 1);
                        }
                    }
                    Some(_) => self.trace.count("tmsd.degraded", 1),
                }
                reply_ok(req.id, false, degraded.as_deref(), &result)
            }
        }
    }

    /// The cold path: build the cost model and config, run the traced
    /// TMS search, render the result. Returns the rendered result plus
    /// the degradation diagnostic, if any.
    fn schedule_cold(
        &self,
        req: &ScheduleRequest,
    ) -> Result<(String, Option<String>), tms_core::SchedError> {
        if self
            .plan
            .worker_panic_once(&format!("tmsd:{}", key_hex(req.key)))
        {
            panic!("injected tmsd worker panic");
        }
        let arch = ArchParams::with_ncore(req.ncore);
        let model = CostModel::new(arch.costs, req.ncore);
        let mut cfg = TmsConfig {
            dense_candidates: req.knobs.dense_candidates,
            adaptive: req.knobs.adaptive,
            // Per-request parallelism stays serial: the daemon's
            // batching is the parallel axis, and serial per-request
            // scheduling keeps every result bit-identical however
            // requests land on workers.
            parallelism: Parallelism::Serial,
            attempt_budget: self.plan.sched_budget(req.ddg.name()),
            deadline: req.deadline.or(self.default_deadline),
            ..TmsConfig::default()
        };
        if let Some(p) = &req.knobs.p_max_values {
            cfg.p_max_values = p.clone();
        }
        if req.knobs.ii_max.is_some() {
            cfg.ii_max = req.knobs.ii_max;
        }
        if req.knobs.c_delay_max.is_some() {
            cfg.c_delay_max = req.knobs.c_delay_max;
        }
        if let Some(s) = req.knobs.max_extra_stages {
            cfg.max_extra_stages = s;
        }
        let tms = schedule_tms_traced(&req.ddg, &req.machine, &model, &cfg, &self.trace)?;
        let metrics = LoopMetrics::compute(&req.ddg, &req.machine, &tms.schedule, &arch.costs);
        let degraded = tms.degraded.as_ref().map(|d| d.to_string());
        Ok((render_result(req, &model, &tms, &metrics), degraded))
    }

    /// The `metrics` verb: live snapshot + per-site injection summary.
    pub fn metrics_reply(&self, id: u64) -> String {
        reply_metrics(id, &self.trace.metrics().to_json(), &self.plan.injected())
    }
}

/// Render the deterministic result payload of an `ok` reply. Pure in
/// the accepted schedule — this exact string is what the cache stores
/// and what warm replies replay byte-for-byte.
pub fn render_result(
    req: &ScheduleRequest,
    model: &CostModel,
    tms: &TmsResult,
    metrics: &LoopMetrics,
) -> String {
    let obj = Value::Object(vec![
        ("name".to_string(), Value::Str(req.ddg.name().to_string())),
        ("key".to_string(), Value::Str(key_hex(req.key))),
        ("ncore".to_string(), Value::UInt(req.ncore as u64)),
        ("ii".to_string(), Value::UInt(tms.ii as u64)),
        ("mii".to_string(), Value::UInt(tms.mii as u64)),
        ("ldp".to_string(), Value::Int(tms.ldp)),
        (
            "c_delay_threshold".to_string(),
            Value::UInt(tms.c_delay_threshold as u64),
        ),
        ("p_max".to_string(), Value::Float(tms.p_max)),
        ("cost_key".to_string(), Value::Int(tms.cost_key.0)),
        (
            "cost_f".to_string(),
            Value::Float(model.f(tms.ii, tms.c_delay_threshold)),
        ),
        (
            "fell_back_to_sms".to_string(),
            Value::Bool(tms.fell_back_to_sms),
        ),
        ("attempts".to_string(), Value::UInt(tms.attempts as u64)),
        (
            "metrics".to_string(),
            serde_json::to_value(metrics).unwrap_or(Value::Null),
        ),
        (
            "kernel".to_string(),
            serde_json::to_value(&tms.schedule).unwrap_or(Value::Null),
        ),
    ]);
    serde_json::to_string(&obj).unwrap_or_else(|_| "{}".to_string())
}

/// A bounded MPSC request queue with an explicit, deterministic shed
/// rule: a push against a full queue fails immediately — the caller
/// replies `overloaded` — instead of blocking or growing.
pub struct BoundedQueue {
    cap: usize,
    inner: Mutex<QueueInner>,
    cv: Condvar,
}

struct QueueInner {
    pending: VecDeque<Box<ScheduleRequest>>,
    closed: bool,
}

impl BoundedQueue {
    /// An empty queue shedding past `cap` entries (`cap` ≥ 1).
    pub fn new(cap: usize) -> BoundedQueue {
        BoundedQueue {
            cap: cap.max(1),
            inner: Mutex::new(QueueInner {
                pending: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Enqueue, or shed. `Ok(depth)` is the depth after the push
    /// (never exceeds the cap); `Err((depth, cap))` means the request
    /// was shed and the caller must answer `overloaded`.
    pub fn push(&self, req: Box<ScheduleRequest>) -> Result<usize, (usize, usize)> {
        let mut q = lock(&self.inner);
        if q.pending.len() >= self.cap {
            return Err((q.pending.len(), self.cap));
        }
        q.pending.push_back(req);
        let depth = q.pending.len();
        drop(q);
        self.cv.notify_one();
        Ok(depth)
    }

    /// No more pushes are coming; wake the worker so it can drain and
    /// exit.
    pub fn close(&self) {
        lock(&self.inner).closed = true;
        self.cv.notify_all();
    }

    /// Take up to `max` requests, waiting while the queue is open and
    /// empty. `None` means closed-and-drained: the worker should exit.
    pub fn pop_batch(&self, max: usize) -> Option<Vec<Box<ScheduleRequest>>> {
        let mut q = lock(&self.inner);
        while q.pending.is_empty() {
            if q.closed {
                return None;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(q, Duration::from_millis(100))
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            q = guard;
        }
        let n = q.pending.len().min(max.max(1));
        Some(q.pending.drain(..n).collect())
    }

    /// Current depth (for tests).
    pub fn depth(&self) -> usize {
        lock(&self.inner).pending.len()
    }
}

fn write_line(writer: &Mutex<TcpStream>, line: &str) {
    let mut w = lock(writer);
    // A dead client is its own problem; the daemon must not die with
    // it, so write errors are swallowed (the reader will see EOF and
    // wind the connection down).
    let _ = w.write_all(line.as_bytes());
    let _ = w.write_all(b"\n");
    let _ = w.flush();
}

struct Shared {
    engine: Engine,
    shutdown: AtomicBool,
    queue_cap: usize,
    batch_max: usize,
    jobs: Parallelism,
}

/// The reader half of one connection: parse lines, answer control
/// verbs inline, enqueue or shed schedule requests.
fn read_requests(
    stream: TcpStream,
    writer: Arc<Mutex<TcpStream>>,
    queue: Arc<BoundedQueue>,
    sh: Arc<Shared>,
) {
    let mut reader = BufReader::new(stream);
    let mut buf = String::new();
    loop {
        if sh.shutdown.load(Ordering::Acquire) {
            break;
        }
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) => break, // EOF: client is done
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue; // idle tick; re-check the shutdown flag
            }
            Err(_) => break,
        }
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        sh.engine.trace.count("tmsd.requests", 1);
        match parse_request(line) {
            Err(e) => {
                sh.engine.trace.count("tmsd.errors", 1);
                write_line(&writer, &reply_error(salvage_id(line), &e));
            }
            Ok(Request::Metrics { id }) => {
                // Answered inline, bypassing the queue: observability
                // must survive saturation.
                write_line(&writer, &sh.engine.metrics_reply(id));
            }
            Ok(Request::Shutdown { id }) => {
                write_line(&writer, &reply_shutdown(id));
                sh.shutdown.store(true, Ordering::Release);
                break;
            }
            Ok(Request::Schedule(req)) => {
                let id = req.id;
                match queue.push(req) {
                    Ok(depth) => sh.engine.trace.record("tmsd.queue_depth", depth as u64),
                    Err((depth, cap)) => {
                        sh.engine.trace.count("tmsd.shed", 1);
                        write_line(&writer, &reply_overloaded(id, depth, cap));
                    }
                }
            }
        }
    }
    queue.close();
}

/// One connection: spawn the reader, run the batch worker here, join.
fn handle_conn(stream: TcpStream, sh: Arc<Shared>) {
    // A finite read timeout turns a silent client into periodic idle
    // ticks, so shutdown is always observed within ~250ms.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    let queue = Arc::new(BoundedQueue::new(sh.queue_cap));

    let reader = {
        let (writer, queue, sh) = (writer.clone(), queue.clone(), sh.clone());
        std::thread::spawn(move || read_requests(stream, writer, queue, sh))
    };

    while let Some(batch) = queue.pop_batch(sh.batch_max) {
        sh.engine.trace.count("tmsd.batches", 1);
        sh.engine
            .trace
            .record("tmsd.batch_size", batch.len() as u64);
        // The pool contains stray panics per item; Engine::process
        // additionally catches per-request panics itself, so a batch
        // always yields one reply per request.
        let replies = par_map(sh.jobs, &batch, |_, req| sh.engine.process(req));
        for reply in replies {
            write_line(&writer, &reply);
        }
    }
    let _ = reader.join();
}

/// Longest run of consecutive (injected or real) accept failures
/// tolerated before the daemon gives up. Bounded retry: transient
/// faults clear well inside it; a persistent accept failure becomes a
/// clean operational error instead of a silent spin.
const ACCEPT_RETRY_LIMIT: u32 = 64;

/// Run the daemon until a `shutdown` request arrives. `on_ready` fires
/// once with the bound address (which is how ephemeral-port callers —
/// the soak, the tests — learn where to connect).
pub fn serve(
    cfg: &DaemonConfig,
    trace: Trace,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<(), String> {
    let engine = Engine::new(cfg, trace);
    let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("set_nonblocking: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    on_ready(addr);

    let sh = Arc::new(Shared {
        engine,
        shutdown: AtomicBool::new(false),
        queue_cap: cfg.queue_cap.max(1),
        batch_max: cfg.batch_max.max(1),
        jobs: cfg.jobs,
    });

    let mut handles = Vec::new();
    let mut accept_index = 0u64;
    let mut consecutive_errors = 0u32;
    while !sh.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                // The injected accept fault fires *after* the kernel
                // handed us the socket but before we service it —
                // retry with backoff, holding the connection (it is
                // never dropped; a real EINTR loop would leave it in
                // the backlog the same way).
                let mut retry = 0u32;
                loop {
                    accept_index += 1;
                    if sh.engine.plan.accept_fault(accept_index).is_none()
                        || retry >= ACCEPT_RETRY_LIMIT
                    {
                        break;
                    }
                    retry += 1;
                    sh.engine.trace.count("tmsd.retries", 1);
                    std::thread::sleep(Duration::from_micros(100 << retry.min(6)));
                }
                consecutive_errors = 0;
                let sh = sh.clone();
                handles.push(std::thread::spawn(move || handle_conn(stream, sh)));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => {
                consecutive_errors += 1;
                if consecutive_errors > ACCEPT_RETRY_LIMIT {
                    return Err(format!("accept: {e} (retries exhausted)"));
                }
                sh.engine.trace.count("tmsd.retries", 1);
                std::thread::sleep(Duration::from_micros(100 << consecutive_errors.min(6)));
            }
        }
    }
    for h in handles {
        let _ = h.join();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::Request;

    fn schedule_req(id: u64) -> Box<ScheduleRequest> {
        let ddg = serde_json::to_string(&tms_workloads::figure1()).unwrap();
        let line = format!(r#"{{"id":{id},"ddg":{ddg}}}"#);
        match parse_request(&line).unwrap() {
            Request::Schedule(r) => r,
            _ => unreachable!(),
        }
    }

    #[test]
    fn queue_sheds_deterministically_at_cap() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(schedule_req(1)), Ok(1));
        assert_eq!(q.push(schedule_req(2)), Ok(2));
        assert_eq!(q.push(schedule_req(3)), Err((2, 2)), "depth == cap sheds");
        assert_eq!(q.depth(), 2);
        let batch = q.pop_batch(8).unwrap();
        assert_eq!(batch.len(), 2);
        assert_eq!(q.push(schedule_req(4)), Ok(1), "drain reopens the queue");
        q.close();
        assert_eq!(q.pop_batch(8).unwrap().len(), 1);
        assert!(q.pop_batch(8).is_none(), "closed and drained");
    }

    #[test]
    fn engine_misses_then_hits_byte_identically() {
        let cfg = DaemonConfig::default();
        let engine = Engine::new(&cfg, Trace::enabled());
        let req = schedule_req(9);
        let cold = engine.process(&req);
        let warm = engine.process(&req);
        let snap = engine.trace.metrics();
        assert_eq!(snap.counters.get("tmsd.cache.miss"), Some(&1));
        assert_eq!(snap.counters.get("tmsd.cache.hit"), Some(&1));
        // The replies differ only in the `cached` flag; the embedded
        // result bytes are identical.
        let get_result = |reply: &str| {
            let v: Value = serde_json::from_str(reply).unwrap();
            serde_json::to_string(v.get("result").unwrap()).unwrap()
        };
        assert_eq!(get_result(&cold), get_result(&warm));
        assert!(cold.contains(r#""cached":false"#));
        assert!(warm.contains(r#""cached":true"#));
    }

    #[test]
    fn zero_deadline_degrades_to_sms_and_is_not_cached() {
        let cfg = DaemonConfig::default();
        let engine = Engine::new(&cfg, Trace::enabled());
        let mut req = schedule_req(3);
        req.deadline = Some(Duration::ZERO);
        let reply = engine.process(&req);
        assert!(reply.contains(r#""degraded":true"#), "{reply}");
        assert!(reply.contains("degraded to SMS"), "{reply}");
        assert_eq!(engine.cache_len(), 0, "degraded results are not cached");
        assert_eq!(
            engine.trace.metrics().counters.get("tmsd.degraded"),
            Some(&1)
        );
    }
}
