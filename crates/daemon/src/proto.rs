//! `tmsd` wire protocol: newline-delimited JSON requests and replies.
//!
//! One request per line, one reply per line. Requests carry the same
//! JSON the `tms` CLI already speaks — a serialised [`Ddg`] (the
//! `tms export` / `tms import` format) plus an optional serialised
//! [`MachineModel`] — wrapped in a small envelope:
//!
//! ```json
//! {"id":1,"verb":"schedule","ddg":{...},"ncore":4,
//!  "machine":{...},"knobs":{"p_max_values":[0.05]},"deadline_ms":250}
//! {"id":2,"verb":"metrics"}
//! {"id":3,"verb":"shutdown"}
//! ```
//!
//! Replies echo `id` and may arrive out of request order (the batch
//! pool finishes items as it pleases); clients match on `id`. Every
//! reply is exactly one of:
//!
//! * `{"id":N,"status":"ok","cached":B,"degraded":B,...,"result":{...}}`
//! * `{"id":N,"status":"error","error":"..."}` — malformed input, an
//!   unschedulable DDG, or a contained worker panic;
//! * `{"id":N,"status":"overloaded","error":"..."}` — the bounded
//!   request queue was full and the daemon shed the request rather
//!   than growing without bound. The request was *answered*, not lost;
//!   clients retry later.
//!
//! # The cache key
//!
//! [`cache_key`] content-addresses a schedule request: it hashes the
//! *canonical re-serialisation* of the parsed DDG, machine model, core
//! count and knobs (with [`tms_faults::stable_hash`]), so two textual
//! variants of the same request — reordered fields, different
//! whitespace — map to the same entry. Two fields are deliberately
//! excluded: `deadline_ms` (a deadline changes *when* the search gives
//! up, never what a completed search returns, and degraded results are
//! not cached) and the DDG's `uid` (a process-unique identity token,
//! not content — keying on it would cold-start the cache every run).

use serde_json::Value;
use std::time::Duration;
use tms_ddg::Ddg;
use tms_machine::MachineModel;

/// Seed for the content-addressed cache key (the repo's signature
/// constant). Changing it — or anything about the canonical
/// serialisation — invalidates every persisted cache, which is the
/// safe failure mode: a stale hit is a wrong answer, a cold miss is
/// just work.
pub const CACHE_KEY_SEED: u64 = 0x1CC9_2008;

/// The scheduling knobs a request may override. Exactly the
/// [`tms_core::TmsConfig`] fields that change which schedule the
/// search returns — all of them participate in the cache key.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Knobs {
    /// `P_max` ladder override (`TmsConfig::p_max_values`).
    pub p_max_values: Option<Vec<f64>>,
    /// II ceiling override.
    pub ii_max: Option<u32>,
    /// `C_delay` ceiling override.
    pub c_delay_max: Option<u32>,
    /// Dense candidate grid (no thinning).
    pub dense_candidates: bool,
    /// Extra pipeline stages allowed past the SMS baseline.
    pub max_extra_stages: Option<u32>,
    /// Counter-driven adaptive grid density.
    pub adaptive: bool,
}

impl Knobs {
    /// Canonical single-line rendering for the cache key. Every field
    /// appears (defaults included) so adding a knob changes the key of
    /// requests that set it and nothing else.
    pub fn canonical(&self) -> String {
        format!(
            "p_max={:?};ii_max={:?};c_delay_max={:?};dense={};extra_stages={:?};adaptive={}",
            self.p_max_values,
            self.ii_max,
            self.c_delay_max,
            self.dense_candidates,
            self.max_extra_stages,
            self.adaptive
        )
    }
}

/// A parsed schedule request, ready for the worker pool.
#[derive(Debug, Clone)]
pub struct ScheduleRequest {
    /// Client-chosen correlation id, echoed in the reply.
    pub id: u64,
    /// The loop to schedule.
    pub ddg: Ddg,
    /// Cores of the cost model (`F = |DDG| / ncore + sync + misspec`).
    pub ncore: u32,
    /// Per-core resources; defaults to the paper's Table 1 machine.
    pub machine: MachineModel,
    /// Search-shaping overrides.
    pub knobs: Knobs,
    /// Per-request deadline; past it the search degrades TMS→SMS
    /// (`Diagnostic::DegradedToSms`) instead of dropping the request.
    pub deadline: Option<Duration>,
    /// Content-addressed cache key of `(ddg, machine, ncore, knobs)`.
    pub key: u64,
}

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Schedule one loop.
    Schedule(Box<ScheduleRequest>),
    /// Live metrics + fault-injection summary.
    Metrics {
        /// Correlation id.
        id: u64,
    },
    /// Stop accepting and exit cleanly.
    Shutdown {
        /// Correlation id.
        id: u64,
    },
}

impl Request {
    /// The correlation id of any request kind.
    pub fn id(&self) -> u64 {
        match self {
            Request::Schedule(r) => r.id,
            Request::Metrics { id } | Request::Shutdown { id } => *id,
        }
    }
}

/// Best-effort id extraction from a line that may not parse as a full
/// request, so even a malformed request gets a correlatable error
/// reply (id 0 when nothing can be recovered).
pub fn salvage_id(line: &str) -> u64 {
    serde_json::from_str::<Value>(line)
        .ok()
        .and_then(|v| v.get("id").and_then(Value::as_u64))
        .unwrap_or(0)
}

fn knob_err(name: &str) -> String {
    format!("knobs.{name}: invalid value")
}

fn parse_knobs(v: &Value) -> Result<Knobs, String> {
    let Some(fields) = v.as_object() else {
        return Err("knobs: expected an object".to_string());
    };
    let mut k = Knobs::default();
    for (name, val) in fields {
        match name.as_str() {
            "p_max_values" => {
                let arr = val.as_array().ok_or_else(|| knob_err(name))?;
                let mut ps = Vec::with_capacity(arr.len());
                for p in arr {
                    let p = p.as_f64().ok_or_else(|| knob_err(name))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("knobs.p_max_values: {p} outside [0,1]"));
                    }
                    ps.push(p);
                }
                if ps.is_empty() {
                    return Err("knobs.p_max_values: empty".to_string());
                }
                k.p_max_values = Some(ps);
            }
            "ii_max" => k.ii_max = Some(val.as_u64().ok_or_else(|| knob_err(name))? as u32),
            "c_delay_max" => {
                k.c_delay_max = Some(val.as_u64().ok_or_else(|| knob_err(name))? as u32)
            }
            "dense_candidates" => {
                k.dense_candidates = val.as_bool().ok_or_else(|| knob_err(name))?
            }
            "max_extra_stages" => {
                k.max_extra_stages = Some(val.as_u64().ok_or_else(|| knob_err(name))? as u32)
            }
            "adaptive" => k.adaptive = val.as_bool().ok_or_else(|| knob_err(name))?,
            other => return Err(format!("knobs.{other}: unknown knob")),
        }
    }
    Ok(k)
}

/// The canonical DDG rendering for keying: the serialised graph with
/// its `uid` stripped. The uid is a process-unique identity token
/// (fresh per construction, not content) — hashing it would give the
/// same loop a different key on every run and defeat the persisted
/// cache entirely.
fn canonical_ddg_json(ddg: &Ddg) -> String {
    let mut v = serde_json::to_value(ddg).unwrap_or(Value::Null);
    if let Value::Object(fields) = &mut v {
        fields.retain(|(name, _)| name != "uid");
    }
    serde_json::to_string(&v).unwrap_or_default()
}

/// Content-addressed cache key over the canonical re-serialisation of
/// the parsed request. See the module docs for what is (and is not)
/// part of the key.
pub fn cache_key(ddg: &Ddg, machine: &MachineModel, ncore: u32, knobs: &Knobs) -> u64 {
    let ddg_json = canonical_ddg_json(ddg);
    let machine_json = serde_json::to_string(machine).unwrap_or_default();
    tms_faults::stable_hash(
        CACHE_KEY_SEED,
        &[
            &ddg_json,
            &machine_json,
            &ncore.to_string(),
            &knobs.canonical(),
        ],
    )
}

/// Render a cache key the way the wire and the persisted cache file
/// spell it: 16 lowercase hex digits.
pub fn key_hex(key: u64) -> String {
    format!("{key:016x}")
}

/// Parse one request line. Errors are complete sentences suitable for
/// an `error` reply; they never panic, whatever the input.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("request is not JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("request must be a JSON object".to_string());
    }
    let id = match v.get("id") {
        None => 0,
        Some(id) => id.as_u64().ok_or("id: expected a non-negative integer")?,
    };
    let verb = match v.get("verb") {
        None => "schedule",
        Some(verb) => verb.as_str().ok_or("verb: expected a string")?,
    };
    match verb {
        "metrics" => Ok(Request::Metrics { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        "schedule" => {
            let ddg_v = v
                .get("ddg")
                .ok_or("schedule request needs a \"ddg\" field")?;
            let ddg: Ddg = serde_json::from_value(ddg_v).map_err(|e| format!("ddg: {e}"))?;
            if ddg.num_insts() == 0 {
                return Err("ddg: empty loop body".to_string());
            }
            let machine: MachineModel = match v.get("machine") {
                None => MachineModel::icpp2008(),
                Some(m) => serde_json::from_value(m).map_err(|e| format!("machine: {e}"))?,
            };
            let ncore = match v.get("ncore") {
                None => 4,
                Some(n) => n.as_u64().ok_or("ncore: expected a positive integer")? as u32,
            };
            if ncore == 0 {
                return Err("ncore: must be at least 1".to_string());
            }
            let knobs = match v.get("knobs") {
                None => Knobs::default(),
                Some(k) => parse_knobs(k)?,
            };
            let deadline = match v.get("deadline_ms") {
                None => None,
                Some(d) => Some(Duration::from_millis(
                    d.as_u64()
                        .ok_or("deadline_ms: expected a non-negative integer")?,
                )),
            };
            let key = cache_key(&ddg, &machine, ncore, &knobs);
            Ok(Request::Schedule(Box::new(ScheduleRequest {
                id,
                ddg,
                ncore,
                machine,
                knobs,
                deadline,
                key,
            })))
        }
        other => Err(format!("unknown verb {other:?}")),
    }
}

/// JSON-escape a string (via the vendored renderer, so escaping is
/// consistent everywhere).
fn js(s: &str) -> String {
    serde_json::to_string(&Value::Str(s.to_string())).unwrap_or_else(|_| "\"\"".to_string())
}

/// An `ok` schedule reply. `result_json` is embedded **verbatim** —
/// this is what makes a warm-cache reply byte-identical to the cold
/// one: the daemon stores and replays the rendered result, it never
/// re-renders.
pub fn reply_ok(id: u64, cached: bool, degraded: Option<&str>, result_json: &str) -> String {
    let degraded_fields = match degraded {
        None => r#""degraded":false"#.to_string(),
        Some(d) => format!(r#""degraded":true,"diagnostic":{}"#, js(d)),
    };
    format!(
        r#"{{"id":{id},"status":"ok","cached":{cached},{degraded_fields},"result":{result_json}}}"#
    )
}

/// A structured `error` reply.
pub fn reply_error(id: u64, msg: &str) -> String {
    format!(r#"{{"id":{id},"status":"error","error":{}}}"#, js(msg))
}

/// The backpressure reply: the bounded queue was full and the daemon
/// shed this request instead of queueing it.
pub fn reply_overloaded(id: u64, depth: usize, cap: usize) -> String {
    format!(
        r#"{{"id":{id},"status":"overloaded","error":"request queue full ({depth}/{cap}); retry later"}}"#
    )
}

/// The `shutdown` acknowledgement.
pub fn reply_shutdown(id: u64) -> String {
    format!(r#"{{"id":{id},"status":"ok","shutdown":true}}"#)
}

/// The `metrics` reply: the live [`tms_trace::MetricsSnapshot`]
/// (compacted to one line — the canonical `to_json` rendering is
/// multi-line, and the protocol is one reply per line) plus the
/// per-site fault-injection summary.
pub fn reply_metrics(
    id: u64,
    snapshot_json: &str,
    faults: &std::collections::BTreeMap<String, u64>,
) -> String {
    let compact = serde_json::from_str::<Value>(snapshot_json)
        .ok()
        .and_then(|v| serde_json::to_string(&v).ok())
        .unwrap_or_else(|| r#"{"counters":{},"values":{}}"#.to_string());
    let faults_fields: Vec<String> = faults
        .iter()
        .map(|(site, n)| format!("{}:{n}", js(site)))
        .collect();
    format!(
        r#"{{"id":{id},"status":"ok","snapshot":{compact},"faults":{{{}}}}}"#,
        faults_fields.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_line(id: u64) -> String {
        let ddg = serde_json::to_string(&tms_workloads::figure1()).unwrap();
        format!(r#"{{"id":{id},"verb":"schedule","ddg":{ddg}}}"#)
    }

    #[test]
    fn parses_a_schedule_request_with_defaults() {
        let req = parse_request(&figure1_line(7)).unwrap();
        let Request::Schedule(r) = req else {
            panic!("wrong kind")
        };
        assert_eq!(r.id, 7);
        assert_eq!(r.ncore, 4);
        assert_eq!(r.machine, MachineModel::icpp2008());
        assert_eq!(r.knobs, Knobs::default());
        assert_eq!(r.deadline, None);
    }

    #[test]
    fn key_ignores_field_order_and_whitespace_but_not_content() {
        let ddg = tms_workloads::figure1();
        let ddg_json = serde_json::to_string(&ddg).unwrap();
        let a = parse_request(&format!(r#"{{"id":1,"ddg":{ddg_json},"ncore":4}}"#)).unwrap();
        let b = parse_request(&format!(r#"{{ "ncore": 4, "ddg": {ddg_json}, "id": 2 }}"#)).unwrap();
        let c = parse_request(&format!(r#"{{"id":1,"ddg":{ddg_json},"ncore":8}}"#)).unwrap();
        let (Request::Schedule(a), Request::Schedule(b), Request::Schedule(c)) = (a, b, c) else {
            panic!("wrong kind")
        };
        assert_eq!(a.key, b.key, "textual variants must share a key");
        assert_ne!(a.key, c.key, "ncore must be part of the key");
    }

    #[test]
    fn deadline_is_not_part_of_the_key() {
        let ddg_json = serde_json::to_string(&tms_workloads::figure1()).unwrap();
        let a = parse_request(&format!(r#"{{"id":1,"ddg":{ddg_json}}}"#)).unwrap();
        let b = parse_request(&format!(r#"{{"id":1,"ddg":{ddg_json},"deadline_ms":5}}"#)).unwrap();
        let (Request::Schedule(a), Request::Schedule(b)) = (a, b) else {
            panic!("wrong kind")
        };
        assert_eq!(a.key, b.key);
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
    }

    #[test]
    fn malformed_requests_are_structured_errors_not_panics() {
        for bad in [
            "",
            "not json",
            "[1,2,3]",
            r#"{"verb":"schedule"}"#,
            r#"{"verb":"frobnicate"}"#,
            r#"{"verb":"schedule","ddg":{"bogus":true}}"#,
            r#"{"id":"x","verb":"metrics"}"#,
            r#"{"id":1,"verb":"schedule","ddg":null}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn unknown_knobs_are_rejected() {
        let ddg_json = serde_json::to_string(&tms_workloads::figure1()).unwrap();
        let line = format!(r#"{{"id":1,"ddg":{ddg_json},"knobs":{{"p_mxa":[0.1]}}}}"#);
        let err = parse_request(&line).unwrap_err();
        assert!(err.contains("unknown knob"), "{err}");
        let line = format!(r#"{{"id":1,"ddg":{ddg_json},"knobs":{{"p_max_values":[1.5]}}}}"#);
        assert!(parse_request(&line).is_err());
    }

    #[test]
    fn salvage_id_recovers_what_it_can() {
        assert_eq!(salvage_id(r#"{"id":42,"verb":"bogus"}"#), 42);
        assert_eq!(salvage_id("not json"), 0);
    }

    #[test]
    fn replies_are_single_line_valid_json() {
        for reply in [
            reply_ok(1, true, None, r#"{"ii":4}"#),
            reply_ok(2, false, Some("degraded to SMS \"budget\""), r#"{"ii":4}"#),
            reply_error(3, "bad \"input\"\nline two"),
            reply_overloaded(4, 64, 64),
            reply_shutdown(5),
            reply_metrics(6, r#"{"counters":{},"values":{}}"#, &Default::default()),
        ] {
            assert!(!reply.contains('\n'), "{reply}");
            serde_json::from_str::<Value>(&reply).unwrap_or_else(|e| panic!("{reply}: {e}"));
        }
    }
}
