//! Content-addressed schedule cache with crash-safe persistence.
//!
//! Entries map a [`crate::proto::cache_key`] to the **rendered result
//! JSON** of a completed, non-degraded schedule. Storing the rendered
//! bytes (not the parsed result) is what makes warm replies
//! byte-identical to cold ones: the daemon replays the stored string
//! verbatim, it never re-renders.
//!
//! # Persistence
//!
//! One ndjson line per entry — `{"key":"<16 hex>","result":"<escaped
//! result JSON>"}` — appended with a single `write_all` per line (the
//! same line-atomicity discipline as the `tms-trace` spill sink), so a
//! crash can tear at most the final line. Transient write faults are
//! retried with bounded backoff; a persistent fault (disk-full, a torn
//! write) degrades the cache to memory-only for the rest of the run —
//! the daemon keeps answering, it just stops persisting.
//!
//! # Recovery
//!
//! [`ScheduleCache::open`] recovers the valid prefix of a torn or
//! partially corrupted file, mirroring `tms_trace::stream::
//! parse_spill_lossy`: a torn *final* line is the expected crash
//! artifact and is silently dropped; malformed lines elsewhere are
//! dropped too (availability wins over the spill reader's hard-error
//! stance — a daemon that refuses to start over one bad cache line
//! would turn a disk hiccup into an outage) but are *counted* so the
//! operator sees the corruption. The compacted survivors are rewritten
//! so the file is clean again for the next restart.

use crate::proto::key_hex;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use tms_faults::{FaultPlan, IoFault};

/// Retries per persist line before degrading (matches the spill sink).
const CACHE_WRITE_RETRIES: u32 = 3;
/// Base backoff between retries, doubled per attempt.
const CACHE_BACKOFF_US: u64 = 50;

/// What [`ScheduleCache::open`] found on disk.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoadReport {
    /// Entries recovered.
    pub recovered: usize,
    /// A torn (unterminated or unparseable) final line was dropped.
    pub dropped_torn_tail: bool,
    /// Malformed non-final lines dropped (counted corruption).
    pub dropped_corrupt: usize,
}

/// Outcome of one [`ScheduleCache::insert`] persist attempt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteReport {
    /// Transient faults retried away.
    pub retries: u64,
    /// This insert degraded the cache to memory-only.
    pub degraded_now: bool,
}

/// In-memory map plus append-only persistence. Not internally
/// synchronised — the daemon serialises access behind one mutex.
pub struct ScheduleCache {
    entries: BTreeMap<u64, String>,
    path: Option<PathBuf>,
    file: Option<File>,
    /// 1-based persist-attempt counter, the key for injected faults.
    write_index: u64,
    plan: FaultPlan,
}

fn parse_entry(line: &str) -> Option<(u64, String)> {
    let v: Value = serde_json::from_str(line).ok()?;
    let key = v.get("key")?.as_str()?;
    if key.len() != 16 {
        return None;
    }
    let key = u64::from_str_radix(key, 16).ok()?;
    let result = v.get("result")?.as_str()?;
    // The stored result must itself be a JSON object — anything else
    // is corruption, not an entry.
    let parsed: Value = serde_json::from_str(result).ok()?;
    parsed.as_object()?;
    Some((key, result.to_string()))
}

fn render_entry(key: u64, result: &str) -> String {
    let escaped = serde_json::to_string(&Value::Str(result.to_string()))
        .unwrap_or_else(|_| "\"\"".to_string());
    format!("{{\"key\":\"{}\",\"result\":{escaped}}}\n", key_hex(key))
}

impl ScheduleCache {
    /// A memory-only cache (no persistence).
    pub fn in_memory(plan: FaultPlan) -> ScheduleCache {
        ScheduleCache {
            entries: BTreeMap::new(),
            path: None,
            file: None,
            write_index: 0,
            plan,
        }
    }

    /// Open (or create) a persisted cache at `path`, recovering the
    /// valid prefix of whatever is there. I/O errors degrade to a
    /// memory-only cache — the daemon must come up regardless.
    pub fn open(path: &Path, plan: FaultPlan) -> (ScheduleCache, LoadReport) {
        let mut report = LoadReport::default();
        let mut entries = BTreeMap::new();
        match std::fs::read_to_string(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(_) => {
                // Unreadable file: treat as fully corrupt, start cold.
                report.dropped_corrupt += 1;
            }
            Ok(text) => {
                let ends_clean = text.is_empty() || text.ends_with('\n');
                let lines: Vec<&str> = text.lines().collect();
                for (i, line) in lines.iter().enumerate() {
                    let last = i + 1 == lines.len();
                    match parse_entry(line) {
                        Some((key, result)) => {
                            entries.insert(key, result);
                        }
                        None if last => report.dropped_torn_tail = true,
                        None => report.dropped_corrupt += 1,
                    }
                }
                if !ends_clean && !report.dropped_torn_tail {
                    // A final line that parsed but was never terminated
                    // still counts as torn for reporting purposes; the
                    // entry itself is kept (its JSON was complete).
                    report.dropped_torn_tail = true;
                }
            }
        }
        report.recovered = entries.len();

        // Compact: when anything was dropped the file has garbage in
        // it; rewrite the survivors so appended lines stay parseable.
        let needs_compact = report.dropped_torn_tail || report.dropped_corrupt > 0;
        if needs_compact {
            let mut out = String::new();
            for (key, result) in &entries {
                out.push_str(&render_entry(*key, result));
            }
            let _ = std::fs::write(path, out);
        }

        let file = OpenOptions::new().create(true).append(true).open(path).ok();
        (
            ScheduleCache {
                entries,
                path: Some(path.to_path_buf()),
                file,
                write_index: 0,
                plan,
            },
            report,
        )
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether inserts still reach the disk.
    pub fn persisting(&self) -> bool {
        self.file.is_some()
    }

    /// The stored result for `key`, if any.
    pub fn get(&self, key: u64) -> Option<&str> {
        self.entries.get(&key).map(String::as_str)
    }

    /// Drop `key` (the corruption-bypass path: the entry is rescheduled
    /// cold and re-inserted).
    pub fn remove(&mut self, key: u64) {
        self.entries.remove(&key);
    }

    /// One faultable write attempt: either the injected fault or the
    /// real `write_all` outcome.
    fn write_attempt(&mut self, bytes: &[u8]) -> Result<(), (std::io::Error, bool)> {
        self.write_index += 1;
        if let Some(fault) = self.plan.cache_write_fault(self.write_index) {
            if fault == IoFault::ShortWrite {
                // A torn write reaches the file for real — that is the
                // crash artifact restart recovery must cope with.
                if let Some(f) = &mut self.file {
                    let _ = f.write_all(&bytes[..bytes.len() / 2]);
                    let _ = f.flush();
                }
            }
            let persistent = fault != IoFault::Interrupted;
            return Err((fault.to_io_error(), persistent));
        }
        let Some(f) = &mut self.file else {
            return Ok(()); // memory-only: nothing to do
        };
        match f.write_all(bytes) {
            Ok(()) => Ok(()),
            Err(e) => {
                let transient = e.kind() == std::io::ErrorKind::Interrupted;
                Err((e, !transient))
            }
        }
    }

    /// Insert `result` under `key`, persisting when a file is attached.
    /// Transient faults retry with bounded backoff; persistent ones
    /// (or exhausted retries) degrade the cache to memory-only.
    pub fn insert(&mut self, key: u64, result: &str) -> WriteReport {
        self.entries.insert(key, result.to_string());
        let mut report = WriteReport::default();
        if self.file.is_none() {
            return report;
        }
        let line = render_entry(key, result);
        let mut attempt = 0u32;
        loop {
            match self.write_attempt(line.as_bytes()) {
                Ok(()) => return report,
                Err((_, persistent)) => {
                    if persistent || attempt >= CACHE_WRITE_RETRIES {
                        // Degrade: keep answering from memory, stop
                        // touching the disk. The file's existing prefix
                        // stays valid for the next restart.
                        self.file = None;
                        report.degraded_now = true;
                        return report;
                    }
                    attempt += 1;
                    report.retries += 1;
                    std::thread::sleep(std::time::Duration::from_micros(
                        CACHE_BACKOFF_US << attempt,
                    ));
                }
            }
        }
    }

    /// The backing path, if persisted.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_faults::FaultRates;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("tmsd-cache-test-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn round_trips_entries_across_reopen() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        let (mut c, r) = ScheduleCache::open(&path, FaultPlan::disabled());
        assert_eq!(r, LoadReport::default());
        c.insert(1, r#"{"ii":4}"#);
        c.insert(0xdead_beef_0000_0001, r#"{"ii":7,"name":"x"}"#);
        drop(c);
        let (c2, r2) = ScheduleCache::open(&path, FaultPlan::disabled());
        assert_eq!(r2.recovered, 2);
        assert!(!r2.dropped_torn_tail);
        assert_eq!(c2.get(1), Some(r#"{"ii":4}"#));
        assert_eq!(
            c2.get(0xdead_beef_0000_0001),
            Some(r#"{"ii":7,"name":"x"}"#)
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_final_line_is_dropped_and_compacted() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        let (mut c, _) = ScheduleCache::open(&path, FaultPlan::disabled());
        c.insert(1, r#"{"ii":4}"#);
        c.insert(2, r#"{"ii":5}"#);
        drop(c);
        // Tear the last line mid-way, as a killed process would.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 9]).unwrap();
        let (c2, r) = ScheduleCache::open(&path, FaultPlan::disabled());
        assert_eq!(r.recovered, 1);
        assert!(r.dropped_torn_tail);
        assert_eq!(r.dropped_corrupt, 0);
        assert_eq!(c2.get(1), Some(r#"{"ii":4}"#));
        assert_eq!(c2.get(2), None);
        drop(c2);
        // Compaction left a clean file: reopening drops nothing.
        let (_, r3) = ScheduleCache::open(&path, FaultPlan::disabled());
        assert_eq!(r3.recovered, 1);
        assert!(!r3.dropped_torn_tail);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mid_file_corruption_is_counted_and_survivors_kept() {
        let path = tmp("midfile");
        let _ = std::fs::remove_file(&path);
        let good1 = render_entry(10, r#"{"ii":1}"#);
        let good2 = render_entry(11, r#"{"ii":2}"#);
        std::fs::write(&path, format!("{good1}garbage not json\n{good2}")).unwrap();
        let (c, r) = ScheduleCache::open(&path, FaultPlan::disabled());
        assert_eq!(r.recovered, 2);
        assert_eq!(r.dropped_corrupt, 1);
        assert_eq!(c.get(10), Some(r#"{"ii":1}"#));
        assert_eq!(c.get(11), Some(r#"{"ii":2}"#));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn transient_write_faults_retry_and_clear() {
        let path = tmp("transient");
        let _ = std::fs::remove_file(&path);
        // Write index 1 is transient-faulted (rate 1024 would fault
        // every attempt and exhaust retries, so pin a single index via
        // a quiet plan plus torn/fail modes off and rate that hits
        // sometimes — instead use rate 1024 but observe degradation).
        let plan = FaultPlan::with_rates(
            31,
            FaultRates {
                cache_write_transient_per_1024: 1024,
                ..FaultRates::default()
            },
        );
        let (mut c, _) = ScheduleCache::open(&path, plan);
        let w = c.insert(1, r#"{"ii":4}"#);
        // Every attempt faults transiently, so retries exhaust and the
        // cache degrades — but the entry stays resident.
        assert_eq!(w.retries, CACHE_WRITE_RETRIES as u64);
        assert!(w.degraded_now);
        assert!(!c.persisting());
        assert_eq!(c.get(1), Some(r#"{"ii":4}"#));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_write_degrades_and_restart_recovers_prefix() {
        let path = tmp("tornwrite");
        let _ = std::fs::remove_file(&path);
        let plan = FaultPlan::with_rates(
            37,
            FaultRates {
                cache_write_transient_per_1024: 0,
                cache_write_torn_at: Some(2),
                ..FaultRates::default()
            },
        );
        let (mut c, _) = ScheduleCache::open(&path, plan);
        assert_eq!(c.insert(1, r#"{"ii":4}"#), WriteReport::default());
        let w = c.insert(2, r#"{"ii":5}"#);
        assert!(w.degraded_now, "a torn write must degrade immediately");
        assert!(!c.persisting());
        // Memory still serves both entries this run.
        assert_eq!(c.get(2), Some(r#"{"ii":5}"#));
        drop(c);
        // Restart: the intact first line survives, the torn second is
        // dropped by lossy recovery.
        let (c2, r) = ScheduleCache::open(&path, FaultPlan::disabled());
        assert_eq!(c2.get(1), Some(r#"{"ii":4}"#));
        assert_eq!(c2.get(2), None);
        assert!(r.dropped_torn_tail);
        let _ = std::fs::remove_file(&path);
    }
}
