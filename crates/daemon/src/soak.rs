//! Chaos soak for `tmsd`: a client that hammers a daemon with bursts
//! of schedule requests while every daemon fault site is hot, then
//! proves the robustness contract:
//!
//! * **every request is answered** — `ok`, `error` or `overloaded`,
//!   exactly once each, never lost, never duplicated;
//! * **warm equals cold** — a cache hit replays byte-identical result
//!   bytes; injected cache corruption is bypassed (counted), never
//!   served;
//! * **degradation is visible** — deadline and budget cuts surface as
//!   `degraded` replies and the `tmsd.degraded` counter, not as missing
//!   answers;
//! * **the live `metrics` verb is schema-valid** and its counters
//!   reconcile with what the client observed.
//!
//! With no explicit address the soak spawns an in-process daemon on an
//! ephemeral port with [`hot_rates`] and tears it down with a
//! `shutdown` request at the end, so `tmsd soak` is self-contained for
//! CI.

use crate::proto::salvage_id;
use crate::server::{serve, DaemonConfig};
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;
use tms_core::par::Parallelism;
use tms_faults::{
    FaultPlan, FaultRates, SITE_DAEMON_ACCEPT, SITE_DAEMON_CACHE_READ, SITE_DAEMON_CACHE_WRITE,
};
use tms_trace::{schema, MetricsSnapshot, Trace};
use tms_verify::fuzz::fuzz_ddgs;

/// The soak's fault profile: every daemon site runs far hotter than the
/// standard campaign so a few hundred requests reliably fire all of
/// accept, cache-read and cache-write, plus budget cuts and worker
/// panics. Simulator-side sites stay cold — the soak exercises the
/// daemon, not the pipeline behind it.
pub fn hot_rates() -> FaultRates {
    FaultRates {
        sched_budget_per_1024: 512,
        sched_budget_attempts: 2,
        worker_panic_per_1024: 96,
        spill_transient_per_1024: 0,
        spill_fail_after: None,
        spill_torn_at: None,
        misspec_per_1024: 0,
        jitter_per_1024: 0,
        jitter_max_cycles: 0,
        accept_transient_per_1024: 384,
        cache_read_corrupt_per_1024: 512,
        cache_write_transient_per_1024: 256,
        cache_write_fail_after: None,
        cache_write_torn_at: Some(7),
    }
}

/// What to soak and how hard.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Schedule requests to send (malformed probes ride on top).
    pub requests: usize,
    /// Fault-plan seed for the in-process daemon (and corpus fuzzing).
    pub seed: u64,
    /// Soak an already-running daemon at this address instead of
    /// spawning one in-process. Fault-site assertions are skipped —
    /// the external daemon's plan is not ours to know.
    pub addr: Option<String>,
    /// Queue cap of the in-process daemon; bursts are sized at three
    /// times this so backpressure genuinely fires.
    pub queue_cap: usize,
    /// Send a final `shutdown` request (always sent in-process).
    pub shutdown: bool,
}

impl Default for SoakConfig {
    fn default() -> Self {
        SoakConfig {
            requests: 200,
            seed: 0x50AC_2008,
            addr: None,
            queue_cap: 16,
            shutdown: true,
        }
    }
}

/// What the soak observed, and every broken invariant it found.
#[derive(Debug, Default)]
pub struct SoakReport {
    /// Request lines sent (including malformed probes and retries).
    pub sent: usize,
    /// Replies received.
    pub answered: usize,
    /// `ok` replies.
    pub ok: usize,
    /// `ok` replies served from the cache.
    pub cached: usize,
    /// `ok` replies that degraded (deadline or budget cut).
    pub degraded: usize,
    /// `overloaded` (shed) replies.
    pub overloaded: usize,
    /// `error` replies.
    pub errors: usize,
    /// Warm-vs-cold byte-identity checks performed.
    pub warm_checked: usize,
    /// Final daemon counters (from the `metrics` verb).
    pub counters: BTreeMap<String, u64>,
    /// Final per-site fault-injection summary (from the `metrics` verb).
    pub faults: BTreeMap<String, u64>,
    /// Every violated invariant, in human-readable form. Empty = pass.
    pub failures: Vec<String>,
}

impl SoakReport {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// A terse multi-line summary for the CLI.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "soak: sent {} answered {} (ok {}, cached {}, degraded {}, overloaded {}, errors {}); \
             warm-checked {}\n",
            self.sent,
            self.answered,
            self.ok,
            self.cached,
            self.degraded,
            self.overloaded,
            self.errors,
            self.warm_checked,
        );
        if self.faults.is_empty() {
            s.push_str("faults: (external daemon; not asserted)\n");
        } else {
            let sites: Vec<String> = self
                .faults
                .iter()
                .map(|(site, n)| format!("{site}={n}"))
                .collect();
            s.push_str(&format!("faults: {}\n", sites.join(" ")));
        }
        if self.failures.is_empty() {
            s.push_str("PASS: every request answered; warm replies byte-identical to cold");
        } else {
            for f in &self.failures {
                s.push_str(&format!("FAIL: {f}\n"));
            }
            s.pop();
        }
        s
    }
}

/// What one sent line was, so its reply can be judged.
#[derive(Debug, Clone)]
enum Kind {
    /// A well-formed schedule request for corpus entry `corpus`.
    Schedule { corpus: usize },
    /// A `deadline_ms:0` request: must come back `ok` + degraded.
    Deadline,
    /// A deliberately malformed line: must come back `error`.
    Malformed,
}

struct Corpus {
    /// `(name, ddg_json, ncore)` per unique request body.
    entries: Vec<(String, String, u32)>,
    /// The dedicated deadline-probe body (its `ncore` is unique so it
    /// never collides with a cached entry — degraded results are not
    /// cached, so it must schedule cold and degrade every time).
    deadline_json: String,
}

fn build_corpus(requests: usize, seed: u64) -> Corpus {
    let mut ddgs = vec![tms_workloads::figure1()];
    ddgs.extend(tms_workloads::kernels::all_kernels());
    ddgs.extend(tms_workloads::livermore::livermore_suite());
    let want = (requests / 8).clamp(8, 48);
    if ddgs.len() < want {
        ddgs.extend(fuzz_ddgs(want - ddgs.len(), seed));
    }
    ddgs.truncate(want);
    let entries = ddgs
        .iter()
        .enumerate()
        .map(|(i, d)| {
            let json = serde_json::to_string(d).unwrap_or_default();
            (d.name().to_string(), json, [2u32, 4, 8][i % 3])
        })
        .collect();
    let deadline_json = serde_json::to_string(&tms_workloads::figure1()).unwrap_or_default();
    Corpus {
        entries,
        deadline_json,
    }
}

/// Write `lines` to a fresh connection, read one reply per line.
/// Replies are read concurrently so a large burst can never deadlock
/// on full socket buffers.
fn send_batch(addr: &str, lines: &[String]) -> Result<Vec<String>, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| format!("set_read_timeout: {e}"))?;
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let expected = lines.len();
    let reader = std::thread::spawn(move || {
        let mut replies = Vec::with_capacity(expected);
        let mut r = BufReader::new(stream);
        let mut buf = String::new();
        while replies.len() < expected {
            buf.clear();
            match r.read_line(&mut buf) {
                Ok(0) => break,
                Ok(_) => {
                    let t = buf.trim();
                    if !t.is_empty() {
                        replies.push(t.to_string());
                    }
                }
                Err(_) => break,
            }
        }
        replies
    });
    for line in lines {
        writer
            .write_all(line.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .map_err(|e| format!("write: {e}"))?;
    }
    writer.flush().map_err(|e| format!("flush: {e}"))?;
    // Half-close so the daemon's reader sees EOF once it has drained
    // the burst; our reader keeps the receive side open.
    let _ = writer.shutdown(Shutdown::Write);
    reader
        .join()
        .map_err(|_| "client reader panicked".to_string())
}

/// Extract the raw `result` bytes of an `ok` reply — the exact
/// substring the daemon embedded, no re-rendering — so byte-identity
/// means byte-identity.
fn raw_result(reply: &str) -> Option<&str> {
    let idx = reply.find(r#""result":"#)?;
    let body = &reply[idx + r#""result":"#.len()..];
    body.strip_suffix('}')
}

fn reply_flag(v: &Value, name: &str) -> bool {
    v.get(name).and_then(Value::as_bool).unwrap_or(false)
}

/// Judge one reply against what was sent under its id, updating the
/// running tallies and recording any violated invariant.
fn classify(
    reply: &str,
    metas: &BTreeMap<u64, Kind>,
    report: &mut SoakReport,
    answered: &mut BTreeMap<u64, u32>,
    overloaded_ids: &mut Vec<u64>,
    cold_result: &mut BTreeMap<usize, String>,
) {
    report.answered += 1;
    let Ok(v) = serde_json::from_str::<Value>(reply) else {
        report.failures.push(format!(
            "unparseable reply: {}",
            &reply[..reply.len().min(120)]
        ));
        return;
    };
    let id = v.get("id").and_then(Value::as_u64).unwrap_or(0);
    *answered.entry(id).or_insert(0) += 1;
    let status = v.get("status").and_then(Value::as_str).unwrap_or("");
    let kind = metas.get(&id);
    match status {
        "ok" => {
            report.ok += 1;
            if reply_flag(&v, "cached") {
                report.cached += 1;
            }
            let degraded = reply_flag(&v, "degraded");
            if degraded {
                report.degraded += 1;
            }
            match kind {
                Some(Kind::Malformed) => report
                    .failures
                    .push(format!("malformed request {id} was answered ok")),
                Some(Kind::Deadline) if !degraded => report
                    .failures
                    .push(format!("zero-deadline request {id} did not degrade")),
                Some(Kind::Schedule { corpus: i }) if !degraded => {
                    if let Some(raw) = raw_result(reply) {
                        cold_result.entry(*i).or_insert_with(|| raw.to_string());
                    } else {
                        report
                            .failures
                            .push(format!("ok reply {id} carries no result"));
                    }
                }
                _ => {}
            }
        }
        "overloaded" => {
            report.overloaded += 1;
            match kind {
                Some(Kind::Malformed) => report
                    .failures
                    .push(format!("malformed request {id} reached the queue")),
                _ => overloaded_ids.push(id),
            }
        }
        "error" => report.errors += 1,
        other => report
            .failures
            .push(format!("reply {id} has unknown status {other:?}")),
    }
}

/// Run the soak. `Err` is an operational failure (no daemon, dead
/// socket); assertion failures land in the report instead.
pub fn run_soak(cfg: &SoakConfig) -> Result<SoakReport, String> {
    let mut report = SoakReport::default();
    let in_process = cfg.addr.is_none();

    // Spawn the in-process daemon when no address was given.
    let mut cache_path: Option<PathBuf> = None;
    let mut server: Option<std::thread::JoinHandle<Result<(), String>>> = None;
    let addr = match &cfg.addr {
        Some(addr) => addr.clone(),
        None => {
            let path = std::env::temp_dir().join(format!(
                "tmsd-soak-{}-{:x}.cache",
                std::process::id(),
                cfg.seed
            ));
            let _ = std::fs::remove_file(&path);
            let dcfg = DaemonConfig {
                addr: "127.0.0.1:0".to_string(),
                queue_cap: cfg.queue_cap,
                batch_max: 4,
                jobs: Parallelism::Auto,
                cache_path: Some(path.clone()),
                deadline: None,
                plan: FaultPlan::with_rates(cfg.seed, hot_rates()),
            };
            cache_path = Some(path);
            let (tx, rx) = mpsc::channel();
            server = Some(std::thread::spawn(move || {
                serve(&dcfg, Trace::enabled(), move |a| {
                    let _ = tx.send(a);
                })
            }));
            let bound = rx
                .recv_timeout(Duration::from_secs(10))
                .map_err(|_| "in-process daemon never became ready".to_string())?;
            bound.to_string()
        }
    };

    let corpus = build_corpus(cfg.requests, cfg.seed);
    let burst = (cfg.queue_cap * 3).max(4);

    // Phase 1: bursts. Every 16th request is a zero-deadline probe,
    // every 37th a malformed probe.
    let mut next_id = 1u64;
    let mut metas: BTreeMap<u64, Kind> = BTreeMap::new();
    let mut line_of: BTreeMap<u64, String> = BTreeMap::new();
    let mut answered: BTreeMap<u64, u32> = BTreeMap::new();
    let mut cold_result: BTreeMap<usize, String> = BTreeMap::new();
    let mut overloaded_ids: Vec<u64> = Vec::new();

    let make_line = |id: u64, kind: &Kind, corpus: &Corpus| -> String {
        match kind {
            Kind::Schedule { corpus: i } => {
                let (_, json, ncore) = &corpus.entries[*i];
                format!(r#"{{"id":{id},"ddg":{json},"ncore":{ncore}}}"#)
            }
            Kind::Deadline => format!(
                r#"{{"id":{id},"ddg":{},"ncore":3,"deadline_ms":0}}"#,
                corpus.deadline_json
            ),
            Kind::Malformed => format!(r#"{{"id":{id},"verb":"schedule"}}"#),
        }
    };

    let mut pending: Vec<(u64, String)> = Vec::new();
    for n in 0..cfg.requests {
        let kind = if n % 16 == 15 {
            Kind::Deadline
        } else {
            Kind::Schedule {
                corpus: n % corpus.entries.len(),
            }
        };
        let id = next_id;
        next_id += 1;
        let line = make_line(id, &kind, &corpus);
        metas.insert(id, kind);
        line_of.insert(id, line.clone());
        pending.push((id, line));
        if n % 37 == 36 {
            let id = next_id;
            next_id += 1;
            let line = make_line(id, &Kind::Malformed, &corpus);
            metas.insert(id, Kind::Malformed);
            line_of.insert(id, line.clone());
            pending.push((id, line));
        }
    }

    for chunk in pending.chunks(burst) {
        let lines: Vec<String> = chunk.iter().map(|(_, l)| l.clone()).collect();
        report.sent += lines.len();
        let replies = send_batch(&addr, &lines)?;
        for reply in &replies {
            classify(
                reply,
                &metas,
                &mut report,
                &mut answered,
                &mut overloaded_ids,
                &mut cold_result,
            );
        }
    }

    // Every burst id answered exactly once — nothing lost, nothing
    // duplicated.
    for (id, _) in &pending {
        match answered.get(id) {
            Some(1) => {}
            Some(n) => report
                .failures
                .push(format!("request {id} answered {n} times")),
            None => report
                .failures
                .push(format!("request {id} was never answered")),
        }
    }

    // Phase 2: shed requests are retried serially; one at a time they
    // must land.
    let shed_observed = report.overloaded;
    for id in std::mem::take(&mut overloaded_ids) {
        let kind = metas.get(&id).cloned().unwrap_or(Kind::Malformed);
        let mut done = false;
        for _round in 0..5 {
            let rid = next_id;
            next_id += 1;
            metas.insert(rid, kind.clone());
            let line = {
                // Re-issue the original body under the fresh id.
                let orig = line_of.get(&id).cloned().unwrap_or_default();
                let salvaged = salvage_id(&orig);
                orig.replacen(&format!(r#""id":{salvaged}"#), &format!(r#""id":{rid}"#), 1)
            };
            report.sent += 1;
            let replies = send_batch(&addr, std::slice::from_ref(&line))?;
            let was_overloaded = replies
                .first()
                .is_some_and(|r| r.contains(r#""status":"overloaded""#));
            for reply in &replies {
                classify(
                    reply,
                    &metas,
                    &mut report,
                    &mut answered,
                    &mut overloaded_ids,
                    &mut cold_result,
                );
            }
            if !was_overloaded {
                done = true;
                break;
            }
        }
        if !done {
            report
                .failures
                .push(format!("request {id} still shed after 5 serial retries"));
        }
    }

    // Phase 3: warm equals cold, byte for byte.
    for (i, cold) in cold_result.iter().take(12) {
        let rid = next_id;
        next_id += 1;
        let line = make_line(rid, &Kind::Schedule { corpus: *i }, &corpus);
        report.sent += 1;
        let replies = send_batch(&addr, std::slice::from_ref(&line))?;
        let Some(reply) = replies.first() else {
            report
                .failures
                .push(format!("warm request for corpus {i} got no reply"));
            continue;
        };
        report.answered += 1;
        if reply.contains(r#""status":"ok""#) && !reply.contains(r#""degraded":true"#) {
            report.ok += 1;
            if reply.contains(r#""cached":true"#) {
                report.cached += 1;
            }
            match raw_result(reply) {
                Some(raw) if raw == cold => report.warm_checked += 1,
                Some(_) => report.failures.push(format!(
                    "warm result for corpus {i} ({}) differs from cold",
                    corpus.entries[*i].0
                )),
                None => report
                    .failures
                    .push(format!("warm reply for corpus {i} carries no result")),
            }
        } else if reply.contains(r#""status":"error""#) {
            // A once-latched injected panic can land here; the cold
            // result was already proven, so just note the answer.
            report.errors += 1;
        } else {
            report.degraded += reply.contains(r#""degraded":true"#) as usize;
            report.ok += reply.contains(r#""status":"ok""#) as usize;
        }
    }
    if report.warm_checked == 0 && !cold_result.is_empty() {
        report
            .failures
            .push("no warm reply could be byte-checked against a cold result".to_string());
    }

    // Phase 4: the metrics verb — schema-valid, reconciled.
    let mid = next_id;
    next_id += 1;
    report.sent += 1;
    let replies = send_batch(&addr, &[format!(r#"{{"id":{mid},"verb":"metrics"}}"#)])?;
    match replies.first() {
        None => report
            .failures
            .push("metrics request got no reply".to_string()),
        Some(reply) => {
            report.answered += 1;
            let v: Value = serde_json::from_str(reply)
                .map_err(|e| format!("metrics reply is not JSON: {e}"))?;
            let snap_json = v
                .get("snapshot")
                .map(serde_json::to_string)
                .transpose()
                .map_err(|e| format!("metrics snapshot: {e}"))?
                .ok_or("metrics reply has no snapshot")?;
            match MetricsSnapshot::from_json(&snap_json) {
                Err(e) => report
                    .failures
                    .push(format!("metrics snapshot does not round-trip: {e}")),
                Ok(snap) => {
                    let unknown = schema::unknown_metrics(&snap);
                    if !unknown.is_empty() {
                        report
                            .failures
                            .push(format!("metrics outside the schema: {unknown:?}"));
                    }
                    report.counters = snap.counters.clone();
                    if report.degraded > 0
                        && snap.counters.get("tmsd.degraded").copied().unwrap_or(0) == 0
                    {
                        report.failures.push(
                            "degraded replies observed but tmsd.degraded is zero".to_string(),
                        );
                    }
                    if in_process {
                        let shed = snap.counters.get("tmsd.shed").copied().unwrap_or(0);
                        if shed != shed_observed as u64 {
                            report.failures.push(format!(
                                "tmsd.shed={shed} but {shed_observed} overloaded replies observed"
                            ));
                        }
                        if report.degraded == 0 {
                            report
                                .failures
                                .push("no degraded reply observed under hot faults".to_string());
                        }
                        if shed_observed == 0 {
                            report.failures.push(format!(
                                "no shed under {burst}-request bursts against a cap of {}",
                                cfg.queue_cap
                            ));
                        }
                        if let Some(depth) = snap.values.get("tmsd.queue_depth") {
                            if depth.max > cfg.queue_cap as u64 {
                                report.failures.push(format!(
                                    "queue depth reached {} past the cap {}",
                                    depth.max, cfg.queue_cap
                                ));
                            }
                        }
                    }
                }
            }
            if let Some(faults) = v.get("faults").and_then(Value::as_object) {
                for (site, n) in faults {
                    if let Some(n) = n.as_u64() {
                        report.faults.insert(site.clone(), n);
                    }
                }
            }
            if in_process {
                for site in [
                    SITE_DAEMON_ACCEPT,
                    SITE_DAEMON_CACHE_READ,
                    SITE_DAEMON_CACHE_WRITE,
                ] {
                    if report.faults.get(site).copied().unwrap_or(0) == 0 {
                        report
                            .failures
                            .push(format!("fault site {site} never fired during the soak"));
                    }
                }
            }
        }
    }

    // Phase 5: clean shutdown.
    if in_process || cfg.shutdown {
        let sid = next_id;
        report.sent += 1;
        let replies = send_batch(&addr, &[format!(r#"{{"id":{sid},"verb":"shutdown"}}"#)])?;
        match replies.first() {
            Some(r) if r.contains(r#""shutdown":true"#) => report.answered += 1,
            Some(r) => report
                .failures
                .push(format!("shutdown was not acknowledged: {r}")),
            None => report.failures.push("shutdown got no reply".to_string()),
        }
    }
    if let Some(handle) = server {
        match handle.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => report.failures.push(format!("daemon exited with: {e}")),
            Err(_) => report.failures.push("daemon thread panicked".to_string()),
        }
    }
    if let Some(path) = cache_path {
        let _ = std::fs::remove_file(&path);
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small end-to-end soak: in-process daemon, hot faults, every
    /// invariant checked. This is the chaos test the CI job scales up.
    #[test]
    fn small_soak_answers_everything() {
        let cfg = SoakConfig {
            requests: 48,
            queue_cap: 4,
            ..SoakConfig::default()
        };
        let report = run_soak(&cfg).expect("soak must run");
        assert!(
            report.passed(),
            "soak failures:\n{}",
            report.failures.join("\n")
        );
        assert!(report.answered >= report.sent - 1, "replies missing");
        assert!(report.degraded > 0, "deadline probes must degrade");
    }
}
