//! `tmsd` — TMS scheduling as a long-lived service.
//!
//! The batch tools (`tms`, `tms-verify`) pay DDG parsing, machine
//! setup and a full candidate search per invocation. `tmsd` keeps the
//! scheduler resident behind a TCP socket speaking newline-delimited
//! JSON — the same DDG and machine-model JSON the `tms` CLI imports
//! and exports — and answers with the scheduled kernel plus its cost
//! report. The interesting part is not the socket, it is the
//! robustness contract around it:
//!
//! * **Content-addressed caching** ([`proto::cache_key`],
//!   [`cache::ScheduleCache`]): requests are keyed on a stable hash of
//!   the canonicalised DDG, machine model, core count and search
//!   knobs. Warm replies replay the stored result bytes verbatim, so a
//!   hit is byte-identical to the cold schedule. The cache persists as
//!   crash-safe ndjson with lossy-prefix recovery.
//! * **Backpressure** ([`server::BoundedQueue`]): per-connection
//!   queues are bounded; past the cap a request is *shed* with a
//!   structured `overloaded` reply — answered, counted, never lost.
//! * **Degradation over failure**: per-request deadlines and injected
//!   attempt budgets degrade TMS→SMS (the reply says so); cache
//!   corruption is bypassed and rescheduled cold; a panic while
//!   scheduling one request is contained to that request.
//! * **Seeded chaos** ([`soak`]): `tmsd soak` hammers a daemon with
//!   every fault site hot — `daemon.accept`, `daemon.cache.read`,
//!   `daemon.cache.write`, budget cuts, worker panics — and proves
//!   every request is answered and warm equals cold, byte for byte.
//!
//! Live counters (`tmsd.requests`, `tmsd.cache.hit/miss/bypassed`,
//! `tmsd.shed`, `tmsd.degraded`, `tmsd.retries`, …) are exported by
//! the `metrics` request verb as a canonical
//! [`tms_trace::MetricsSnapshot`], schema-checked in CI.

#![warn(missing_docs)]

pub mod cache;
pub mod proto;
pub mod server;
pub mod soak;

pub use cache::{LoadReport, ScheduleCache, WriteReport};
pub use proto::{cache_key, key_hex, parse_request, Knobs, Request, ScheduleRequest};
pub use server::{serve, DaemonConfig, Engine};
pub use soak::{hot_rates, run_soak, SoakConfig, SoakReport};
