//! The full verification sweep as a library: every workload family plus
//! a fuzzed population through [`check_loop`], fanned across a bounded
//! worker pool.
//!
//! Loops are independent, so the sweep dispatches them through
//! [`tms_core::par::par_map`]; results come back in input order at any
//! worker count, which makes the [`VerifyReport`] **bit-identical**
//! regardless of `jobs` (the report carries no timing). `tms-verify` is
//! a thin argument-parsing shell over [`run_sweep`]; the determinism
//! test calls it directly and compares whole-report JSON across worker
//! counts.

use crate::checks::{check_loop_traced, CheckConfig, LoopVerdict, Violation};
use crate::fuzz::fuzz_ddgs;
use crate::report::VerifyReport;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;
use tms_core::par::{par_map, Parallelism};
use tms_faults::FaultPlan;
use tms_trace::Trace;
use tms_workloads::{doacross_suite, figure1, kernels, livermore_suite, specfp_profiles};

/// Everything one sweep run depends on.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Fuzzed DDGs to generate and check.
    pub fuzz: usize,
    /// Master seed (workload and fuzz generation).
    pub seed: u64,
    /// Original loop iterations per differential simulation.
    pub sim_iters: u64,
    /// Loops checked per SPECfp profile (0 = the full population).
    pub specfp_cap: usize,
    /// Skip the differential execution checks.
    pub no_sim: bool,
    /// Use the cheaper [`CheckConfig::quick`] grid.
    pub quick: bool,
    /// Worker threads for the per-loop fan-out.
    pub jobs: Parallelism,
    /// Process-level sharding: `Some((i, n))` checks only the loops
    /// whose **global index** (position in the fixed family order,
    /// counted across every family) is `≡ i (mod n)`. The shards
    /// partition the sweep exactly: each loop lands in precisely one
    /// shard, so shard metrics snapshots merge
    /// ([`tms_trace::MetricsSnapshot::merge`]) byte-identically to a
    /// single-process run.
    pub shard: Option<(u32, u32)>,
    /// Instrumentation sink (disabled by default). When enabled, the
    /// sweep records a span per family and per loop plus the scheduler
    /// and simulator counters underneath; the [`VerifyReport`] itself
    /// is byte-identical either way.
    pub trace: Trace,
    /// Fault-injection plan (disabled by default; `--faults SEED`
    /// enables the campaign). Threads through [`CheckConfig::faults`]
    /// into the scheduler and simulator, and additionally panics the
    /// worker on selected loops — which [`tms_core::par`] must catch
    /// and re-execute serially, keeping the report byte-identical at
    /// any `jobs`.
    pub faults: FaultPlan,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            fuzz: 200,
            seed: 0x7315_2008,
            sim_iters: 24,
            specfp_cap: 4,
            no_sim: false,
            quick: false,
            jobs: Parallelism::Auto,
            shard: None,
            trace: Trace::disabled(),
            faults: FaultPlan::disabled(),
        }
    }
}

impl SweepConfig {
    /// The per-loop check grid this sweep uses.
    pub fn check_config(&self) -> CheckConfig {
        let mut cfg = if self.quick {
            CheckConfig::quick()
        } else {
            CheckConfig::default()
        };
        cfg.sim_iters = self.sim_iters;
        if self.no_sim {
            cfg.simulate = false;
        }
        cfg.faults = self.faults.clone();
        cfg
    }
}

/// Wall-clock of one family's fan-out (kept outside the report so the
/// report itself stays deterministic).
#[derive(Debug, Clone)]
pub struct FamilyTiming {
    /// Workload family name.
    pub family: String,
    /// Loops checked.
    pub loops: usize,
    /// Seconds spent checking the family.
    pub seconds: f64,
}

/// A finished sweep: the deterministic report plus its timings, and any
/// notes the sweep emitted (e.g. SPECfp sampling).
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The `results/verify.json` payload. Identical across `jobs`.
    pub report: VerifyReport,
    /// Per-family wall-clock, in family order.
    pub timings: Vec<FamilyTiming>,
    /// Human-readable notes (not part of the report).
    pub notes: Vec<String>,
}

/// Run the whole sweep: kernels, figure1, livermore, doacross, SPECfp
/// and fuzzed loops, in that fixed order.
pub fn run_sweep(sweep: &SweepConfig) -> SweepOutcome {
    let cfg = sweep.check_config();
    let mut outcome = SweepOutcome {
        report: VerifyReport {
            seed: sweep.seed,
            ..Default::default()
        },
        timings: Vec::new(),
        notes: Vec::new(),
    };
    if let Some((i, n)) = sweep.shard {
        outcome.notes.push(format!(
            "shard {i}/{n}: checking loops with global index = {i} (mod {n})"
        ));
    }

    // Loops are numbered globally across the fixed family order; a
    // shard keeps the loops whose global index is `≡ i (mod n)`.
    let next_global = std::cell::Cell::new(0u64);
    let run_family = |outcome: &mut SweepOutcome, family: &str, ddgs: &[tms_ddg::Ddg]| {
        let base = next_global.get();
        next_global.set(base + ddgs.len() as u64);
        let kept: Vec<&tms_ddg::Ddg> = ddgs
            .iter()
            .enumerate()
            .filter(|(j, _)| match sweep.shard {
                None => true,
                Some((i, n)) => (base + *j as u64) % u64::from(n) == u64::from(i),
            })
            .map(|(_, g)| g)
            .collect();
        let mut span = sweep.trace.span("sweep", family);
        span.arg("loops", kept.len());
        let t0 = Instant::now();
        let verdicts: Vec<LoopVerdict> = par_map(sweep.jobs, &kept, |_, &g| {
            // Injected worker panic: deliberately *outside* the local
            // catch below, so it unwinds into `par_map`'s containment
            // and the loop is re-executed serially (the site latches,
            // so the retry runs clean). This is the campaign's proof
            // that a dying worker loses no loop.
            if sweep.faults.worker_panic_once(g.name()) {
                panic!("injected worker panic on '{}'", g.name());
            }
            // A genuine panic inside the checks themselves (a scheduler
            // or simulator bug on one pathological loop) becomes a
            // structured violation instead of killing the whole sweep —
            // it would otherwise panic again on the serial retry.
            catch_unwind(AssertUnwindSafe(|| {
                check_loop_traced(g, &cfg, &sweep.trace)
            }))
            .unwrap_or_else(|e| {
                let msg = e
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| e.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                LoopVerdict {
                    name: g.name().to_string(),
                    checks: 1,
                    violations: vec![Violation {
                        loop_name: g.name().to_string(),
                        check: "panic".to_string(),
                        detail: msg,
                    }],
                    degraded: Vec::new(),
                }
            })
        });
        outcome.report.add_family(family, &verdicts);
        outcome.timings.push(FamilyTiming {
            family: family.to_string(),
            loops: verdicts.len(),
            seconds: t0.elapsed().as_secs_f64(),
        });
    };

    // Hand-written kernels, plus an always-aliasing variant that forces
    // misspeculation on every speculated iteration.
    let mut kernel_pop = kernels::all_kernels();
    kernel_pop.push(kernels::maybe_aliasing_update(1.0));
    run_family(&mut outcome, "kernels", &kernel_pop);
    run_family(&mut outcome, "figure1", &[figure1()]);
    run_family(&mut outcome, "livermore", &livermore_suite());
    let doacross: Vec<_> = doacross_suite(sweep.seed)
        .into_iter()
        .map(|l| l.ddg)
        .collect();
    run_family(&mut outcome, "doacross", &doacross);

    // SPECfp profiles: the full population is 778 loops; by default a
    // per-benchmark sample keeps the sweep interactive.
    let mut specfp: Vec<tms_ddg::Ddg> = Vec::new();
    let mut specfp_total = 0usize;
    for p in specfp_profiles() {
        let loops = p.generate(sweep.seed);
        specfp_total += loops.len();
        let take = if sweep.specfp_cap == 0 {
            loops.len()
        } else {
            sweep.specfp_cap.min(loops.len())
        };
        specfp.extend(loops.into_iter().take(take));
    }
    if specfp.len() < specfp_total {
        outcome.notes.push(format!(
            "specfp: sampling {} of {specfp_total} loops (--specfp-cap 0 for all)",
            specfp.len()
        ));
    }
    run_family(&mut outcome, "specfp", &specfp);

    run_family(&mut outcome, "fuzz", &fuzz_ddgs(sweep.fuzz, sweep.seed));

    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            fuzz: 4,
            specfp_cap: 1,
            no_sim: true,
            quick: true,
            jobs: Parallelism::Serial,
            ..Default::default()
        }
    }

    #[test]
    fn sweep_families_are_in_fixed_order() {
        let out = run_sweep(&tiny());
        let names: Vec<&str> = out
            .report
            .families
            .iter()
            .map(|f| f.family.as_str())
            .collect();
        assert_eq!(
            names,
            [
                "kernels",
                "figure1",
                "livermore",
                "doacross",
                "specfp",
                "fuzz"
            ]
        );
        assert_eq!(out.timings.len(), out.report.families.len());
    }

    #[test]
    fn sweep_report_is_identical_across_worker_counts() {
        let serial = run_sweep(&tiny());
        let parallel = run_sweep(&SweepConfig {
            jobs: Parallelism::Jobs(3),
            ..tiny()
        });
        assert_eq!(serial.report.to_json(), parallel.report.to_json());
    }

    #[test]
    fn tracing_changes_nothing_and_is_itself_deterministic() {
        let untraced = run_sweep(&tiny());
        let t_serial = Trace::enabled();
        let traced = run_sweep(&SweepConfig {
            trace: t_serial.clone(),
            ..tiny()
        });
        // The report is byte-identical with tracing on.
        assert_eq!(untraced.report.to_json(), traced.report.to_json());
        // And the deterministic metrics slice (counters + value
        // histograms) is identical at any worker count.
        let t_jobs = Trace::enabled();
        run_sweep(&SweepConfig {
            trace: t_jobs.clone(),
            jobs: Parallelism::Jobs(3),
            ..tiny()
        });
        assert_eq!(t_serial.metrics(), t_jobs.metrics());
        assert_eq!(
            t_serial.counter("verify.loops"),
            untraced.report.total_loops as u64
        );
        assert!(t_serial.counter("tms.attempts") > 0);
    }

    #[test]
    fn fault_campaign_survives_and_is_jobs_invariant() {
        // Hot rates so a tiny sweep still exercises every site: every
        // loop gets a starved scheduler budget, panicking workers are
        // common, and the simulator is left on so misspec/jitter fire.
        let rates = tms_faults::FaultRates {
            sched_budget_per_1024: 1024,
            sched_budget_attempts: 1,
            worker_panic_per_1024: 512,
            ..tms_faults::FaultRates::default()
        };
        let campaign = |jobs| {
            let cfg = SweepConfig {
                faults: tms_faults::FaultPlan::with_rates(0xC0FFEE, rates),
                jobs,
                no_sim: false,
                sim_iters: 6,
                ..tiny()
            };
            (run_sweep(&cfg), cfg.faults)
        };
        let (serial, plan_serial) = campaign(Parallelism::Serial);
        // Degradation happened (every loop was budget-starved), no
        // check failed, and the injected panics left no trace in the
        // verdicts — every loop is present exactly once.
        assert_eq!(
            serial.report.total_violations, 0,
            "{:?}",
            serial.report.violations
        );
        assert!(serial.report.total_degraded > 0);
        assert!(plan_serial.injected_total() > 0);
        assert!(
            *plan_serial
                .injected()
                .get(tms_faults::SITE_PAR_PANIC)
                .unwrap_or(&0)
                > 0,
            "panic site must fire at these rates: {:?}",
            plan_serial.injected()
        );

        let (parallel, _) = campaign(Parallelism::Jobs(3));
        assert_eq!(
            serial.report.to_json(),
            parallel.report.to_json(),
            "campaign report must be bit-identical at any worker count"
        );
    }

    #[test]
    fn shards_partition_the_sweep_and_metrics_merge_exactly() {
        let single_trace = Trace::enabled();
        let single = run_sweep(&SweepConfig {
            trace: single_trace.clone(),
            ..tiny()
        });

        let n = 3u32;
        let mut merged = tms_trace::MetricsSnapshot::default();
        let mut loops = 0usize;
        for i in 0..n {
            let t = Trace::enabled();
            let out = run_sweep(&SweepConfig {
                shard: Some((i, n)),
                trace: t.clone(),
                ..tiny()
            });
            loops += out.report.total_loops;
            merged.merge(&t.metrics());
        }
        // Every loop lands in exactly one shard…
        assert_eq!(loops, single.report.total_loops);
        // …and the merged metrics are byte-identical to one process.
        assert_eq!(merged.to_json(), single_trace.snapshot_json());
    }
}
