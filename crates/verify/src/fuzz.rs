//! Deterministic seeded DDG fuzzing.
//!
//! Each fuzz index maps to one [`LoopSpec`] drawn from a seeded RNG —
//! the same `(master_seed, index)` pair always yields the same loop, so
//! a violation report names a loop anyone can regenerate. The
//! population deliberately covers the paper's whole loop taxonomy:
//! DOALL bodies, register- and memory-carried recurrences, induction
//! pressure, and a slice of *forced misspeculation* loops whose carried
//! memory dependences alias on every iteration (`p = 1.0`).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use tms_ddg::Ddg;
use tms_workloads::{generate_loop, LoopSpec, RecurrenceSpec};

/// The [`LoopSpec`] of fuzz loop `index` under `master_seed`.
pub fn fuzz_spec(index: u64, master_seed: u64) -> LoopSpec {
    let mut rng = SmallRng::seed_from_u64(master_seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let n_inst = rng.gen_range(6..=28);
    let n_recs = rng.gen_range(0..=2);
    let mut recurrences = Vec::with_capacity(n_recs);
    for _ in 0..n_recs {
        recurrences.push(RecurrenceSpec {
            len: rng.gen_range(1..=4),
            latency: rng.gen_range(1..=12),
            through_memory: rng.gen_bool(0.4),
            // A slice of always-aliasing carried dependences exercises
            // the squash/replay machinery, not just the happy path.
            prob: if rng.gen_bool(0.15) {
                1.0
            } else {
                rng.gen_range(0.005..0.25)
            },
        });
    }
    let forced_misspec = rng.gen_bool(0.1);
    // A slice of adversarial profiles: carried-dependence probabilities
    // drawn outside [0, 1], exercising the clamping at `DdgBuilder`'s
    // mem-edge constructors (and, downstream, that the cost model and
    // simulator never see a probability off the unit interval).
    let out_of_range = rng.gen_bool(0.05);
    LoopSpec {
        name: format!("fuzz#{index}"),
        n_inst,
        recurrences,
        load_frac: rng.gen_range(0.10..0.35),
        store_frac: rng.gen_range(0.05..0.25),
        fpadd_frac: rng.gen_range(0.05..0.30),
        fpmul_frac: rng.gen_range(0.05..0.30),
        carried_reg_deps: rng.gen_range(0..=2),
        carried_mem_deps: rng.gen_range(0..=3),
        mem_prob: if out_of_range {
            (-0.25, 1.25)
        } else if forced_misspec {
            (1.0, 1.0)
        } else {
            (0.002, rng.gen_range(0.05..0.50))
        },
        seed: rng.gen(),
    }
}

/// Generate `count` fuzz loops. Deterministic in `master_seed`.
pub fn fuzz_ddgs(count: usize, master_seed: u64) -> Vec<Ddg> {
    (0..count as u64)
        .map(|i| generate_loop(&fuzz_spec(i, master_seed)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed_and_index() {
        let a = fuzz_spec(7, 42);
        let b = fuzz_spec(7, 42);
        assert_eq!(a.n_inst, b.n_inst);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.recurrences, b.recurrences);
        let c = fuzz_spec(8, 42);
        assert_ne!(a.seed, c.seed);
    }

    #[test]
    fn population_is_structurally_diverse() {
        let specs: Vec<LoopSpec> = (0..200).map(|i| fuzz_spec(i, 1)).collect();
        assert!(specs.iter().any(|s| s.recurrences.is_empty()));
        assert!(specs
            .iter()
            .any(|s| s.recurrences.iter().any(|r| r.through_memory)));
        assert!(specs
            .iter()
            .any(|s| s.recurrences.iter().any(|r| !r.through_memory)));
        // Forced-misspeculation slice present (p = 1.0 carried deps).
        assert!(specs.iter().any(|s| s.mem_prob == (1.0, 1.0)));
        // Adversarial slice: probabilities outside [0, 1].
        assert!(specs.iter().any(|s| s.mem_prob == (-0.25, 1.25)));
        assert!(specs.iter().any(|s| s.carried_mem_deps == 0));
    }

    #[test]
    fn out_of_range_probabilities_reach_the_builder_clamped() {
        // Every generated edge probability must be in [0, 1] even for
        // the adversarial slice — the builder clamps at construction.
        let mut saw_adversarial = false;
        for i in 0..400u64 {
            let spec = fuzz_spec(i, 1);
            saw_adversarial |= spec.mem_prob == (-0.25, 1.25);
            let g = generate_loop(&spec);
            for e in g.edges() {
                assert!(
                    (0.0..=1.0).contains(&e.prob),
                    "{}: edge prob {} escaped clamping",
                    spec.name,
                    e.prob
                );
            }
        }
        assert!(saw_adversarial, "no adversarial spec in 400 draws");
    }

    #[test]
    fn generated_loops_build() {
        for g in fuzz_ddgs(32, 3) {
            assert!(g.num_insts() >= 1);
        }
    }
}
