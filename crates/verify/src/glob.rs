//! Minimal filename-glob expansion for the CLI entry points.
//!
//! `tms-verify merge-metrics results/shard_*.json` is the natural way
//! to fold a sharded sweep, but when the shell finds no match it passes
//! the pattern through *verbatim* (POSIX default, and `nullglob` is off
//! almost everywhere) — and a merge tool that treats the unmatched
//! pattern as a literal filename either errors confusingly or, worse,
//! merges nothing and writes an empty snapshot. This module gives the
//! CLI just enough glob support to expand such patterns itself and
//! report "matched no files" as the operational error it is.
//!
//! Scope is deliberately small (no new dependencies): `*` and `?` are
//! recognised in the **final path component only** — wildcards in a
//! directory component are not expanded (the path is then treated as a
//! literal). Matches are returned sorted by filename so downstream
//! merge order — and therefore any merge diagnostics — is deterministic
//! regardless of directory enumeration order.

use std::path::{Path, PathBuf};

/// Whether `arg`'s final path component contains a glob metacharacter
/// (`*` or `?`) — i.e. whether [`expand`] would treat it as a pattern
/// rather than a literal path.
pub fn is_pattern(arg: &str) -> bool {
    let tail = arg
        .rsplit(['/', std::path::MAIN_SEPARATOR])
        .next()
        .unwrap_or(arg);
    tail.contains(['*', '?'])
}

/// Expand a pattern whose final component may contain `*` / `?` into
/// the sorted list of matching paths. A non-pattern arg (per
/// [`is_pattern`]) is returned as-is without touching the filesystem.
/// An unreadable parent directory is an error; a readable directory
/// with no matching entries yields an empty vector — the caller
/// decides whether that is fatal (for `merge-metrics` it is).
pub fn expand(arg: &str) -> Result<Vec<PathBuf>, String> {
    if !is_pattern(arg) {
        return Ok(vec![PathBuf::from(arg)]);
    }
    let path = Path::new(arg);
    let pattern = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("pattern '{arg}' has no filename component"))?;
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let entries = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory '{}': {e}", dir.display()))?;
    let mut matched: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read directory '{}': {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else {
            continue; // non-UTF-8 names cannot match a UTF-8 pattern
        };
        if matches(pattern, name) {
            // Reconstruct through the original arg's directory prefix
            // so relative args stay relative (no "./" injection).
            matched.push(if arg.contains(['/', std::path::MAIN_SEPARATOR]) {
                dir.join(name)
            } else {
                PathBuf::from(name)
            });
        }
    }
    matched.sort();
    Ok(matched)
}

/// Glob-match `name` against `pattern`: `?` matches any single
/// character, `*` any (possibly empty) run. Classic two-pointer
/// backtracking over the last `*` — linear in practice, no recursion.
fn matches(pattern: &str, name: &str) -> bool {
    let (p, n) = (pattern.as_bytes(), name.as_bytes());
    let (mut pi, mut ni) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi, ni));
            pi += 1;
        } else if let Some((sp, sn)) = star {
            // Backtrack: let the last `*` swallow one more byte.
            pi = sp + 1;
            ni = sn + 1;
            star = Some((sp, sn + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matcher_handles_star_question_and_literals() {
        assert!(matches("shard_*.json", "shard_0.json"));
        assert!(matches("shard_*.json", "shard_12.json"));
        assert!(matches("*", "anything"));
        assert!(matches("*", ""));
        assert!(matches("a?c", "abc"));
        assert!(matches("*.json", ".json"));
        assert!(matches("a*b*c", "axxbyyc"));
        assert!(!matches("a?c", "ac"));
        assert!(!matches("shard_*.json", "shard_0.json.bak"));
        assert!(!matches("*.json", "snapshot.txt"));
        assert!(!matches("abc", "abd"));
    }

    #[test]
    fn pattern_detection_ignores_directory_components() {
        assert!(is_pattern("shard_*.json"));
        assert!(is_pattern("results/shard_?.json"));
        assert!(!is_pattern("results/plain.json"));
        // A wildcard in a *directory* component is out of scope: the
        // final component is literal, so the arg is not a pattern.
        assert!(!is_pattern("res*/plain.json"));
    }

    #[test]
    fn expand_returns_sorted_matches_and_passes_literals_through() {
        let dir = std::env::temp_dir().join("tms_verify_glob_test");
        std::fs::create_dir_all(&dir).unwrap();
        for name in ["b.json", "a.json", "c.txt"] {
            std::fs::write(dir.join(name), "{}").unwrap();
        }
        let pat = format!("{}/*.json", dir.display());
        let got = expand(&pat).unwrap();
        assert_eq!(got, vec![dir.join("a.json"), dir.join("b.json")]);

        // No match: empty, not an error — the CLI turns this into
        // exit 2 with the pattern named.
        let none = expand(&format!("{}/*.ndjson", dir.display())).unwrap();
        assert!(none.is_empty());

        // Literal (even nonexistent) paths pass through untouched.
        let lit = expand("results/definitely_missing.json").unwrap();
        assert_eq!(lit, vec![PathBuf::from("results/definitely_missing.json")]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn expand_reports_unreadable_directories() {
        let err = expand("no_such_dir_tms_verify/*.json").unwrap_err();
        assert!(err.contains("no_such_dir_tms_verify"), "got: {err}");
    }
}
