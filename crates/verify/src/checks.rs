//! The differential checks run on every loop.
//!
//! One [`check_loop`] call drives the whole stack over a single DDG:
//!
//! * **SMS** — the baseline schedule must be legal and resource
//!   feasible ([`verify_schedule`] with no thresholds);
//! * **TMS** at every configured `(ncore, P_max)` point — the accepted
//!   schedule must satisfy every invariant *under its own thresholds*
//!   (achieved `C_delay ≤` threshold, misspeculation `≤ P_max`, stage
//!   cap), its stored cost key must be consistent, and it must never
//!   cost more than the SMS baseline under the same eq. 2 model;
//! * **SpMT execution** — the parallel simulation of both schedules
//!   must commit exactly the sequential memory image, with violation
//!   detection on (squash/replay correctness, including forced
//!   misspeculation and cascade squashes).

use serde::Serialize;
use tms_core::diagnostics::{verify_schedule, VerifyLimits};
use tms_core::metrics::achieved_c_delay;
use tms_core::{schedule_sms, schedule_tms_traced, CostModel, TmsConfig};
use tms_ddg::Ddg;
use tms_faults::FaultPlan;
use tms_machine::{ArchParams, MachineModel};
use tms_sim::{simulate_sequential, simulate_spmt_injected, SimConfig};
use tms_trace::Trace;

/// One failed check on one loop.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Loop the check ran on.
    pub loop_name: String,
    /// Stable tag of the check that failed.
    pub check: String,
    /// Human-readable specifics.
    pub detail: String,
}

/// Which `(ncore, P_max)` points to probe and how much to simulate.
#[derive(Debug, Clone)]
pub struct CheckConfig {
    /// Core counts to run TMS under (each gets its own cost model).
    pub ncores: Vec<u32>,
    /// `P_max` values to try at each core count.
    pub p_max_values: Vec<f64>,
    /// Run the SpMT-vs-sequential differential execution.
    pub simulate: bool,
    /// Original loop iterations per simulation.
    pub sim_iters: u64,
    /// Fault-injection plan ([`FaultPlan::disabled`] by default).
    /// Selected loops get a starved TMS attempt budget (exercising the
    /// SMS degradation path) and their simulations run under forced
    /// misspeculation and stall jitter. Every differential invariant
    /// must still hold — injection perturbs timing and search effort,
    /// never correctness.
    pub faults: FaultPlan,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            ncores: vec![2, 4, 8],
            p_max_values: vec![0.05, 0.20],
            simulate: true,
            sim_iters: 24,
            faults: FaultPlan::disabled(),
        }
    }
}

impl CheckConfig {
    /// A cheaper grid for large populations (one core count, two
    /// `P_max` points, shorter simulations).
    pub fn quick() -> Self {
        CheckConfig {
            ncores: vec![4],
            p_max_values: vec![0.05, 0.20],
            simulate: true,
            sim_iters: 12,
            faults: FaultPlan::disabled(),
        }
    }
}

/// Outcome of all checks on one loop.
#[derive(Debug, Clone, Default)]
pub struct LoopVerdict {
    /// Loop name.
    pub name: String,
    /// Checks executed.
    pub checks: usize,
    /// Checks failed.
    pub violations: Vec<Violation>,
    /// Graceful degradations taken while checking this loop (one entry
    /// per `(point, diagnostic)` — e.g. a TMS search that exhausted an
    /// injected budget and fell back to SMS). Degradation is *not* a
    /// violation: the fallback result passed every check, but the
    /// report records that the primary path was not the one taken.
    pub degraded: Vec<String>,
}

impl LoopVerdict {
    fn fail(&mut self, check: &str, detail: String) {
        self.violations.push(Violation {
            loop_name: self.name.clone(),
            check: check.to_string(),
            detail,
        });
    }
}

/// Count of addresses whose final `(store, iteration)` differ between
/// two memory images (in either direction).
fn image_diff(
    a: &std::collections::HashMap<u64, (tms_ddg::InstId, u64)>,
    b: &std::collections::HashMap<u64, (tms_ddg::InstId, u64)>,
) -> usize {
    let mut n = a.iter().filter(|(k, v)| b.get(*k) != Some(*v)).count();
    n += b.keys().filter(|k| !a.contains_key(*k)).count();
    n
}

/// Run every configured check on one loop.
pub fn check_loop(ddg: &Ddg, cfg: &CheckConfig) -> LoopVerdict {
    check_loop_traced(ddg, cfg, &Trace::disabled())
}

/// [`check_loop`] with instrumentation: a span per loop, plus whatever
/// the traced scheduler and simulator record underneath. The verdict is
/// identical whether `trace` is enabled or not, and the counters it
/// feeds are sums over a fixed per-loop workload — deterministic at any
/// sweep worker count.
pub fn check_loop_traced(ddg: &Ddg, cfg: &CheckConfig, trace: &Trace) -> LoopVerdict {
    let mut span = trace.span("verify", ddg.name());
    let v = check_loop_impl(ddg, cfg, trace);
    span.arg("checks", v.checks);
    span.arg("violations", v.violations.len());
    trace.count("verify.loops", 1);
    trace.count("verify.checks", v.checks as u64);
    trace.count("verify.violations", v.violations.len() as u64);
    trace.count("verify.degraded", v.degraded.len() as u64);
    v
}

fn check_loop_impl(ddg: &Ddg, cfg: &CheckConfig, trace: &Trace) -> LoopVerdict {
    let mut v = LoopVerdict {
        name: ddg.name().to_string(),
        ..Default::default()
    };
    let machine = MachineModel::icpp2008();
    let costs = ArchParams::icpp2008().costs;

    // --- SMS baseline: must schedule, legally.
    v.checks += 1;
    let sms = match schedule_sms(ddg, &machine) {
        Ok(r) => r,
        Err(e) => {
            v.fail("sms-schedule", format!("{e:?}"));
            return v;
        }
    };
    for d in verify_schedule(
        ddg,
        &sms.schedule,
        &machine,
        &costs,
        &VerifyLimits::default(),
    ) {
        v.fail("sms-invariant", d.to_string());
    }
    let sms_cd = achieved_c_delay(ddg, &sms.schedule, &costs);

    // --- TMS across the (ncore, P_max) grid.
    let mut tms_default = None;
    for &ncore in &cfg.ncores {
        let model = CostModel::new(costs, ncore);
        let sms_key = model.cost_key(sms.schedule.ii(), sms_cd);
        for &p_max in &cfg.p_max_values {
            v.checks += 1;
            let config = TmsConfig {
                p_max_values: vec![p_max],
                // Injection: a selected loop's search is starved down
                // to a handful of attempts; exhausting them must
                // degrade to SMS, never error.
                attempt_budget: cfg.faults.sched_budget(ddg.name()),
                ..TmsConfig::default()
            };
            let point = format!("ncore={ncore} P_max={p_max}");
            let tms = match schedule_tms_traced(ddg, &machine, &model, &config, trace) {
                Ok(r) => r,
                Err(e) => {
                    v.fail("tms-schedule", format!("{point}: {e:?}"));
                    continue;
                }
            };
            if let Some(d) = &tms.degraded {
                v.degraded.push(format!("{point}: {d}"));
            }
            // The accepted schedule must hold every invariant under the
            // thresholds it was accepted with. An SMS fallback carries
            // its achieved delay as threshold and P_max = 1; the stage
            // cap only binds thread-sensitive candidates.
            let min_stages = (tms.ldp as u32).div_ceil(tms.ii.max(1)).max(1);
            let limits = VerifyLimits {
                c_delay: Some(tms.c_delay_threshold),
                p_max: Some(tms.p_max),
                max_stages: (!tms.fell_back_to_sms).then_some(min_stages + config.max_extra_stages),
            };
            for d in verify_schedule(ddg, &tms.schedule, &machine, &costs, &limits) {
                v.fail("tms-invariant", format!("{point}: {d}"));
            }
            let achieved = achieved_c_delay(ddg, &tms.schedule, &costs);
            if achieved > tms.c_delay_threshold {
                v.fail(
                    "tms-threshold",
                    format!(
                        "{point}: achieved C_delay {achieved} > threshold {}",
                        tms.c_delay_threshold
                    ),
                );
            }
            if tms.cost_key != model.cost_key(tms.ii, achieved) {
                v.fail(
                    "tms-cost-key",
                    format!(
                        "{point}: stored key {:?} != recomputed {:?}",
                        tms.cost_key,
                        model.cost_key(tms.ii, achieved)
                    ),
                );
            }
            if tms.cost_key > sms_key {
                v.fail(
                    "tms-vs-sms",
                    format!(
                        "{point}: TMS key {:?} > SMS key {:?}",
                        tms.cost_key, sms_key
                    ),
                );
            }
            if ncore == 4 && tms_default.is_none() {
                tms_default = Some(tms);
            }
        }
    }

    // --- Differential execution: SpMT must commit the sequential
    // memory image, squashes and all.
    if cfg.simulate {
        let sim = SimConfig::icpp2008(cfg.sim_iters);
        let seq = simulate_sequential(ddg, &machine, &sim);
        let mut run = |tag: &str, schedule, config: &SimConfig| {
            v.checks += 1;
            let out = simulate_spmt_injected(ddg, schedule, config, trace, &cfg.faults);
            let diff = image_diff(&out.memory_image, &seq.memory_image);
            if diff > 0 {
                v.fail(
                    "sim-memory-image",
                    format!(
                        "{tag}: {diff} address(es) differ from sequential \
                         ({} misspeculations, {} cascades)",
                        out.stats.misspeculations, out.stats.cascade_squashes
                    ),
                );
            }
            // Squash accounting must be consistent under the *total*
            // squash frequency (detected violations + cascades — the
            // paper's eq. 3 notion of squash work): squash events and
            // squash cycle charges imply each other exactly, and
            // cascades can only add to the detected-violation rate.
            v.checks += 1;
            let events = out.stats.misspeculations + out.stats.cascade_squashes;
            let charged = out.stats.squashed_cycles + out.stats.invalidation_cycles;
            if (events > 0) != (charged > 0) {
                v.fail(
                    "sim-squash-accounting",
                    format!("{tag}: {events} squash event(s) vs {charged} charged cycle(s)"),
                );
            }
            if out.stats.total_squash_frequency() < out.stats.misspec_frequency() {
                v.fail(
                    "sim-squash-accounting",
                    format!(
                        "{tag}: total squash frequency {} below misspec frequency {}",
                        out.stats.total_squash_frequency(),
                        out.stats.misspec_frequency()
                    ),
                );
            }
        };
        run("sms@4", &sms.schedule, &sim);
        if let Some(tms) = &tms_default {
            run("tms@4", &tms.schedule, &sim);
            let two = SimConfig::with_ncore(cfg.sim_iters, 2);
            run("tms@2", &tms.schedule, &two);
        }
    }

    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_workloads::kernels;

    #[test]
    fn clean_kernel_passes_every_check() {
        let v = check_loop(&kernels::daxpy(), &CheckConfig::default());
        assert!(v.violations.is_empty(), "{:?}", v.violations);
        assert!(v.checks >= 8, "ran only {} checks", v.checks);
    }

    #[test]
    fn injected_faults_never_break_the_contract() {
        // Starve every TMS search and force misspec/jitter in every
        // simulation: the checks must all still pass, with the
        // degradations recorded rather than failed.
        let rates = tms_faults::FaultRates {
            sched_budget_per_1024: 1024,
            sched_budget_attempts: 1,
            misspec_per_1024: 256,
            jitter_per_1024: 256,
            ..tms_faults::FaultRates::default()
        };
        let cfg = CheckConfig {
            faults: FaultPlan::with_rates(3, rates),
            ..CheckConfig::default()
        };
        let v = check_loop(&kernels::daxpy(), &cfg);
        assert!(v.violations.is_empty(), "{:?}", v.violations);
        assert!(!v.degraded.is_empty(), "budget starvation must degrade");
    }

    #[test]
    fn forced_misspeculation_still_commits_sequential_image() {
        // p = 1.0: every speculated iteration violates; the engine must
        // squash/replay its way to the exact sequential memory image.
        let v = check_loop(
            &kernels::maybe_aliasing_update(1.0),
            &CheckConfig::default(),
        );
        let sim_fails: Vec<_> = v
            .violations
            .iter()
            .filter(|x| x.check == "sim-memory-image")
            .collect();
        assert!(sim_fails.is_empty(), "{sim_fails:?}");
    }
}
