//! Differential verification for the TMS reproduction.
//!
//! This crate closes the loop between the three layers of the system:
//! the schedulers (`tms-core`), the cost model they optimise, and the
//! SpMT execution engine (`tms-sim`). It provides
//!
//! * [`checks::check_loop`] — one call that schedules a loop with SMS
//!   and with TMS across an `(ncore, P_max)` grid, re-verifies every
//!   invariant through [`tms_core::diagnostics::verify_schedule`], and
//!   differentially executes the SpMT kernel against the in-order
//!   sequential reference (final memory images must match exactly,
//!   including under forced misspeculation);
//! * [`fuzz`] — a deterministic seeded DDG fuzzer covering DOALL
//!   bodies, register/memory recurrences, induction pressure and
//!   always-aliasing (`p = 1.0`) carried dependences;
//! * [`report`] — the `results/verify.json` artifact the `tms-verify`
//!   binary emits.
//!
//! ```
//! use tms_verify::checks::{check_loop, CheckConfig};
//! use tms_verify::fuzz::fuzz_ddgs;
//!
//! for ddg in fuzz_ddgs(4, 1) {
//!     let verdict = check_loop(&ddg, &CheckConfig::quick());
//!     assert!(verdict.violations.is_empty(), "{:?}", verdict.violations);
//! }
//! ```

pub mod checks;
pub mod fuzz;
pub mod glob;
pub mod report;
pub mod sweep;

pub use checks::{check_loop, CheckConfig, LoopVerdict, Violation};
pub use fuzz::{fuzz_ddgs, fuzz_spec};
pub use report::{DegradedLoop, FamilySummary, VerifyReport};
pub use sweep::{run_sweep, SweepConfig, SweepOutcome};
