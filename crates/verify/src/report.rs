//! The `results/verify.json` report.

use crate::checks::{LoopVerdict, Violation};
use serde::Serialize;
use std::io;
use std::path::Path;

/// Per-family roll-up.
#[derive(Debug, Clone, Serialize)]
pub struct FamilySummary {
    /// Workload family ("kernels", "doacross", "fuzz", …).
    pub family: String,
    /// Loops checked.
    pub loops: usize,
    /// Checks executed.
    pub checks: usize,
    /// Checks failed.
    pub violations: usize,
    /// Graceful degradations taken (not failures — see
    /// [`DegradedLoop`]).
    pub degraded: usize,
}

/// One graceful degradation recorded during the sweep: the loop still
/// passed every check, but a fallback path produced the result (e.g. a
/// TMS search that exhausted an injected attempt budget and handed back
/// the SMS schedule). Kept separate from [`Violation`] because the
/// contract *held* — the report only records that the primary path was
/// not the one taken, so a fault campaign can assert the count instead
/// of grepping logs.
#[derive(Debug, Clone, Serialize)]
pub struct DegradedLoop {
    /// Loop the degradation happened on.
    pub loop_name: String,
    /// Which fallback, at which grid point, and why.
    pub detail: String,
}

/// Everything one `tms-verify` run establishes.
#[derive(Debug, Clone, Default, Serialize)]
pub struct VerifyReport {
    /// Master seed of the run (workload + fuzz generation).
    pub seed: u64,
    /// Loops checked across all families.
    pub total_loops: usize,
    /// Checks executed across all families.
    pub total_checks: usize,
    /// Checks failed across all families.
    pub total_violations: usize,
    /// Graceful degradations across all families.
    pub total_degraded: usize,
    /// Per-family roll-ups.
    pub families: Vec<FamilySummary>,
    /// Every individual violation (empty on a clean run).
    pub violations: Vec<Violation>,
    /// Every graceful degradation (empty outside fault campaigns).
    pub degraded: Vec<DegradedLoop>,
}

impl VerifyReport {
    /// Fold one family's verdicts into the report.
    pub fn add_family(&mut self, family: &str, verdicts: &[LoopVerdict]) {
        let checks: usize = verdicts.iter().map(|v| v.checks).sum();
        let violations: usize = verdicts.iter().map(|v| v.violations.len()).sum();
        let degraded: usize = verdicts.iter().map(|v| v.degraded.len()).sum();
        self.families.push(FamilySummary {
            family: family.to_string(),
            loops: verdicts.len(),
            checks,
            violations,
            degraded,
        });
        self.total_loops += verdicts.len();
        self.total_checks += checks;
        self.total_violations += violations;
        self.total_degraded += degraded;
        for v in verdicts {
            self.violations.extend(v.violations.iter().cloned());
            self.degraded
                .extend(v.degraded.iter().map(|d| DegradedLoop {
                    loop_name: v.name.clone(),
                    detail: d.clone(),
                }));
        }
    }

    /// True when no check failed.
    pub fn ok(&self) -> bool {
        self.total_violations == 0
    }

    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Write the JSON report, creating parent directories as needed.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.to_json() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rollup_counts_are_consistent() {
        let mut r = VerifyReport::default();
        let clean = LoopVerdict {
            name: "a".into(),
            checks: 5,
            violations: vec![],
            degraded: vec!["ncore=4 P_max=0.05: degraded to SMS".into()],
        };
        let dirty = LoopVerdict {
            name: "b".into(),
            checks: 3,
            violations: vec![Violation {
                loop_name: "b".into(),
                check: "tms-threshold".into(),
                detail: "x".into(),
            }],
            degraded: vec![],
        };
        r.add_family("f", &[clean, dirty]);
        assert_eq!(r.total_loops, 2);
        assert_eq!(r.total_checks, 8);
        assert_eq!(r.total_violations, 1);
        assert_eq!(r.total_degraded, 1);
        assert_eq!(r.degraded.len(), 1);
        assert_eq!(r.degraded[0].loop_name, "a");
        assert!(!r.ok());
        let json = r.to_json();
        assert!(json.contains("\"tms-threshold\""));
        assert!(json.contains("\"family\": \"f\""));
    }
}
