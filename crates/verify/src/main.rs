//! `tms-verify` — sweep every workload family plus a fuzzed population
//! through the differential checks and write `results/verify.json`.
//!
//! ```text
//! tms-verify [--fuzz N] [--seed S] [--out PATH] [--sim-iters N]
//!            [--specfp-cap N] [--jobs N] [--no-sim] [--quick]
//!            [--shard I/N] [--trace PATH] [--stream PATH]
//!            [--stream-buffer N] [--metrics PATH] [--snapshot PATH]
//!            [--faults SEED]
//! tms-verify merge-metrics [--out PATH] FILE...
//! ```
//!
//! Exits nonzero if any check fails. `--faults SEED` runs the sweep as
//! a fault-injection campaign: seeded, deterministic failures are
//! forced into the scheduler search (attempt starvation), the SpMT
//! engine (misspeculation bursts, stall jitter), the sweep worker pool
//! (panicking workers) and the streaming trace sink (write faults) —
//! and the run must still complete with a clean report, recovering or
//! degrading gracefully at every site.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use tms_core::par::Parallelism;
use tms_faults::FaultPlan;
use tms_trace::Trace;
use tms_verify::sweep::{run_sweep, SweepConfig};

struct Args {
    sweep: SweepConfig,
    out: PathBuf,
    trace_out: Option<PathBuf>,
    stream_out: Option<PathBuf>,
    stream_buffer: usize,
    metrics_out: Option<PathBuf>,
    snapshot_out: Option<PathBuf>,
    faults_seed: Option<u64>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sweep: SweepConfig {
                jobs: Parallelism::Auto,
                ..Default::default()
            },
            out: PathBuf::from("results/verify.json"),
            trace_out: None,
            stream_out: None,
            stream_buffer: 4096,
            metrics_out: None,
            snapshot_out: None,
            faults_seed: None,
        }
    }
}

fn usage() -> String {
    "tms-verify [--fuzz N] [--seed S] [--out PATH] [--sim-iters N] \
     [--specfp-cap N] [--jobs N] [--no-sim] [--quick] [--shard I/N] \
     [--trace PATH] [--stream PATH] [--stream-buffer N] \
     [--metrics PATH] [--snapshot PATH] [--faults SEED]\n\
     tms-verify merge-metrics [--out PATH] FILE...\n\n\
     --jobs N       worker threads for the per-loop fan-out; 0 or the\n\
                    default uses every available core. The TMS_JOBS\n\
                    environment variable sets the default; the flag\n\
                    wins over it. The report is bit-identical at every\n\
                    worker count.\n\
     --quick        cheaper per-loop check grid\n\
     --no-sim       skip differential execution\n\
     --specfp-cap N loops per SPECfp profile (0 = all)\n\
     --shard I/N    check only loops with global index = I (mod N);\n\
                    the N shards partition the sweep, and their\n\
                    --snapshot files merge (merge-metrics) to exactly\n\
                    the single-process metrics\n\
     --trace PATH   enable tracing; write a Chrome trace_event JSON\n\
                    (load in chrome://tracing or ui.perfetto.dev)\n\
     --stream PATH  enable tracing with a bounded-memory streaming\n\
                    sink: completed events spill to PATH as ndjson\n\
                    (one JSON object per line); convert with\n\
                    `tms trace merge`\n\
     --stream-buffer N  resident event cap for --stream (default 4096)\n\
     --metrics PATH enable tracing; write the counter/timer metrics\n\
                    JSON (default results/verify_metrics.json when\n\
                    --trace or --stream is given)\n\
     --snapshot PATH  enable tracing; write the deterministic metrics\n\
                    snapshot (counters + value histograms only) for\n\
                    merge-metrics. Tracing never changes the report:\n\
                    verify.json stays byte-identical.\n\
     --faults SEED  fault-injection campaign (hex 0x... or decimal):\n\
                    seeded failures in the scheduler search, the SpMT\n\
                    engine, the worker pool and the streaming sink.\n\
                    The sweep must survive them all — degradations are\n\
                    reported, panics are contained, and the report is\n\
                    still bit-identical at every --jobs.\n\n\
     merge-metrics  fold per-shard snapshot/metrics JSON files into\n\
                    one snapshot (stdout, or --out PATH). FILE may be a\n\
                    filename glob (* / ? in the final component); zero\n\
                    inputs or a pattern matching nothing exits 2"
        .to_string()
}

fn parse_seed(text: &str) -> Result<u64, String> {
    let parsed = match text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => text.parse(),
    };
    parsed.map_err(|e| format!("--faults: {e}"))
}

fn parse_shard(text: &str) -> Result<(u32, u32), String> {
    let (i, n) = text
        .split_once('/')
        .ok_or_else(|| format!("--shard wants I/N, got '{text}'"))?;
    let i: u32 = i.parse().map_err(|e| format!("--shard index: {e}"))?;
    let n: u32 = n.parse().map_err(|e| format!("--shard count: {e}"))?;
    if n == 0 {
        return Err("--shard count must be at least 1".to_string());
    }
    if i >= n {
        return Err(format!("--shard index {i} out of range for {n} shards"));
    }
    Ok((i, n))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    // Flag < TMS_JOBS env < default (all cores). An unparseable
    // TMS_JOBS is a hard error, not a silent fall-through.
    if let Some(jobs) = Parallelism::from_env()? {
        args.sweep.jobs = jobs;
    }
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--fuzz" => {
                args.sweep.fuzz = val("--fuzz")?.parse().map_err(|e| format!("--fuzz: {e}"))?
            }
            "--seed" => {
                args.sweep.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => args.out = PathBuf::from(val("--out")?),
            "--sim-iters" => {
                args.sweep.sim_iters = val("--sim-iters")?
                    .parse()
                    .map_err(|e| format!("--sim-iters: {e}"))?
            }
            "--specfp-cap" => {
                args.sweep.specfp_cap = val("--specfp-cap")?
                    .parse()
                    .map_err(|e| format!("--specfp-cap: {e}"))?
            }
            "--jobs" => {
                args.sweep.jobs =
                    Parallelism::parse_jobs(&val("--jobs")?).map_err(|e| format!("--jobs: {e}"))?;
            }
            "--no-sim" => args.sweep.no_sim = true,
            "--quick" => args.sweep.quick = true,
            "--shard" => args.sweep.shard = Some(parse_shard(&val("--shard")?)?),
            "--trace" => args.trace_out = Some(PathBuf::from(val("--trace")?)),
            "--stream" => args.stream_out = Some(PathBuf::from(val("--stream")?)),
            "--stream-buffer" => {
                args.stream_buffer = val("--stream-buffer")?
                    .parse()
                    .map_err(|e| format!("--stream-buffer: {e}"))?
            }
            "--metrics" => args.metrics_out = Some(PathBuf::from(val("--metrics")?)),
            "--snapshot" => args.snapshot_out = Some(PathBuf::from(val("--snapshot")?)),
            "--faults" => args.faults_seed = Some(parse_seed(&val("--faults")?)?),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if args.trace_out.is_some() && args.stream_out.is_some() {
        return Err("--trace and --stream are mutually exclusive".to_string());
    }
    Ok(args)
}

/// `tms-verify merge-metrics [--out PATH] FILE...`
fn cmd_merge_metrics(argv: &[String]) -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(p) => out = Some(PathBuf::from(p)),
                None => {
                    eprintln!("tms-verify merge-metrics: --out needs a value");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "tms-verify merge-metrics [--out PATH] FILE...\n\
                     FILE may be a filename glob (* / ? in the final \
                     component);\nzero inputs or a pattern matching \
                     nothing exits 2"
                );
                return ExitCode::SUCCESS;
            }
            // Shells pass unmatched globs through verbatim, so expand
            // `*` / `?` patterns here: a pattern matching nothing is an
            // operational error (exit 2), never a silent empty merge.
            _ if tms_verify::glob::is_pattern(a) => match tms_verify::glob::expand(a) {
                Ok(matched) if matched.is_empty() => {
                    eprintln!("tms-verify merge-metrics: pattern '{a}' matched no files");
                    return ExitCode::from(2);
                }
                Ok(matched) => files.extend(matched),
                Err(e) => {
                    eprintln!("tms-verify merge-metrics: {e}");
                    return ExitCode::from(2);
                }
            },
            _ => files.push(PathBuf::from(a)),
        }
    }
    if files.is_empty() {
        eprintln!(
            "tms-verify merge-metrics: no input files — nothing to merge \
             (refusing to write an empty snapshot)"
        );
        return ExitCode::from(2);
    }
    let merged = match tms_trace::merge::merge_snapshot_files(&files) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("tms-verify merge-metrics: {e}");
            return ExitCode::from(2);
        }
    };
    let json = merged.to_json();
    match out {
        None => print!("{json}"),
        Some(path) => {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!(
                    "tms-verify merge-metrics: cannot write {}: {e}",
                    path.display()
                );
                return ExitCode::from(2);
            }
            println!("merged {} file(s) -> {}", files.len(), path.display());
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("merge-metrics") {
        return cmd_merge_metrics(&argv[1..]);
    }

    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tms-verify: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(seed) = args.faults_seed {
        args.sweep.faults = FaultPlan::seeded(seed);
        println!("fault campaign: seed 0x{seed:X} (deterministic injection)");
    }
    let tracing = args.trace_out.is_some()
        || args.stream_out.is_some()
        || args.metrics_out.is_some()
        || args.snapshot_out.is_some();
    if tracing {
        args.sweep.trace = match &args.stream_out {
            None => Trace::enabled(),
            Some(path) => {
                if let Some(dir) = path.parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                // Under a campaign the sink itself is a fault site:
                // injected write errors exercise its retry/degrade
                // ladder while the sweep keeps running.
                match Trace::streaming_faulted(path, args.stream_buffer, args.sweep.faults.clone())
                {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("tms-verify: cannot open {}: {e}", path.display());
                        return ExitCode::from(2);
                    }
                }
            }
        };
        if args.metrics_out.is_none() && args.snapshot_out.is_none() {
            args.metrics_out = Some(PathBuf::from("results/verify_metrics.json"));
        }
    }

    let started = Instant::now();
    let panics_before = tms_core::par::panics_caught();
    let outcome = run_sweep(&args.sweep);
    let report = &outcome.report;

    for (summary, timing) in report.families.iter().zip(&outcome.timings) {
        println!(
            "{:>10}: {} loops, {} checks, {} violations ({:.1}s)",
            summary.family, summary.loops, summary.checks, summary.violations, timing.seconds
        );
    }
    for note in &outcome.notes {
        println!("    {note}");
    }
    for x in &report.violations {
        eprintln!("  FAIL {} [{}] {}", x.loop_name, x.check, x.detail);
    }
    for d in &report.degraded {
        println!("  degraded {}: {}", d.loop_name, d.detail);
    }

    println!(
        "total: {} loops, {} checks, {} violations, {} degraded ({:.1}s, jobs={})",
        report.total_loops,
        report.total_checks,
        report.total_violations,
        report.total_degraded,
        started.elapsed().as_secs_f64(),
        args.sweep.jobs.workers()
    );
    if args.faults_seed.is_some() {
        let recovered = tms_core::par::panics_caught() - panics_before;
        let injected = args.sweep.faults.injected();
        let summary = if injected.is_empty() {
            "none fired".to_string()
        } else {
            injected
                .iter()
                .map(|(site, n)| format!("{site}={n}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        println!(
            "fault campaign: {} injection(s) [{summary}]; {recovered} worker panic(s) contained",
            args.sweep.faults.injected_total()
        );
    }
    if let Err(e) = report.write(&args.out) {
        eprintln!("tms-verify: cannot write {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", args.out.display());
    if let Some(path) = &args.trace_out {
        if let Err(e) = args.sweep.trace.write_chrome(path) {
            eprintln!("tms-verify: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} span events; load in chrome://tracing or ui.perfetto.dev)",
            path.display(),
            args.sweep.trace.event_count()
        );
    }
    if let Some(path) = &args.stream_out {
        if let Err(e) = args.sweep.trace.flush() {
            eprintln!("tms-verify: cannot flush {}: {e}", path.display());
            return ExitCode::from(2);
        }
        match args.sweep.trace.spill_degraded() {
            Some(reason) => println!(
                "wrote {} ({} events spilled before degrading to in-memory: {reason}; \
                 {} retries)",
                path.display(),
                args.sweep.trace.spilled_events(),
                args.sweep.trace.spill_retries()
            ),
            None => println!(
                "wrote {} ({} events spilled, peak {} resident; convert with `tms trace merge`)",
                path.display(),
                args.sweep.trace.spilled_events(),
                args.sweep.trace.spill_high_water()
            ),
        }
        if args.faults_seed.is_some() {
            // Campaign invariant: whatever reached disk — including a
            // torn final line from an injected short write — must be
            // recoverable as a valid prefix.
            match std::fs::read_to_string(path) {
                Err(e) => {
                    eprintln!("tms-verify: cannot re-read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                Ok(text) => match tms_trace::stream::parse_spill_lossy(&text) {
                    Err(e) => {
                        eprintln!(
                            "tms-verify: spill {} corrupt beyond truncation: {e}",
                            path.display()
                        );
                        return ExitCode::from(2);
                    }
                    Ok(rec) => {
                        println!(
                            "spill self-check: {} event(s) recovered{}",
                            rec.events.len(),
                            rec.truncated.map(|n| format!(" ({n})")).unwrap_or_default()
                        );
                    }
                },
            }
        }
    }
    if let Some(path) = &args.metrics_out {
        if let Err(e) = args.sweep.trace.write_metrics(path) {
            eprintln!("tms-verify: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }
    if let Some(path) = &args.snapshot_out {
        if let Err(e) = args.sweep.trace.write_snapshot(path) {
            eprintln!("tms-verify: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
