//! `tms-verify` — sweep every workload family plus a fuzzed population
//! through the differential checks and write `results/verify.json`.
//!
//! ```text
//! tms-verify [--fuzz N] [--seed S] [--out PATH] [--sim-iters N]
//!            [--specfp-cap N] [--jobs N] [--no-sim] [--quick]
//!            [--trace PATH] [--metrics PATH]
//! ```
//!
//! Exits nonzero if any check fails.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use tms_core::par::Parallelism;
use tms_trace::Trace;
use tms_verify::sweep::{run_sweep, SweepConfig};

struct Args {
    sweep: SweepConfig,
    out: PathBuf,
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sweep: SweepConfig {
                // Flag < TMS_JOBS env < default (all cores).
                jobs: Parallelism::from_env().unwrap_or(Parallelism::Auto),
                ..Default::default()
            },
            out: PathBuf::from("results/verify.json"),
            trace_out: None,
            metrics_out: None,
        }
    }
}

fn usage() -> String {
    "tms-verify [--fuzz N] [--seed S] [--out PATH] [--sim-iters N] \
     [--specfp-cap N] [--jobs N] [--no-sim] [--quick] \
     [--trace PATH] [--metrics PATH]\n\n\
     --jobs N       worker threads for the per-loop fan-out; 0 or the\n\
                    default uses every available core. The TMS_JOBS\n\
                    environment variable sets the default; the flag\n\
                    wins over it. The report is bit-identical at every\n\
                    worker count.\n\
     --quick        cheaper per-loop check grid\n\
     --no-sim       skip differential execution\n\
     --specfp-cap N loops per SPECfp profile (0 = all)\n\
     --trace PATH   enable tracing; write a Chrome trace_event JSON\n\
                    (load in chrome://tracing or ui.perfetto.dev)\n\
     --metrics PATH enable tracing; write the counter/timer metrics\n\
                    JSON (default results/verify_metrics.json when\n\
                    --trace is given). Tracing never changes the\n\
                    report: verify.json stays byte-identical."
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--fuzz" => {
                args.sweep.fuzz = val("--fuzz")?.parse().map_err(|e| format!("--fuzz: {e}"))?
            }
            "--seed" => {
                args.sweep.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => args.out = PathBuf::from(val("--out")?),
            "--sim-iters" => {
                args.sweep.sim_iters = val("--sim-iters")?
                    .parse()
                    .map_err(|e| format!("--sim-iters: {e}"))?
            }
            "--specfp-cap" => {
                args.sweep.specfp_cap = val("--specfp-cap")?
                    .parse()
                    .map_err(|e| format!("--specfp-cap: {e}"))?
            }
            "--jobs" => {
                let n: usize = val("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                args.sweep.jobs = Parallelism::from_jobs(n);
            }
            "--no-sim" => args.sweep.no_sim = true,
            "--quick" => args.sweep.quick = true,
            "--trace" => args.trace_out = Some(PathBuf::from(val("--trace")?)),
            "--metrics" => args.metrics_out = Some(PathBuf::from(val("--metrics")?)),
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let mut args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tms-verify: {e}");
            return ExitCode::from(2);
        }
    };
    let tracing = args.trace_out.is_some() || args.metrics_out.is_some();
    if tracing {
        args.sweep.trace = Trace::enabled();
        if args.metrics_out.is_none() {
            args.metrics_out = Some(PathBuf::from("results/verify_metrics.json"));
        }
    }

    let started = Instant::now();
    let outcome = run_sweep(&args.sweep);
    let report = &outcome.report;

    for (summary, timing) in report.families.iter().zip(&outcome.timings) {
        println!(
            "{:>10}: {} loops, {} checks, {} violations ({:.1}s)",
            summary.family, summary.loops, summary.checks, summary.violations, timing.seconds
        );
    }
    for note in &outcome.notes {
        println!("    {note}");
    }
    for x in &report.violations {
        eprintln!("  FAIL {} [{}] {}", x.loop_name, x.check, x.detail);
    }

    println!(
        "total: {} loops, {} checks, {} violations ({:.1}s, jobs={})",
        report.total_loops,
        report.total_checks,
        report.total_violations,
        started.elapsed().as_secs_f64(),
        args.sweep.jobs.workers()
    );
    if let Err(e) = report.write(&args.out) {
        eprintln!("tms-verify: cannot write {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", args.out.display());
    if let Some(path) = &args.trace_out {
        if let Err(e) = args.sweep.trace.write_chrome(path) {
            eprintln!("tms-verify: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} span events; load in chrome://tracing or ui.perfetto.dev)",
            path.display(),
            args.sweep.trace.event_count()
        );
    }
    if let Some(path) = &args.metrics_out {
        if let Err(e) = args.sweep.trace.write_metrics(path) {
            eprintln!("tms-verify: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!("wrote {}", path.display());
    }

    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
