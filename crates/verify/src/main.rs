//! `tms-verify` — sweep every workload family plus a fuzzed population
//! through the differential checks and write `results/verify.json`.
//!
//! ```text
//! tms-verify [--fuzz N] [--seed S] [--out PATH] [--sim-iters N]
//!            [--specfp-cap N] [--jobs N] [--no-sim] [--quick]
//! ```
//!
//! Exits nonzero if any check fails.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use tms_core::par::Parallelism;
use tms_verify::sweep::{run_sweep, SweepConfig};

struct Args {
    sweep: SweepConfig,
    out: PathBuf,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sweep: SweepConfig {
                // Flag < TMS_JOBS env < default (all cores).
                jobs: Parallelism::from_env().unwrap_or(Parallelism::Auto),
                ..Default::default()
            },
            out: PathBuf::from("results/verify.json"),
        }
    }
}

fn usage() -> String {
    "tms-verify [--fuzz N] [--seed S] [--out PATH] [--sim-iters N] \
     [--specfp-cap N] [--jobs N] [--no-sim] [--quick]\n\n\
     --jobs N       worker threads for the per-loop fan-out; 0 or the\n\
                    default uses every available core. The TMS_JOBS\n\
                    environment variable sets the default; the flag\n\
                    wins over it. The report is bit-identical at every\n\
                    worker count.\n\
     --quick        cheaper per-loop check grid\n\
     --no-sim       skip differential execution\n\
     --specfp-cap N loops per SPECfp profile (0 = all)"
        .to_string()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--fuzz" => {
                args.sweep.fuzz = val("--fuzz")?.parse().map_err(|e| format!("--fuzz: {e}"))?
            }
            "--seed" => {
                args.sweep.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--out" => args.out = PathBuf::from(val("--out")?),
            "--sim-iters" => {
                args.sweep.sim_iters = val("--sim-iters")?
                    .parse()
                    .map_err(|e| format!("--sim-iters: {e}"))?
            }
            "--specfp-cap" => {
                args.sweep.specfp_cap = val("--specfp-cap")?
                    .parse()
                    .map_err(|e| format!("--specfp-cap: {e}"))?
            }
            "--jobs" => {
                let n: usize = val("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                args.sweep.jobs = Parallelism::from_jobs(n);
            }
            "--no-sim" => args.sweep.no_sim = true,
            "--quick" => args.sweep.quick = true,
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tms-verify: {e}");
            return ExitCode::from(2);
        }
    };

    let started = Instant::now();
    let outcome = run_sweep(&args.sweep);
    let report = &outcome.report;

    for (summary, timing) in report.families.iter().zip(&outcome.timings) {
        println!(
            "{:>10}: {} loops, {} checks, {} violations ({:.1}s)",
            summary.family, summary.loops, summary.checks, summary.violations, timing.seconds
        );
    }
    for note in &outcome.notes {
        println!("    {note}");
    }
    for x in &report.violations {
        eprintln!("  FAIL {} [{}] {}", x.loop_name, x.check, x.detail);
    }

    println!(
        "total: {} loops, {} checks, {} violations ({:.1}s, jobs={})",
        report.total_loops,
        report.total_checks,
        report.total_violations,
        started.elapsed().as_secs_f64(),
        args.sweep.jobs.workers()
    );
    if let Err(e) = report.write(&args.out) {
        eprintln!("tms-verify: cannot write {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", args.out.display());

    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
