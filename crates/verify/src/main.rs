//! `tms-verify` — sweep every workload family plus a fuzzed population
//! through the differential checks and write `results/verify.json`.
//!
//! ```text
//! tms-verify [--fuzz N] [--seed S] [--out PATH] [--sim-iters N]
//!            [--specfp-cap N] [--no-sim] [--quick]
//! ```
//!
//! Exits nonzero if any check fails.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use tms_verify::checks::{check_loop, CheckConfig, LoopVerdict};
use tms_verify::fuzz::fuzz_ddgs;
use tms_verify::report::VerifyReport;
use tms_workloads::{doacross_suite, figure1, kernels, livermore_suite, specfp_profiles};

struct Args {
    fuzz: usize,
    seed: u64,
    out: PathBuf,
    sim_iters: u64,
    /// Loops checked per SPECfp profile (0 = the full 778-loop
    /// population).
    specfp_cap: usize,
    no_sim: bool,
    quick: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            fuzz: 200,
            seed: 0x7315_2008,
            out: PathBuf::from("results/verify.json"),
            sim_iters: 24,
            specfp_cap: 4,
            no_sim: false,
            quick: false,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--fuzz" => args.fuzz = val("--fuzz")?.parse().map_err(|e| format!("--fuzz: {e}"))?,
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--out" => args.out = PathBuf::from(val("--out")?),
            "--sim-iters" => {
                args.sim_iters = val("--sim-iters")?
                    .parse()
                    .map_err(|e| format!("--sim-iters: {e}"))?
            }
            "--specfp-cap" => {
                args.specfp_cap = val("--specfp-cap")?
                    .parse()
                    .map_err(|e| format!("--specfp-cap: {e}"))?
            }
            "--no-sim" => args.no_sim = true,
            "--quick" => args.quick = true,
            "--help" | "-h" => {
                println!(
                    "tms-verify [--fuzz N] [--seed S] [--out PATH] [--sim-iters N] \
                     [--specfp-cap N] [--no-sim] [--quick]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("tms-verify: {e}");
            return ExitCode::from(2);
        }
    };
    let mut cfg = if args.quick {
        CheckConfig::quick()
    } else {
        CheckConfig::default()
    };
    cfg.sim_iters = args.sim_iters;
    if args.no_sim {
        cfg.simulate = false;
    }

    let mut report = VerifyReport {
        seed: args.seed,
        ..Default::default()
    };
    let started = Instant::now();

    let run_family = |report: &mut VerifyReport, family: &str, ddgs: &[tms_ddg::Ddg]| {
        let t0 = Instant::now();
        let verdicts: Vec<LoopVerdict> = ddgs.iter().map(|g| check_loop(g, &cfg)).collect();
        report.add_family(family, &verdicts);
        let bad: usize = verdicts.iter().map(|v| v.violations.len()).sum();
        println!(
            "{family:>10}: {} loops, {} checks, {} violations ({:.1}s)",
            verdicts.len(),
            verdicts.iter().map(|v| v.checks).sum::<usize>(),
            bad,
            t0.elapsed().as_secs_f64()
        );
        for v in &verdicts {
            for x in &v.violations {
                eprintln!("  FAIL {} [{}] {}", x.loop_name, x.check, x.detail);
            }
        }
    };

    // Hand-written kernels, plus an always-aliasing variant that forces
    // misspeculation on every speculated iteration.
    let mut kernel_pop = kernels::all_kernels();
    kernel_pop.push(kernels::maybe_aliasing_update(1.0));
    run_family(&mut report, "kernels", &kernel_pop);
    run_family(&mut report, "figure1", &[figure1()]);
    run_family(&mut report, "livermore", &livermore_suite());
    let doacross: Vec<_> = doacross_suite(args.seed)
        .into_iter()
        .map(|l| l.ddg)
        .collect();
    run_family(&mut report, "doacross", &doacross);

    // SPECfp profiles: the full population is 778 loops; by default a
    // per-benchmark sample keeps the sweep interactive. --specfp-cap 0
    // checks everything.
    let mut specfp: Vec<tms_ddg::Ddg> = Vec::new();
    let mut specfp_total = 0usize;
    for p in specfp_profiles() {
        let loops = p.generate(args.seed);
        specfp_total += loops.len();
        let take = if args.specfp_cap == 0 {
            loops.len()
        } else {
            args.specfp_cap.min(loops.len())
        };
        specfp.extend(loops.into_iter().take(take));
    }
    if specfp.len() < specfp_total {
        println!(
            "    specfp: sampling {} of {specfp_total} loops (--specfp-cap 0 for all)",
            specfp.len()
        );
    }
    run_family(&mut report, "specfp", &specfp);

    run_family(&mut report, "fuzz", &fuzz_ddgs(args.fuzz, args.seed));

    println!(
        "total: {} loops, {} checks, {} violations ({:.1}s)",
        report.total_loops,
        report.total_checks,
        report.total_violations,
        started.elapsed().as_secs_f64()
    );
    if let Err(e) = report.write(&args.out) {
        eprintln!("tms-verify: cannot write {}: {e}", args.out.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", args.out.display());

    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
