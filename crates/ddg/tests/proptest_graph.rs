//! Property tests on the dependence-graph substrate.

use proptest::prelude::*;
use tms_ddg::analysis::{topo_order_zero_dist, AcyclicPriorities, TimeFrames};
use tms_ddg::mii::recurrence_info;
use tms_ddg::scc::SccDecomposition;
use tms_ddg::{Ddg, DdgBuilder, InstId, OpClass};

/// Strategy: a valid DDG. Intra-iteration edges only go from lower to
/// higher index (a DAG by construction), loop-carried edges are free.
fn arb_ddg() -> impl Strategy<Value = Ddg> {
    let ops = prop::sample::select(vec![
        OpClass::IntAlu,
        OpClass::Load,
        OpClass::Store,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
    ]);
    (2usize..24, prop::collection::vec((ops, 1u32..13), 2..24)).prop_flat_map(|(_, specs)| {
        let n = specs.len();
        let edge = (0..n, 0..n, 0u32..3, prop::bool::ANY);
        (Just(specs), prop::collection::vec(edge, 0..40)).prop_map(|(specs, edges)| {
            let mut b = DdgBuilder::new("prop");
            let ids: Vec<InstId> = specs
                .iter()
                .enumerate()
                .map(|(i, (op, lat))| b.inst_lat(format!("n{i}"), *op, *lat))
                .collect();
            for (src, dst, dist, mem) in edges {
                let (s, d) = (ids[src], ids[dst]);
                // Keep distance-0 edges forward so the graph is valid.
                let dist = if src >= dst { dist.max(1) } else { dist };
                if mem && specs[src].0 == OpClass::Store && specs[dst].0 == OpClass::Load {
                    b.mem_flow(s, d, dist, 0.5);
                } else {
                    b.reg_flow(s, d, dist);
                }
            }
            b.build().expect("constructed DDG is valid")
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scc_is_a_partition(ddg in arb_ddg()) {
        let scc = SccDecomposition::compute(&ddg);
        let mut seen = vec![false; ddg.num_insts()];
        for c in 0..scc.num_components() {
            for &n in scc.members(c) {
                prop_assert!(!seen[n.index()], "node in two components");
                seen[n.index()] = true;
                prop_assert_eq!(scc.component_of(n), c);
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn scc_members_are_mutually_reachable(ddg in arb_ddg()) {
        let scc = SccDecomposition::compute(&ddg);
        // Every pair in a multi-node component reaches each other.
        for c in 0..scc.num_components() {
            let members = scc.members(c);
            if members.len() < 2 { continue; }
            let inside: Vec<_> = members.to_vec();
            for &a in &inside {
                let mut reach = vec![false; ddg.num_insts()];
                let mut stack = vec![a];
                reach[a.index()] = true;
                while let Some(u) = stack.pop() {
                    for v in ddg.successors(u) {
                        if !reach[v.index()] {
                            reach[v.index()] = true;
                            stack.push(v);
                        }
                    }
                }
                for &bnode in &inside {
                    prop_assert!(reach[bnode.index()],
                        "{a} cannot reach {bnode} inside its SCC");
                }
            }
        }
    }

    #[test]
    fn frames_converge_at_rec_ii(ddg in arb_ddg()) {
        let scc = SccDecomposition::compute(&ddg);
        let rec = recurrence_info(&ddg, &scc);
        // At RecII the longest-path fixpoint must converge...
        let f = TimeFrames::compute(&ddg, rec.rec_ii);
        prop_assert!(f.is_some(), "frames diverge at RecII {}", rec.rec_ii);
        let f = f.unwrap();
        // ...and ASAP ≤ ALAP with non-negative mobility everywhere.
        for i in 0..ddg.num_insts() {
            prop_assert!(f.mobility[i] >= 0, "negative mobility at {i}");
            prop_assert!(f.asap[i] <= f.alap[i]);
        }
    }

    #[test]
    fn frames_diverge_below_rec_ii_when_rec_ii_positive(ddg in arb_ddg()) {
        let scc = SccDecomposition::compute(&ddg);
        let rec = recurrence_info(&ddg, &scc);
        if rec.rec_ii > 1 {
            prop_assert!(
                TimeFrames::compute(&ddg, rec.rec_ii - 1).is_none(),
                "RecII {} is not tight", rec.rec_ii
            );
        }
    }

    #[test]
    fn ldp_bounds_every_latency_and_asap(ddg in arb_ddg()) {
        let p = AcyclicPriorities::compute(&ddg);
        for inst in ddg.insts() {
            prop_assert!(p.ldp >= inst.latency as i64);
        }
        for u in ddg.inst_ids() {
            prop_assert!(p.depth[u.index()] + ddg.inst(u).latency as i64 <= p.ldp);
            prop_assert!(p.height[u.index()] <= p.ldp);
        }
    }

    #[test]
    fn topo_order_respects_zero_distance_edges(ddg in arb_ddg()) {
        let order = topo_order_zero_dist(&ddg);
        prop_assert_eq!(order.len(), ddg.num_insts());
        let pos: Vec<usize> = {
            let mut v = vec![0; ddg.num_insts()];
            for (i, &n) in order.iter().enumerate() { v[n.index()] = i; }
            v
        };
        for e in ddg.edges() {
            if e.distance == 0 {
                prop_assert!(pos[e.src.index()] < pos[e.dst.index()]);
            }
        }
    }

    #[test]
    fn serde_round_trip(ddg in arb_ddg()) {
        let json = serde_json::to_string(&ddg).unwrap();
        let back: Ddg = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(format!("{ddg}"), format!("{back}"));
    }
}
