//! Loop IR and data-dependence graphs (DDGs) for modulo scheduling.
//!
//! This crate is the substrate beneath both schedulers in the
//! reproduction of *Thread-Sensitive Modulo Scheduling for Multicore
//! Processors* (ICPP 2008). It models an innermost loop body as a set of
//! [`Instruction`]s connected by dependence [`Edge`]s that carry an
//! iteration *distance* and — for memory dependences — a profiled
//! *probability*, exactly the information the paper's compiler extracts
//! from GCC 4.1.1 RTL plus train-run profiles.
//!
//! Provided analyses:
//!
//! * strongly connected components ([`scc`]) via Tarjan's algorithm,
//! * the recurrence-constrained initiation interval `RecII` and per-SCC
//!   recurrence bounds ([`mii`]),
//! * ASAP/ALAP/mobility/depth/height and the longest dependence path
//!   (LDP) used by the paper's §5 metrics ([`analysis`]),
//! * DOT export for debugging ([`dot`]).
//!
//! The resource-constrained bound `ResII` needs a machine model and
//! therefore lives in the `tms-machine` crate.

pub mod analysis;
pub mod builder;
pub mod classify;
pub mod dot;
pub mod edge;
pub mod graph;
pub mod inst;
pub mod mii;
pub mod scc;
pub mod unroll;

pub use builder::DdgBuilder;
pub use classify::{classify, Classification, LoopClass};
pub use edge::{DepKind, DepType, Edge, EdgeId};
pub use graph::{Ddg, DdgError};
pub use inst::{InstId, Instruction, OpClass};
pub use unroll::unroll;
