//! Strongly connected components via Tarjan's algorithm (iterative).
//!
//! SCC structure drives both the SMS node-ordering phase (SCCs are
//! scheduled in decreasing recurrence-II priority) and the paper's
//! Table 3 statistics (`AVG #SCC` per DOACROSS loop).

use crate::graph::Ddg;
use crate::inst::InstId;

/// The strongly-connected-component decomposition of a [`Ddg`].
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// `comp[n]` — component index of node `n`. Components are numbered
    /// in **reverse topological order of discovery**; use
    /// [`SccDecomposition::topo_order`] for a forward topological order.
    comp: Vec<usize>,
    /// Nodes of each component.
    members: Vec<Vec<InstId>>,
}

impl SccDecomposition {
    /// Compute the SCCs of `ddg`.
    pub fn compute(ddg: &Ddg) -> Self {
        Tarjan::new(ddg).run()
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.members.len()
    }

    /// Component index of a node.
    pub fn component_of(&self, n: InstId) -> usize {
        self.comp[n.index()]
    }

    /// Members of component `c`.
    pub fn members(&self, c: usize) -> &[InstId] {
        &self.members[c]
    }

    /// All components, each a slice of member nodes.
    pub fn components(&self) -> impl Iterator<Item = &[InstId]> + '_ {
        self.members.iter().map(|v| v.as_slice())
    }

    /// True if the component containing `n` is non-trivial (has more
    /// than one node, or a self-edge — the caller must check self-edges
    /// separately since the decomposition does not retain them).
    pub fn is_multi_node(&self, n: InstId) -> bool {
        self.members[self.comp[n.index()]].len() > 1
    }

    /// Components that are *recurrences*: more than one node, or a
    /// single node with a self-edge in `ddg`.
    pub fn recurrence_components<'a>(&'a self, ddg: &'a Ddg) -> impl Iterator<Item = usize> + 'a {
        (0..self.members.len()).filter(move |&c| {
            let m = &self.members[c];
            m.len() > 1 || ddg.succ_edges(m[0]).any(|(_, e)| e.dst == m[0])
        })
    }

    /// Component indices in topological order (every edge of the
    /// condensation goes from an earlier to a later component).
    ///
    /// Tarjan numbers components in reverse topological order, so this
    /// is just the reversal of the discovery numbering.
    pub fn topo_order(&self) -> Vec<usize> {
        (0..self.members.len()).rev().collect()
    }
}

struct Tarjan<'a> {
    ddg: &'a Ddg,
    index: Vec<Option<u32>>,
    lowlink: Vec<u32>,
    on_stack: Vec<bool>,
    stack: Vec<usize>,
    next_index: u32,
    comp: Vec<usize>,
    members: Vec<Vec<InstId>>,
}

impl<'a> Tarjan<'a> {
    fn new(ddg: &'a Ddg) -> Self {
        let n = ddg.num_insts();
        Tarjan {
            ddg,
            index: vec![None; n],
            lowlink: vec![0; n],
            on_stack: vec![false; n],
            stack: Vec::new(),
            next_index: 0,
            comp: vec![usize::MAX; n],
            members: Vec::new(),
        }
    }

    fn run(mut self) -> SccDecomposition {
        for v in 0..self.ddg.num_insts() {
            if self.index[v].is_none() {
                self.visit(v);
            }
        }
        SccDecomposition {
            comp: self.comp,
            members: self.members,
        }
    }

    /// Iterative Tarjan visit (explicit call stack; loop bodies are
    /// small but generated populations can be deep chains).
    fn visit(&mut self, root: usize) {
        // Each frame: (node, iterator position into succs).
        let mut call: Vec<(usize, usize)> = vec![(root, 0)];
        self.start_node(root);
        while let Some(&mut (v, ref mut i)) = call.last_mut() {
            // Collect successor node list lazily through the edge table.
            let succ = self
                .ddg
                .succ_edges(InstId(v as u32))
                .nth(*i)
                .map(|(_, e)| e.dst.index());
            match succ {
                Some(w) => {
                    *i += 1;
                    if self.index[w].is_none() {
                        self.start_node(w);
                        call.push((w, 0));
                    } else if self.on_stack[w] {
                        self.lowlink[v] = self.lowlink[v].min(self.index[w].unwrap());
                    }
                }
                None => {
                    call.pop();
                    if let Some(&(parent, _)) = call.last() {
                        self.lowlink[parent] = self.lowlink[parent].min(self.lowlink[v]);
                    }
                    if self.lowlink[v] == self.index[v].unwrap() {
                        let c = self.members.len();
                        let mut group = Vec::new();
                        loop {
                            let w = self.stack.pop().expect("scc stack underflow");
                            self.on_stack[w] = false;
                            self.comp[w] = c;
                            group.push(InstId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        group.sort();
                        self.members.push(group);
                    }
                }
            }
        }
    }

    fn start_node(&mut self, v: usize) {
        self.index[v] = Some(self.next_index);
        self.lowlink[v] = self.next_index;
        self.next_index += 1;
        self.stack.push(v);
        self.on_stack[v] = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::inst::OpClass;

    #[test]
    fn chain_has_singleton_components() {
        let mut b = DdgBuilder::new("chain");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        let d = b.inst("d", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        b.reg_flow(c, d, 0);
        let g = b.build().unwrap();
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.num_components(), 3);
        assert_eq!(scc.recurrence_components(&g).count(), 0);
    }

    #[test]
    fn recurrence_forms_one_component() {
        let mut b = DdgBuilder::new("rec");
        let a = b.inst("a", OpClass::FpAdd);
        let c = b.inst("c", OpClass::FpMul);
        let d = b.inst("d", OpClass::Store);
        b.reg_flow(a, c, 0);
        b.reg_flow(c, a, 1);
        b.reg_flow(c, d, 0);
        let g = b.build().unwrap();
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.num_components(), 2);
        assert_eq!(scc.component_of(a), scc.component_of(c));
        assert_ne!(scc.component_of(a), scc.component_of(d));
        let recs: Vec<_> = scc.recurrence_components(&g).collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(scc.members(recs[0]).len(), 2);
    }

    #[test]
    fn self_edge_is_a_recurrence() {
        let mut b = DdgBuilder::new("self");
        let a = b.inst("a", OpClass::FpAdd);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, a, 1);
        b.reg_flow(a, c, 0);
        let g = b.build().unwrap();
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.num_components(), 2);
        let recs: Vec<_> = scc.recurrence_components(&g).collect();
        assert_eq!(recs.len(), 1);
        assert_eq!(scc.members(recs[0]), &[a]);
    }

    #[test]
    fn topo_order_respects_condensation_edges() {
        let mut b = DdgBuilder::new("two-sccs");
        // SCC1: {a, c}; SCC2: {d, e}; edge c -> d crosses components.
        let a = b.inst("a", OpClass::FpAdd);
        let c = b.inst("c", OpClass::FpMul);
        let d = b.inst("d", OpClass::FpAdd);
        let e = b.inst("e", OpClass::FpMul);
        b.reg_flow(a, c, 0);
        b.reg_flow(c, a, 1);
        b.reg_flow(c, d, 0);
        b.reg_flow(d, e, 0);
        b.reg_flow(e, d, 1);
        let g = b.build().unwrap();
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.num_components(), 2);
        let order = scc.topo_order();
        let pos_of = |c: usize| order.iter().position(|&x| x == c).unwrap();
        // a/c's component must precede d/e's in topological order.
        assert!(pos_of(scc.component_of(a)) < pos_of(scc.component_of(d)));
    }

    #[test]
    fn two_independent_recurrences() {
        let mut b = DdgBuilder::new("ind");
        let a = b.inst("a", OpClass::FpAdd);
        let c = b.inst("c", OpClass::FpAdd);
        b.reg_flow(a, a, 1);
        b.reg_flow(c, c, 1);
        let g = b.build().unwrap();
        let scc = SccDecomposition::compute(&g);
        assert_eq!(scc.num_components(), 2);
        assert_eq!(scc.recurrence_components(&g).count(), 2);
    }
}
