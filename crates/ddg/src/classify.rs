//! Loop parallelism classification.
//!
//! The paper's headline claim is about **DOACROSS** loops — loops whose
//! iterations are coupled by loop-carried dependences and therefore
//! resist classic DOALL parallelisation. This module classifies a DDG
//! by the structure of its carried dependences, which the workloads
//! tests use to validate the suite and the CLI exposes to users.

use crate::graph::Ddg;
use crate::mii::recurrence_info;
use crate::scc::SccDecomposition;
use serde::{Deserialize, Serialize};

/// How a loop's iterations depend on one another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LoopClass {
    /// No loop-carried dependences at all (beyond none): iterations are
    /// fully independent.
    Doall,
    /// Carried dependences exist but only trivial unit-latency
    /// self-recurrences (induction variables): iterations are
    /// independent once inductions are rewritten — effectively DOALL
    /// for a parallelising compiler.
    DoallWithInductions,
    /// A genuine cross-iteration dependence cycle exists and it is
    /// carried through registers with certainty: iterations must
    /// synchronise (TMS can pipeline but not speculate it away).
    DoacrossRegister,
    /// The binding cross-iteration cycle runs through memory with
    /// probability < 1: speculation can break it — the loops TMS is
    /// designed for.
    DoacrossSpeculativeMemory,
}

impl LoopClass {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            LoopClass::Doall => "DOALL",
            LoopClass::DoallWithInductions => "DOALL+ind",
            LoopClass::DoacrossRegister => "DOACROSS(reg)",
            LoopClass::DoacrossSpeculativeMemory => "DOACROSS(spec-mem)",
        }
    }
}

/// Classification details.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Classification {
    /// The class.
    pub class: LoopClass,
    /// Recurrence-constrained II of the full graph.
    pub rec_ii: u32,
    /// Recurrence-constrained II of the register-only subgraph (what
    /// remains binding if every memory dependence is speculated away).
    pub reg_rec_ii: u32,
    /// Number of recurrence SCCs (multi-node or self-loop).
    pub n_recurrences: usize,
    /// Number of loop-carried memory flow dependences with
    /// probability < 1.
    pub n_speculable: usize,
}

/// Classify `ddg`.
pub fn classify(ddg: &Ddg) -> Classification {
    let scc = SccDecomposition::compute(ddg);
    let rec = recurrence_info(ddg, &scc);
    let n_recurrences = scc.recurrence_components(ddg).count();

    // Register-only subgraph: what speculation cannot remove.
    let reg_only = Ddg::from_parts(
        ddg.name(),
        ddg.insts().to_vec(),
        ddg.edges()
            .iter()
            .filter(|e| e.kind == crate::edge::DepKind::Register)
            .cloned()
            .collect(),
    )
    .expect("register subgraph of a valid DDG is valid");
    let scc_reg = SccDecomposition::compute(&reg_only);
    let reg_rec_ii = recurrence_info(&reg_only, &scc_reg).rec_ii;

    let n_speculable = ddg
        .edges()
        .iter()
        .filter(|e| e.is_memory_flow() && e.distance >= 1 && e.prob < 1.0)
        .count();

    let carried_any = ddg.edges().iter().any(|e| e.distance >= 1);
    // "Trivial" register recurrences: unit-latency self loops
    // (inductions). The register recurrence bound exceeding 1 means a
    // real register-carried cycle binds the iterations.
    let class = if !carried_any {
        LoopClass::Doall
    } else if reg_rec_ii > 1 {
        LoopClass::DoacrossRegister
    } else if rec.rec_ii > 1 && n_speculable > 0 {
        LoopClass::DoacrossSpeculativeMemory
    } else if rec.rec_ii > 1 {
        // Memory-carried with certainty — synchronisation through
        // memory is unavoidable, treat as the register case.
        LoopClass::DoacrossRegister
    } else {
        LoopClass::DoallWithInductions
    };

    Classification {
        class,
        rec_ii: rec.rec_ii,
        reg_rec_ii,
        n_recurrences,
        n_speculable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::inst::OpClass;

    #[test]
    fn pure_doall() {
        let mut b = DdgBuilder::new("doall");
        let l = b.inst("ld", OpClass::Load);
        let s = b.inst("st", OpClass::Store);
        b.reg_flow(l, s, 0);
        let c = classify(&b.build().unwrap());
        assert_eq!(c.class, LoopClass::Doall);
        assert_eq!(c.rec_ii, 1);
    }

    #[test]
    fn induction_only_is_effectively_doall() {
        let mut b = DdgBuilder::new("ind");
        let i = b.inst("i++", OpClass::IntAlu);
        let l = b.inst("ld", OpClass::Load);
        b.reg_flow(i, i, 1);
        b.reg_flow(i, l, 1);
        let c = classify(&b.build().unwrap());
        assert_eq!(c.class, LoopClass::DoallWithInductions);
    }

    #[test]
    fn register_reduction_is_doacross_reg() {
        let mut b = DdgBuilder::new("red");
        let a = b.inst_lat("acc", OpClass::FpAdd, 2);
        b.reg_flow(a, a, 1);
        let c = classify(&b.build().unwrap());
        assert_eq!(c.class, LoopClass::DoacrossRegister);
        assert_eq!(c.reg_rec_ii, 2);
    }

    #[test]
    fn speculative_memory_recurrence() {
        let mut b = DdgBuilder::new("spec");
        let ld = b.inst("ld", OpClass::Load);
        let f = b.inst("f", OpClass::FpAdd);
        let st = b.inst("st", OpClass::Store);
        b.reg_flow(ld, f, 0);
        b.reg_flow(f, st, 0);
        b.mem_flow(st, ld, 1, 0.03);
        let c = classify(&b.build().unwrap());
        assert_eq!(c.class, LoopClass::DoacrossSpeculativeMemory);
        assert!(c.rec_ii > 1);
        assert_eq!(c.reg_rec_ii, 1);
        assert_eq!(c.n_speculable, 1);
    }

    #[test]
    fn certain_memory_recurrence_counts_as_register() {
        let mut b = DdgBuilder::new("mem1");
        let ld = b.inst("ld", OpClass::Load);
        let st = b.inst("st", OpClass::Store);
        b.reg_flow(ld, st, 0);
        b.mem_flow(st, ld, 1, 1.0);
        let c = classify(&b.build().unwrap());
        assert_eq!(c.class, LoopClass::DoacrossRegister);
    }

    #[test]
    fn labels_are_distinct() {
        use LoopClass::*;
        let labels: Vec<_> = [
            Doall,
            DoallWithInductions,
            DoacrossRegister,
            DoacrossSpeculativeMemory,
        ]
        .iter()
        .map(|c| c.label())
        .collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len());
    }
}
