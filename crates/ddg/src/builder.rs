//! Ergonomic construction of dependence graphs.

use crate::edge::{DepKind, DepType, Edge};
use crate::graph::{Ddg, DdgError};
use crate::inst::{InstId, Instruction, OpClass};

/// Builder for [`Ddg`]s.
///
/// ```
/// use tms_ddg::{DdgBuilder, OpClass};
///
/// let mut b = DdgBuilder::new("daxpy");
/// let ld_x = b.inst("ld x[i]", OpClass::Load);
/// let ld_y = b.inst("ld y[i]", OpClass::Load);
/// let mul = b.inst("a*x", OpClass::FpMul);
/// let add = b.inst("+y", OpClass::FpAdd);
/// let st = b.inst("st y[i]", OpClass::Store);
/// b.reg_flow(ld_x, mul, 0);
/// b.reg_flow(mul, add, 0);
/// b.reg_flow(ld_y, add, 0);
/// b.reg_flow(add, st, 0);
/// let ddg = b.build().unwrap();
/// assert_eq!(ddg.num_insts(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct DdgBuilder {
    name: String,
    insts: Vec<Instruction>,
    edges: Vec<Edge>,
}

impl DdgBuilder {
    /// Start building a graph with the given loop name.
    pub fn new(name: impl Into<String>) -> Self {
        DdgBuilder {
            name: name.into(),
            insts: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Add an instruction with its class's default latency.
    pub fn inst(&mut self, name: impl Into<String>, op: OpClass) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts.push(Instruction::new(id, name, op));
        id
    }

    /// Add an instruction with an explicit latency.
    pub fn inst_lat(&mut self, name: impl Into<String>, op: OpClass, latency: u32) -> InstId {
        let id = InstId(self.insts.len() as u32);
        self.insts
            .push(Instruction::with_latency(id, name, op, latency));
        id
    }

    /// Number of instructions added so far.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Add a register flow dependence with the producer's latency as the
    /// scheduling delay.
    pub fn reg_flow(&mut self, src: InstId, dst: InstId, distance: u32) {
        let delay = self.insts[src.index()].latency as i64;
        self.edges.push(Edge {
            src,
            dst,
            kind: DepKind::Register,
            ty: DepType::Flow,
            distance,
            delay,
            prob: 1.0,
        });
    }

    /// Add a register anti dependence (delay 1).
    pub fn reg_anti(&mut self, src: InstId, dst: InstId, distance: u32) {
        self.edges.push(Edge {
            src,
            dst,
            kind: DepKind::Register,
            ty: DepType::Anti,
            distance,
            delay: 1,
            prob: 1.0,
        });
    }

    /// Add a register output dependence (delay 1).
    pub fn reg_output(&mut self, src: InstId, dst: InstId, distance: u32) {
        self.edges.push(Edge {
            src,
            dst,
            kind: DepKind::Register,
            ty: DepType::Output,
            distance,
            delay: 1,
            prob: 1.0,
        });
    }

    /// Add a memory flow dependence with probability `prob`.
    ///
    /// Scheduling delay is the producer's latency, matching how a store
    /// must complete before a dependent load in the same thread.
    ///
    /// `prob` is a profiled frequency; anything outside `[0, 1]` (a
    /// buggy or adversarial profile) is clamped here, at the single
    /// point where probabilities enter the pipeline, so the cost model
    /// and simulator can assume the unit interval. NaN clamps to 0.
    pub fn mem_flow(&mut self, src: InstId, dst: InstId, distance: u32, prob: f64) {
        let delay = self.insts[src.index()].latency as i64;
        self.edges.push(Edge {
            src,
            dst,
            kind: DepKind::Memory,
            ty: DepType::Flow,
            distance,
            delay,
            prob: clamp_prob(prob),
        });
    }

    /// Add a memory anti dependence with probability `prob` (delay 1,
    /// `prob` clamped as in [`DdgBuilder::mem_flow`]).
    pub fn mem_anti(&mut self, src: InstId, dst: InstId, distance: u32, prob: f64) {
        self.edges.push(Edge {
            src,
            dst,
            kind: DepKind::Memory,
            ty: DepType::Anti,
            distance,
            delay: 1,
            prob: clamp_prob(prob),
        });
    }

    /// Add a memory output dependence with probability `prob` (delay 1,
    /// `prob` clamped as in [`DdgBuilder::mem_flow`]).
    pub fn mem_output(&mut self, src: InstId, dst: InstId, distance: u32, prob: f64) {
        self.edges.push(Edge {
            src,
            dst,
            kind: DepKind::Memory,
            ty: DepType::Output,
            distance,
            delay: 1,
            prob: clamp_prob(prob),
        });
    }

    /// Add a fully explicit edge.
    pub fn edge(&mut self, e: Edge) {
        self.edges.push(e);
    }

    /// Validate and build the graph.
    pub fn build(self) -> Result<Ddg, DdgError> {
        Ddg::from_parts(self.name, self.insts, self.edges)
    }
}

/// Clamp a profiled probability to `[0, 1]` (NaN to 0) — the pipeline's
/// single entry point for dependence probabilities.
fn clamp_prob(prob: f64) -> f64 {
    if prob.is_nan() {
        0.0
    } else {
        prob.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_delay_is_producer_latency() {
        let mut b = DdgBuilder::new("t");
        let m = b.inst("m", OpClass::FpMul); // latency 4
        let a = b.inst("a", OpClass::FpAdd);
        b.reg_flow(m, a, 0);
        let g = b.build().unwrap();
        assert_eq!(g.edges()[0].delay, 4);
    }

    #[test]
    fn anti_and_output_have_unit_delay() {
        let mut b = DdgBuilder::new("t");
        let m = b.inst("m", OpClass::FpMul);
        let a = b.inst("a", OpClass::FpAdd);
        b.reg_anti(m, a, 1);
        b.reg_output(m, a, 1);
        b.mem_anti(m, a, 1, 0.3);
        b.mem_output(m, a, 1, 0.3);
        let g = b.build().unwrap();
        for e in g.edges() {
            assert_eq!(e.delay, 1);
        }
    }

    #[test]
    fn explicit_latency_respected() {
        let mut b = DdgBuilder::new("t");
        let m = b.inst_lat("m", OpClass::IntMul, 9);
        let a = b.inst("a", OpClass::IntAlu);
        b.reg_flow(m, a, 0);
        let g = b.build().unwrap();
        assert_eq!(g.inst(m).latency, 9);
        assert_eq!(g.edges()[0].delay, 9);
    }

    #[test]
    fn mem_flow_keeps_probability() {
        let mut b = DdgBuilder::new("t");
        let s = b.inst("st", OpClass::Store);
        let l = b.inst("ld", OpClass::Load);
        b.mem_flow(s, l, 2, 0.05);
        let g = b.build().unwrap();
        let e = &g.edges()[0];
        assert_eq!(e.distance, 2);
        assert!((e.prob - 0.05).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_probabilities_are_clamped() {
        let mut b = DdgBuilder::new("t");
        let s = b.inst("st", OpClass::Store);
        let l = b.inst("ld", OpClass::Load);
        b.mem_flow(s, l, 1, -0.25);
        b.mem_anti(s, l, 1, 1.75);
        b.mem_output(s, l, 1, f64::NAN);
        let g = b.build().unwrap();
        assert_eq!(g.edges()[0].prob, 0.0);
        assert_eq!(g.edges()[1].prob, 1.0);
        assert_eq!(g.edges()[2].prob, 0.0);
    }
}
