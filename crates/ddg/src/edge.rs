//! Dependence edges between instructions.

use crate::inst::InstId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an edge within its [`crate::Ddg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Whether a dependence is carried through a register or through memory.
///
/// The distinction is the heart of the paper's execution model (§3):
/// register dependences between threads become *synchronised*
/// dependences (SEND/RECV over the ring), memory dependences become
/// *speculated* dependences (tracked by the MDT, enforced by squashing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepKind {
    /// Value flows through a register.
    Register,
    /// Value flows through a memory location.
    Memory,
}

/// Classic dependence classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DepType {
    /// Read-after-write (true) dependence.
    Flow,
    /// Write-after-read dependence.
    Anti,
    /// Write-after-write dependence.
    Output,
}

/// A dependence edge `src → dst`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Producer instruction.
    pub src: InstId,
    /// Consumer instruction.
    pub dst: InstId,
    /// Register- or memory-carried.
    pub kind: DepKind,
    /// Flow / anti / output.
    pub ty: DepType,
    /// Iteration distance `d(src, dst)`; 0 for intra-iteration edges.
    pub distance: u32,
    /// Minimum issue-slot separation the schedule must honour:
    /// `t(dst) ≥ t(src) + delay − II·distance`. For flow dependences
    /// this equals the producer latency; for anti/output dependences it
    /// is 1 (the consumer must merely issue no earlier than one slot
    /// after the producer within the adjusted iteration frame).
    pub delay: i64,
    /// Profiled probability that the dependence actually occurs at run
    /// time — the paper's `p_d` (§4.2): out of `X` producer writes,
    /// `p_d·X` consumer reads hit the same location. Register
    /// dependences always occur (`1.0`). Only memory dependences may
    /// carry `p < 1`.
    pub prob: f64,
}

impl Edge {
    /// True for inter-iteration (loop-carried) dependences.
    #[inline]
    pub fn is_loop_carried(&self) -> bool {
        self.distance > 0
    }

    /// True for register-carried flow dependences (the ones the SpMT
    /// execution model must synchronise when they cross threads).
    #[inline]
    pub fn is_register_flow(&self) -> bool {
        self.kind == DepKind::Register && self.ty == DepType::Flow
    }

    /// True for memory-carried flow dependences (the ones that may be
    /// speculated and cause squashes when violated).
    #[inline]
    pub fn is_memory_flow(&self) -> bool {
        self.kind == DepKind::Memory && self.ty == DepType::Flow
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            DepKind::Register => "reg",
            DepKind::Memory => "mem",
        };
        let t = match self.ty {
            DepType::Flow => "flow",
            DepType::Anti => "anti",
            DepType::Output => "out",
        };
        write!(
            f,
            "{} -> {} [{k} {t}, d={}, delay={}, p={:.2}]",
            self.src, self.dst, self.distance, self.delay, self.prob
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(kind: DepKind, ty: DepType, distance: u32) -> Edge {
        Edge {
            src: InstId(0),
            dst: InstId(1),
            kind,
            ty,
            distance,
            delay: 1,
            prob: 1.0,
        }
    }

    #[test]
    fn loop_carried_detection() {
        assert!(!edge(DepKind::Register, DepType::Flow, 0).is_loop_carried());
        assert!(edge(DepKind::Register, DepType::Flow, 1).is_loop_carried());
        assert!(edge(DepKind::Memory, DepType::Flow, 3).is_loop_carried());
    }

    #[test]
    fn kind_classification() {
        assert!(edge(DepKind::Register, DepType::Flow, 1).is_register_flow());
        assert!(!edge(DepKind::Register, DepType::Anti, 1).is_register_flow());
        assert!(edge(DepKind::Memory, DepType::Flow, 1).is_memory_flow());
        assert!(!edge(DepKind::Memory, DepType::Output, 1).is_memory_flow());
    }

    #[test]
    fn display_mentions_kind_and_distance() {
        let e = edge(DepKind::Memory, DepType::Flow, 2);
        let s = format!("{e}");
        assert!(s.contains("mem flow"));
        assert!(s.contains("d=2"));
    }
}
