//! Recurrence-constrained initiation interval (`RecII`).
//!
//! A dependence cycle `C` forces `II ≥ ⌈Σ delay(C) / Σ distance(C)⌉`;
//! `RecII` is the maximum over all elementary cycles. Enumerating
//! cycles is exponential, so we use the classic feasibility test: for a
//! candidate `II`, every cycle must have non-positive weight under
//! `w(e) = delay(e) − II·distance(e)`. Positive-cycle detection is
//! Bellman–Ford-style relaxation per SCC; `RecII` is found by binary
//! search over `[1, Σ latency]`.

use crate::graph::Ddg;
use crate::inst::InstId;
use crate::scc::SccDecomposition;

/// Recurrence analysis results for a loop.
#[derive(Debug, Clone)]
pub struct RecurrenceInfo {
    /// The loop-wide recurrence-constrained II (1 if the loop has no
    /// recurrence at all — a DOALL-style body).
    pub rec_ii: u32,
    /// Per-SCC recurrence II, indexed by SCC id from the same
    /// [`SccDecomposition`]. Non-recurrence components get 0.
    pub scc_rec_ii: Vec<u32>,
}

/// Compute [`RecurrenceInfo`] for `ddg` using `scc`.
pub fn recurrence_info(ddg: &Ddg, scc: &SccDecomposition) -> RecurrenceInfo {
    let mut scc_rec_ii = vec![0u32; scc.num_components()];
    let mut rec_ii = 1u32;
    for c in scc.recurrence_components(ddg) {
        let ii = scc_rec_mii(ddg, scc, c);
        scc_rec_ii[c] = ii;
        rec_ii = rec_ii.max(ii);
    }
    RecurrenceInfo { rec_ii, scc_rec_ii }
}

/// Recurrence II of one SCC: smallest `II ≥ 1` with no positive cycle
/// within the component under `w(e) = delay − II·distance`.
fn scc_rec_mii(ddg: &Ddg, scc: &SccDecomposition, comp: usize) -> u32 {
    // Upper bound: the sum of all delays in the component's edges
    // divided by the minimum distance (>= 1) of any cycle; a safe and
    // cheap bound is the sum of positive delays.
    let members = scc.members(comp);
    let hi: i64 = members
        .iter()
        .flat_map(|&n| ddg.succ_edges(n))
        .filter(|(_, e)| scc.component_of(e.dst) == comp)
        .map(|(_, e)| e.delay.max(0))
        .sum::<i64>()
        .max(1);
    let (mut lo, mut hi) = (1i64, hi);
    // Invariant: feasibility is monotone in II (larger II only makes
    // cycle weights smaller), so binary search applies.
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if has_positive_cycle(ddg, scc, comp, mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo as u32
}

/// Bellman–Ford positive-cycle detection restricted to one SCC.
fn has_positive_cycle(ddg: &Ddg, scc: &SccDecomposition, comp: usize, ii: i64) -> bool {
    let members = scc.members(comp);
    let n = members.len();
    // Map node -> local index.
    let local = |id: InstId| members.binary_search(&id).expect("member");
    // Longest-path potentials, all sources at 0.
    let mut dist = vec![0i64; n];
    for round in 0..=n {
        let mut changed = false;
        for (li, &u) in members.iter().enumerate() {
            for (_, e) in ddg.succ_edges(u) {
                if scc.component_of(e.dst) != comp {
                    continue;
                }
                let w = e.delay - ii * e.distance as i64;
                let lv = local(e.dst);
                if dist[li] + w > dist[lv] {
                    dist[lv] = dist[li] + w;
                    changed = true;
                }
            }
        }
        if !changed {
            return false;
        }
        if round == n {
            return true;
        }
    }
    false
}

/// The minimum legal II for any cycle through edge set sums — a helper
/// exposing the exact ratio bound `⌈Σdelay/Σdist⌉` of a given cycle,
/// useful for constructing test graphs with known `RecII`.
pub fn cycle_ratio_bound(delays: &[i64], distances: &[u32]) -> u32 {
    let d: i64 = delays.iter().sum();
    let k: i64 = distances.iter().map(|&x| x as i64).sum();
    assert!(k > 0, "cycle must carry positive distance");
    (d.max(1) as f64 / k as f64).ceil() as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::inst::OpClass;

    fn info(g: &Ddg) -> RecurrenceInfo {
        let scc = SccDecomposition::compute(g);
        recurrence_info(g, &scc)
    }

    #[test]
    fn doall_loop_has_rec_ii_one() {
        let mut b = DdgBuilder::new("doall");
        let l = b.inst("ld", OpClass::Load);
        let m = b.inst("mul", OpClass::FpMul);
        let s = b.inst("st", OpClass::Store);
        b.reg_flow(l, m, 0);
        b.reg_flow(m, s, 0);
        let g = b.build().unwrap();
        assert_eq!(info(&g).rec_ii, 1);
    }

    #[test]
    fn self_recurrence_rec_ii_is_latency() {
        let mut b = DdgBuilder::new("acc");
        let a = b.inst("fadd", OpClass::FpAdd); // latency 2
        b.reg_flow(a, a, 1);
        let g = b.build().unwrap();
        assert_eq!(info(&g).rec_ii, 2);
    }

    #[test]
    fn distance_two_halves_the_bound() {
        let mut b = DdgBuilder::new("acc2");
        let a = b.inst_lat("op", OpClass::FpAdd, 6);
        b.reg_flow(a, a, 2); // ceil(6/2) = 3
        let g = b.build().unwrap();
        assert_eq!(info(&g).rec_ii, 3);
    }

    #[test]
    fn two_node_recurrence_sums_latencies() {
        let mut b = DdgBuilder::new("rec2");
        let a = b.inst_lat("a", OpClass::FpAdd, 2);
        let c = b.inst_lat("c", OpClass::FpMul, 4);
        b.reg_flow(a, c, 0);
        b.reg_flow(c, a, 1); // cycle delay 2+4=6, distance 1
        let g = b.build().unwrap();
        assert_eq!(info(&g).rec_ii, 6);
    }

    #[test]
    fn max_over_multiple_recurrences() {
        let mut b = DdgBuilder::new("multi");
        let a = b.inst_lat("a", OpClass::FpAdd, 2);
        let c = b.inst_lat("c", OpClass::FpAdd, 5);
        b.reg_flow(a, a, 1); // II >= 2
        b.reg_flow(c, c, 1); // II >= 5
        let g = b.build().unwrap();
        let i = info(&g);
        assert_eq!(i.rec_ii, 5);
        // Both SCCs should have their own bound recorded.
        let mut bounds: Vec<u32> = i.scc_rec_ii.iter().copied().filter(|&x| x > 0).collect();
        bounds.sort();
        assert_eq!(bounds, vec![2, 5]);
    }

    #[test]
    fn figure1_style_recurrence_is_eight() {
        // Five unit-latency-ish ops in a cycle with total delay 8,
        // distance 1 => RecII = 8 (the paper's motivating example).
        let mut b = DdgBuilder::new("fig1-rec");
        let n0 = b.inst_lat("n0", OpClass::Load, 3);
        let n1 = b.inst_lat("n1", OpClass::IntAlu, 1);
        let n2 = b.inst_lat("n2", OpClass::IntAlu, 1);
        let n4 = b.inst_lat("n4", OpClass::IntAlu, 2);
        let n5 = b.inst_lat("n5", OpClass::Store, 1);
        b.reg_flow(n0, n1, 0);
        b.reg_flow(n1, n2, 0);
        b.reg_flow(n2, n4, 0);
        b.reg_flow(n4, n5, 0);
        b.reg_flow(n5, n0, 1);
        let g = b.build().unwrap();
        assert_eq!(info(&g).rec_ii, 8);
    }

    #[test]
    fn cycle_ratio_bound_matches_manual() {
        assert_eq!(cycle_ratio_bound(&[3, 1, 1, 2, 1], &[0, 0, 0, 0, 1]), 8);
        assert_eq!(cycle_ratio_bound(&[6], &[2]), 3);
        assert_eq!(cycle_ratio_bound(&[5], &[2]), 3);
        assert_eq!(cycle_ratio_bound(&[4], &[2]), 2);
    }

    #[test]
    fn nested_cycles_take_max_ratio() {
        // Inner tight cycle a<->c (delay 3+3=6, dist 1 => 6) and outer
        // cycle a->c->d->a (delay 3+3+1=7, dist 2 => 4). RecII = 6.
        let mut b = DdgBuilder::new("nest");
        let a = b.inst_lat("a", OpClass::FpAdd, 3);
        let c = b.inst_lat("c", OpClass::FpAdd, 3);
        let d = b.inst_lat("d", OpClass::IntAlu, 1);
        b.reg_flow(a, c, 0);
        b.reg_flow(c, a, 1);
        b.reg_flow(c, d, 0);
        b.reg_flow(d, a, 2);
        let g = b.build().unwrap();
        assert_eq!(info(&g).rec_ii, 6);
    }
}
