//! Scheduling-oriented graph analyses: ASAP/ALAP frames, mobility,
//! depth/height priorities and the longest dependence path (LDP).
//!
//! The LDP is the paper's §5 metric: "the longest dependence path in
//! the DDG of the loop"; together with MII it delineates the II range
//! in which ILP is exploitable. Depth and height are the classic list
//! scheduling priorities SMS uses to order nodes inside an SCC set.

use crate::graph::Ddg;
use crate::inst::InstId;

/// Per-node timing frames for a candidate `II`.
#[derive(Debug, Clone)]
pub struct TimeFrames {
    /// Earliest legal issue cycle of each node (modulo constraints with
    /// the given II folded in).
    pub asap: Vec<i64>,
    /// Latest issue cycle of each node given the ASAP-derived horizon.
    pub alap: Vec<i64>,
    /// `alap − asap` slack.
    pub mobility: Vec<i64>,
    /// The II the frames were computed for.
    pub ii: u32,
}

impl TimeFrames {
    /// Compute ASAP/ALAP/mobility for `ddg` at initiation interval `ii`.
    ///
    /// Returns `None` if `ii` is below the recurrence bound (a positive
    /// cycle makes the longest-path fixpoint diverge).
    pub fn compute(ddg: &Ddg, ii: u32) -> Option<Self> {
        let n = ddg.num_insts();
        let iil = ii as i64;

        // ASAP: longest path from a virtual source via Bellman–Ford.
        let mut asap = vec![0i64; n];
        let mut converged = false;
        for _ in 0..=n {
            let mut changed = false;
            for e in ddg.edges() {
                let w = e.delay - iil * e.distance as i64;
                let t = asap[e.src.index()] + w;
                if t > asap[e.dst.index()] {
                    asap[e.dst.index()] = t;
                    changed = true;
                }
            }
            if !changed {
                converged = true;
                break;
            }
        }
        if !converged {
            return None;
        }

        // Horizon: latest completion over all nodes.
        let horizon = ddg
            .inst_ids()
            .map(|u| asap[u.index()] + ddg.inst(u).latency as i64)
            .max()
            .unwrap_or(0);

        // ALAP: longest path to a virtual sink, backwards.
        let mut alap: Vec<i64> = ddg
            .inst_ids()
            .map(|u| horizon - ddg.inst(u).latency as i64)
            .collect();
        for _ in 0..=n {
            let mut changed = false;
            for e in ddg.edges() {
                let w = e.delay - iil * e.distance as i64;
                let t = alap[e.dst.index()] - w;
                if t < alap[e.src.index()] {
                    alap[e.src.index()] = t;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        let mobility = asap.iter().zip(alap.iter()).map(|(&a, &l)| l - a).collect();
        Some(TimeFrames {
            asap,
            alap,
            mobility,
            ii,
        })
    }
}

/// Acyclic (intra-iteration) priorities: depth, height, and the LDP.
#[derive(Debug, Clone)]
pub struct AcyclicPriorities {
    /// `depth[n]` — longest delay-weighted path from any source to `n`
    /// over zero-distance edges (earliest unconstrained start).
    pub depth: Vec<i64>,
    /// `height[n]` — `n.latency` plus the longest delay-weighted path
    /// from `n` to any sink over zero-distance edges.
    pub height: Vec<i64>,
    /// Longest dependence path: length of the unconstrained critical
    /// path through one iteration, `max_n depth[n] + latency(n)`.
    pub ldp: i64,
}

impl AcyclicPriorities {
    /// Compute over the zero-distance (intra-iteration) subgraph, which
    /// is guaranteed acyclic for any valid [`Ddg`].
    pub fn compute(ddg: &Ddg) -> Self {
        let n = ddg.num_insts();
        let order = topo_order_zero_dist(ddg);

        let mut depth = vec![0i64; n];
        for &u in &order {
            for (_, e) in ddg.succ_edges(u) {
                if e.distance != 0 {
                    continue;
                }
                let t = depth[u.index()] + e.delay;
                if t > depth[e.dst.index()] {
                    depth[e.dst.index()] = t;
                }
            }
        }

        let mut height: Vec<i64> = ddg.insts().iter().map(|i| i.latency as i64).collect();
        for &u in order.iter().rev() {
            for (_, e) in ddg.succ_edges(u) {
                if e.distance != 0 {
                    continue;
                }
                let t = e.delay + height[e.dst.index()];
                if t > height[u.index()] {
                    height[u.index()] = t;
                }
            }
        }

        let ldp = ddg
            .inst_ids()
            .map(|u| depth[u.index()] + ddg.inst(u).latency as i64)
            .max()
            .unwrap_or(0);

        AcyclicPriorities { depth, height, ldp }
    }
}

/// Topological order of the zero-distance subgraph (Kahn's algorithm).
///
/// Valid [`Ddg`]s reject zero-distance cycles at construction, so every
/// node is emitted.
pub fn topo_order_zero_dist(ddg: &Ddg) -> Vec<InstId> {
    let n = ddg.num_insts();
    let mut indeg = vec![0usize; n];
    for e in ddg.edges() {
        if e.distance == 0 {
            indeg[e.dst.index()] += 1;
        }
    }
    let mut queue: Vec<InstId> = ddg.inst_ids().filter(|u| indeg[u.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head];
        head += 1;
        order.push(u);
        for (_, e) in ddg.succ_edges(u) {
            if e.distance != 0 {
                continue;
            }
            indeg[e.dst.index()] -= 1;
            if indeg[e.dst.index()] == 0 {
                queue.push(e.dst);
            }
        }
    }
    debug_assert_eq!(order.len(), n, "zero-distance subgraph must be acyclic");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::inst::OpClass;

    fn chain() -> Ddg {
        let mut b = DdgBuilder::new("chain");
        let l = b.inst("ld", OpClass::Load); // lat 3
        let m = b.inst("mul", OpClass::FpMul); // lat 4
        let s = b.inst("st", OpClass::Store); // lat 1
        b.reg_flow(l, m, 0);
        b.reg_flow(m, s, 0);
        b.build().unwrap()
    }

    #[test]
    fn asap_follows_latencies() {
        let g = chain();
        let f = TimeFrames::compute(&g, 1).unwrap();
        assert_eq!(f.asap, vec![0, 3, 7]);
    }

    #[test]
    fn alap_equals_asap_on_a_pure_chain() {
        let g = chain();
        let f = TimeFrames::compute(&g, 1).unwrap();
        assert_eq!(f.alap, f.asap);
        assert!(f.mobility.iter().all(|&m| m == 0));
    }

    #[test]
    fn mobility_positive_off_critical_path() {
        let mut b = DdgBuilder::new("diamond");
        let src = b.inst_lat("src", OpClass::IntAlu, 1);
        let slow = b.inst_lat("slow", OpClass::FpDiv, 12);
        let fast = b.inst_lat("fast", OpClass::IntAlu, 1);
        let sink = b.inst_lat("sink", OpClass::IntAlu, 1);
        b.reg_flow(src, slow, 0);
        b.reg_flow(src, fast, 0);
        b.reg_flow(slow, sink, 0);
        b.reg_flow(fast, sink, 0);
        let g = b.build().unwrap();
        let f = TimeFrames::compute(&g, 4).unwrap();
        assert_eq!(f.mobility[src.index()], 0);
        assert_eq!(f.mobility[slow.index()], 0);
        assert_eq!(f.mobility[sink.index()], 0);
        assert_eq!(f.mobility[fast.index()], 11);
    }

    #[test]
    fn frames_diverge_below_rec_ii() {
        let mut b = DdgBuilder::new("rec");
        let a = b.inst_lat("a", OpClass::FpAdd, 4);
        b.reg_flow(a, a, 1); // RecII = 4
        let g = b.build().unwrap();
        assert!(TimeFrames::compute(&g, 3).is_none());
        assert!(TimeFrames::compute(&g, 4).is_some());
    }

    #[test]
    fn loop_carried_edges_relax_asap_with_ii() {
        let mut b = DdgBuilder::new("carried");
        let a = b.inst_lat("a", OpClass::FpMul, 4);
        let c = b.inst_lat("c", OpClass::IntAlu, 1);
        b.reg_flow(a, c, 1); // t(c) >= t(a) + 4 - II
        let g = b.build().unwrap();
        let f = TimeFrames::compute(&g, 2).unwrap();
        assert_eq!(f.asap[c.index()], 2); // 0 + 4 - 2
        let f = TimeFrames::compute(&g, 4).unwrap();
        assert_eq!(f.asap[c.index()], 0);
    }

    #[test]
    fn ldp_is_critical_path_length() {
        let g = chain();
        let p = AcyclicPriorities::compute(&g);
        assert_eq!(p.ldp, 3 + 4 + 1);
        assert_eq!(p.depth, vec![0, 3, 7]);
        assert_eq!(p.height, vec![8, 5, 1]);
    }

    #[test]
    fn ldp_ignores_loop_carried_edges() {
        let mut b = DdgBuilder::new("carry");
        let a = b.inst_lat("a", OpClass::FpAdd, 2);
        let c = b.inst_lat("c", OpClass::FpAdd, 2);
        b.reg_flow(a, c, 0);
        b.reg_flow(c, a, 1); // back edge must not count toward LDP
        let g = b.build().unwrap();
        let p = AcyclicPriorities::compute(&g);
        assert_eq!(p.ldp, 4);
    }

    #[test]
    fn topo_order_visits_all() {
        let g = chain();
        let order = topo_order_zero_dist(&g);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], InstId(0));
    }

    #[test]
    fn height_of_sink_is_its_latency() {
        let g = chain();
        let p = AcyclicPriorities::compute(&g);
        assert_eq!(p.height[2], 1);
    }
}
