//! Instructions: the nodes of a data-dependence graph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of an instruction within its [`crate::Ddg`].
///
/// Stored as `u32` to keep node-indexed tables compact; loop bodies in
/// the paper average 16–170 instructions (Table 2), far below the limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstId(pub u32);

impl InstId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Operation classes distinguished by the machine model.
///
/// The class determines which functional unit an instruction occupies
/// (and hence `ResII`) and its default latency. The set mirrors what a
/// SPECfp2000 loop body contains after GCC's RTL expansion, plus the
/// SpMT-specific operations (`Send`, `Recv`, `Spawn`, `Copy`) that the
/// post-pass of the scheduler inserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer ALU operation (add, sub, logic, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Floating-point add/subtract.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / sqrt.
    FpDiv,
    /// Branch / loop-control operation.
    Branch,
    /// Register copy inserted by the modulo-variable-expansion post-pass.
    Copy,
    /// `SEND` half of a synchronised inter-core register communication.
    Send,
    /// `RECV` half of a synchronised inter-core register communication.
    Recv,
    /// Thread spawn (first instruction of every SpMT thread).
    Spawn,
    /// No-op filler.
    Nop,
}

impl OpClass {
    /// Default issue-to-result latency in cycles.
    ///
    /// Memory latencies here are the L1 *hit* latencies of Table 1; the
    /// simulator adds dynamic miss penalties on top. SEND/RECV occupy
    /// one issue slot each; the 3-cycle end-to-end `C_reg_com` latency
    /// of the Voltron queue model is accounted for separately.
    pub fn default_latency(self) -> u32 {
        match self {
            OpClass::IntAlu => 1,
            OpClass::IntMul => 4,
            OpClass::IntDiv => 12,
            OpClass::Load => 3,
            OpClass::Store => 1,
            OpClass::FpAdd => 2,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            OpClass::Branch => 1,
            OpClass::Copy => 1,
            OpClass::Send => 1,
            OpClass::Recv => 1,
            OpClass::Spawn => 1,
            OpClass::Nop => 1,
        }
    }

    /// Whether this operation accesses memory.
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether this operation writes memory.
    pub fn is_store(self) -> bool {
        matches!(self, OpClass::Store)
    }

    /// Whether this operation reads memory.
    pub fn is_load(self) -> bool {
        matches!(self, OpClass::Load)
    }

    /// Short mnemonic used in dumps.
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpClass::IntAlu => "alu",
            OpClass::IntMul => "imul",
            OpClass::IntDiv => "idiv",
            OpClass::Load => "ld",
            OpClass::Store => "st",
            OpClass::FpAdd => "fadd",
            OpClass::FpMul => "fmul",
            OpClass::FpDiv => "fdiv",
            OpClass::Branch => "br",
            OpClass::Copy => "cp",
            OpClass::Send => "send",
            OpClass::Recv => "recv",
            OpClass::Spawn => "spawn",
            OpClass::Nop => "nop",
        }
    }

    /// All "real" computation classes a loop body may contain (excludes
    /// the scheduler-inserted SpMT operations). Useful for generators.
    pub fn body_classes() -> &'static [OpClass] {
        &[
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::IntDiv,
            OpClass::Load,
            OpClass::Store,
            OpClass::FpAdd,
            OpClass::FpMul,
            OpClass::FpDiv,
            OpClass::Branch,
        ]
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single instruction (DDG node).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// This instruction's id (== its index in the DDG node table).
    pub id: InstId,
    /// Human-readable name, e.g. `"n6"` or `"load a[i]"`.
    pub name: String,
    /// Operation class (selects the functional unit).
    pub op: OpClass,
    /// Issue-to-result latency in cycles.
    pub latency: u32,
}

impl Instruction {
    /// Create an instruction with the default latency for its class.
    pub fn new(id: InstId, name: impl Into<String>, op: OpClass) -> Self {
        Instruction {
            id,
            name: name.into(),
            op,
            latency: op.default_latency(),
        }
    }

    /// Create an instruction with an explicit latency.
    pub fn with_latency(id: InstId, name: impl Into<String>, op: OpClass, latency: u32) -> Self {
        Instruction {
            id,
            name: name.into(),
            op,
            latency,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({}, lat {})",
            self.id, self.name, self.op, self.latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_latencies_are_positive() {
        for &op in OpClass::body_classes() {
            assert!(op.default_latency() >= 1, "{op} must have latency >= 1");
        }
    }

    #[test]
    fn memory_classification() {
        assert!(OpClass::Load.is_memory());
        assert!(OpClass::Store.is_memory());
        assert!(OpClass::Load.is_load());
        assert!(!OpClass::Load.is_store());
        assert!(OpClass::Store.is_store());
        assert!(!OpClass::FpMul.is_memory());
    }

    #[test]
    fn instruction_uses_class_default_latency() {
        let i = Instruction::new(InstId(3), "x", OpClass::FpMul);
        assert_eq!(i.latency, OpClass::FpMul.default_latency());
        assert_eq!(i.id.index(), 3);
    }

    #[test]
    fn explicit_latency_overrides_default() {
        let i = Instruction::with_latency(InstId(0), "mul", OpClass::IntMul, 7);
        assert_eq!(i.latency, 7);
    }

    #[test]
    fn display_formats() {
        let i = Instruction::new(InstId(6), "n6", OpClass::IntAlu);
        assert_eq!(format!("{}", i.id), "n6");
        assert!(format!("{i}").contains("alu"));
    }
}
