//! Loop unrolling.
//!
//! The paper's conclusion names unrolling as the lever for trading
//! communication against parallelism by varying thread granularity
//! (its own evaluation unrolls art's two 11-instruction loops four
//! times). `unroll` replicates the body `factor` times and rewrites
//! every dependence: copy `c` of the new body stands for old iteration
//! `j·factor + c`, so an old edge `(u → v, d)` becomes, for each
//! consumer copy `c`, an edge from producer copy
//! `(c − d) mod factor` at new distance `⌈(d − c) / factor⌉` (computed
//! with euclidean division — distance-0 edges stay inside their copy).

use crate::builder::DdgBuilder;
use crate::graph::{Ddg, DdgError};
use crate::inst::InstId;

/// Unroll `ddg` by `factor` (≥ 1). Factor 1 returns a copy.
///
/// Instruction `i`'s copy `c` gets id `c · n + i` and name
/// `"<name>@<c>"`, so original instructions remain identifiable.
pub fn unroll(ddg: &Ddg, factor: u32) -> Result<Ddg, DdgError> {
    assert!(factor >= 1, "unroll factor must be at least 1");
    let n = ddg.num_insts();
    let f = factor as i64;
    let mut b = DdgBuilder::new(format!("{}x{}", ddg.name(), factor));

    let mut ids: Vec<Vec<InstId>> = Vec::with_capacity(factor as usize);
    for c in 0..factor {
        let copy: Vec<InstId> = ddg
            .insts()
            .iter()
            .map(|inst| b.inst_lat(format!("{}@{c}", inst.name), inst.op, inst.latency))
            .collect();
        ids.push(copy);
    }

    for e in ddg.edges() {
        for c in 0..factor as i64 {
            let shifted = c - e.distance as i64;
            let src_copy = shifted.rem_euclid(f) as usize;
            let new_dist = (-shifted.div_euclid(f)) as u32;
            let mut edge = e.clone();
            edge.src = ids[src_copy][e.src.index()];
            edge.dst = ids[c as usize][e.dst.index()];
            edge.distance = new_dist;
            b.edge(edge);
        }
    }

    let out = b.build()?;
    debug_assert_eq!(out.num_insts(), n * factor as usize);
    out.validate_against_original(ddg, factor);
    Ok(out)
}

impl Ddg {
    /// Debug-mode sanity check used by [`unroll`]: edge counts scale
    /// with the factor.
    fn validate_against_original(&self, original: &Ddg, factor: u32) {
        debug_assert_eq!(
            self.num_edges(),
            original.num_edges() * factor as usize,
            "unrolling must replicate every edge exactly factor times"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::OpClass;
    use crate::mii::recurrence_info;
    use crate::scc::SccDecomposition;

    fn accumulator() -> Ddg {
        let mut b = DdgBuilder::new("acc");
        let ld = b.inst("ld", OpClass::Load);
        let a = b.inst_lat("acc", OpClass::FpAdd, 2);
        b.reg_flow(ld, a, 0);
        b.reg_flow(a, a, 1);
        b.build().unwrap()
    }

    #[test]
    fn factor_one_is_identity_shaped() {
        let g = accumulator();
        let u = unroll(&g, 1).unwrap();
        assert_eq!(u.num_insts(), g.num_insts());
        assert_eq!(u.num_edges(), g.num_edges());
    }

    #[test]
    fn sizes_scale_with_factor() {
        let g = accumulator();
        for f in [2u32, 3, 4] {
            let u = unroll(&g, f).unwrap();
            assert_eq!(u.num_insts(), g.num_insts() * f as usize);
            assert_eq!(u.num_edges(), g.num_edges() * f as usize);
        }
    }

    #[test]
    fn self_recurrence_becomes_a_cross_copy_chain() {
        // acc -> acc (d=1) unrolled x4: copies chain 0->1->2->3 at
        // distance 0, and 3 -> 0 at distance 1.
        let g = accumulator();
        let u = unroll(&g, 4).unwrap();
        let carried: Vec<_> = u
            .edges()
            .iter()
            .filter(|e| e.distance >= 1 && e.is_register_flow())
            .collect();
        // Only the wrap edge of the accumulator chain (the load's
        // incoming edges are all distance 0).
        assert_eq!(carried.len(), 1);
        assert_eq!(carried[0].distance, 1);
        let intra: usize = u
            .edges()
            .iter()
            .filter(|e| e.distance == 0 && e.src != e.dst)
            .count();
        assert_eq!(intra, 4 /* ld->acc */ + 3 /* acc chain */);
    }

    #[test]
    fn rec_ii_scales_like_the_recurrence() {
        // The accumulator bounds the ORIGINAL loop at 2 cycles/iter;
        // unrolled x4, one new iteration covers 4 old ones, so the
        // recurrence bound becomes 8 per new iteration — the same per
        // original iteration.
        let g = accumulator();
        let scc = SccDecomposition::compute(&g);
        let base = recurrence_info(&g, &scc).rec_ii;
        assert_eq!(base, 2);
        let u = unroll(&g, 4).unwrap();
        let scc = SccDecomposition::compute(&u);
        assert_eq!(recurrence_info(&u, &scc).rec_ii, 8);
    }

    #[test]
    fn distance_two_edges_split_between_copies() {
        let mut b = DdgBuilder::new("d2");
        let p = b.inst("p", OpClass::IntAlu);
        let q = b.inst("q", OpClass::IntAlu);
        b.reg_flow(p, q, 2);
        let g = b.build().unwrap();
        let u = unroll(&g, 2).unwrap();
        // Consumer copy 0 reads producer copy 0 one new-iteration back;
        // consumer copy 1 reads producer copy 1 one new-iteration back.
        for e in u.edges() {
            assert_eq!(e.distance, 1);
        }
        assert_eq!(u.num_edges(), 2);
    }

    #[test]
    fn distance_three_unrolled_by_two() {
        let mut b = DdgBuilder::new("d3");
        let p = b.inst("p", OpClass::IntAlu);
        let q = b.inst("q", OpClass::IntAlu);
        b.reg_flow(p, q, 3);
        let g = b.build().unwrap();
        let u = unroll(&g, 2).unwrap();
        // copy 0 consumer: old iter 2j − 3 → copy 1, distance 2.
        // copy 1 consumer: old iter 2j+1 − 3 → copy 0, distance 1.
        let mut dists: Vec<u32> = u.edges().iter().map(|e| e.distance).collect();
        dists.sort();
        assert_eq!(dists, vec![1, 2]);
    }

    #[test]
    fn memory_probabilities_survive_unrolling() {
        let mut b = DdgBuilder::new("mem");
        let st = b.inst("st", OpClass::Store);
        let ld = b.inst("ld", OpClass::Load);
        b.mem_flow(st, ld, 1, 0.125);
        let g = b.build().unwrap();
        let u = unroll(&g, 4).unwrap();
        assert!(u.edges().iter().all(|e| (e.prob - 0.125).abs() < 1e-12));
    }
}
