//! The data-dependence graph itself.

#[cfg(test)]
use crate::edge::DepType;
use crate::edge::{DepKind, Edge, EdgeId};
use crate::inst::{InstId, Instruction, OpClass};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone source of process-unique [`Ddg::uid`] values.
static NEXT_DDG_UID: AtomicU64 = AtomicU64::new(1);

fn next_ddg_uid() -> u64 {
    NEXT_DDG_UID.fetch_add(1, Ordering::Relaxed)
}

/// Errors produced while constructing or validating a [`Ddg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DdgError {
    /// An edge references an instruction id outside the node table.
    DanglingEdge { edge: usize },
    /// A dependence probability was outside `[0, 1]`.
    BadProbability { edge: usize },
    /// A cycle exists that has total iteration distance zero, i.e. an
    /// intra-iteration dependence cycle — no legal schedule exists.
    ZeroDistanceCycle,
    /// The graph has no instructions.
    Empty,
    /// A register dependence was given a probability other than 1.
    NonUnitRegisterProb { edge: usize },
}

impl fmt::Display for DdgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DdgError::DanglingEdge { edge } => write!(f, "edge {edge} references missing node"),
            DdgError::BadProbability { edge } => {
                write!(f, "edge {edge} has probability outside [0,1]")
            }
            DdgError::ZeroDistanceCycle => {
                write!(f, "graph contains a zero-distance dependence cycle")
            }
            DdgError::Empty => write!(f, "graph has no instructions"),
            DdgError::NonUnitRegisterProb { edge } => {
                write!(f, "register dependence {edge} must have probability 1")
            }
        }
    }
}

impl std::error::Error for DdgError {}

/// A loop body's data-dependence graph.
///
/// Nodes are [`Instruction`]s, edges are dependences with iteration
/// distances. Construct one with [`crate::DdgBuilder`]; direct field
/// mutation is intentionally impossible so that the adjacency lists can
/// never go stale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ddg {
    name: String,
    insts: Vec<Instruction>,
    edges: Vec<Edge>,
    /// `succs[n]` — ids of edges whose `src == n`.
    succs: Vec<Vec<EdgeId>>,
    /// `preds[n]` — ids of edges whose `dst == n`.
    preds: Vec<Vec<EdgeId>>,
    /// Process-unique identity token (see [`Ddg::uid`]). Skipped by
    /// serde: a deserialized graph is a *new* graph and gets a fresh
    /// token; a `clone` shares the token, which is sound because the
    /// contents are identical and immutable.
    #[serde(skip, default = "next_ddg_uid")]
    uid: u64,
}

impl Ddg {
    /// Build a graph from parts, validating structural invariants.
    ///
    /// Prefer [`crate::DdgBuilder`]; this is the low-level entry point.
    pub fn from_parts(
        name: impl Into<String>,
        insts: Vec<Instruction>,
        edges: Vec<Edge>,
    ) -> Result<Self, DdgError> {
        if insts.is_empty() {
            return Err(DdgError::Empty);
        }
        let n = insts.len();
        for (i, e) in edges.iter().enumerate() {
            if e.src.index() >= n || e.dst.index() >= n {
                return Err(DdgError::DanglingEdge { edge: i });
            }
            if !(0.0..=1.0).contains(&e.prob) || e.prob.is_nan() {
                return Err(DdgError::BadProbability { edge: i });
            }
            if e.kind == DepKind::Register && e.prob != 1.0 {
                return Err(DdgError::NonUnitRegisterProb { edge: i });
            }
        }
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, e) in edges.iter().enumerate() {
            succs[e.src.index()].push(EdgeId(i as u32));
            preds[e.dst.index()].push(EdgeId(i as u32));
        }
        let g = Ddg {
            name: name.into(),
            insts,
            edges,
            succs,
            preds,
            uid: next_ddg_uid(),
        };
        if g.has_zero_distance_cycle() {
            return Err(DdgError::ZeroDistanceCycle);
        }
        Ok(g)
    }

    /// Loop name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Process-unique identity token, assigned at construction.
    ///
    /// Two `Ddg` values with the same `uid` are guaranteed to have
    /// identical contents (graphs are immutable after construction and
    /// the only way to share a token is `clone`), so per-graph derived
    /// state — topological sweep orders, time frames — can be memoized
    /// against it without risking stale reuse across distinct graphs
    /// that happen to share an address or a shape.
    #[inline]
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Number of instructions.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of dependence edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// All instructions, indexed by [`InstId`].
    pub fn insts(&self) -> &[Instruction] {
        &self.insts
    }

    /// All edges, indexed by [`EdgeId`].
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The instruction with the given id.
    #[inline]
    pub fn inst(&self, id: InstId) -> &Instruction {
        &self.insts[id.index()]
    }

    /// The edge with the given id.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.index()]
    }

    /// Iterator over instruction ids.
    pub fn inst_ids(&self) -> impl Iterator<Item = InstId> + '_ {
        (0..self.insts.len() as u32).map(InstId)
    }

    /// Iterator over edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Outgoing edges of `n`.
    pub fn succ_edges(&self, n: InstId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.succs[n.index()]
            .iter()
            .map(move |&id| (id, self.edge(id)))
    }

    /// Incoming edges of `n`.
    pub fn pred_edges(&self, n: InstId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.preds[n.index()]
            .iter()
            .map(move |&id| (id, self.edge(id)))
    }

    /// Successor nodes of `n` (may repeat if parallel edges exist).
    pub fn successors(&self, n: InstId) -> impl Iterator<Item = InstId> + '_ {
        self.succ_edges(n).map(|(_, e)| e.dst)
    }

    /// Predecessor nodes of `n` (may repeat if parallel edges exist).
    pub fn predecessors(&self, n: InstId) -> impl Iterator<Item = InstId> + '_ {
        self.pred_edges(n).map(|(_, e)| e.src)
    }

    /// Number of instructions of each memory class `(loads, stores)`.
    pub fn memory_op_counts(&self) -> (usize, usize) {
        let loads = self.insts.iter().filter(|i| i.op.is_load()).count();
        let stores = self.insts.iter().filter(|i| i.op.is_store()).count();
        (loads, stores)
    }

    /// Count of instructions per op class.
    pub fn class_histogram(&self) -> Vec<(OpClass, usize)> {
        let mut hist: Vec<(OpClass, usize)> = Vec::new();
        for i in &self.insts {
            if let Some(entry) = hist.iter_mut().find(|(c, _)| *c == i.op) {
                entry.1 += 1;
            } else {
                hist.push((i.op, 1));
            }
        }
        hist
    }

    /// Sum of latencies of all instructions (a crude upper bound on any
    /// sensible II, used to bound searches).
    pub fn total_latency(&self) -> u64 {
        self.insts.iter().map(|i| i.latency as u64).sum()
    }

    /// Detect a dependence cycle whose total distance is zero (an
    /// unschedulable graph). Only edges with `distance == 0` can form
    /// such a cycle, so this is cycle detection on the zero-distance
    /// subgraph via iterative DFS.
    fn has_zero_distance_cycle(&self) -> bool {
        const WHITE: u8 = 0;
        const GREY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.insts.len();
        let mut color = vec![WHITE; n];
        // (node, next-successor-index) stack for an iterative DFS.
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if color[start] != WHITE {
                continue;
            }
            color[start] = GREY;
            stack.push((start, 0));
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let succ = self.succs[node]
                    .iter()
                    .skip(*idx)
                    .map(|&eid| (eid, self.edge(eid)))
                    .find(|(_, e)| e.distance == 0);
                match succ {
                    Some((eid, e)) => {
                        // Position after this edge in the adjacency list.
                        *idx = self.succs[node]
                            .iter()
                            .position(|&x| x == eid)
                            .expect("edge present")
                            + 1;
                        let next = e.dst.index();
                        match color[next] {
                            WHITE => {
                                color[next] = GREY;
                                stack.push((next, 0));
                            }
                            GREY => return true,
                            _ => {}
                        }
                    }
                    None => {
                        color[node] = BLACK;
                        stack.pop();
                    }
                }
            }
        }
        false
    }
}

impl fmt::Display for Ddg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ddg '{}': {} insts, {} edges",
            self.name,
            self.num_insts(),
            self.num_edges()
        )?;
        for i in &self.insts {
            writeln!(f, "  {i}")?;
        }
        for e in &self.edges {
            writeln!(f, "  {e}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;

    fn chain3() -> Ddg {
        let mut b = DdgBuilder::new("chain3");
        let a = b.inst("a", OpClass::Load);
        let c = b.inst("c", OpClass::FpMul);
        let d = b.inst("d", OpClass::Store);
        b.reg_flow(a, c, 0);
        b.reg_flow(c, d, 0);
        b.build().unwrap()
    }

    #[test]
    fn adjacency_is_consistent() {
        let g = chain3();
        assert_eq!(g.num_insts(), 3);
        assert_eq!(g.num_edges(), 2);
        let a = InstId(0);
        let c = InstId(1);
        let d = InstId(2);
        assert_eq!(g.successors(a).collect::<Vec<_>>(), vec![c]);
        assert_eq!(g.predecessors(d).collect::<Vec<_>>(), vec![c]);
        assert_eq!(g.predecessors(a).count(), 0);
        assert_eq!(g.successors(d).count(), 0);
    }

    #[test]
    fn uids_are_unique_and_shared_only_by_clones() {
        let a = chain3();
        let b = chain3();
        assert_ne!(a.uid(), b.uid(), "distinct graphs must not share a uid");
        assert_eq!(a.uid(), a.clone().uid(), "clones share content and uid");
    }

    #[test]
    fn empty_graph_rejected() {
        assert_eq!(
            Ddg::from_parts("e", vec![], vec![]).unwrap_err(),
            DdgError::Empty
        );
    }

    #[test]
    fn dangling_edge_rejected() {
        let insts = vec![Instruction::new(InstId(0), "a", OpClass::IntAlu)];
        let edges = vec![Edge {
            src: InstId(0),
            dst: InstId(9),
            kind: DepKind::Register,
            ty: DepType::Flow,
            distance: 0,
            delay: 1,
            prob: 1.0,
        }];
        assert_eq!(
            Ddg::from_parts("d", insts, edges).unwrap_err(),
            DdgError::DanglingEdge { edge: 0 }
        );
    }

    #[test]
    fn bad_probability_rejected() {
        let insts = vec![
            Instruction::new(InstId(0), "a", OpClass::Store),
            Instruction::new(InstId(1), "b", OpClass::Load),
        ];
        let edges = vec![Edge {
            src: InstId(0),
            dst: InstId(1),
            kind: DepKind::Memory,
            ty: DepType::Flow,
            distance: 1,
            delay: 1,
            prob: 1.5,
        }];
        assert_eq!(
            Ddg::from_parts("p", insts, edges).unwrap_err(),
            DdgError::BadProbability { edge: 0 }
        );
    }

    #[test]
    fn register_dep_with_non_unit_prob_rejected() {
        let insts = vec![
            Instruction::new(InstId(0), "a", OpClass::IntAlu),
            Instruction::new(InstId(1), "b", OpClass::IntAlu),
        ];
        let edges = vec![Edge {
            src: InstId(0),
            dst: InstId(1),
            kind: DepKind::Register,
            ty: DepType::Flow,
            distance: 0,
            delay: 1,
            prob: 0.5,
        }];
        assert_eq!(
            Ddg::from_parts("r", insts, edges).unwrap_err(),
            DdgError::NonUnitRegisterProb { edge: 0 }
        );
    }

    #[test]
    fn zero_distance_cycle_rejected() {
        let mut b = DdgBuilder::new("cyc");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        b.reg_flow(c, a, 0);
        assert_eq!(b.build().unwrap_err(), DdgError::ZeroDistanceCycle);
    }

    #[test]
    fn recurrence_with_distance_accepted() {
        let mut b = DdgBuilder::new("rec");
        let a = b.inst("a", OpClass::FpAdd);
        let c = b.inst("c", OpClass::FpMul);
        b.reg_flow(a, c, 0);
        b.reg_flow(c, a, 1); // loop-carried back edge
        assert!(b.build().is_ok());
    }

    #[test]
    fn self_loop_with_distance_accepted() {
        let mut b = DdgBuilder::new("self");
        let a = b.inst("a", OpClass::FpAdd);
        b.reg_flow(a, a, 1);
        assert!(b.build().is_ok());
    }

    #[test]
    fn self_loop_zero_distance_rejected() {
        let mut b = DdgBuilder::new("self0");
        let a = b.inst("a", OpClass::FpAdd);
        b.reg_flow(a, a, 0);
        assert_eq!(b.build().unwrap_err(), DdgError::ZeroDistanceCycle);
    }

    #[test]
    fn histogram_counts_classes() {
        let g = chain3();
        let h = g.class_histogram();
        assert!(h.contains(&(OpClass::Load, 1)));
        assert!(h.contains(&(OpClass::FpMul, 1)));
        assert!(h.contains(&(OpClass::Store, 1)));
        assert_eq!(g.memory_op_counts(), (1, 1));
    }
}
