//! Graphviz DOT export for dependence graphs.

use crate::edge::{DepKind, DepType};
use crate::graph::Ddg;
use std::fmt::Write;

/// Render `ddg` as a Graphviz `digraph`.
///
/// Register dependences are solid, memory dependences dashed; edge
/// labels carry distance and (for memory) probability. Handy when
/// debugging the schedulers:
///
/// ```
/// use tms_ddg::{DdgBuilder, OpClass, dot};
/// let mut b = DdgBuilder::new("g");
/// let a = b.inst("a", OpClass::Load);
/// let c = b.inst("c", OpClass::Store);
/// b.reg_flow(a, c, 0);
/// let text = dot::to_dot(&b.build().unwrap());
/// assert!(text.starts_with("digraph"));
/// ```
pub fn to_dot(ddg: &Ddg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", ddg.name());
    let _ = writeln!(out, "  node [shape=box, fontname=\"monospace\"];");
    for i in ddg.insts() {
        let _ = writeln!(
            out,
            "  {} [label=\"{}\\n{} lat={}\"];",
            i.id,
            i.name.replace('"', "'"),
            i.op,
            i.latency
        );
    }
    for e in ddg.edges() {
        let style = match e.kind {
            DepKind::Register => "solid",
            DepKind::Memory => "dashed",
        };
        let color = match e.ty {
            DepType::Flow => "black",
            DepType::Anti => "blue",
            DepType::Output => "red",
        };
        let label = if e.kind == DepKind::Memory {
            format!("d={} p={:.2}", e.distance, e.prob)
        } else {
            format!("d={}", e.distance)
        };
        let _ = writeln!(
            out,
            "  {} -> {} [style={style}, color={color}, label=\"{label}\"];",
            e.src, e.dst
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DdgBuilder;
    use crate::inst::OpClass;

    #[test]
    fn dot_contains_nodes_and_edges() {
        let mut b = DdgBuilder::new("viz");
        let a = b.inst("store", OpClass::Store);
        let c = b.inst("load", OpClass::Load);
        b.mem_flow(a, c, 1, 0.25);
        let g = b.build().unwrap();
        let dot = to_dot(&g);
        assert!(dot.contains("digraph \"viz\""));
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("p=0.25"));
    }

    #[test]
    fn register_edges_are_solid() {
        let mut b = DdgBuilder::new("viz2");
        let a = b.inst("a", OpClass::IntAlu);
        let c = b.inst("c", OpClass::IntAlu);
        b.reg_flow(a, c, 0);
        let dot = to_dot(&b.build().unwrap());
        assert!(dot.contains("style=solid"));
        assert!(!dot.contains("p="));
    }
}
