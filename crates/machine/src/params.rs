//! Architectural parameters of the simulated SpMT system (Table 1) and
//! the cost constants of the paper's §4.2 cost model.

use serde::{Deserialize, Serialize};

/// Cache hierarchy parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// L1 data cache size in bytes (per core).
    pub l1d_size: u32,
    /// L1 data cache associativity.
    pub l1d_ways: u32,
    /// L1 data cache line size in bytes.
    pub line_size: u32,
    /// L1 data hit latency (cycles).
    pub l1d_hit: u32,
    /// Shared L2 size in bytes.
    pub l2_size: u32,
    /// L2 associativity.
    pub l2_ways: u32,
    /// L2 hit latency (cycles).
    pub l2_hit: u32,
    /// L2 miss (memory) latency (cycles).
    pub l2_miss: u32,
}

impl CacheParams {
    /// Table 1 values: 16KB 4-way L1D at 3 cycles, 1MB 4-way shared L2
    /// at 12 cycles hit / 80 cycles miss. 64-byte lines.
    pub fn icpp2008() -> Self {
        CacheParams {
            l1d_size: 16 * 1024,
            l1d_ways: 4,
            line_size: 64,
            l1d_hit: 3,
            l2_size: 1024 * 1024,
            l2_ways: 4,
            l2_hit: 12,
            l2_miss: 80,
        }
    }
}

/// The four cost constants of the cost model plus the communication
/// latency of the Voltron-style queue model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostConstants {
    /// `C_spn` — overhead of spawning a thread on a core (cycles).
    pub c_spn: u32,
    /// `C_ci` — commit overhead by the head thread (cycles).
    pub c_ci: u32,
    /// `C_inv` — invalidation overhead when squashing a thread (cycles).
    pub c_inv: u32,
    /// `C_reg_com` — SEND → hop → RECV latency for one register value
    /// between adjacent cores (cycles).
    pub c_reg_com: u32,
}

impl CostConstants {
    /// Table 1 values: spawn 3, commit 2, invalidation 15, SEND/RECV 3.
    pub fn icpp2008() -> Self {
        CostConstants {
            c_spn: 3,
            c_ci: 2,
            c_inv: 15,
            c_reg_com: 3,
        }
    }

    /// The smallest possible synchronisation delay of any scheduled
    /// register dependence: a unit-latency producer issued in the same
    /// modulo slot as its consumer still pays `1 + C_reg_com`
    /// (Definition 2 / line 5 of Figure 3).
    pub fn min_c_delay(&self) -> u32 {
        1 + self.c_reg_com
    }
}

/// Complete system parameters for scheduling and simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchParams {
    /// Number of cores on the ring.
    pub ncore: u32,
    /// Cost constants (Table 1).
    pub costs: CostConstants,
    /// Cache hierarchy (Table 1).
    pub cache: CacheParams,
    /// Entries in the per-core speculative write buffer (Hydra-style,
    /// next to L2; Table 1 gives 64).
    pub spec_write_buffer_entries: u32,
    /// Entries in each inter-core SEND/RECV queue.
    pub comm_queue_entries: u32,
}

impl ArchParams {
    /// The paper's evaluated system: a quad-core SpMT processor on a
    /// uni-directional ring with Table 1 parameters.
    pub fn icpp2008() -> Self {
        ArchParams {
            ncore: 4,
            costs: CostConstants::icpp2008(),
            cache: CacheParams::icpp2008(),
            spec_write_buffer_entries: 64,
            comm_queue_entries: 16,
        }
    }

    /// Same system with a different core count (the motivating example
    /// of Figure 2 uses two cores).
    pub fn with_ncore(ncore: u32) -> Self {
        ArchParams {
            ncore,
            ..Self::icpp2008()
        }
    }

    /// Render Table 1 as the paper prints it.
    pub fn table1(&self) -> String {
        let c = &self.cache;
        let k = &self.costs;
        format!(
            "Parameter              | Values\n\
             -----------------------+---------------------------------\n\
             Cores                  | {} (uni-directional ring)\n\
             Fetch, Issue, Commit   | bandwidth 4, out-of-order issue\n\
             L1 I-Cache             | 16KB, 4-way, 1 cycle (hit)\n\
             L1 D-Cache             | {}KB, {}-way, {} cycle (hit)\n\
             L2 Cache (shared)      | {}MB, {}-way, {} cycles (hit), {} cycles (miss)\n\
             Local Register File    | 1 cycle\n\
             SEND/RECV Latency      | {} cycles\n\
             Spawn Overhead         | {} cycles\n\
             Commit Overhead        | {} cycles\n\
             Invalidation Overhead  | {} cycles",
            self.ncore,
            c.l1d_size / 1024,
            c.l1d_ways,
            c.l1d_hit,
            c.l2_size / (1024 * 1024),
            c.l2_ways,
            c.l2_hit,
            c.l2_miss,
            k.c_reg_com,
            k.c_spn,
            k.c_ci,
            k.c_inv
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants_match_paper() {
        let p = ArchParams::icpp2008();
        assert_eq!(p.ncore, 4);
        assert_eq!(p.costs.c_spn, 3);
        assert_eq!(p.costs.c_ci, 2);
        assert_eq!(p.costs.c_inv, 15);
        assert_eq!(p.costs.c_reg_com, 3);
        assert_eq!(p.cache.l1d_hit, 3);
        assert_eq!(p.cache.l2_hit, 12);
        assert_eq!(p.cache.l2_miss, 80);
        assert_eq!(p.spec_write_buffer_entries, 64);
    }

    #[test]
    fn min_c_delay_is_one_plus_reg_com() {
        assert_eq!(CostConstants::icpp2008().min_c_delay(), 4);
    }

    #[test]
    fn with_ncore_overrides_core_count_only() {
        let p = ArchParams::with_ncore(2);
        assert_eq!(p.ncore, 2);
        assert_eq!(p.costs, CostConstants::icpp2008());
    }

    #[test]
    fn table1_renders_all_rows() {
        let t = ArchParams::icpp2008().table1();
        for needle in [
            "SEND/RECV Latency      | 3",
            "Spawn Overhead         | 3",
            "Commit Overhead        | 2",
            "Invalidation Overhead  | 15",
            "16KB, 4-way, 3 cycle",
            "1MB, 4-way, 12 cycles (hit), 80 cycles (miss)",
        ] {
            assert!(t.contains(needle), "missing: {needle}\n{t}");
        }
    }
}
