//! SpMT machine model: functional-unit resources, reservation tables
//! and the architectural parameters of Table 1 of the paper.
//!
//! Two views of the machine coexist:
//!
//! * the **scheduler's view** ([`MachineModel`]) — per-core issue width
//!   and functional-unit counts, from which the resource-constrained
//!   initiation interval `ResII` is derived;
//! * the **system view** ([`ArchParams`]) — the quad-core SpMT system:
//!   cache hierarchy latencies, SEND/RECV latency, and the four cost
//!   constants of the paper's cost model (`C_spn`, `C_ci`, `C_inv`,
//!   `C_reg_com`).

pub mod params;
pub mod resources;

pub use params::{ArchParams, CacheParams, CostConstants};
pub use resources::{mii, res_ii, MachineModel, ResourceClass};
