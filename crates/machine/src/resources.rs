//! Per-core functional-unit resources and the `ResII` bound.

use serde::{Deserialize, Serialize};
use tms_ddg::{Ddg, OpClass};

/// Functional-unit classes of one core.
///
/// The simulated cores (Table 1) are 4-wide out-of-order superscalars;
/// for modulo scheduling what matters is how many operations of each
/// class can start per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceClass {
    /// Integer ALUs (also execute copies, branches, SpMT control ops).
    IntUnit,
    /// Integer multiply/divide unit.
    IntMulDiv,
    /// Floating-point add pipeline.
    FpAddUnit,
    /// Floating-point multiply/divide pipeline.
    FpMulDiv,
    /// Load/store port.
    MemPort,
}

impl ResourceClass {
    /// All resource classes, in a fixed order used for indexing.
    pub const ALL: [ResourceClass; 5] = [
        ResourceClass::IntUnit,
        ResourceClass::IntMulDiv,
        ResourceClass::FpAddUnit,
        ResourceClass::FpMulDiv,
        ResourceClass::MemPort,
    ];

    /// Dense index of this class.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ResourceClass::IntUnit => 0,
            ResourceClass::IntMulDiv => 1,
            ResourceClass::FpAddUnit => 2,
            ResourceClass::FpMulDiv => 3,
            ResourceClass::MemPort => 4,
        }
    }

    /// The resource class an operation occupies at issue.
    pub fn for_op(op: OpClass) -> ResourceClass {
        match op {
            OpClass::IntAlu
            | OpClass::Branch
            | OpClass::Copy
            | OpClass::Send
            | OpClass::Recv
            | OpClass::Spawn
            | OpClass::Nop => ResourceClass::IntUnit,
            OpClass::IntMul | OpClass::IntDiv => ResourceClass::IntMulDiv,
            OpClass::FpAdd => ResourceClass::FpAddUnit,
            OpClass::FpMul | OpClass::FpDiv => ResourceClass::FpMulDiv,
            OpClass::Load | OpClass::Store => ResourceClass::MemPort,
        }
    }
}

fn default_occupancy() -> [u32; 5] {
    [1; 5]
}

/// A single core's scheduling resources.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineModel {
    /// Instructions that may issue per cycle in total (fetch/issue
    /// bandwidth of Table 1).
    pub issue_width: u32,
    /// Units available per resource class, indexed by
    /// [`ResourceClass::index`].
    pub units: [u32; 5],
    /// Cycles a unit stays busy per operation (1 = fully pipelined).
    /// Non-pipelined units make an operation occupy its unit for
    /// several consecutive cycles — the paper's example machine has a
    /// non-pipelined multiplier, which is how its Figure 1 loop gets
    /// `ResII = 4` from a single `mul`.
    #[serde(default = "default_occupancy")]
    pub occupancy: [u32; 5],
}

impl MachineModel {
    /// The per-core configuration matching Table 1: 4-wide issue with
    /// two integer units, one int mul/div, one FP adder, one FP
    /// mul/div and two memory ports — all fully pipelined.
    pub fn icpp2008() -> Self {
        MachineModel {
            issue_width: 4,
            units: [2, 1, 1, 1, 2],
            occupancy: default_occupancy(),
        }
    }

    /// The motivating example's machine (§4.1): like Table 1 but with a
    /// *non-pipelined* FP multiplier of occupancy 4, so one `mul` per
    /// iteration already forces `ResII = 4`.
    pub fn figure1_example() -> Self {
        MachineModel {
            issue_width: 4,
            units: [2, 1, 1, 1, 2],
            occupancy: [1, 1, 1, 4, 1],
        }
    }

    /// A narrow single-issue machine, useful in tests where ResII must
    /// dominate.
    pub fn scalar() -> Self {
        MachineModel {
            issue_width: 1,
            units: [1, 1, 1, 1, 1],
            occupancy: default_occupancy(),
        }
    }

    /// A machine wide enough that recurrences alone bound II.
    pub fn unlimited() -> Self {
        MachineModel {
            issue_width: u32::MAX,
            units: [u32::MAX; 5],
            occupancy: default_occupancy(),
        }
    }

    /// Units available for `class`.
    #[inline]
    pub fn units_of(&self, class: ResourceClass) -> u32 {
        self.units[class.index()]
    }

    /// Unit occupancy (busy cycles per op) for `class`.
    #[inline]
    pub fn occupancy_of(&self, class: ResourceClass) -> u32 {
        self.occupancy[class.index()].max(1)
    }
}

/// Resource-constrained minimum initiation interval:
/// `max_r ⌈ uses(r) · occupancy(r) / units(r) ⌉`, also bounded by the
/// issue width.
pub fn res_ii(ddg: &Ddg, machine: &MachineModel) -> u32 {
    let mut uses = [0u64; 5];
    for inst in ddg.insts() {
        uses[ResourceClass::for_op(inst.op).index()] += 1;
    }
    let mut ii = 1u64;
    for class in ResourceClass::ALL {
        let u = machine.units_of(class) as u64;
        if u == 0 && uses[class.index()] > 0 {
            // No unit for a required class — unschedulable; encode as a
            // huge bound the caller will notice.
            return u32::MAX;
        }
        if u > 0 {
            let occupied = uses[class.index()] * machine.occupancy_of(class) as u64;
            ii = ii.max(occupied.div_ceil(u));
        }
    }
    if machine.issue_width > 0 && machine.issue_width != u32::MAX {
        ii = ii.max((ddg.num_insts() as u64).div_ceil(machine.issue_width as u64));
    }
    ii.min(u32::MAX as u64) as u32
}

/// The minimum initiation interval `MII = max(ResII, RecII)`.
pub fn mii(ddg: &Ddg, machine: &MachineModel) -> u32 {
    let scc = tms_ddg::scc::SccDecomposition::compute(ddg);
    let rec = tms_ddg::mii::recurrence_info(ddg, &scc);
    res_ii(ddg, machine).max(rec.rec_ii)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_ddg::DdgBuilder;

    #[test]
    fn res_ii_counts_class_pressure() {
        // Four FP multiplies on one FpMulDiv unit => ResII = 4.
        let mut b = DdgBuilder::new("mul4");
        let prev = b.inst("m0", OpClass::FpMul);
        let mut last = prev;
        for i in 1..4 {
            let m = b.inst(format!("m{i}"), OpClass::FpMul);
            b.reg_flow(last, m, 0);
            last = m;
        }
        let g = b.build().unwrap();
        assert_eq!(res_ii(&g, &MachineModel::icpp2008()), 4);
    }

    #[test]
    fn issue_width_bounds_res_ii() {
        // 8 int ALU ops on a 4-wide core with 2 int units: unit bound
        // ceil(8/2)=4, width bound ceil(8/4)=2 => 4.
        let mut b = DdgBuilder::new("alu8");
        let mut prev = b.inst("a0", OpClass::IntAlu);
        for i in 1..8 {
            let a = b.inst(format!("a{i}"), OpClass::IntAlu);
            b.reg_flow(prev, a, 0);
            prev = a;
        }
        let g = b.build().unwrap();
        assert_eq!(res_ii(&g, &MachineModel::icpp2008()), 4);
        // On a hypothetical machine with 8 int units the width binds.
        let wide = MachineModel {
            units: [8, 1, 1, 1, 2],
            ..MachineModel::icpp2008()
        };
        assert_eq!(res_ii(&g, &wide), 2);
    }

    #[test]
    fn unlimited_machine_res_ii_is_one() {
        let mut b = DdgBuilder::new("x");
        let a = b.inst("a", OpClass::FpMul);
        let c = b.inst("c", OpClass::FpMul);
        b.reg_flow(a, c, 0);
        let g = b.build().unwrap();
        assert_eq!(res_ii(&g, &MachineModel::unlimited()), 1);
    }

    #[test]
    fn missing_unit_is_unschedulable() {
        let mut b = DdgBuilder::new("fp");
        b.inst("f", OpClass::FpAdd);
        let g = b.build().unwrap();
        let no_fp = MachineModel {
            units: [2, 1, 0, 1, 2],
            ..MachineModel::icpp2008()
        };
        assert_eq!(res_ii(&g, &no_fp), u32::MAX);
    }

    #[test]
    fn mii_is_max_of_bounds() {
        // Recurrence bound 6, resource bound 1 => MII 6.
        let mut b = DdgBuilder::new("rec");
        let a = b.inst_lat("a", OpClass::FpAdd, 6);
        b.reg_flow(a, a, 1);
        let g = b.build().unwrap();
        assert_eq!(mii(&g, &MachineModel::icpp2008()), 6);

        // Resource bound 4, no recurrence => MII 4.
        let mut b = DdgBuilder::new("res");
        let mut prev = b.inst("m0", OpClass::FpMul);
        for i in 1..4 {
            let m = b.inst(format!("m{i}"), OpClass::FpMul);
            b.reg_flow(prev, m, 0);
            prev = m;
        }
        let g = b.build().unwrap();
        assert_eq!(mii(&g, &MachineModel::icpp2008()), 4);
    }

    #[test]
    fn non_pipelined_multiplier_res_ii() {
        // One FP multiply on the Figure-1 machine (occupancy 4):
        // ResII = 4 — "since the mul has the longest latency" (§4.1).
        let mut b = DdgBuilder::new("one-mul");
        b.inst("mul", OpClass::FpMul);
        let g = b.build().unwrap();
        assert_eq!(res_ii(&g, &MachineModel::figure1_example()), 4);
        assert_eq!(res_ii(&g, &MachineModel::icpp2008()), 1);
    }

    #[test]
    fn op_to_resource_mapping_is_total() {
        for &op in OpClass::body_classes() {
            let _ = ResourceClass::for_op(op); // must not panic
        }
        assert_eq!(ResourceClass::for_op(OpClass::Send), ResourceClass::IntUnit);
        assert_eq!(ResourceClass::for_op(OpClass::Load), ResourceClass::MemPort);
    }
}
