//! Offline merge of spilled traces and sharded metrics.
//!
//! Two converters live here, both consuming files the exporters wrote:
//!
//! * **Spill → Chrome.** [`chrome_from_spills`] reads one-or-many
//!   `.trace.ndjson` spill files and renders the single Chrome
//!   `trace_event` document the in-memory sink would have produced for
//!   the same events — same sort, same renderer, byte-identical
//!   output. This is the `tms trace merge` backend.
//! * **Snapshot merge.** [`parse_snapshot`] reads the deterministic
//!   metrics slice back out of a snapshot (or full metrics) JSON, and
//!   [`merge_snapshot_files`] folds any number of per-shard files into
//!   one [`MetricsSnapshot`] — the `tms-verify merge-metrics` backend.
//!   Because snapshots are a commutative monoid, the merged report is
//!   byte-identical to a single-process run at any shard count.

use crate::error::TraceError;
use crate::parse::{parse, Json};
use crate::sink::{Histogram, MetricsSnapshot};
use crate::stream::{parse_spill, parse_spill_lossy, OwnedEvent};
use std::path::Path;

fn read_file(p: &Path) -> Result<String, TraceError> {
    std::fs::read_to_string(p).map_err(|e| TraceError::io(p, e))
}

/// Parse every `.trace.ndjson` file in `paths` (in order) into one
/// event list. Within a file, spill order is recording order, so the
/// stable render sort reproduces the in-memory tie-breaking.
pub fn events_from_spills<P: AsRef<Path>>(paths: &[P]) -> Result<Vec<OwnedEvent>, TraceError> {
    let mut events = Vec::new();
    for p in paths {
        let p = p.as_ref();
        let text = read_file(p)?;
        events.extend(parse_spill(&text).map_err(|e| TraceError::malformed(p, e))?);
    }
    Ok(events)
}

/// Events recovered from one-or-many possibly-truncated spill files,
/// with a note per dropped tail.
#[derive(Debug, Clone, PartialEq)]
pub struct SpillRecovery {
    /// Every event on a complete, valid line, in file-then-line order.
    pub events: Vec<OwnedEvent>,
    /// One `"<path>: <detail>"` note per truncated file (empty when all
    /// files were intact). Never silently dropped — callers print or
    /// record these.
    pub notes: Vec<String>,
}

/// Crash-tolerant variant of [`events_from_spills`]: each file's valid
/// prefix is recovered and a truncated final line (a killed process, a
/// torn write) is dropped and reported in
/// [`SpillRecovery::notes`] rather than failing the merge. Mid-file
/// corruption still errors — that is damage, not truncation.
pub fn events_from_spills_lossy<P: AsRef<Path>>(paths: &[P]) -> Result<SpillRecovery, TraceError> {
    let mut out = SpillRecovery {
        events: Vec::new(),
        notes: Vec::new(),
    };
    for p in paths {
        let p = p.as_ref();
        let text = read_file(p)?;
        let rec = parse_spill_lossy(&text).map_err(|e| TraceError::malformed(p, e))?;
        out.events.extend(rec.events);
        if let Some(note) = rec.truncated {
            out.notes.push(format!("{}: {note}", p.display()));
        }
    }
    Ok(out)
}

/// Render one-or-many spill files as a single Chrome `trace_event`
/// JSON document.
pub fn chrome_from_spills<P: AsRef<Path>>(paths: &[P]) -> Result<String, TraceError> {
    Ok(crate::chrome::render(&events_from_spills(paths)?))
}

/// [`chrome_from_spills`] over [`events_from_spills_lossy`]: renders
/// whatever survives truncation, returning the recovery notes next to
/// the document.
pub fn chrome_from_spills_lossy<P: AsRef<Path>>(
    paths: &[P],
) -> Result<(String, Vec<String>), TraceError> {
    let rec = events_from_spills_lossy(paths)?;
    Ok((crate::chrome::render(&rec.events), rec.notes))
}

fn histogram_from_json(name: &str, v: &Json) -> Result<Histogram, String> {
    let field = |key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("histogram '{name}': missing '{key}'"))
    };
    let buckets = match v.get("buckets") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|pair| match pair {
                Json::Arr(p) if p.len() == 2 => match (p[0].as_u64(), p[1].as_u64()) {
                    (Some(i), Some(n)) => Ok((i, n)),
                    _ => Err(format!("histogram '{name}': non-integer bucket pair")),
                },
                _ => Err(format!("histogram '{name}': malformed bucket pair")),
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err(format!("histogram '{name}': missing 'buckets'")),
    };
    Histogram::from_parts(
        field("count")?,
        field("sum")?,
        field("min")?,
        field("max")?,
        &buckets,
    )
    .map_err(|e| format!("histogram '{name}': {e}"))
}

/// Parse the deterministic metrics slice out of a snapshot JSON
/// ([`MetricsSnapshot::to_json`]) or a full metrics JSON
/// ([`crate::Trace::metrics_json`] — the `timers_ns` / `span_events`
/// sections are ignored).
pub fn parse_snapshot(text: &str) -> Result<MetricsSnapshot, String> {
    let doc = parse(text)?;
    let mut snap = MetricsSnapshot::default();
    if let Some(counters) = doc.get("counters").and_then(Json::as_obj) {
        for (k, v) in counters {
            let n = v
                .as_u64()
                .ok_or_else(|| format!("counter '{k}' is not an unsigned integer"))?;
            snap.counters.insert(k.clone(), n);
        }
    } else {
        return Err("missing 'counters' object".to_string());
    }
    if let Some(values) = doc.get("values").and_then(Json::as_obj) {
        for (k, v) in values {
            snap.values.insert(k.clone(), histogram_from_json(k, v)?);
        }
    } else {
        return Err("missing 'values' object".to_string());
    }
    Ok(snap)
}

/// Read and fold any number of snapshot/metrics files into one merged
/// snapshot.
pub fn merge_snapshot_files<P: AsRef<Path>>(paths: &[P]) -> Result<MetricsSnapshot, TraceError> {
    let mut merged = MetricsSnapshot::default();
    for p in paths {
        let p = p.as_ref();
        let text = read_file(p)?;
        let snap = parse_snapshot(&text).map_err(|e| TraceError::malformed(p, e))?;
        merged.merge(&snap);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Trace;

    fn record_run(t: &Trace, offset: u64) {
        for i in 0..40u64 {
            t.event_at(
                "sim.vthread",
                || format!("t{}", offset + i),
                i % 4,
                offset + i * 3,
                2,
                || vec![("thread", (offset + i).to_string())],
            );
            t.counter_sample("sim.vcounter", || "len".into(), 0, offset + i * 3, i % 7);
            t.count("n", 1);
            t.record("v", i);
        }
    }

    #[test]
    fn spill_merge_reproduces_in_memory_chrome_bytes() {
        let dir = std::env::temp_dir().join("tms_trace_merge_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.trace.ndjson");

        let mem = Trace::enabled();
        record_run(&mem, 0);
        let streamed = Trace::streaming(&path, 5).unwrap();
        record_run(&streamed, 0);
        streamed.flush().unwrap();

        assert!(streamed.spill_high_water() <= 5);
        let merged = chrome_from_spills(&[&path]).unwrap();
        assert_eq!(merged, mem.chrome_json(), "merge diverged from in-memory");
        assert_eq!(streamed.metrics(), mem.metrics());
        assert_eq!(streamed.snapshot_json(), mem.snapshot_json());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let t = Trace::enabled();
        record_run(&t, 0);
        let snap = t.metrics();
        let back = parse_snapshot(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), snap.to_json());
        // The full metrics JSON parses to the same slice.
        let from_full = parse_snapshot(&t.metrics_json()).unwrap();
        assert_eq!(from_full, snap);
    }

    #[test]
    fn snapshot_files_merge_to_the_single_run() {
        let dir = std::env::temp_dir().join("tms_trace_merge_metrics_test");
        std::fs::create_dir_all(&dir).unwrap();
        let single = Trace::enabled();
        record_run(&single, 0);
        record_run(&single, 1000);

        let a = Trace::enabled();
        record_run(&a, 0);
        let b = Trace::enabled();
        record_run(&b, 1000);
        let pa = dir.join("a.json");
        let pb = dir.join("b.json");
        a.write_snapshot(&pa).unwrap();
        b.write_snapshot(&pb).unwrap();

        let ab = merge_snapshot_files(&[&pa, &pb]).unwrap();
        let ba = merge_snapshot_files(&[&pb, &pa]).unwrap();
        assert_eq!(ab.to_json(), single.snapshot_json());
        assert_eq!(
            ba.to_json(),
            single.snapshot_json(),
            "merge not commutative"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_snapshot_rejects_malformed_documents() {
        assert!(parse_snapshot("{}").is_err());
        assert!(parse_snapshot("{\"counters\": {\"a\": \"x\"}}").is_err());
        assert!(parse_snapshot("{\"counters\": {}, \"values\": {\"h\": {\"count\": 1}}}").is_err());
    }

    #[test]
    fn parse_snapshot_rejects_inverted_histogram_range() {
        // A histogram whose min exceeds its max is structurally
        // impossible for the recorder to produce; a hand-edited or
        // corrupted snapshot must fail at parse time rather than panic
        // later inside `percentile`'s clamp.
        let doc = "{\"counters\": {}, \"values\": {\"h\": \
                   {\"count\": 1, \"sum\": 7, \"min\": 9, \"max\": 3, \
                    \"buckets\": [[3, 1]]}}}";
        let err = parse_snapshot(doc).unwrap_err();
        assert!(err.contains("min 9 exceeds max 3"), "got: {err}");
    }

    #[test]
    fn sparse_and_empty_histograms_round_trip_and_merge() {
        // Sparse buckets: only the populated indices are serialized, so
        // a histogram with samples in two distant buckets exercises the
        // sparse-pair path through to `from_parts`.
        let t = Trace::enabled();
        t.record("sparse", 1);
        t.record("sparse", u64::MAX / 2);
        let snap = t.metrics();
        let back = parse_snapshot(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        let h = &back.values["sparse"];
        assert_eq!((h.p50(), h.count), (1, 2));

        // An empty histogram round-trips and is the merge identity.
        let empty = Histogram::from_parts(0, 0, 0, 0, &[]).unwrap();
        assert_eq!((empty.p50(), empty.p95(), empty.p99()), (0, 0, 0));
        let mut merged = empty;
        merged.merge(h);
        assert_eq!(&merged, h);
    }
}
