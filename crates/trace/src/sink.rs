//! The trace handle and its thread-safe sink.

use crate::error::TraceError;
use crate::json;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write as _};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::Instant;
use tms_faults::{FaultPlan, IoFault};

/// Lock the sink state, tolerating poison: a worker panic caught by
/// `tms_core::par` may have unwound while holding this mutex, and the
/// sink's maps are update-in-place monotonic accumulators — the worst a
/// torn update leaves behind is one missing count, never an invalid
/// structure. Propagating the poison would turn one contained panic
/// into a panic on every later recording call.
fn lock_state(m: &Mutex<State>) -> MutexGuard<'_, State> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Flush failures swallowed by `Sink::drop` since process start (the
/// destructor must never panic — and has no way to return the error).
static DROP_FLUSH_FAILURES: AtomicU64 = AtomicU64::new(0);

/// How many spill-flush failures `Drop` has had to swallow. The first
/// one per process is also logged to stderr; harnesses can assert this
/// stayed 0.
pub fn drop_flush_failures() -> u64 {
    DROP_FLUSH_FAILURES.load(Ordering::Relaxed)
}

/// Stable per-OS-thread track id for span events (`std::thread::ThreadId`
/// has no stable integer form). Ids are assigned in first-use order, so
/// the main thread is track 0 in a serial run.
fn track_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TRACK: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TRACK.with(|t| *t)
}

/// Power-of-two bucket count: bucket 0 holds the sample value 0 and
/// bucket `i ≥ 1` holds `[2^(i-1), 2^i)`, so 65 buckets cover `u64`.
pub const HISTOGRAM_BUCKETS: usize = 65;

fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Summary of a stream of `u64` samples: exact `count`/`sum`/`min`/`max`
/// plus power-of-two bucket counts, from which p50/p95/p99 are
/// estimated (each percentile reports its bucket's upper bound, clamped
/// to the observed `[min, max]` — deterministic, and exact for streams
/// whose values fall in one bucket).
///
/// Histograms form a commutative monoid under [`Histogram::merge`]:
/// every field either adds (`count`, `sum`, buckets) or takes an
/// extremum (`min`, `max`), so merging per-shard histograms in any
/// order or grouping reproduces the single-process histogram exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record_sample(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        self.buckets[bucket_index(v)] += 1;
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The power-of-two bucket counts (see [`HISTOGRAM_BUCKETS`]).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Estimated value at percentile `pct` (integer 1..=100): the upper
    /// bound of the bucket containing the rank-`ceil(count·pct/100)`
    /// sample, clamped to `[min, max]`. 0 when empty.
    pub fn percentile(&self, pct: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as u128 * pct as u128).div_ceil(100)).max(1) as u64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate ([`Histogram::percentile`] at 50).
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.percentile(95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }

    /// Fold `other` into `self`. Commutative and associative; the empty
    /// histogram is the identity.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Rebuild a histogram from serialized parts (the merge tools parse
    /// these back out of metrics JSON). Bucket counts must sum to
    /// `count`, and a non-empty histogram needs `min ≤ max` — a
    /// malformed snapshot must be rejected here, because
    /// [`Histogram::percentile`] clamps to `[min, max]` and an inverted
    /// range would panic on the first percentile query instead of at
    /// the parse boundary.
    pub fn from_parts(
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        bucket_pairs: &[(u64, u64)],
    ) -> Result<Histogram, String> {
        if count > 0 && min > max {
            return Err(format!("histogram min {min} exceeds max {max}"));
        }
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut total = 0u64;
        for &(i, n) in bucket_pairs {
            let idx = usize::try_from(i).ok().filter(|&i| i < HISTOGRAM_BUCKETS);
            let Some(idx) = idx else {
                return Err(format!("bucket index {i} out of range"));
            };
            buckets[idx] += n;
            total += n;
        }
        if total != count {
            return Err(format!("bucket counts sum to {total}, count is {count}"));
        }
        Ok(Histogram {
            count,
            sum,
            min,
            max,
            buckets,
        })
    }
}

/// Chrome `trace_event` phase of a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventPhase {
    /// A complete span (`"ph": "X"`): has a duration, string args.
    Complete,
    /// A counter sample (`"ph": "C"`): no duration; args are numeric
    /// series values and render unquoted, so Perfetto plots them as a
    /// counter track.
    Counter,
}

/// One completed event, in Chrome `trace_event` terms: a complete
/// (`"ph": "X"`) span or a counter sample (`"ph": "C"`) on track
/// `track` at `ts_us` microseconds.
#[derive(Debug, Clone)]
pub struct Event {
    /// Chrome phase (complete span or counter sample).
    pub ph: EventPhase,
    /// Event category (Chrome `cat`).
    pub cat: &'static str,
    /// Event name.
    pub name: String,
    /// Track (Chrome `tid`): worker thread for wall-clock spans, core
    /// number for the engine's virtual-time thread records.
    pub track: u64,
    /// Start timestamp in microseconds (wall-clock since the sink's
    /// epoch, or virtual cycles for engine events).
    pub ts_us: u64,
    /// Duration in microseconds (or cycles). 0 for counter samples.
    pub dur_us: u64,
    /// Key/value annotations (`args` in the Chrome schema). For
    /// counter samples the values are decimal integers and render
    /// unquoted.
    pub args: Vec<(&'static str, String)>,
}

/// Retry attempts per spill line for transient (`Interrupted`) write
/// errors, after which the sink degrades to the in-memory mode.
const SPILL_WRITE_RETRIES: u32 = 3;

/// Base backoff between spill-write retries; attempt `n` sleeps
/// `SPILL_BACKOFF_US << n` microseconds (50, 100, 200 — bounded, tiny,
/// and only ever paid on a failing disk).
const SPILL_BACKOFF_US: u64 = 50;

/// Spill half of a streaming sink: completed events drain to a
/// newline-delimited JSON file whenever the resident buffer reaches
/// `cap`, so a traced run holds at most `cap` events in memory.
///
/// # Crash consistency and degradation
///
/// Every event is written **line-atomically**: the full frame including
/// its trailing newline is rendered into one buffer and handed to the
/// writer in a single `write_all`, so as long as writes succeed the
/// file is a clean prefix of complete lines at any instant (a killed
/// process tears at most the final line, which the lossy readers in
/// [`crate::stream`]/[`crate::merge`] drop and report). The `BufWriter`
/// is flushed only on [`Trace::flush`]/drop — batching policy, not a
/// consistency requirement.
///
/// A failed write is retried up to [`SPILL_WRITE_RETRIES`] times with
/// bounded backoff when transient (`ErrorKind::Interrupted`); on
/// exhaustion — or immediately for torn/persistent failures — the sink
/// **degrades**: it stops spilling and keeps all further events
/// resident (the memory bound is gone, but no event and no metric is
/// lost), recording `trace.spill.degraded` and the retry total in the
/// metrics so the degradation is itself observable in snapshots.
struct SpillState {
    writer: io::BufWriter<std::fs::File>,
    path: std::path::PathBuf,
    cap: usize,
    high_water: usize,
    spilled: u64,
    /// Write attempts made (including retries). Faults key off this, so
    /// for a fixed event population the injected failure sequence is
    /// identical at any worker count.
    writes: u64,
    retries: u64,
    /// Why the sink stopped spilling, once it has.
    degraded: Option<String>,
    faults: FaultPlan,
}

impl SpillState {
    /// Write one already-rendered ndjson line, retrying transient
    /// failures. `Err(reason)` means the sink must degrade.
    fn write_line(&mut self, line: &str) -> Result<(), String> {
        let mut attempt = 0u32;
        loop {
            self.writes += 1;
            let outcome = match self.faults.spill_write_fault(self.writes) {
                Some(IoFault::ShortWrite) => {
                    // Tear the line for real — write only a prefix —
                    // so the recovery path downstream is exercised
                    // against a genuinely torn file, then degrade:
                    // the file's tail is no longer line-atomic.
                    let cut = line.len() / 2;
                    let _ = self.writer.write_all(&line.as_bytes()[..cut]);
                    return Err("torn spill write".to_string());
                }
                Some(fault) => Err(fault.to_io_error()),
                None => self.writer.write_all(line.as_bytes()),
            };
            match outcome {
                Ok(()) => {
                    self.spilled += 1;
                    return Ok(());
                }
                Err(e)
                    if e.kind() == io::ErrorKind::Interrupted && attempt < SPILL_WRITE_RETRIES =>
                {
                    self.retries += 1;
                    std::thread::sleep(std::time::Duration::from_micros(
                        SPILL_BACKOFF_US << attempt,
                    ));
                    attempt += 1;
                }
                Err(e) => return Err(format!("spill write failed: {e}")),
            }
        }
    }
}

#[derive(Default)]
struct State {
    counters: BTreeMap<String, u64>,
    values: BTreeMap<String, Histogram>,
    timers: BTreeMap<String, Histogram>,
    events: Vec<Event>,
    spill: Option<SpillState>,
}

/// Drain the resident events into the spill file. On a write failure
/// the sink degrades in place: the unwritten events (including the one
/// that failed) stay resident, the degradation is recorded in the
/// counters, and no further drains run. Never panics.
fn drain_to_spill(st: &mut State) {
    let Some(sp) = &mut st.spill else { return };
    if sp.degraded.is_some() {
        return;
    }
    let mut line = String::new();
    let mut written = 0usize;
    let mut failure: Option<String> = None;
    for ev in st.events.iter() {
        line.clear();
        crate::stream::write_ndjson_line(&mut line, ev);
        match sp.write_line(&line) {
            Ok(()) => written += 1,
            Err(reason) => {
                failure = Some(reason);
                break;
            }
        }
    }
    st.events.drain(..written);
    if let Some(reason) = failure {
        sp.degraded = Some(reason);
        // Abandon the file, but push what the BufWriter holds to disk
        // first (best-effort): the file is left as a maximal valid
        // prefix — plus at most one torn line — for the lossy readers.
        let _ = sp.writer.flush();
        *st.counters
            .entry("trace.spill.degraded".to_string())
            .or_insert(0) += 1;
    }
    if sp.retries > 0 {
        // Idempotent overwrite (not an add): `retries` is the running
        // total, so repeated drains keep the counter exact.
        st.counters
            .insert("trace.spill.retries".to_string(), sp.retries);
    }
}

impl State {
    fn push_event(&mut self, ev: Event) {
        self.events.push(ev);
        let Some(sp) = &mut self.spill else { return };
        if sp.degraded.is_some() {
            // Degraded mode: behave like the in-memory sink — keep
            // everything resident, lose nothing.
            return;
        }
        sp.high_water = sp.high_water.max(self.events.len());
        if self.events.len() >= sp.cap {
            drain_to_spill(self);
        }
    }
}

/// The shared collector. Private on purpose: the only way to obtain one
/// is [`Trace::enabled`] / [`Trace::streaming`], and the only disabled
/// representation is *no sink at all* — there is no half-constructed
/// state to pay for.
struct Sink {
    epoch: Instant,
    state: Mutex<State>,
}

impl Drop for Sink {
    fn drop(&mut self) {
        // Best-effort final spill; explicit `Trace::flush` is the
        // error-reporting path. This destructor must never panic (it
        // can run during an unwind, where a second panic aborts), so
        // poison is tolerated and failures are counted, with the first
        // one per process logged to stderr.
        let st = self
            .state
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if st.spill.is_some() {
            drain_to_spill(st);
        }
        let failed = match &mut st.spill {
            None => false,
            Some(sp) => sp.degraded.is_some() || sp.writer.flush().is_err(),
        };
        if failed && DROP_FLUSH_FAILURES.fetch_add(1, Ordering::Relaxed) == 0 {
            eprintln!(
                "tms-trace: spill flush failed in drop; trailing events were \
                 kept in memory and are lost with this sink (logged once)"
            );
        }
    }
}

/// A cheaply clonable tracing handle: either **disabled** (no sink, all
/// recording methods are one-branch no-ops) or **enabled** (an
/// `Arc`-shared, mutex-protected sink safe to use from
/// `tms_core::par` worker threads). [`Trace::streaming`] is an enabled
/// handle whose completed events spill to disk through a bounded
/// buffer.
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Arc<Sink>>,
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Trace(disabled)"),
            Some(s) => {
                let st = lock_state(&s.state);
                write!(
                    f,
                    "Trace(enabled: {} counters, {} events)",
                    st.counters.len(),
                    st.events.len()
                )
            }
        }
    }
}

/// Deterministic snapshot of everything but the wall-clock data.
///
/// Snapshots form a **commutative monoid** under
/// [`MetricsSnapshot::merge`]: counters add and histograms merge, both
/// commutative and associative with [`MetricsSnapshot::default`] as
/// identity. A sweep sharded with `--shard i/n` therefore merges its
/// per-shard snapshots — in any order — into exactly the snapshot a
/// single-process run records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// All value histograms, sorted by name.
    pub values: BTreeMap<String, Histogram>,
}

impl MetricsSnapshot {
    /// Fold `other` into `self`: counters add, histograms merge.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.values {
            self.values.entry(k.clone()).or_default().merge(h);
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.values.is_empty()
    }

    /// Canonical sorted-JSON rendering: `{"counters": {...}, "values":
    /// {...}}`. Byte-identical for equal snapshots; this is the format
    /// `tms-verify merge-metrics` both consumes and emits.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        json::write_map(&mut out, self.counters.iter(), |out, v| {
            json::push_u64(out, *v)
        });
        out.push_str(",\n  \"values\": {");
        json::write_map(&mut out, self.values.iter(), |out, h| {
            json::write_histogram(out, h)
        });
        out.push_str("\n}\n");
        out
    }

    /// Parse a snapshot back from [`MetricsSnapshot::to_json`] output
    /// (or from a full `metrics_json` document — the wall-clock
    /// sections are ignored).
    pub fn from_json(text: &str) -> Result<MetricsSnapshot, String> {
        crate::merge::parse_snapshot(text)
    }
}

impl Trace {
    /// A disabled handle: every recording call is a no-op after one
    /// pointer-null check. This is also the [`Default`].
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// A fresh enabled handle with its own sink. Clones share the sink.
    pub fn enabled() -> Trace {
        Trace {
            inner: Some(Arc::new(Sink {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// An enabled handle whose completed events stream to `path` as
    /// newline-delimited JSON (one event per line) through a resident
    /// buffer of at most `buffer_cap` events — counters, value
    /// histograms and timers stay resident, so [`Trace::metrics`] and
    /// [`Trace::metrics_json`] are byte-identical to an in-memory sink
    /// recording the same run. Convert the spill file(s) to the Chrome
    /// JSON with `tms trace merge` (or [`crate::merge::chrome_from_spills`]).
    ///
    /// Call [`Trace::flush`] when the run completes to drain the buffer.
    /// Write failures mid-run never error and never lose events: the
    /// sink retries transient failures and otherwise degrades to the
    /// in-memory mode (see [`Trace::spill_degraded`]).
    pub fn streaming(path: &std::path::Path, buffer_cap: usize) -> Result<Trace, TraceError> {
        Self::streaming_faulted(path, buffer_cap, FaultPlan::disabled())
    }

    /// [`Trace::streaming`] with a fault-injection plan applied to
    /// every spill write — the `--faults` campaign uses this to drive
    /// the retry/degradation ladder deterministically. A disabled plan
    /// is exactly [`Trace::streaming`].
    pub fn streaming_faulted(
        path: &std::path::Path,
        buffer_cap: usize,
        faults: FaultPlan,
    ) -> Result<Trace, TraceError> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| TraceError::io(path, e))?;
            }
        }
        let file = std::fs::File::create(path).map_err(|e| TraceError::io(path, e))?;
        Ok(Trace {
            inner: Some(Arc::new(Sink {
                epoch: Instant::now(),
                state: Mutex::new(State {
                    spill: Some(SpillState {
                        writer: io::BufWriter::new(file),
                        path: path.to_path_buf(),
                        cap: buffer_cap.max(1),
                        high_water: 0,
                        spilled: 0,
                        writes: 0,
                        retries: 0,
                        degraded: None,
                        faults,
                    }),
                    ..State::default()
                }),
            })),
        })
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Whether this handle spills events to disk.
    pub fn is_streaming(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|s| lock_state(&s.state).spill.is_some())
    }

    /// Drain any buffered events to the spill file and flush it. A
    /// no-op for disabled and non-streaming handles.
    ///
    /// A **degraded** sink (see [`Trace::spill_degraded`]) returns
    /// `Ok`: degradation is a survived condition, reported through the
    /// `trace.spill.degraded` counter and the accessors, not an error —
    /// the run's metrics and resident events are all intact. Only a
    /// flush failure on a healthy sink errors.
    pub fn flush(&self) -> Result<(), TraceError> {
        let Some(sink) = &self.inner else {
            return Ok(());
        };
        let mut st = lock_state(&sink.state);
        if st.spill.is_some() {
            drain_to_spill(&mut st);
        }
        if let Some(sp) = &mut st.spill {
            if sp.degraded.is_none() {
                let path = sp.path.clone();
                sp.writer.flush().map_err(|e| TraceError::io(&path, e))?;
            }
        }
        Ok(())
    }

    /// Why the streaming sink stopped spilling, if it has degraded to
    /// the in-memory mode (`None`: healthy, non-streaming or disabled).
    pub fn spill_degraded(&self) -> Option<String> {
        self.inner.as_ref().and_then(|s| {
            lock_state(&s.state)
                .spill
                .as_ref()
                .and_then(|sp| sp.degraded.clone())
        })
    }

    /// Transient spill-write retries performed so far (0 when healthy
    /// throughout, non-streaming or disabled).
    pub fn spill_retries(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| {
            lock_state(&s.state)
                .spill
                .as_ref()
                .map_or(0, |sp| sp.retries)
        })
    }

    /// Largest number of events the spill buffer ever held (0 for
    /// non-streaming handles). Bounded by the `buffer_cap` passed to
    /// [`Trace::streaming`].
    pub fn spill_high_water(&self) -> usize {
        self.inner.as_ref().map_or(0, |s| {
            s.state
                .lock()
                .unwrap()
                .spill
                .as_ref()
                .map_or(0, |sp| sp.high_water)
        })
    }

    /// Events written to the spill file so far.
    pub fn spilled_events(&self) -> u64 {
        self.inner.as_ref().map_or(0, |s| {
            s.state
                .lock()
                .unwrap()
                .spill
                .as_ref()
                .map_or(0, |sp| sp.spilled)
        })
    }

    /// Add `n` to counter `name` (created at 0 on first use).
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        let Some(sink) = &self.inner else { return };
        let mut st = lock_state(&sink.state);
        match st.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                st.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Add `n` to the counter named `{prefix}{key}`. The concatenation
    /// happens only when enabled, so disabled callers pay no formatting.
    #[inline]
    pub fn count_keyed(&self, prefix: &str, key: &str, n: u64) {
        if self.inner.is_some() {
            self.count(&format!("{prefix}{key}"), n);
        }
    }

    /// Record sample `v` into value histogram `name`.
    #[inline]
    pub fn record(&self, name: &str, v: u64) {
        let Some(sink) = &self.inner else { return };
        let mut st = lock_state(&sink.state);
        match st.values.get_mut(name) {
            Some(h) => h.record_sample(v),
            None => {
                let mut h = Histogram::default();
                h.record_sample(v);
                st.values.insert(name.to_string(), h);
            }
        }
    }

    /// Time `f`, recording its wall-clock duration (nanoseconds) into
    /// timer histogram `name`. No span event is emitted.
    #[inline]
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let Some(sink) = &self.inner else { return f() };
        let t0 = Instant::now();
        let r = f();
        let ns = t0.elapsed().as_nanos() as u64;
        let mut st = lock_state(&sink.state);
        match st.timers.get_mut(name) {
            Some(h) => h.record_sample(ns),
            None => {
                let mut h = Histogram::default();
                h.record_sample(ns);
                st.timers.insert(name.to_string(), h);
            }
        }
        r
    }

    /// Record an externally measured wall-clock duration (nanoseconds)
    /// into timer histogram `name` — the explicit-duration counterpart
    /// of [`Trace::time`] for sub-phases that are accumulated across a
    /// hot loop and flushed once (the placement profiler times many
    /// tiny regions per attempt and records one sample per attempt).
    #[inline]
    pub fn time_ns(&self, name: &str, ns: u64) {
        let Some(sink) = &self.inner else { return };
        let mut st = lock_state(&sink.state);
        match st.timers.get_mut(name) {
            Some(h) => h.record_sample(ns),
            None => {
                let mut h = Histogram::default();
                h.record_sample(ns);
                st.timers.insert(name.to_string(), h);
            }
        }
    }

    /// Merge an externally accumulated histogram into value histogram
    /// `name`. The key is inserted even when `h` is empty, so schema
    /// presence checks hold for recording sites that observed nothing.
    /// Like [`Trace::record`] this feeds the deterministic snapshot:
    /// callers must fold `h` serially for the identity guarantee.
    pub fn record_histogram(&self, name: &str, h: &Histogram) {
        let Some(sink) = &self.inner else { return };
        let mut st = lock_state(&sink.state);
        match st.values.get_mut(name) {
            Some(existing) => existing.merge(h),
            None => {
                st.values.insert(name.to_string(), *h);
            }
        }
    }

    /// Open a wall-clock span. On drop it emits a Chrome event under
    /// `cat` and records the duration into the timer `{cat}.{name}`.
    #[inline]
    pub fn span(&self, cat: &'static str, name: &str) -> SpanGuard<'_> {
        self.span_with(cat, || name.to_string())
    }

    /// [`Trace::span`] with a lazily-built name: `name_fn` runs only
    /// when the handle is enabled (use for `format!`-style names).
    #[inline]
    pub fn span_with(&self, cat: &'static str, name_fn: impl FnOnce() -> String) -> SpanGuard<'_> {
        match &self.inner {
            None => SpanGuard { active: None },
            Some(sink) => SpanGuard {
                active: Some(SpanActive {
                    sink,
                    cat,
                    name: name_fn(),
                    start: Instant::now(),
                    args: Vec::new(),
                }),
            },
        }
    }

    /// Run `f` inside a span named `name` (event + timer).
    #[inline]
    pub fn scope<R>(&self, cat: &'static str, name: &str, f: impl FnOnce() -> R) -> R {
        let _g = self.span(cat, name);
        f()
    }

    /// Record a completed event with explicit (virtual) timestamps —
    /// the engine uses cycle numbers as microseconds so thread
    /// timelines render in Perfetto. `name_fn` and `args_fn` run only
    /// when enabled.
    pub fn event_at(
        &self,
        cat: &'static str,
        name_fn: impl FnOnce() -> String,
        track: u64,
        ts_us: u64,
        dur_us: u64,
        args_fn: impl FnOnce() -> Vec<(&'static str, String)>,
    ) {
        let Some(sink) = &self.inner else { return };
        let ev = Event {
            ph: EventPhase::Complete,
            cat,
            name: name_fn(),
            track,
            ts_us,
            dur_us,
            args: args_fn(),
        };
        lock_state(&sink.state).push_event(ev);
    }

    /// Record a counter sample (`"ph": "C"`) at an explicit timestamp:
    /// one point of the series `name` on `(pid_of(cat), track)`.
    /// Perfetto renders consecutive samples as a counter track —
    /// resource pressure over (virtual or wall) time. `name_fn` runs
    /// only when enabled.
    pub fn counter_sample(
        &self,
        cat: &'static str,
        name_fn: impl FnOnce() -> String,
        track: u64,
        ts_us: u64,
        value: u64,
    ) {
        let Some(sink) = &self.inner else { return };
        let ev = Event {
            ph: EventPhase::Counter,
            cat,
            name: name_fn(),
            track,
            ts_us,
            dur_us: 0,
            args: vec![("value", value.to_string())],
        };
        lock_state(&sink.state).push_event(ev);
    }

    /// [`Trace::counter_sample`] stamped with the current wall-clock
    /// offset from the sink's epoch, on the calling thread's track.
    pub fn counter_sample_now(
        &self,
        cat: &'static str,
        name_fn: impl FnOnce() -> String,
        value: u64,
    ) {
        let Some(sink) = &self.inner else { return };
        let ts = sink.epoch.elapsed().as_micros() as u64;
        self.counter_sample(cat, name_fn, track_id(), ts, value);
    }

    /// Current value of counter `name` (0 if absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(s) => *lock_state(&s.state).counters.get(name).unwrap_or(&0),
        }
    }

    /// Value histogram `name`, if any samples were recorded.
    pub fn value_stats(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|s| lock_state(&s.state).values.get(name).copied())
    }

    /// Wall-clock timer histogram `name` (nanosecond samples recorded
    /// by [`Trace::time`] and span guards), if any fired. Timers are
    /// *not* part of [`Trace::metrics`] — they are inherently
    /// machine-dependent — so consumers that aggregate them (e.g. the
    /// bench's per-phase breakdown) read them through this accessor.
    pub fn timer_stats(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|s| lock_state(&s.state).timers.get(name).copied())
    }

    /// All timer histograms under the dotted namespace `prefix`, in
    /// name order. Matching is segment-aware: `"tms.phase"` matches
    /// `"tms.phase"` itself and `"tms.phase.place"`, but not
    /// `"tms.phases.x"`. A trailing-dot prefix (`"tms.phase."`) keeps
    /// plain starts-with semantics, and an empty prefix matches all.
    pub fn timers_with_prefix(&self, prefix: &str) -> Vec<(String, Histogram)> {
        match &self.inner {
            None => Vec::new(),
            Some(s) => lock_state(&s.state)
                .timers
                .range(prefix.to_string()..)
                .take_while(|(k, _)| k.starts_with(prefix))
                .filter(|(k, _)| {
                    prefix.is_empty()
                        || prefix.ends_with('.')
                        || k.len() == prefix.len()
                        || k.as_bytes()[prefix.len()] == b'.'
                })
                .map(|(k, h)| (k.clone(), *h))
                .collect(),
        }
    }

    /// Deterministic snapshot: counters and value histograms only (no
    /// wall-clock timers or events). Two runs that perform the same
    /// work record equal snapshots regardless of worker count.
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(s) => {
                let st = lock_state(&s.state);
                MetricsSnapshot {
                    counters: st.counters.clone(),
                    values: st.values.clone(),
                }
            }
        }
    }

    /// Number of span/counter events recorded so far, including events
    /// already spilled by a streaming sink.
    pub fn event_count(&self) -> usize {
        self.inner.as_ref().map_or(0, |s| {
            let st = lock_state(&s.state);
            st.events.len() + st.spill.as_ref().map_or(0, |sp| sp.spilled as usize)
        })
    }

    /// The deterministic metrics slice as canonical sorted JSON
    /// ([`MetricsSnapshot::to_json`]): what `--snapshot` writes and
    /// `merge-metrics` compares.
    pub fn snapshot_json(&self) -> String {
        self.metrics().to_json()
    }

    /// The JSON metrics dump: counters and value histograms (sorted,
    /// deterministic) plus wall-clock timers (reported separately —
    /// their durations are machine noise by nature).
    pub fn metrics_json(&self) -> String {
        let Some(sink) = &self.inner else {
            return "{}".to_string();
        };
        let st = lock_state(&sink.state);
        let mut out = String::from("{\n  \"counters\": {");
        json::write_map(&mut out, st.counters.iter(), |out, v| {
            json::push_u64(out, *v)
        });
        out.push_str(",\n  \"values\": {");
        json::write_map(&mut out, st.values.iter(), |out, h| {
            json::write_histogram(out, h)
        });
        out.push_str(",\n  \"timers_ns\": {");
        json::write_map(&mut out, st.timers.iter(), |out, h| {
            json::write_histogram(out, h)
        });
        out.push_str(",\n  \"span_events\": ");
        json::push_u64(
            &mut out,
            (st.events.len() + st.spill.as_ref().map_or(0, |sp| sp.spilled as usize)) as u64,
        );
        out.push_str("\n}\n");
        out
    }

    /// The Chrome `trace_event` JSON (see [`crate::chrome`]) of the
    /// *resident* events. For a streaming sink the spilled events are
    /// on disk, not here — render those with `tms trace merge` /
    /// [`crate::merge::chrome_from_spills`] instead.
    pub fn chrome_json(&self) -> String {
        let Some(sink) = &self.inner else {
            return "{\"traceEvents\":[]}\n".to_string();
        };
        let st = lock_state(&sink.state);
        crate::chrome::render(&st.events)
    }

    /// Write [`Trace::metrics_json`] to `path`, creating parents.
    pub fn write_metrics(&self, path: &std::path::Path) -> Result<(), TraceError> {
        write_creating_dirs(path, &self.metrics_json())
    }

    /// Write [`Trace::snapshot_json`] to `path`, creating parents.
    pub fn write_snapshot(&self, path: &std::path::Path) -> Result<(), TraceError> {
        write_creating_dirs(path, &self.snapshot_json())
    }

    /// Write [`Trace::chrome_json`] to `path`, creating parents.
    pub fn write_chrome(&self, path: &std::path::Path) -> Result<(), TraceError> {
        write_creating_dirs(path, &self.chrome_json())
    }

    fn finish_span(sink: &Sink, span: &mut SpanActive<'_>) {
        let ts_us = span.start.duration_since(sink.epoch).as_micros() as u64;
        let dur = span.start.elapsed();
        let ev = Event {
            ph: EventPhase::Complete,
            cat: span.cat,
            name: std::mem::take(&mut span.name),
            track: track_id(),
            ts_us,
            dur_us: dur.as_micros() as u64,
            args: std::mem::take(&mut span.args),
        };
        let timer_key = format!("{}.{}", span.cat, ev.name);
        let mut st = lock_state(&sink.state);
        match st.timers.get_mut(&timer_key) {
            Some(h) => h.record_sample(dur.as_nanos() as u64),
            None => {
                let mut h = Histogram::default();
                h.record_sample(dur.as_nanos() as u64);
                st.timers.insert(timer_key, h);
            }
        }
        st.push_event(ev);
    }
}

struct SpanActive<'a> {
    sink: &'a Sink,
    cat: &'static str,
    name: String,
    start: Instant,
    args: Vec<(&'static str, String)>,
}

/// Guard returned by [`Trace::span`]; records the span when dropped
/// (including on unwind). Disabled handles return an inert guard.
pub struct SpanGuard<'a> {
    active: Option<SpanActive<'a>>,
}

impl SpanGuard<'_> {
    /// Attach a key/value annotation to the span. `val` is only
    /// rendered when the span is live.
    #[inline]
    pub fn arg(&mut self, key: &'static str, val: impl fmt::Display) {
        if let Some(a) = &mut self.active {
            a.args.push((key, val.to_string()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(mut a) = self.active.take() {
            Trace::finish_span(a.sink, &mut a);
        }
    }
}

fn write_creating_dirs(path: &std::path::Path, text: &str) -> Result<(), TraceError> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| TraceError::io(path, e))?;
        }
    }
    std::fs::write(path, text).map_err(|e| TraceError::io(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Trace::disabled();
        t.count("a", 3);
        t.record("b", 9);
        t.time("c", || ());
        t.counter_sample("cat", || "n".into(), 0, 0, 1);
        {
            let mut s = t.span("cat", "name");
            s.arg("k", 1);
        }
        assert_eq!(t.counter("a"), 0);
        assert!(t.value_stats("b").is_none());
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.metrics(), MetricsSnapshot::default());
        assert_eq!(t.metrics_json(), "{}");
        assert!(!t.is_enabled());
        assert!(!t.is_streaming());
        assert!(t.flush().is_ok());
        assert!(!Trace::default().is_enabled());
    }

    #[test]
    fn counters_and_values_accumulate() {
        let t = Trace::enabled();
        t.count("x", 1);
        t.count("x", 2);
        t.count_keyed("reject.", "c1", 5);
        t.record("len", 4);
        t.record("len", 10);
        assert_eq!(t.counter("x"), 3);
        assert_eq!(t.counter("reject.c1"), 5);
        let h = t.value_stats("len").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 14, 4, 10));
        assert!((h.mean() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn spans_emit_events_and_timers() {
        let t = Trace::enabled();
        {
            let mut s = t.span("tms", "attempt");
            s.arg("ii", 8);
        }
        t.scope("tms", "order", || ());
        assert_eq!(t.event_count(), 2);
        let json = t.chrome_json();
        assert!(json.contains("\"attempt\""));
        assert!(json.contains("\"ii\""));
        let m = t.metrics_json();
        assert!(m.contains("\"tms.attempt\""));
        assert!(m.contains("\"span_events\": 2"));
    }

    #[test]
    fn clones_share_one_sink_across_threads() {
        let t = Trace::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        t.count("n", 1);
                    }
                    t.scope("w", "tick", || ());
                });
            }
        });
        assert_eq!(t.counter("n"), 400);
        assert_eq!(t.event_count(), 4);
    }

    #[test]
    fn virtual_time_events_keep_their_timestamps() {
        let t = Trace::enabled();
        t.event_at(
            "sim",
            || "t0".into(),
            2,
            100,
            40,
            || vec![("thread", "0".into())],
        );
        let json = t.chrome_json();
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"dur\":40"));
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn counter_samples_render_as_counter_tracks() {
        let t = Trace::enabled();
        t.counter_sample("sim.vcounter", || "sim.live".into(), 0, 10, 3);
        t.counter_sample_now("tms.counter", || "attempts".into(), 7);
        assert_eq!(t.event_count(), 2);
        let json = t.chrome_json();
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":3}"));
        // Counter samples are events, not metrics.
        assert!(t.metrics().is_empty());
    }

    #[test]
    fn profiler_counter_tracks_render_in_chrome_export() {
        // The placement profiler samples one point per attempt on two
        // counter tracks; both must come out as Perfetto counter events
        // and leave the deterministic snapshot untouched.
        let t = Trace::enabled();
        t.counter_sample_now("tms.counter", || "tms.place.attempt_ns".into(), 1234);
        t.counter_sample_now("tms.counter", || "tms.place.max_eject_chain".into(), 3);
        let json = t.chrome_json();
        assert!(json.contains("\"name\":\"tms.place.attempt_ns\""));
        assert!(json.contains("\"name\":\"tms.place.max_eject_chain\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":1234}"));
        assert!(t.metrics().is_empty());
    }

    #[test]
    fn timer_stats_handles_missing_names_and_disabled_handles() {
        let t = Trace::enabled();
        // Empty trace: no timer has fired yet.
        assert!(t.timer_stats("tms.phase.place").is_none());
        assert!(t.timers_with_prefix("tms.phase").is_empty());
        t.time("tms.phase.place", || ());
        assert!(t.timer_stats("tms.phase.place").is_some());
        // A name that never fired stays absent even once others exist.
        assert!(t.timer_stats("tms.phase.order").is_none());
        // Disabled handles report nothing and pay nothing.
        let off = Trace::disabled();
        off.time("tms.phase.place", || ());
        off.time_ns("tms.place.scan", 10);
        assert!(off.timer_stats("tms.phase.place").is_none());
        assert!(off.timers_with_prefix("").is_empty());
    }

    #[test]
    fn timers_with_prefix_respects_segment_boundaries() {
        let t = Trace::enabled();
        t.time_ns("tms.phase", 1);
        t.time_ns("tms.phase.place", 2);
        t.time_ns("tms.phase.verify", 3);
        t.time_ns("tms.phases.x", 4);
        let names = |prefix: &str| -> Vec<String> {
            t.timers_with_prefix(prefix)
                .into_iter()
                .map(|(k, _)| k)
                .collect()
        };
        // "tms.phase" matches itself and its children, not "tms.phases.x".
        assert_eq!(
            names("tms.phase"),
            vec!["tms.phase", "tms.phase.place", "tms.phase.verify"]
        );
        // A trailing dot keeps plain starts-with semantics (children only).
        assert_eq!(
            names("tms.phase."),
            vec!["tms.phase.place", "tms.phase.verify"]
        );
        assert_eq!(names("tms.phases"), vec!["tms.phases.x"]);
        assert_eq!(names("").len(), 4);
        assert!(names("tms.ph").is_empty());
    }

    #[test]
    fn time_ns_records_explicit_durations() {
        let t = Trace::enabled();
        t.time_ns("tms.place.scan", 100);
        t.time_ns("tms.place.scan", 300);
        let h = t.timer_stats("tms.place.scan").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 400);
        assert_eq!(h.min, 100);
        assert_eq!(h.max, 300);
        // Timers stay out of the deterministic snapshot.
        assert!(t.metrics().is_empty());
    }

    #[test]
    fn record_histogram_merges_and_holds_keys_at_zero() {
        let t = Trace::enabled();
        // Empty histograms still insert their key: schema presence
        // checks must hold for sites that observed nothing.
        t.record_histogram("tms.place.eject_chain_depth", &Histogram::default());
        let h = t.value_stats("tms.place.eject_chain_depth").unwrap();
        assert_eq!(h.count, 0);
        let mut ext = Histogram::default();
        ext.record_sample(2);
        ext.record_sample(5);
        t.record_histogram("tms.place.eject_chain_depth", &ext);
        t.record("tms.place.eject_chain_depth", 9);
        let h = t.value_stats("tms.place.eject_chain_depth").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (3, 16, 2, 9));
    }

    #[test]
    fn metrics_snapshot_is_order_independent() {
        let a = Trace::enabled();
        a.count("x", 1);
        a.count("y", 2);
        a.record("v", 3);
        let b = Trace::enabled();
        b.record("v", 3);
        b.count("y", 2);
        b.count("x", 1);
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn histogram_percentiles_are_bucket_bounds_clamped() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.record_sample(v);
        }
        // Rank 50 lands in bucket [32, 63]; upper bound 63.
        assert_eq!(h.p50(), 63);
        // p95/p99 land in bucket [64, 127], clamped to max = 100.
        assert_eq!(h.p95(), 100);
        assert_eq!(h.p99(), 100);
        // Degenerate stream: all percentiles equal the single value.
        let mut one = Histogram::default();
        one.record_sample(42);
        assert_eq!((one.p50(), one.p95(), one.p99()), (42, 42, 42));
    }

    #[test]
    fn empty_histogram_percentiles_are_deterministically_zero() {
        // An empty histogram has no observed range; every percentile
        // reports 0, not an arbitrary bucket edge. This also covers the
        // round-trip of an empty histogram through `from_parts`.
        let empty = Histogram::default();
        for pct in [1u8, 50, 95, 99, 100] {
            assert_eq!(empty.percentile(pct), 0);
        }
        assert_eq!((empty.p50(), empty.p95(), empty.p99()), (0, 0, 0));
        let rebuilt = Histogram::from_parts(0, 0, 0, 0, &[]).unwrap();
        assert_eq!(rebuilt, empty);
        assert_eq!((rebuilt.p50(), rebuilt.p95(), rebuilt.p99()), (0, 0, 0));
    }

    #[test]
    fn from_parts_rejects_inverted_range() {
        // A malformed snapshot with min > max must fail at the parse
        // boundary: `percentile` clamps to [min, max], which panics on
        // an inverted range.
        let err = Histogram::from_parts(1, 7, 9, 3, &[(3, 1)]).unwrap_err();
        assert!(err.contains("min 9 exceeds max 3"), "got: {err}");
        // count == 0 carries no range, so (0, 0) stays accepted even
        // though the fields are equal-zero rather than meaningful.
        assert!(Histogram::from_parts(0, 0, 0, 0, &[]).is_ok());
    }

    #[test]
    fn histogram_merge_is_a_commutative_monoid() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [1u64, 5, 9, 1000] {
            a.record_sample(v);
        }
        for v in [3u64, 70, 2] {
            b.record_sample(v);
        }
        let mut whole = Histogram::default();
        for v in [1u64, 5, 9, 1000, 3, 70, 2] {
            whole.record_sample(v);
        }
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, whole);
        // Identity.
        let mut id = a;
        id.merge(&Histogram::default());
        assert_eq!(id, a);
        let mut id2 = Histogram::default();
        id2.merge(&a);
        assert_eq!(id2, a);
    }

    #[test]
    fn snapshot_merge_matches_single_run() {
        let single = Trace::enabled();
        let s1 = Trace::enabled();
        let s2 = Trace::enabled();
        for (i, t) in [(0u64, &s1), (1, &s2), (2, &s1), (3, &s2)] {
            single.count("n", i + 1);
            single.record("v", i * 10);
            t.count("n", i + 1);
            t.record("v", i * 10);
        }
        let mut merged = s1.metrics();
        merged.merge(&s2.metrics());
        assert_eq!(merged, single.metrics());
        assert_eq!(merged.to_json(), single.snapshot_json());
    }

    #[test]
    fn streaming_sink_spills_and_bounds_memory() {
        let dir = std::env::temp_dir().join("tms_trace_sink_test");
        let path = dir.join("spill.trace.ndjson");
        let t = Trace::streaming(&path, 8).unwrap();
        for i in 0..100u64 {
            t.event_at("sim.vthread", || format!("t{i}"), i % 4, i, 1, Vec::new);
        }
        t.count("n", 100);
        t.flush().unwrap();
        assert!(t.is_streaming());
        assert_eq!(t.event_count(), 100);
        assert!(t.spill_high_water() <= 8, "buffer exceeded its cap");
        assert_eq!(t.spilled_events(), 100);
        assert_eq!(t.counter("n"), 100, "metrics stay resident");
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 100);
        assert_eq!(t.spill_degraded(), None);
        assert_eq!(t.spill_retries(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    fn stream_n_events(t: &Trace, n: u64) {
        for i in 0..n {
            t.event_at("sim.vthread", || format!("t{i}"), i % 4, i, 1, Vec::new);
        }
    }

    #[test]
    fn torn_write_degrades_and_keeps_events_resident() {
        use tms_faults::{FaultPlan, FaultRates};
        let dir = std::env::temp_dir().join("tms_trace_torn_write_test");
        let path = dir.join("torn.trace.ndjson");
        let plan = FaultPlan::with_rates(
            1,
            FaultRates {
                spill_transient_per_1024: 0,
                spill_torn_at: Some(10),
                spill_fail_after: None,
                ..FaultRates::default()
            },
        );
        let t = Trace::streaming_faulted(&path, 4, plan).unwrap();
        stream_n_events(&t, 30);
        t.flush().unwrap(); // degradation is NOT an error
                            // Write 10 tore: 9 events on disk, the rest held resident.
        assert_eq!(t.spilled_events(), 9);
        assert_eq!(t.event_count(), 30, "no event may be lost");
        assert!(t.spill_degraded().unwrap().contains("torn"));
        assert_eq!(t.counter("trace.spill.degraded"), 1);
        // The file ends in a torn line; the lossy reader recovers the
        // 9-line valid prefix (the 10th, half-written line drops).
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(crate::stream::parse_spill(&text).is_err());
        let rec = crate::stream::parse_spill_lossy(&text).unwrap();
        assert_eq!(rec.events.len(), 9);
        assert!(rec.truncated.is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn disk_full_degrades_without_retry_loops() {
        use tms_faults::{FaultPlan, FaultRates};
        let dir = std::env::temp_dir().join("tms_trace_disk_full_test");
        let path = dir.join("full.trace.ndjson");
        let plan = FaultPlan::with_rates(
            2,
            FaultRates {
                spill_transient_per_1024: 0,
                spill_torn_at: None,
                spill_fail_after: Some(5),
                ..FaultRates::default()
            },
        );
        let t = Trace::streaming_faulted(&path, 2, plan).unwrap();
        stream_n_events(&t, 20);
        t.count("n", 20);
        t.flush().unwrap();
        assert_eq!(t.spilled_events(), 5);
        assert_eq!(t.event_count(), 20);
        assert!(t.spill_degraded().is_some());
        assert_eq!(t.counter("n"), 20, "metrics survive degradation");
        // Everything on disk is intact — disk-full never tears a line.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::stream::parse_spill(&text).unwrap().len(), 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn transient_faults_retry_and_the_stream_survives() {
        use tms_faults::{FaultPlan, FaultRates};
        let dir = std::env::temp_dir().join("tms_trace_transient_test");
        let path = dir.join("flaky.trace.ndjson");
        // ~12% of write attempts fail transiently; each gets up to 3
        // retries at fresh attempt indices, so the probability of any
        // line exhausting its retries is ~0.02% — and the seed makes
        // the whole sequence deterministic, so this test cannot flake.
        let plan = FaultPlan::with_rates(
            0xC0FFEE,
            FaultRates {
                spill_transient_per_1024: 128,
                spill_torn_at: None,
                spill_fail_after: None,
                ..FaultRates::default()
            },
        );
        let t = Trace::streaming_faulted(&path, 8, plan.clone()).unwrap();
        stream_n_events(&t, 200);
        t.flush().unwrap();
        assert_eq!(t.spill_degraded(), None, "retries should absorb these");
        assert_eq!(t.spilled_events(), 200);
        assert!(t.spill_retries() > 0, "the fault plan never fired");
        assert_eq!(t.counter("trace.spill.retries"), t.spill_retries());
        assert!(plan.injected_total() > 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(crate::stream::parse_spill(&text).unwrap().len(), 200);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sink_survives_a_panic_unwinding_through_its_users() {
        // The realistic failure mode under fault injection: a worker
        // panics between recording calls (possibly mid-span), the
        // panic is caught upstream, and the shared sink must keep
        // working for every other clone. `lock_state` additionally
        // tolerates a poisoned mutex, which cannot be provoked from
        // the public API precisely because no recording path can panic
        // while holding the guard.
        let t = Trace::enabled();
        let t2 = t.clone();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut span = t2.span("w", "doomed");
            span.arg("k", 1);
            t2.count("before", 1);
            panic!("injected");
        }));
        assert!(caught.is_err());
        t.count("after", 2);
        assert_eq!(t.counter("before"), 1);
        assert_eq!(t.counter("after"), 2);
        // The doomed span still recorded on unwind (guard drop ran).
        assert_eq!(t.event_count(), 1);
        assert!(t.flush().is_ok());
    }
}
