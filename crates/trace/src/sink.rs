//! The trace handle and its thread-safe sink.

use crate::json;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Stable per-OS-thread track id for span events (`std::thread::ThreadId`
/// has no stable integer form). Ids are assigned in first-use order, so
/// the main thread is track 0 in a serial run.
fn track_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static TRACK: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TRACK.with(|t| *t)
}

/// `(count, sum, min, max)` summary of a stream of `u64` samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl Histogram {
    fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One completed span, in Chrome `trace_event` terms: a complete
/// (`"ph": "X"`) event on track `track` starting at `ts_us` for
/// `dur_us` microseconds.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event category (Chrome `cat`).
    pub cat: &'static str,
    /// Event name.
    pub name: String,
    /// Track (Chrome `tid`): worker thread for wall-clock spans, core
    /// number for the engine's virtual-time thread records.
    pub track: u64,
    /// Start timestamp in microseconds (wall-clock since the sink's
    /// epoch, or virtual cycles for engine events).
    pub ts_us: u64,
    /// Duration in microseconds (or cycles).
    pub dur_us: u64,
    /// Key/value annotations (`args` in the Chrome schema).
    pub args: Vec<(&'static str, String)>,
}

#[derive(Default)]
struct State {
    counters: BTreeMap<String, u64>,
    values: BTreeMap<String, Histogram>,
    timers: BTreeMap<String, Histogram>,
    events: Vec<Event>,
}

/// The shared collector. Private on purpose: the only way to obtain one
/// is [`Trace::enabled`], and the only disabled representation is *no
/// sink at all* — there is no half-constructed state to pay for.
struct Sink {
    epoch: Instant,
    state: Mutex<State>,
}

/// A cheaply clonable tracing handle: either **disabled** (no sink, all
/// recording methods are one-branch no-ops) or **enabled** (an
/// `Arc`-shared, mutex-protected sink safe to use from
/// `tms_core::par` worker threads).
#[derive(Clone, Default)]
pub struct Trace {
    inner: Option<Arc<Sink>>,
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Trace(disabled)"),
            Some(s) => {
                let st = s.state.lock().unwrap();
                write!(
                    f,
                    "Trace(enabled: {} counters, {} events)",
                    st.counters.len(),
                    st.events.len()
                )
            }
        }
    }
}

/// Deterministic snapshot of everything but the wall-clock data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// All value histograms, sorted by name.
    pub values: BTreeMap<String, Histogram>,
}

impl Trace {
    /// A disabled handle: every recording call is a no-op after one
    /// pointer-null check. This is also the [`Default`].
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// A fresh enabled handle with its own sink. Clones share the sink.
    pub fn enabled() -> Trace {
        Trace {
            inner: Some(Arc::new(Sink {
                epoch: Instant::now(),
                state: Mutex::new(State::default()),
            })),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Add `n` to counter `name` (created at 0 on first use).
    #[inline]
    pub fn count(&self, name: &str, n: u64) {
        let Some(sink) = &self.inner else { return };
        let mut st = sink.state.lock().unwrap();
        match st.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                st.counters.insert(name.to_string(), n);
            }
        }
    }

    /// Add `n` to the counter named `{prefix}{key}`. The concatenation
    /// happens only when enabled, so disabled callers pay no formatting.
    #[inline]
    pub fn count_keyed(&self, prefix: &str, key: &str, n: u64) {
        if self.inner.is_some() {
            self.count(&format!("{prefix}{key}"), n);
        }
    }

    /// Record sample `v` into value histogram `name`.
    #[inline]
    pub fn record(&self, name: &str, v: u64) {
        let Some(sink) = &self.inner else { return };
        let mut st = sink.state.lock().unwrap();
        match st.values.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = Histogram::default();
                h.record(v);
                st.values.insert(name.to_string(), h);
            }
        }
    }

    /// Time `f`, recording its wall-clock duration (nanoseconds) into
    /// timer histogram `name`. No span event is emitted.
    #[inline]
    pub fn time<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let Some(sink) = &self.inner else { return f() };
        let t0 = Instant::now();
        let r = f();
        let ns = t0.elapsed().as_nanos() as u64;
        let mut st = sink.state.lock().unwrap();
        match st.timers.get_mut(name) {
            Some(h) => h.record(ns),
            None => {
                let mut h = Histogram::default();
                h.record(ns);
                st.timers.insert(name.to_string(), h);
            }
        }
        r
    }

    /// Open a wall-clock span. On drop it emits a Chrome event under
    /// `cat` and records the duration into the timer `{cat}.{name}`.
    #[inline]
    pub fn span(&self, cat: &'static str, name: &str) -> SpanGuard<'_> {
        self.span_with(cat, || name.to_string())
    }

    /// [`Trace::span`] with a lazily-built name: `name_fn` runs only
    /// when the handle is enabled (use for `format!`-style names).
    #[inline]
    pub fn span_with(&self, cat: &'static str, name_fn: impl FnOnce() -> String) -> SpanGuard<'_> {
        match &self.inner {
            None => SpanGuard { active: None },
            Some(sink) => SpanGuard {
                active: Some(SpanActive {
                    sink,
                    cat,
                    name: name_fn(),
                    start: Instant::now(),
                    args: Vec::new(),
                }),
            },
        }
    }

    /// Run `f` inside a span named `name` (event + timer).
    #[inline]
    pub fn scope<R>(&self, cat: &'static str, name: &str, f: impl FnOnce() -> R) -> R {
        let _g = self.span(cat, name);
        f()
    }

    /// Record a completed event with explicit (virtual) timestamps —
    /// the engine uses cycle numbers as microseconds so thread
    /// timelines render in Perfetto. `name_fn` and `args_fn` run only
    /// when enabled.
    pub fn event_at(
        &self,
        cat: &'static str,
        name_fn: impl FnOnce() -> String,
        track: u64,
        ts_us: u64,
        dur_us: u64,
        args_fn: impl FnOnce() -> Vec<(&'static str, String)>,
    ) {
        let Some(sink) = &self.inner else { return };
        let ev = Event {
            cat,
            name: name_fn(),
            track,
            ts_us,
            dur_us,
            args: args_fn(),
        };
        sink.state.lock().unwrap().events.push(ev);
    }

    /// Current value of counter `name` (0 if absent or disabled).
    pub fn counter(&self, name: &str) -> u64 {
        match &self.inner {
            None => 0,
            Some(s) => *s.state.lock().unwrap().counters.get(name).unwrap_or(&0),
        }
    }

    /// Value histogram `name`, if any samples were recorded.
    pub fn value_stats(&self, name: &str) -> Option<Histogram> {
        self.inner
            .as_ref()
            .and_then(|s| s.state.lock().unwrap().values.get(name).copied())
    }

    /// Deterministic snapshot: counters and value histograms only (no
    /// wall-clock timers or events). Two runs that perform the same
    /// work record equal snapshots regardless of worker count.
    pub fn metrics(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(s) => {
                let st = s.state.lock().unwrap();
                MetricsSnapshot {
                    counters: st.counters.clone(),
                    values: st.values.clone(),
                }
            }
        }
    }

    /// Number of span events recorded so far.
    pub fn event_count(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |s| s.state.lock().unwrap().events.len())
    }

    /// The JSON metrics dump: counters and value histograms (sorted,
    /// deterministic) plus wall-clock timers (reported separately —
    /// their durations are machine noise by nature).
    pub fn metrics_json(&self) -> String {
        let Some(sink) = &self.inner else {
            return "{}".to_string();
        };
        let st = sink.state.lock().unwrap();
        let mut out = String::from("{\n  \"counters\": {");
        json::write_map(&mut out, st.counters.iter(), |out, v| {
            out.push_str(&v.to_string())
        });
        out.push_str(",\n  \"values\": {");
        json::write_map(&mut out, st.values.iter(), |out, h| {
            json::write_histogram(out, h)
        });
        out.push_str(",\n  \"timers_ns\": {");
        json::write_map(&mut out, st.timers.iter(), |out, h| {
            json::write_histogram(out, h)
        });
        out.push_str(",\n  \"span_events\": ");
        out.push_str(&st.events.len().to_string());
        out.push_str("\n}\n");
        out
    }

    /// The Chrome `trace_event` JSON (see [`crate::chrome`]).
    pub fn chrome_json(&self) -> String {
        let Some(sink) = &self.inner else {
            return "{\"traceEvents\":[]}\n".to_string();
        };
        let st = sink.state.lock().unwrap();
        crate::chrome::render(&st.events)
    }

    /// Write [`Trace::metrics_json`] to `path`, creating parents.
    pub fn write_metrics(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_creating_dirs(path, &self.metrics_json())
    }

    /// Write [`Trace::chrome_json`] to `path`, creating parents.
    pub fn write_chrome(&self, path: &std::path::Path) -> std::io::Result<()> {
        write_creating_dirs(path, &self.chrome_json())
    }

    fn finish_span(sink: &Sink, span: &mut SpanActive<'_>) {
        let ts_us = span.start.duration_since(sink.epoch).as_micros() as u64;
        let dur = span.start.elapsed();
        let ev = Event {
            cat: span.cat,
            name: std::mem::take(&mut span.name),
            track: track_id(),
            ts_us,
            dur_us: dur.as_micros() as u64,
            args: std::mem::take(&mut span.args),
        };
        let timer_key = format!("{}.{}", span.cat, ev.name);
        let mut st = sink.state.lock().unwrap();
        match st.timers.get_mut(&timer_key) {
            Some(h) => h.record(dur.as_nanos() as u64),
            None => {
                let mut h = Histogram::default();
                h.record(dur.as_nanos() as u64);
                st.timers.insert(timer_key, h);
            }
        }
        st.events.push(ev);
    }
}

struct SpanActive<'a> {
    sink: &'a Sink,
    cat: &'static str,
    name: String,
    start: Instant,
    args: Vec<(&'static str, String)>,
}

/// Guard returned by [`Trace::span`]; records the span when dropped
/// (including on unwind). Disabled handles return an inert guard.
pub struct SpanGuard<'a> {
    active: Option<SpanActive<'a>>,
}

impl SpanGuard<'_> {
    /// Attach a key/value annotation to the span. `val` is only
    /// rendered when the span is live.
    #[inline]
    pub fn arg(&mut self, key: &'static str, val: impl fmt::Display) {
        if let Some(a) = &mut self.active {
            a.args.push((key, val.to_string()));
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(mut a) = self.active.take() {
            Trace::finish_span(a.sink, &mut a);
        }
    }
}

fn write_creating_dirs(path: &std::path::Path, text: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Trace::disabled();
        t.count("a", 3);
        t.record("b", 9);
        t.time("c", || ());
        {
            let mut s = t.span("cat", "name");
            s.arg("k", 1);
        }
        assert_eq!(t.counter("a"), 0);
        assert!(t.value_stats("b").is_none());
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.metrics(), MetricsSnapshot::default());
        assert_eq!(t.metrics_json(), "{}");
        assert!(!t.is_enabled());
        assert!(!Trace::default().is_enabled());
    }

    #[test]
    fn counters_and_values_accumulate() {
        let t = Trace::enabled();
        t.count("x", 1);
        t.count("x", 2);
        t.count_keyed("reject.", "c1", 5);
        t.record("len", 4);
        t.record("len", 10);
        assert_eq!(t.counter("x"), 3);
        assert_eq!(t.counter("reject.c1"), 5);
        let h = t.value_stats("len").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 14, 4, 10));
        assert!((h.mean() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn spans_emit_events_and_timers() {
        let t = Trace::enabled();
        {
            let mut s = t.span("tms", "attempt");
            s.arg("ii", 8);
        }
        t.scope("tms", "order", || ());
        assert_eq!(t.event_count(), 2);
        let json = t.chrome_json();
        assert!(json.contains("\"attempt\""));
        assert!(json.contains("\"ii\""));
        let m = t.metrics_json();
        assert!(m.contains("\"tms.attempt\""));
        assert!(m.contains("\"span_events\": 2"));
    }

    #[test]
    fn clones_share_one_sink_across_threads() {
        let t = Trace::enabled();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..100 {
                        t.count("n", 1);
                    }
                    t.scope("w", "tick", || ());
                });
            }
        });
        assert_eq!(t.counter("n"), 400);
        assert_eq!(t.event_count(), 4);
    }

    #[test]
    fn virtual_time_events_keep_their_timestamps() {
        let t = Trace::enabled();
        t.event_at(
            "sim",
            || "t0".into(),
            2,
            100,
            40,
            || vec![("thread", "0".into())],
        );
        let json = t.chrome_json();
        assert!(json.contains("\"ts\":100"));
        assert!(json.contains("\"dur\":40"));
        assert!(json.contains("\"tid\":2"));
    }

    #[test]
    fn metrics_snapshot_is_order_independent() {
        let a = Trace::enabled();
        a.count("x", 1);
        a.count("y", 2);
        a.record("v", 3);
        let b = Trace::enabled();
        b.record("v", 3);
        b.count("y", 2);
        b.count("x", 1);
        assert_eq!(a.metrics(), b.metrics());
    }
}
