//! Chrome `trace_event` export.
//!
//! Every recorded span becomes a *complete* event (`"ph": "X"`) and
//! every counter sample a *counter* event (`"ph": "C"`) in the
//! [Trace Event Format] understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): `name`, `cat`, timestamp `ts`
//! (and duration `dur` for spans) in microseconds, and a `(pid, tid)`
//! track. Two kinds of track coexist in one file:
//!
//! * `pid 1` — **wall-clock** spans; `tid` is the recording worker
//!   thread (first-use order, main thread is 0);
//! * `pid 2` — **virtual-time** records from the SpMT engine, where
//!   `ts`/`dur` are simulated cycles and `tid` is the core number, so a
//!   loop's thread timeline renders as a per-core Gantt chart, and
//!   counter series (`sim.prune.log_len`, per-core occupancy) plot
//!   resource pressure over the same cycle axis.
//!
//! Events are sorted by `(pid, tid, ts, name)` before rendering so the
//! file is stable for a given set of recorded events; the sort is
//! stable, so ties keep recording order. The renderer is generic over
//! [`ChromeEvent`] so the offline merge path ([`crate::merge`]) renders
//! parsed spill events through the exact same bytes-out code path —
//! that is what makes `tms trace merge` output byte-identical to an
//! in-memory [`crate::Trace::chrome_json`] of the same events.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::{push_u64, write_str};
use crate::sink::{Event, EventPhase};

/// Process id for wall-clock span tracks.
pub const PID_WALL: u64 = 1;
/// Process id for virtual-time (simulated-cycle) tracks.
pub const PID_VIRTUAL: u64 = 2;

/// Categories whose events live on the virtual-time process.
pub fn pid_of_cat(cat: &str) -> u64 {
    if cat.starts_with("sim.v") {
        PID_VIRTUAL
    } else {
        PID_WALL
    }
}

/// Accessor view of one renderable event — implemented by the live
/// [`Event`] and by the owned events [`crate::merge`] parses back out
/// of `.trace.ndjson` spill files.
pub trait ChromeEvent {
    /// Chrome phase.
    fn phase(&self) -> EventPhase;
    /// Category string.
    fn cat(&self) -> &str;
    /// Event name.
    fn name(&self) -> &str;
    /// Track (`tid`).
    fn track(&self) -> u64;
    /// Timestamp (µs or cycles).
    fn ts_us(&self) -> u64;
    /// Duration (µs or cycles; ignored for counters).
    fn dur_us(&self) -> u64;
    /// Key/value annotations in recording order.
    fn args(&self) -> impl Iterator<Item = (&str, &str)>;
}

impl ChromeEvent for Event {
    fn phase(&self) -> EventPhase {
        self.ph
    }
    fn cat(&self) -> &str {
        self.cat
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn track(&self) -> u64 {
        self.track
    }
    fn ts_us(&self) -> u64 {
        self.ts_us
    }
    fn dur_us(&self) -> u64 {
        self.dur_us
    }
    fn args(&self) -> impl Iterator<Item = (&str, &str)> {
        self.args.iter().map(|(k, v)| (*k, v.as_str()))
    }
}

/// Append one event in Chrome `trace_event` form. Numbers go through
/// [`push_u64`] — no per-event `format!` allocations on this path.
fn write_event<E: ChromeEvent>(out: &mut String, ev: &E) {
    match ev.phase() {
        EventPhase::Complete => out.push_str("\n{\"ph\":\"X\",\"name\":"),
        EventPhase::Counter => out.push_str("\n{\"ph\":\"C\",\"name\":"),
    }
    write_str(out, ev.name());
    out.push_str(",\"cat\":");
    write_str(out, ev.cat());
    out.push_str(",\"pid\":");
    push_u64(out, pid_of_cat(ev.cat()));
    out.push_str(",\"tid\":");
    push_u64(out, ev.track());
    out.push_str(",\"ts\":");
    push_u64(out, ev.ts_us());
    if ev.phase() == EventPhase::Complete {
        out.push_str(",\"dur\":");
        push_u64(out, ev.dur_us());
    }
    out.push_str(",\"args\":{");
    for (j, (k, v)) in ev.args().enumerate() {
        if j > 0 {
            out.push(',');
        }
        write_str(out, k);
        out.push(':');
        if ev.phase() == EventPhase::Counter {
            // Counter series values are numeric — Perfetto only plots
            // numbers. The sink records them from `u64`s, and the
            // spill parser re-validates them as integers.
            out.push_str(v);
        } else {
            write_str(out, v);
        }
    }
    out.push_str("}}");
}

/// Render the full `{"traceEvents": [...]}` document.
pub fn render<E: ChromeEvent>(events: &[E]) -> String {
    let mut order: Vec<&E> = events.iter().collect();
    order.sort_by(|a, b| {
        (pid_of_cat(a.cat()), a.track(), a.ts_us(), a.name()).cmp(&(
            pid_of_cat(b.cat()),
            b.track(),
            b.ts_us(),
            b.name(),
        ))
    });

    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in order.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_event(&mut out, *ev);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cat: &'static str, name: &str, track: u64, ts: u64) -> Event {
        Event {
            ph: EventPhase::Complete,
            cat,
            name: name.to_string(),
            track,
            ts_us: ts,
            dur_us: 5,
            args: vec![("k", "v".to_string())],
        }
    }

    #[test]
    fn renders_sorted_complete_events() {
        let events = vec![ev("tms", "b", 0, 20), ev("tms", "a", 0, 10)];
        let json = render(&events);
        let a = json.find("\"name\":\"a\"").unwrap();
        let b = json.find("\"name\":\"b\"").unwrap();
        assert!(a < b, "events must be time-sorted");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"k\":\"v\"}"));
    }

    #[test]
    fn virtual_events_get_their_own_process() {
        let events = vec![ev("sim.vthread", "t0", 1, 0), ev("sweep", "kernels", 0, 0)];
        let json = render(&events);
        assert!(json.contains(&format!("\"pid\":{PID_VIRTUAL}")));
        assert!(json.contains(&format!("\"pid\":{PID_WALL}")));
    }

    #[test]
    fn counter_events_render_numeric_args_without_dur() {
        let events = vec![Event {
            ph: EventPhase::Counter,
            cat: "sim.vcounter",
            name: "sim.prune.log_len".to_string(),
            track: 0,
            ts_us: 12,
            dur_us: 0,
            args: vec![("value", "7".to_string())],
        }];
        let json = render(&events);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":7}"));
        assert!(!json.contains("\"dur\""), "counters carry no duration");
        assert!(json.contains(&format!("\"pid\":{PID_VIRTUAL}")));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(render::<Event>(&[]), "{\"traceEvents\":[\n]}\n");
    }
}
