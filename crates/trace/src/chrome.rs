//! Chrome `trace_event` export.
//!
//! Every recorded span becomes a *complete* event (`"ph": "X"`) in the
//! [Trace Event Format] understood by `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev): `name`, `cat`, timestamp `ts`
//! and duration `dur` in microseconds, and a `(pid, tid)` track. Two
//! kinds of track coexist in one file:
//!
//! * `pid 1` — **wall-clock** spans; `tid` is the recording worker
//!   thread (first-use order, main thread is 0);
//! * `pid 2` — **virtual-time** records from the SpMT engine, where
//!   `ts`/`dur` are simulated cycles and `tid` is the core number, so a
//!   loop's thread timeline renders as a per-core Gantt chart.
//!
//! Events are sorted by `(pid, tid, ts, name)` before rendering so the
//! file is stable for a given set of recorded events.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::write_str;
use crate::sink::Event;

/// Process id for wall-clock span tracks.
pub const PID_WALL: u64 = 1;
/// Process id for virtual-time (simulated-cycle) tracks.
pub const PID_VIRTUAL: u64 = 2;

/// Categories whose events live on the virtual-time process.
fn pid_of(ev: &Event) -> u64 {
    if ev.cat.starts_with("sim.v") {
        PID_VIRTUAL
    } else {
        PID_WALL
    }
}

/// Render the full `{"traceEvents": [...]}` document.
pub fn render(events: &[Event]) -> String {
    let mut order: Vec<&Event> = events.iter().collect();
    order.sort_by(|a, b| {
        (pid_of(a), a.track, a.ts_us, a.name.as_str()).cmp(&(
            pid_of(b),
            b.track,
            b.ts_us,
            b.name.as_str(),
        ))
    });

    let mut out = String::from("{\"traceEvents\":[");
    for (i, ev) in order.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n{\"ph\":\"X\",\"name\":");
        write_str(&mut out, &ev.name);
        out.push_str(",\"cat\":");
        write_str(&mut out, ev.cat);
        out.push_str(&format!(
            ",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{}",
            pid_of(ev),
            ev.track,
            ev.ts_us,
            ev.dur_us
        ));
        out.push_str(",\"args\":{");
        for (j, (k, v)) in ev.args.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            write_str(&mut out, k);
            out.push(':');
            write_str(&mut out, v);
        }
        out.push_str("}}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cat: &'static str, name: &str, track: u64, ts: u64) -> Event {
        Event {
            cat,
            name: name.to_string(),
            track,
            ts_us: ts,
            dur_us: 5,
            args: vec![("k", "v".to_string())],
        }
    }

    #[test]
    fn renders_sorted_complete_events() {
        let events = vec![ev("tms", "b", 0, 20), ev("tms", "a", 0, 10)];
        let json = render(&events);
        let a = json.find("\"name\":\"a\"").unwrap();
        let b = json.find("\"name\":\"b\"").unwrap();
        assert!(a < b, "events must be time-sorted");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"args\":{\"k\":\"v\"}"));
    }

    #[test]
    fn virtual_events_get_their_own_process() {
        let events = vec![ev("sim.vthread", "t0", 1, 0), ev("sweep", "kernels", 0, 0)];
        let json = render(&events);
        assert!(json.contains(&format!("\"pid\":{PID_VIRTUAL}")));
        assert!(json.contains(&format!("\"pid\":{PID_WALL}")));
    }

    #[test]
    fn empty_trace_is_valid() {
        assert_eq!(render(&[]), "{\"traceEvents\":[\n]}\n");
    }
}
