//! A minimal recursive-descent JSON reader for the offline merge
//! tools. `tms-trace` stays dependency-free, and the only documents it
//! ever parses are ones its own exporters wrote (`.trace.ndjson` spill
//! lines and metrics/snapshot JSON), so this supports exactly the JSON
//! subset those emit — objects (key order preserved), arrays, strings
//! with the exporter's escapes, unsigned integers (exact `u64`), and a
//! float fallback for skipped sections.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    /// Object, in source key order.
    Obj(Vec<(String, Json)>),
    /// Array.
    Arr(Vec<Json>),
    /// String.
    Str(String),
    /// Unsigned integer (the exporters' only number shape).
    U64(u64),
    /// Other numbers (signed/fractional/exponent) — parsed so foreign
    /// fields can be skipped, never produced by our own exporters.
    F64(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl Json {
    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Look up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The `u64`, if this is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse `text` as one JSON document (trailing whitespace allowed).
pub(crate) fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let n = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // The exporter only emits \u for control
                            // characters; reject surrogates.
                            out.push(char::from_u32(n).ok_or("invalid \\u code point")?);
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !float && !text.starts_with('-') {
            return text
                .parse::<u64>()
                .map(Json::U64)
                .map_err(|e| format!("bad integer '{text}': {e}"));
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents_preserving_key_order() {
        let v = parse(r#"{"b": 1, "a": {"x": [2, "s", null, true]}, "f": 1.5}"#).unwrap();
        let obj = v.as_obj().unwrap();
        assert_eq!(obj[0].0, "b");
        assert_eq!(obj[1].0, "a");
        assert_eq!(v.get("b").and_then(Json::as_u64), Some(1));
        let arr = match v.get("a").and_then(|a| a.get("x")) {
            Some(Json::Arr(items)) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0].as_u64(), Some(2));
        assert_eq!(arr[1].as_str(), Some("s"));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(arr[3], Json::Bool(true));
        assert_eq!(v.get("f"), Some(&Json::F64(1.5)));
    }

    #[test]
    fn round_trips_exporter_escapes() {
        let mut out = String::new();
        crate::json::write_str(&mut out, "a\"b\\c\n\t\u{1}");
        let v = parse(&out).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\t\u{1}"));
    }

    #[test]
    fn u64_precision_is_exact() {
        let v = parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"x", "{\"a\" 1}", "tru", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }
}
