//! Metric-name schema for the deterministic metrics slice.
//!
//! The counters and value histograms a sweep records are a *contract*:
//! downstream consumers (the CI schema checks, trace diffing, the
//! sharded `merge-metrics` comparisons) key on exact names, so a typo
//! in a recording site — or a renamed counter that CI still asserts on
//! — silently produces empty-looking metrics. This module pins the
//! known names and prefixes in one place and lets tests validate a
//! [`MetricsSnapshot`] against them.
//!
//! The registry covers *production* metrics only. Scratch names used
//! by unit tests inside `tms-trace` itself are not listed — validation
//! is for the instrumented subsystems (`tms.*`, `sim.*`, `verify.*`,
//! the `tmsd.*` daemon counters) plus the `demo.*` namespace the CLI
//! examples use.

use crate::sink::MetricsSnapshot;

/// Exact counter names the schedulers, simulator, and verifier record.
pub const KNOWN_COUNTERS: &[&str] = &[
    "sim.cycles.commit",
    "sim.cycles.exec",
    "sim.cycles.wait",
    "sim.prune.popped",
    "sim.threads.committed",
    "tms.accepted",
    "tms.adaptive.coarsened",
    "tms.adaptive.skipped",
    "tms.adaptive.sync-rejections",
    "tms.attempts",
    "tms.degraded_to_sms",
    "tms.fallback",
    "tms.place.ejected",
    "tms.place.forced",
    "tms.place.probe.accept-fast",
    "tms.place.probe.accept-generic",
    "tms.place.probe.c1-reject-fast",
    "tms.place.probe.c1-reject-generic",
    "tms.place.probe.c2-reject-fast",
    "tms.place.probe.c2-reject-generic",
    "tms.place.probe.opaque",
    "tms.place.scans",
    "tms.pruned.cost-bound",
    "tms.pruned.p-max-dup",
    "tms.rejected",
    "tms.reuse.cross-ii-attempts",
    "tms.reuse.cross-ii-steps-replayed",
    "tms.reuse.steps-executed",
    "tms.reuse.steps-replayed",
    "tms.reuse.warm-attempts",
    "tms.unschedulable",
    "tmsd.batches",
    "tmsd.cache.bypassed",
    "tmsd.cache.hit",
    "tmsd.cache.miss",
    "tmsd.degraded",
    "tmsd.errors",
    "tmsd.panics",
    "tmsd.requests",
    "tmsd.retries",
    "tmsd.shed",
    "verify.checks",
    "verify.degraded",
    "verify.loops",
    "verify.violations",
];

/// Counter-name prefixes whose suffix is data-dependent (diagnostic
/// kinds, demo scratch names). `tms.reject.<kind>` covers both the
/// post-search verification kinds (`tms.reject.sync-exceeded`, …) and
/// the search-level outcomes (`tms.reject.no-schedule`,
/// `tms.reject.lost-to-baseline`).
pub const KNOWN_COUNTER_PREFIXES: &[&str] = &["tms.reject.", "demo."];

/// Exact value-histogram names.
pub const KNOWN_VALUES: &[&str] = &[
    "sim.prune.log_len",
    "tms.attempts_per_loop",
    "tms.place.eject_chain_depth",
    "tms.place.forced_per_attempt",
    "tms.pruned_per_loop",
    "tmsd.batch_size",
    "tmsd.queue_depth",
];

/// Value-name prefixes whose suffix is data-dependent.
pub const KNOWN_VALUE_PREFIXES: &[&str] = &["demo."];

/// Counters every TMS scheduling run is expected to *populate* (the
/// recording sites insert the key even at zero, so absence means the
/// site was deleted or renamed, not that nothing happened).
pub const TMS_REQUIRED_COUNTERS: &[&str] = &[
    "tms.attempts",
    "tms.pruned.cost-bound",
    "tms.pruned.p-max-dup",
    "tms.reuse.cross-ii-attempts",
    "tms.reuse.cross-ii-steps-replayed",
    "tms.reuse.steps-executed",
    "tms.reuse.steps-replayed",
    "tms.reuse.warm-attempts",
];

/// Value histograms every TMS scheduling run records per loop.
pub const TMS_REQUIRED_VALUES: &[&str] = &["tms.attempts_per_loop", "tms.pruned_per_loop"];

/// Counters a *profiled* scheduling run (`TmsConfig::profile`) records
/// unconditionally. They are deliberately not in
/// [`TMS_REQUIRED_COUNTERS`]: default runs leave the profiler off, and
/// the traced-sweep identity checks assert the required set on exactly
/// that configuration.
pub const TMS_PROFILE_COUNTERS: &[&str] = &[
    "tms.place.ejected",
    "tms.place.forced",
    "tms.place.probe.accept-fast",
    "tms.place.probe.accept-generic",
    "tms.place.probe.c1-reject-fast",
    "tms.place.probe.c1-reject-generic",
    "tms.place.probe.c2-reject-fast",
    "tms.place.probe.c2-reject-generic",
    "tms.place.probe.opaque",
    "tms.place.scans",
];

/// Value histograms a profiled scheduling run records unconditionally.
pub const TMS_PROFILE_VALUES: &[&str] = &[
    "tms.place.eject_chain_depth",
    "tms.place.forced_per_attempt",
];

/// Every profiler metric *missing* from `snapshot`, prefixed with its
/// section. Empty means all placement-profiler recording sites fired —
/// only meaningful for snapshots taken with `TmsConfig::profile` on.
pub fn missing_profile_metrics(snapshot: &MetricsSnapshot) -> Vec<String> {
    let mut missing = Vec::new();
    for name in TMS_PROFILE_COUNTERS {
        if !snapshot.counters.contains_key(*name) {
            missing.push(format!("counter:{name}"));
        }
    }
    for name in TMS_PROFILE_VALUES {
        if !snapshot.values.contains_key(*name) {
            missing.push(format!("value:{name}"));
        }
    }
    missing
}

fn known(name: &str, exact: &[&str], prefixes: &[&str]) -> bool {
    exact.contains(&name) || prefixes.iter().any(|p| name.starts_with(p))
}

/// Whether `name` is a registered counter name.
pub fn is_known_counter(name: &str) -> bool {
    known(name, KNOWN_COUNTERS, KNOWN_COUNTER_PREFIXES)
}

/// Whether `name` is a registered value-histogram name.
pub fn is_known_value(name: &str) -> bool {
    known(name, KNOWN_VALUES, KNOWN_VALUE_PREFIXES)
}

/// Every metric name in `snapshot` that the registry does not know,
/// prefixed with its section (`counter:` / `value:`). Empty means the
/// snapshot conforms to the schema.
pub fn unknown_metrics(snapshot: &MetricsSnapshot) -> Vec<String> {
    let mut unknown = Vec::new();
    for name in snapshot.counters.keys() {
        if !is_known_counter(name) {
            unknown.push(format!("counter:{name}"));
        }
    }
    for name in snapshot.values.keys() {
        if !is_known_value(name) {
            unknown.push(format!("value:{name}"));
        }
    }
    unknown
}

/// Every TMS-required metric *missing* from `snapshot`, prefixed with
/// its section. Empty means all scheduler recording sites fired.
pub fn missing_tms_metrics(snapshot: &MetricsSnapshot) -> Vec<String> {
    let mut missing = Vec::new();
    for name in TMS_REQUIRED_COUNTERS {
        if !snapshot.counters.contains_key(*name) {
            missing.push(format!("counter:{name}"));
        }
    }
    for name in TMS_REQUIRED_VALUES {
        if !snapshot.values.contains_key(*name) {
            missing.push(format!("value:{name}"));
        }
    }
    missing
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::Trace;

    #[test]
    fn registry_accepts_known_and_flags_unknown() {
        assert!(is_known_counter("tms.pruned.cost-bound"));
        assert!(is_known_counter("tms.reject.sync-exceeded"));
        assert!(is_known_counter("tms.reject.lost-to-baseline"));
        assert!(is_known_counter("tms.reuse.warm-attempts"));
        assert!(is_known_counter("tms.reuse.steps-replayed"));
        assert!(is_known_counter("tms.reuse.cross-ii-attempts"));
        assert!(is_known_counter("tms.reuse.cross-ii-steps-replayed"));
        assert!(is_known_counter("tms.adaptive.coarsened"));
        assert!(is_known_value("tms.pruned_per_loop"));
        assert!(is_known_counter("tms.place.scans"));
        assert!(is_known_counter("tms.place.probe.c1-reject-fast"));
        assert!(is_known_value("tms.place.eject_chain_depth"));
        assert!(is_known_counter("tmsd.requests"));
        assert!(is_known_counter("tmsd.cache.bypassed"));
        assert!(is_known_counter("tmsd.shed"));
        assert!(is_known_value("tmsd.queue_depth"));
        assert!(!is_known_counter("tms.prnued.cost-bound")); // typo
        assert!(!is_known_counter("tmsd.cache.hits")); // plural typo
        assert!(!is_known_value("tms.attempts")); // wrong section
    }

    #[test]
    fn profile_metrics_are_known_but_not_required_by_default_runs() {
        for name in TMS_PROFILE_COUNTERS {
            assert!(is_known_counter(name), "{name}");
            assert!(!TMS_REQUIRED_COUNTERS.contains(name), "{name}");
        }
        for name in TMS_PROFILE_VALUES {
            assert!(is_known_value(name), "{name}");
            assert!(!TMS_REQUIRED_VALUES.contains(name), "{name}");
        }
        let trace = Trace::enabled();
        trace.count("tms.place.scans", 3);
        let missing = missing_profile_metrics(&trace.metrics());
        assert!(missing.contains(&"counter:tms.place.forced".to_string()));
        assert!(missing.contains(&"value:tms.place.eject_chain_depth".to_string()));
        assert!(!missing.contains(&"counter:tms.place.scans".to_string()));
    }

    #[test]
    fn snapshot_validation_reports_sectioned_names() {
        let trace = Trace::enabled();
        trace.count("tms.attempts", 1);
        trace.count("totally.unknown", 1);
        trace.record("tms.attempts_per_loop", 1);
        trace.record("also.unknown", 2);
        let snap = trace.metrics();
        let unknown = unknown_metrics(&snap);
        assert_eq!(
            unknown,
            vec![
                "counter:totally.unknown".to_string(),
                "value:also.unknown".to_string()
            ]
        );
    }

    #[test]
    fn missing_tms_metrics_names_unfired_sites() {
        let trace = Trace::enabled();
        trace.count("tms.attempts", 1);
        let missing = missing_tms_metrics(&trace.metrics());
        assert!(missing.contains(&"counter:tms.pruned.cost-bound".to_string()));
        assert!(missing.contains(&"value:tms.pruned_per_loop".to_string()));
        assert!(!missing.contains(&"counter:tms.attempts".to_string()));
    }
}
