//! Minimal hand-rolled JSON emission. `tms-trace` is intentionally
//! dependency-free (even of the vendored `serde`), so the two exporters
//! share these few helpers instead.

use crate::sink::Histogram;

/// Append `s` as a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append the body of a `{"name": value, ...}` map (the caller writes
/// the opening `{`; this writes entries and the closing `}`), with each
/// value rendered by `write_val`.
pub fn write_map<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    write_val: impl Fn(&mut String, &V),
) {
    let mut first = true;
    for (name, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_str(out, name);
        out.push_str(": ");
        write_val(out, v);
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push('}');
}

/// Append a [`Histogram`] as a JSON object.
pub fn write_histogram(out: &mut String, h: &Histogram) {
    out.push_str(&format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
        h.count, h.sum, h.min, h.max
    ));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\n\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\u0001\"");
    }

    #[test]
    fn maps_render_sorted_entries() {
        let mut out = String::from("{");
        let entries = [("a".to_string(), 1u64), ("b".to_string(), 2u64)];
        write_map(&mut out, entries.iter().map(|(k, v)| (k, v)), |o, v| {
            o.push_str(&v.to_string())
        });
        assert_eq!(out, "{\n    \"a\": 1,\n    \"b\": 2\n  }");
    }

    #[test]
    fn empty_map_closes_immediately() {
        let mut out = String::from("{");
        let entries: [(String, u64); 0] = [];
        write_map(&mut out, entries.iter().map(|(k, v)| (k, v)), |o, v| {
            o.push_str(&v.to_string())
        });
        assert_eq!(out, "{}");
    }
}
