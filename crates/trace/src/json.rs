//! Minimal hand-rolled JSON emission. `tms-trace` is intentionally
//! dependency-free (even of the vendored `serde`), so the exporters
//! share these few helpers instead.

use crate::sink::Histogram;

/// Append `s` as a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u00");
                let n = c as u32;
                out.push(char::from_digit(n >> 4, 16).expect("nibble"));
                out.push(char::from_digit(n & 0xf, 16).expect("nibble"));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append `v` in decimal without going through `format!` — the Chrome
/// exporter calls this several times per event, and an intermediate
/// `String` per number dominated its profile.
pub fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ascii digits"));
}

/// Append the body of a `{"name": value, ...}` map (the caller writes
/// the opening `{`; this writes entries and the closing `}`), with each
/// value rendered by `write_val`.
pub fn write_map<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    write_val: impl Fn(&mut String, &V),
) {
    let mut first = true;
    for (name, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    ");
        write_str(out, name);
        out.push_str(": ");
        write_val(out, v);
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push('}');
}

/// Append a [`Histogram`] as a JSON object: the count/sum/min/max
/// summary, the p50/p95/p99 estimates, and the sparse power-of-two
/// bucket counts `[[index, count], ...]` that make two serialized
/// histograms mergeable without losing the percentile data.
pub fn write_histogram(out: &mut String, h: &Histogram) {
    out.push_str("{\"count\": ");
    push_u64(out, h.count);
    out.push_str(", \"sum\": ");
    push_u64(out, h.sum);
    out.push_str(", \"min\": ");
    push_u64(out, h.min);
    out.push_str(", \"max\": ");
    push_u64(out, h.max);
    out.push_str(", \"p50\": ");
    push_u64(out, h.p50());
    out.push_str(", \"p95\": ");
    push_u64(out, h.p95());
    out.push_str(", \"p99\": ");
    push_u64(out, h.p99());
    out.push_str(", \"buckets\": [");
    let mut first = true;
    for (i, &n) in h.buckets().iter().enumerate() {
        if n == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push('[');
        push_u64(out, i as u64);
        out.push(',');
        push_u64(out, n);
        out.push(']');
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\n\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\n\\u0001\"");
    }

    #[test]
    fn push_u64_matches_display() {
        let mut out = String::new();
        for v in [0u64, 1, 9, 10, 12345, u64::MAX] {
            out.clear();
            push_u64(&mut out, v);
            assert_eq!(out, v.to_string());
        }
    }

    #[test]
    fn maps_render_sorted_entries() {
        let mut out = String::from("{");
        let entries = [("a".to_string(), 1u64), ("b".to_string(), 2u64)];
        write_map(&mut out, entries.iter().map(|(k, v)| (k, v)), |o, v| {
            o.push_str(&v.to_string())
        });
        assert_eq!(out, "{\n    \"a\": 1,\n    \"b\": 2\n  }");
    }

    #[test]
    fn empty_map_closes_immediately() {
        let mut out = String::from("{");
        let entries: [(String, u64); 0] = [];
        write_map(&mut out, entries.iter().map(|(k, v)| (k, v)), |o, v| {
            o.push_str(&v.to_string())
        });
        assert_eq!(out, "{}");
    }

    #[test]
    fn histogram_json_carries_percentiles_and_buckets() {
        let mut h = Histogram::default();
        for v in 1..=100u64 {
            h.record_sample(v);
        }
        let mut out = String::new();
        write_histogram(&mut out, &h);
        assert!(out.contains("\"count\": 100"));
        assert!(out.contains("\"p50\""));
        assert!(out.contains("\"p99\""));
        assert!(out.contains("\"buckets\": [["));
    }
}
