//! The error type of the trace streaming/merge public API.
//!
//! The sink and merge paths used to mix `io::Result` with stringly
//! errors and the occasional `unwrap`; everything fallible now funnels
//! through [`TraceError`], which always names the file involved —
//! a sweep that dies on "Invalid argument" with no path is not
//! debuggable at 2am.

use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// What went wrong in a trace I/O or merge operation, and where.
#[derive(Debug)]
pub enum TraceError {
    /// An operating-system I/O failure on `path`.
    Io {
        /// The file being read or written.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// `path` held data the parser could not accept (a malformed spill
    /// line, a snapshot with a bad histogram, …).
    Malformed {
        /// The offending file.
        path: PathBuf,
        /// What exactly failed, with a line number where applicable.
        detail: String,
    },
}

impl TraceError {
    pub(crate) fn io(path: &Path, source: io::Error) -> TraceError {
        TraceError::Io {
            path: path.to_path_buf(),
            source,
        }
    }

    pub(crate) fn malformed(path: &Path, detail: impl Into<String>) -> TraceError {
        TraceError::Malformed {
            path: path.to_path_buf(),
            detail: detail.into(),
        }
    }

    /// The file the error concerns.
    pub fn path(&self) -> &Path {
        match self {
            TraceError::Io { path, .. } | TraceError::Malformed { path, .. } => path,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, source } => write!(f, "{}: {source}", path.display()),
            TraceError::Malformed { path, detail } => write!(f, "{}: {detail}", path.display()),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io { source, .. } => Some(source),
            TraceError::Malformed { .. } => None,
        }
    }
}
