//! The `.trace.ndjson` spill format: one event per line, newline-
//! delimited JSON.
//!
//! A [`crate::Trace::streaming`] sink writes completed events here as
//! its bounded buffer fills, so a traced `--specfp-cap 0` sweep never
//! holds more than the buffer cap of span events in memory. Each line
//! is a self-contained JSON object in Chrome-adjacent terms:
//!
//! ```json
//! {"ph":"X","cat":"sweep","name":"kernels","tid":0,"ts":12,"dur":3400,"args":{"loops":"18"}}
//! {"ph":"C","cat":"sim.vcounter","name":"sim.prune.log_len","tid":0,"ts":96,"args":{"value":7}}
//! ```
//!
//! `pid` is not stored — it is a pure function of `cat` (see
//! [`crate::chrome::pid_of_cat`]) and is re-derived at render time.
//! Span (`"ph":"X"`) args are strings; counter (`"ph":"C"`) args are
//! unsigned integers, the same distinction the Chrome exporter makes.
//! [`parse_line`] inverts [`write_ndjson_line`] exactly, which is what
//! lets `tms trace merge` reproduce the in-memory exporter's bytes.

use crate::json::{push_u64, write_str};
use crate::parse::{parse, Json};
use crate::sink::{Event, EventPhase};

/// An event parsed back from a spill file — same shape as
/// [`Event`] with owned strings.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEvent {
    /// Chrome phase.
    pub ph: EventPhase,
    /// Category.
    pub cat: String,
    /// Event name.
    pub name: String,
    /// Track (`tid`).
    pub track: u64,
    /// Timestamp (µs or cycles).
    pub ts_us: u64,
    /// Duration (µs or cycles); 0 for counters.
    pub dur_us: u64,
    /// Annotations in recording order. Counter values are canonical
    /// decimal integers.
    pub args: Vec<(String, String)>,
}

impl crate::chrome::ChromeEvent for OwnedEvent {
    fn phase(&self) -> EventPhase {
        self.ph
    }
    fn cat(&self) -> &str {
        &self.cat
    }
    fn name(&self) -> &str {
        &self.name
    }
    fn track(&self) -> u64 {
        self.track
    }
    fn ts_us(&self) -> u64 {
        self.ts_us
    }
    fn dur_us(&self) -> u64 {
        self.dur_us
    }
    fn args(&self) -> impl Iterator<Item = (&str, &str)> {
        self.args.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }
}

/// Append `ev` as one ndjson line (including the trailing newline).
pub fn write_ndjson_line(out: &mut String, ev: &Event) {
    match ev.ph {
        EventPhase::Complete => out.push_str("{\"ph\":\"X\",\"cat\":"),
        EventPhase::Counter => out.push_str("{\"ph\":\"C\",\"cat\":"),
    }
    write_str(out, ev.cat);
    out.push_str(",\"name\":");
    write_str(out, &ev.name);
    out.push_str(",\"tid\":");
    push_u64(out, ev.track);
    out.push_str(",\"ts\":");
    push_u64(out, ev.ts_us);
    if ev.ph == EventPhase::Complete {
        out.push_str(",\"dur\":");
        push_u64(out, ev.dur_us);
    }
    out.push_str(",\"args\":{");
    for (j, (k, v)) in ev.args.iter().enumerate() {
        if j > 0 {
            out.push(',');
        }
        write_str(out, k);
        out.push(':');
        if ev.ph == EventPhase::Counter {
            out.push_str(v);
        } else {
            write_str(out, v);
        }
    }
    out.push_str("}}\n");
}

fn field_u64(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer '{key}'"))
}

/// Parse one spill line back into an [`OwnedEvent`].
pub fn parse_line(line: &str) -> Result<OwnedEvent, String> {
    let v = parse(line)?;
    let ph = match v.get("ph").and_then(Json::as_str) {
        Some("X") => EventPhase::Complete,
        Some("C") => EventPhase::Counter,
        other => return Err(format!("bad ph {other:?}")),
    };
    let cat = v
        .get("cat")
        .and_then(Json::as_str)
        .ok_or("missing 'cat'")?
        .to_string();
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing 'name'")?
        .to_string();
    let track = field_u64(&v, "tid")?;
    let ts_us = field_u64(&v, "ts")?;
    let dur_us = match ph {
        EventPhase::Complete => field_u64(&v, "dur")?,
        EventPhase::Counter => 0,
    };
    let args_obj = v
        .get("args")
        .and_then(Json::as_obj)
        .ok_or("missing 'args' object")?;
    let mut args = Vec::with_capacity(args_obj.len());
    for (k, val) in args_obj {
        let rendered = match (ph, val) {
            (EventPhase::Complete, Json::Str(s)) => s.clone(),
            (EventPhase::Counter, Json::U64(n)) => n.to_string(),
            _ => return Err(format!("arg '{k}' has the wrong type for ph")),
        };
        args.push((k.clone(), rendered));
    }
    Ok(OwnedEvent {
        ph,
        cat,
        name,
        track,
        ts_us,
        dur_us,
        args,
    })
}

/// Parse a whole spill file (empty lines are not produced and not
/// accepted). Errors carry the 1-based line number.
pub fn parse_spill(text: &str) -> Result<Vec<OwnedEvent>, String> {
    text.lines()
        .enumerate()
        .map(|(i, line)| parse_line(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

/// Outcome of [`parse_spill_lossy`]: the recovered events plus a note
/// about the dropped tail, if the file was truncated.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredSpill {
    /// Every event on a complete, valid line.
    pub events: Vec<OwnedEvent>,
    /// Human-readable description of the dropped final line (`None`
    /// when the file was fully intact).
    pub truncated: Option<String>,
}

/// Crash-tolerant spill parse. The sink writes line-atomically, so a
/// killed process (or an injected torn write) damages at most the
/// **final** line of the file: this parser recovers the valid prefix
/// and reports the dropped tail instead of failing the whole file. A
/// bad line anywhere *before* the end is not a truncation artefact —
/// that stays a hard error, as in [`parse_spill`].
pub fn parse_spill_lossy(text: &str) -> Result<RecoveredSpill, String> {
    let total = text.lines().count();
    let mut events = Vec::with_capacity(total);
    for (i, line) in text.lines().enumerate() {
        match parse_line(line) {
            Ok(ev) => events.push(ev),
            Err(e) if i + 1 == total => {
                return Ok(RecoveredSpill {
                    events,
                    truncated: Some(format!(
                        "dropped truncated final line {} ({} byte(s): {e})",
                        i + 1,
                        line.len()
                    )),
                });
            }
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok(RecoveredSpill {
        events,
        truncated: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, args: Vec<(&'static str, String)>) -> Event {
        Event {
            ph: EventPhase::Complete,
            cat: "sweep",
            name: name.to_string(),
            track: 3,
            ts_us: 10,
            dur_us: 20,
            args,
        }
    }

    #[test]
    fn spans_round_trip_exactly() {
        let ev = span(
            "ker\"nel\n",
            vec![("loops", "18".into()), ("k", "v\\x".into())],
        );
        let mut line = String::new();
        write_ndjson_line(&mut line, &ev);
        assert!(line.ends_with('\n'));
        let back = parse_line(line.trim_end()).unwrap();
        assert_eq!(back.ph, EventPhase::Complete);
        assert_eq!(back.cat, "sweep");
        assert_eq!(back.name, "ker\"nel\n");
        assert_eq!((back.track, back.ts_us, back.dur_us), (3, 10, 20));
        assert_eq!(
            back.args,
            vec![
                ("loops".to_string(), "18".to_string()),
                ("k".to_string(), "v\\x".to_string())
            ]
        );
    }

    #[test]
    fn counters_round_trip_with_numeric_args() {
        let ev = Event {
            ph: EventPhase::Counter,
            cat: "sim.vcounter",
            name: "sim.prune.log_len".to_string(),
            track: 0,
            ts_us: 96,
            dur_us: 0,
            args: vec![("value", "7".to_string())],
        };
        let mut line = String::new();
        write_ndjson_line(&mut line, &ev);
        assert!(line.contains("\"args\":{\"value\":7}"));
        assert!(!line.contains("\"dur\""));
        let back = parse_line(line.trim_end()).unwrap();
        assert_eq!(back.ph, EventPhase::Counter);
        assert_eq!(back.args, vec![("value".to_string(), "7".to_string())]);
    }

    #[test]
    fn lossy_parse_recovers_the_valid_prefix() {
        let ev = span("a", vec![("k", "v".into())]);
        let mut text = String::new();
        write_ndjson_line(&mut text, &ev);
        write_ndjson_line(&mut text, &ev);
        let whole_len = text.len();
        write_ndjson_line(&mut text, &ev);
        // Tear the final line mid-frame, as a killed process would.
        let torn = &text[..whole_len + 20];
        assert!(parse_spill(torn).is_err(), "strict parse must reject");
        let rec = parse_spill_lossy(torn).unwrap();
        assert_eq!(rec.events.len(), 2);
        let note = rec.truncated.expect("truncation must be reported");
        assert!(note.contains("line 3"), "{note}");

        // An intact file recovers everything with no note.
        let rec = parse_spill_lossy(&text).unwrap();
        assert_eq!(rec.events.len(), 3);
        assert_eq!(rec.truncated, None);
        assert_eq!(parse_spill_lossy("").unwrap().events.len(), 0);
    }

    #[test]
    fn lossy_parse_still_rejects_mid_file_corruption() {
        let ev = span("a", vec![]);
        let mut text = String::from("{\"ph\":\"X\"}\n");
        write_ndjson_line(&mut text, &ev);
        let err = parse_spill_lossy(&text).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn parse_spill_reports_line_numbers() {
        let err = parse_spill("{\"ph\":\"X\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let ev = span("a", vec![]);
        let mut text = String::new();
        write_ndjson_line(&mut text, &ev);
        write_ndjson_line(&mut text, &ev);
        assert_eq!(parse_spill(&text).unwrap().len(), 2);
    }
}
