//! Zero-dependency structured tracing and metrics for the TMS pipeline.
//!
//! The paper's whole contribution is a cost model that *predicts* where
//! cycles go; this crate is what lets the implementation *show* where
//! they went. One [`Trace`] handle threads through the scheduler, the
//! SpMT engine and the sweep/bench drivers and collects
//!
//! * **counters** — named monotonic sums (`tms.attempts`,
//!   `sim.cycles.commit`, …). Addition is commutative, so counters
//!   recorded from [`tms_core::par`]-style worker pools are
//!   deterministic at any worker count *provided the recording sites
//!   are* (the scheduler records its accounting in the serial fold,
//!   keyed by candidate index, never by arrival order);
//! * **value histograms** — named summaries of deterministic
//!   quantities (store-log lengths, attempt counts): exact
//!   `count`/`sum`/`min`/`max` plus power-of-two buckets from which
//!   p50/p95/p99 are estimated deterministically;
//! * **timers** — the same summaries over wall-clock span durations
//!   (nondeterministic by nature, reported separately);
//! * **span events** — begin/duration records with monotonic
//!   timestamps, exportable as a Chrome `trace_event` JSON that
//!   `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) load
//!   directly. The SpMT engine also emits *virtual-time* events (cycle
//!   timestamps) so a loop's thread timeline can be inspected visually;
//! * **counter samples** — `"ph":"C"` series points (store-log length,
//!   per-core occupancy, attempts per loop) that Perfetto plots as
//!   counter tracks: resource pressure over time, not just end totals.
//!
//! # Bounded memory: streaming sinks
//!
//! [`Trace::enabled`] buffers every event in memory — fine for one
//! loop, unacceptable for a `--specfp-cap 0` sweep. [`Trace::streaming`]
//! spills completed events to a `.trace.ndjson` file (one JSON object
//! per line, see [`stream`]) through a buffer of at most `buffer_cap`
//! events, while counters/histograms stay resident; the offline
//! [`merge`] step (`tms trace merge`) converts one-or-many spill files
//! into the same sorted Chrome document the in-memory sink renders —
//! byte-identical for the same events.
//!
//! # Robustness: retry, degrade, recover
//!
//! Spill lines are written **line-atomically** (full frame + newline in
//! one write), so a killed process tears at most the final line —
//! which [`stream::parse_spill_lossy`] / [`merge::events_from_spills_lossy`]
//! drop and report while recovering everything before it. Transient
//! write errors are retried with bounded backoff; on exhaustion (or a
//! torn/persistent failure) the sink **degrades to the in-memory
//! mode** — no event or metric is lost, the memory bound is traded
//! away, and the condition is recorded as the `trace.spill.degraded`
//! counter plus [`Trace::spill_degraded`]. Every fallible public entry
//! point returns a [`TraceError`] naming the file involved; the final
//! `Drop` flush never panics (swallowed failures are counted by
//! [`drop_flush_failures`] and logged once). The whole ladder is
//! exercised deterministically by `tms-verify --faults` through
//! [`Trace::streaming_faulted`].
//!
//! # Sharding: metrics are a monoid
//!
//! [`MetricsSnapshot`] merges commutatively and associatively
//! ([`MetricsSnapshot::merge`]): counters add, histograms combine
//! exactly (including their percentile buckets). A sweep sharded
//! across processes with `--shard i/n` merges its per-shard snapshots
//! (`tms-verify merge-metrics`) into byte-for-byte the single-process
//! report.
//!
//! # Disabled cost
//!
//! Tracing is **off by default**: [`Trace::disabled`] carries no sink
//! at all (a sealed no-op — the sink type is private and cannot be
//! constructed empty), and every recording method bails on one pointer
//! check before any formatting or locking. `sched-throughput` asserts
//! the disabled path is within noise of the un-instrumented baseline.
//!
//! ```
//! use tms_trace::Trace;
//!
//! let trace = Trace::enabled();
//! {
//!     let mut span = trace.span("demo", "phase");
//!     span.arg("loop", "daxpy");
//!     trace.count("demo.items", 3);
//!     trace.record("demo.len", 7);
//! }
//! assert_eq!(trace.counter("demo.items"), 3);
//! assert!(trace.chrome_json().contains("\"traceEvents\""));
//!
//! let off = Trace::disabled();
//! off.count("demo.items", 3); // no-op, near-zero cost
//! assert_eq!(off.counter("demo.items"), 0);
//! ```

mod chrome;
mod error;
mod json;
pub mod merge;
mod parse;
pub mod schema;
mod sink;
pub mod stream;

pub use chrome::{ChromeEvent, PID_VIRTUAL, PID_WALL};
pub use error::TraceError;
pub use sink::{
    drop_flush_failures, Event, EventPhase, Histogram, MetricsSnapshot, SpanGuard, Trace,
    HISTOGRAM_BUCKETS,
};
