//! Criterion bench for the thread-granularity sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use tms_bench::{granularity, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let rows = granularity::run(&cfg);
    println!("\n{}", granularity::render(&rows));

    let mut g = c.benchmark_group("granularity");
    g.sample_size(10);
    g.bench_function("unroll_sweep", |b| b.iter(|| granularity::run(&cfg).len()));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
