//! Criterion bench regenerating Figure 5 (TMS vs single-threaded code
//! on the DOACROSS suite).

use criterion::{criterion_group, criterion_main, Criterion};
use tms_bench::{fig5, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let rows = fig5::run(&cfg);
    println!("\n{}", fig5::render(&rows));

    let mut g = c.benchmark_group("fig5");
    g.sample_size(10);
    g.bench_function("doacross_vs_single_threaded", |b| {
        b.iter(|| fig5::run(&cfg).len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
