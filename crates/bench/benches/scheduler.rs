//! Microbenchmarks of the schedulers and simulator themselves —
//! throughput of SMS, TMS and the SpMT engine on representative loops.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tms_bench::ExperimentConfig;
use tms_core::cost::CostModel;
use tms_core::{schedule_sms, schedule_tms, TmsConfig};
use tms_machine::{ArchParams, MachineModel};
use tms_sim::simulate_spmt;
use tms_workloads::{doacross_suite, figure1};

fn bench(c: &mut Criterion) {
    let machine = MachineModel::icpp2008();
    let arch = ArchParams::icpp2008();
    let model = CostModel::new(arch.costs, arch.ncore);
    let cfg = ExperimentConfig::quick();

    let mut g = c.benchmark_group("scheduler");
    g.sample_size(20);

    let fig1 = figure1();
    g.bench_function("sms_figure1", |b| {
        b.iter(|| schedule_sms(&fig1, &machine).unwrap().schedule.ii())
    });
    g.bench_function("tms_figure1", |b| {
        b.iter(|| {
            schedule_tms(&fig1, &machine, &model, &TmsConfig::default())
                .unwrap()
                .ii
        })
    });

    for l in doacross_suite(cfg.seed) {
        if l.benchmark != "art" && l.benchmark != "equake" {
            continue;
        }
        g.bench_with_input(BenchmarkId::new("tms", l.ddg.name()), &l.ddg, |b, ddg| {
            b.iter(|| {
                schedule_tms(ddg, &machine, &model, &TmsConfig::default())
                    .unwrap()
                    .ii
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("simulator");
    g.sample_size(20);
    let sms = schedule_sms(&fig1, &machine).unwrap().schedule;
    let sim_cfg = cfg.sim();
    g.bench_function("spmt_figure1_64iters", |b| {
        b.iter(|| simulate_spmt(&fig1, &sms, &sim_cfg).stats.total_cycles)
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
