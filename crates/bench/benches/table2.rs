//! Criterion bench regenerating Table 2 (scheduling metrics, SMS vs
//! TMS). Times one benchmark population's full schedule sweep; prints
//! the regenerated rows once.

use criterion::{criterion_group, criterion_main, Criterion};
use tms_bench::{table2, ExperimentConfig};
use tms_workloads::specfp_profiles;

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();

    // Print the regenerated table once per bench invocation.
    let rows = table2::run(&cfg);
    println!("\n{}", table2::render(&rows));

    let mut g = c.benchmark_group("table2");
    g.sample_size(10);
    // Time the smallest population (art: 10 loops) as the unit of work.
    let art = specfp_profiles()
        .into_iter()
        .find(|p| p.name == "art")
        .unwrap();
    g.bench_function("schedule_art_population", |b| {
        b.iter(|| {
            let loops = art.generate(cfg.seed);
            loops
                .iter()
                .map(|l| tms_bench::runner::schedule_both(l, &cfg).tms_metrics.ii)
                .sum::<u32>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
