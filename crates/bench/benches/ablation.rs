//! Criterion bench regenerating the §5.2 speculation ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use tms_bench::{ablation, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let rows = ablation::run(&cfg);
    println!("\n{}", ablation::render(&rows));

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    g.bench_function("speculation_on_vs_off", |b| {
        b.iter(|| ablation::run(&cfg).len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
