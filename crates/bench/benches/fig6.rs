//! Criterion bench regenerating Figure 6 (sync stalls, SEND/RECV
//! increase and communication overhead, TMS vs SMS).

use criterion::{criterion_group, criterion_main, Criterion};
use tms_bench::{fig6, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let rows = fig6::run(&cfg);
    println!("\n{}", fig6::render(&rows));

    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("doacross_sync_comparison", |b| {
        b.iter(|| fig6::run(&cfg).len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
