//! Criterion bench regenerating Table 3 (the DOACROSS suite's
//! TMS-scheduled metrics).

use criterion::{criterion_group, criterion_main, Criterion};
use tms_bench::{table3, ExperimentConfig};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();
    let rows = table3::run(&cfg);
    println!("\n{}", table3::render(&rows));

    let mut g = c.benchmark_group("table3");
    g.sample_size(10);
    g.bench_function("doacross_suite_metrics", |b| {
        b.iter(|| table3::run(&cfg).len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
