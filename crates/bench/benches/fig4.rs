//! Criterion bench regenerating Figure 4 (TMS-over-SMS speedups on the
//! quad-core SpMT simulator). The full population is expensive; the
//! bench times one benchmark and prints a reduced-population figure.

use criterion::{criterion_group, criterion_main, Criterion};
use tms_bench::runner::{schedule_both, simulate, speedup_pct};
use tms_bench::ExperimentConfig;
use tms_workloads::specfp_profiles;

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::quick();

    // Reduced regeneration: 4 loops per benchmark, quick iterations.
    println!("\n== Figure 4 (reduced: ≤4 loops per benchmark) ==");
    for p in specfp_profiles() {
        let loops = p.generate(cfg.seed);
        let mut sms = 0u64;
        let mut tms = 0u64;
        for ddg in loops.iter().take(4) {
            let r = schedule_both(ddg, &cfg);
            sms += simulate(ddg, &r.sms, &cfg).total_cycles;
            tms += simulate(ddg, &r.tms, &cfg).total_cycles;
        }
        println!(
            "  {:<9} loop speedup {:+6.1}%",
            p.name,
            speedup_pct(sms, tms)
        );
    }

    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    let art = specfp_profiles()
        .into_iter()
        .find(|p| p.name == "art")
        .unwrap();
    let loops = art.generate(cfg.seed);
    let runs: Vec<_> = loops.iter().map(|l| schedule_both(l, &cfg)).collect();
    g.bench_function("simulate_art_population_both", |b| {
        b.iter(|| {
            loops
                .iter()
                .zip(&runs)
                .map(|(l, r)| {
                    simulate(l, &r.sms, &cfg).total_cycles + simulate(l, &r.tms, &cfg).total_cycles
                })
                .sum::<u64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
