//! Scheduling-throughput benchmark: serial vs parallel TMS over each
//! workload family, plus a serial-vs-parallel run of the full
//! verification sweep.
//!
//! This is the perf counterpart of the determinism guarantees: the
//! per-loop fan-out ([`tms_core::par::par_map`]) and the wavefront
//! candidate search change *wall-clock only*, so this benchmark reports
//! loops/second and speedup per family and asserts (in
//! `verify_sweep.reports_identical`) that the verification report is
//! byte-for-byte the same at both worker counts. The `sched-throughput`
//! binary writes the result to `results/bench_sched.json`.

use crate::config::ExperimentConfig;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;
use tms_core::cost::CostModel;
use tms_core::par::{par_map_with, Parallelism};
use tms_core::sms::SchedScratch;
use tms_core::{schedule_tms, schedule_tms_traced, TmsConfig};
use tms_ddg::Ddg;
use tms_trace::Trace;
use tms_verify::fuzz::fuzz_ddgs;
use tms_verify::sweep::{run_sweep, SweepConfig};
use tms_workloads::{doacross_suite, kernels, livermore_suite, specfp_profiles};

/// Knobs of one throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Worker threads for the parallel passes (0 = all cores).
    pub jobs: Parallelism,
    /// Master seed for workload and fuzz generation.
    pub seed: u64,
    /// Fuzzed DDGs in the `fuzz` family.
    pub fuzz: usize,
    /// Smoke mode: tiny populations, one timing pass — a CI-friendly
    /// sanity run, not a measurement.
    pub smoke: bool,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            jobs: Parallelism::Auto,
            seed: 0x7315_2008,
            fuzz: 150,
            smoke: false,
        }
    }
}

/// One family's serial vs parallel timing.
#[derive(Debug, Clone, Serialize)]
pub struct FamilyThroughput {
    /// Workload family name.
    pub family: String,
    /// Loops scheduled.
    pub loops: usize,
    /// Serial wall-clock (seconds).
    pub serial_s: f64,
    /// Parallel wall-clock (seconds).
    pub parallel_s: f64,
    /// `serial_s / parallel_s`.
    pub speedup: f64,
    /// Loops per second, serial.
    pub loops_per_sec_serial: f64,
    /// Loops per second, parallel.
    pub loops_per_sec_parallel: f64,
}

/// Serial vs parallel timing of the full verification sweep, plus the
/// determinism check the parallelism is contracted to uphold.
#[derive(Debug, Clone, Serialize)]
pub struct SweepThroughput {
    /// Serial sweep wall-clock (seconds).
    pub serial_s: f64,
    /// Parallel sweep wall-clock (seconds).
    pub parallel_s: f64,
    /// `serial_s / parallel_s`.
    pub speedup: f64,
    /// Whether the two sweeps' JSON reports are byte-identical.
    pub reports_identical: bool,
}

/// Disabled-tracing cost check: the same loop population scheduled
/// serially through the un-instrumented entry point
/// ([`schedule_tms`]), through the instrumented one with a disabled
/// [`Trace`], and with tracing enabled. The first two run identical
/// code up to one pointer-null check per recording site, so
/// `disabled_overhead` must sit within measurement noise of 1.0 —
/// `sched-throughput` asserts it (< 2% expected; the gate is
/// deliberately looser to absorb machine jitter).
#[derive(Debug, Clone, Serialize)]
pub struct TraceOverhead {
    /// Loops scheduled per pass.
    pub loops: usize,
    /// Timing passes per variant (best-of).
    pub reps: usize,
    /// Best wall-clock via `schedule_tms` (seconds).
    pub baseline_s: f64,
    /// Best wall-clock via `schedule_tms_traced` + disabled sink.
    pub disabled_trace_s: f64,
    /// Best wall-clock via `schedule_tms_traced` + enabled sink.
    pub enabled_trace_s: f64,
    /// `disabled_trace_s / baseline_s` — 1.0 means tracing-off is free.
    pub disabled_overhead: f64,
}

/// Aggregated wall-clock of one scheduler phase over the traced pass.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseStat {
    /// Phase name (the `tms.phase.` timer suffix: `order`, `ldp`,
    /// `sms_baseline`, `frames`, `place`, `verify`).
    pub phase: String,
    /// Times the phase timer fired.
    pub calls: u64,
    /// Total wall-clock across all calls (seconds).
    pub total_s: f64,
    /// Share of the summed per-phase time (0..1).
    pub share: f64,
    /// Median per-call wall-clock (nanoseconds, from the timer's
    /// power-of-two histogram — an upper bucket bound, not an exact
    /// order statistic).
    pub p50_ns: u64,
    /// 95th-percentile per-call wall-clock (nanoseconds, same caveat).
    pub p95_ns: u64,
}

/// Where scheduling time goes: one dedicated traced pass over the
/// specfp family (separate from the timing passes, which run
/// un-instrumented), with every `tms.phase.*` timer aggregated. Shares
/// answer "which phase do I optimise next" without a profiler.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseBreakdown {
    /// Family the traced pass scheduled.
    pub family: String,
    /// Loops in the pass.
    pub loops: usize,
    /// Per-phase totals, in descending `total_s` order.
    pub phases: Vec<PhaseStat>,
}

/// Chrome-exporter micro-benchmark: render a synthetic population of
/// span + counter events to the `trace_event` JSON and report the
/// sustained rate. This is the path `fix per-event allocations` claims
/// to have sped up — the numbers keep it honest.
#[derive(Debug, Clone, Serialize)]
pub struct RenderBench {
    /// Events in the synthetic trace (half spans, half counters).
    pub events: usize,
    /// Timing passes (best-of).
    pub reps: usize,
    /// Best render wall-clock (seconds).
    pub render_s: f64,
    /// `events / render_s`.
    pub events_per_sec: f64,
    /// Rendered document size (bytes).
    pub bytes: usize,
}

/// The `results/bench_sched.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputReport {
    /// Worker threads the parallel passes used.
    pub jobs: usize,
    /// `std::thread::available_parallelism()` on the machine that ran
    /// the benchmark — speedup is bounded by this, whatever `jobs` says.
    pub available_parallelism: usize,
    /// Whether the parallel-vs-serial speedup columns mean anything on
    /// this host. On a single-core machine the "parallel" pass is the
    /// serial path plus thread-pool overhead, so `speedup < 1` is the
    /// expected shape, not a regression — consumers (and the perf
    /// gate) must skip speedup comparisons when this is false.
    pub speedup_meaningful: bool,
    /// True when this was a smoke run (timings not meaningful).
    pub smoke: bool,
    /// Master seed of the run.
    pub seed: u64,
    /// Per-family timings.
    pub families: Vec<FamilyThroughput>,
    /// Totals across families.
    pub total: FamilyThroughput,
    /// The verification-sweep comparison.
    pub verify_sweep: SweepThroughput,
    /// Per-phase scheduler time breakdown (dedicated traced pass).
    pub phase_breakdown: PhaseBreakdown,
    /// Disabled-tracing cost comparison.
    pub trace_overhead: TraceOverhead,
    /// Chrome-exporter render micro-benchmark.
    pub render_bench: RenderBench,
}

fn family_populations(cfg: &ThroughputConfig) -> Vec<(String, Vec<Ddg>)> {
    let specfp_cap = if cfg.smoke { 2 } else { 6 };
    let mut specfp: Vec<Ddg> = Vec::new();
    for p in specfp_profiles() {
        specfp.extend(p.generate(cfg.seed).into_iter().take(specfp_cap));
    }
    let mut fams = vec![
        ("kernels".to_string(), kernels::all_kernels()),
        ("livermore".to_string(), livermore_suite()),
        (
            "doacross".to_string(),
            doacross_suite(cfg.seed)
                .into_iter()
                .map(|l| l.ddg)
                .collect(),
        ),
        ("specfp".to_string(), specfp),
        (
            "fuzz".to_string(),
            fuzz_ddgs(if cfg.smoke { 12 } else { cfg.fuzz }, cfg.seed),
        ),
    ];
    if cfg.smoke {
        for (_, loops) in &mut fams {
            loops.truncate(6);
        }
    }
    fams
}

/// Schedule every loop of `ddgs` with TMS under the given worker count,
/// returning the wall-clock seconds. The schedules themselves are
/// discarded (through [`black_box`] so the work is not optimised away).
fn time_family(ddgs: &[Ddg], jobs: Parallelism, cfg: &ExperimentConfig) -> f64 {
    let machine = cfg.machine();
    let arch = cfg.arch();
    let model = CostModel::new(arch.costs, arch.ncore);
    let tms_cfg = TmsConfig::default();
    let t0 = Instant::now();
    let results = par_map_with(jobs, ddgs, SchedScratch::new, |_scratch, _, ddg| {
        schedule_tms(ddg, &machine, &model, &tms_cfg)
            .map(|r| (r.ii, r.cost_key))
            .ok()
    });
    black_box(results);
    t0.elapsed().as_secs_f64()
}

fn ratio(n: f64, d: f64) -> f64 {
    if d > 0.0 {
        n / d
    } else {
        0.0
    }
}

/// One serial traced pass over `ddgs`, aggregating every `tms.phase.*`
/// timer. Runs apart from the timing passes so instrumentation cost
/// never leaks into the throughput numbers.
fn measure_phase_breakdown(family: &str, ddgs: &[Ddg], exp: &ExperimentConfig) -> PhaseBreakdown {
    let machine = exp.machine();
    let arch = exp.arch();
    let model = CostModel::new(arch.costs, arch.ncore);
    let tms_cfg = TmsConfig::default();
    let trace = Trace::enabled();
    for ddg in ddgs {
        black_box(
            schedule_tms_traced(ddg, &machine, &model, &tms_cfg, &trace)
                .map(|r| (r.ii, r.cost_key))
                .ok(),
        );
    }
    let timers = trace.timers_with_prefix("tms.phase.");
    let total_ns: u64 = timers.iter().map(|(_, h)| h.sum).sum();
    let mut phases: Vec<PhaseStat> = timers
        .into_iter()
        .map(|(name, h)| PhaseStat {
            phase: name.strip_prefix("tms.phase.").unwrap_or(&name).to_string(),
            calls: h.count,
            total_s: h.sum as f64 / 1e9,
            share: ratio(h.sum as f64, total_ns as f64),
            p50_ns: h.p50(),
            p95_ns: h.p95(),
        })
        .collect();
    phases.sort_by(|a, b| b.total_s.total_cmp(&a.total_s).then(a.phase.cmp(&b.phase)));
    PhaseBreakdown {
        family: family.to_string(),
        loops: ddgs.len(),
        phases,
    }
}

/// Measure the disabled-tracing overhead on `ddgs`, serial, best-of-
/// `reps` per variant. Variants are interleaved (b, d, e, b, d, e, …)
/// so slow drift in machine load hits all three alike.
fn measure_trace_overhead(ddgs: &[Ddg], reps: usize, exp: &ExperimentConfig) -> TraceOverhead {
    let machine = exp.machine();
    let arch = exp.arch();
    let model = CostModel::new(arch.costs, arch.ncore);
    let tms_cfg = TmsConfig::default();
    let time_pass = |trace: Option<&Trace>| {
        let t0 = Instant::now();
        for ddg in ddgs {
            let r = match trace {
                None => schedule_tms(ddg, &machine, &model, &tms_cfg),
                Some(t) => schedule_tms_traced(ddg, &machine, &model, &tms_cfg, t),
            };
            black_box(r.map(|r| (r.ii, r.cost_key)).ok());
        }
        t0.elapsed().as_secs_f64()
    };
    let disabled = Trace::disabled();
    let (mut baseline_s, mut disabled_s, mut enabled_s) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        baseline_s = baseline_s.min(time_pass(None));
        disabled_s = disabled_s.min(time_pass(Some(&disabled)));
        let enabled = Trace::enabled();
        enabled_s = enabled_s.min(time_pass(Some(&enabled)));
    }
    TraceOverhead {
        loops: ddgs.len(),
        reps: reps.max(1),
        baseline_s,
        disabled_trace_s: disabled_s,
        enabled_trace_s: enabled_s,
        disabled_overhead: ratio(disabled_s, baseline_s),
    }
}

/// Time the Chrome exporter on a synthetic trace of `events` records
/// (alternating virtual-time spans and counter samples, realistic arg
/// shapes), best-of-`reps`.
fn measure_render(events: usize, reps: usize) -> RenderBench {
    let trace = Trace::enabled();
    for i in 0..events as u64 {
        if i % 2 == 0 {
            trace.event_at(
                "sim.vthread",
                || format!("t{i}"),
                i % 8,
                i * 3,
                2,
                || {
                    vec![
                        ("thread", i.to_string()),
                        ("commit_end", (i * 3 + 2).to_string()),
                    ]
                },
            );
        } else {
            trace.counter_sample(
                "sim.vcounter",
                || "sim.prune.log_len".to_string(),
                0,
                i * 3,
                i % 13,
            );
        }
    }
    let mut render_s = f64::INFINITY;
    let mut bytes = 0usize;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let json = trace.chrome_json();
        render_s = render_s.min(t0.elapsed().as_secs_f64());
        bytes = json.len();
        black_box(json);
    }
    RenderBench {
        events,
        reps: reps.max(1),
        render_s,
        events_per_sec: ratio(events as f64, render_s),
        bytes,
    }
}

/// Run the whole benchmark.
pub fn run(cfg: &ThroughputConfig) -> ThroughputReport {
    let exp = ExperimentConfig::default();
    let fams = family_populations(cfg);
    let mut families = Vec::new();
    let (mut tot_loops, mut tot_serial, mut tot_parallel) = (0usize, 0.0f64, 0.0f64);
    for (name, ddgs) in &fams {
        // Parallel first, then serial: the first pass also warms the
        // workload generation caches out of the comparison.
        let parallel_s = time_family(ddgs, cfg.jobs, &exp);
        let serial_s = time_family(ddgs, Parallelism::Serial, &exp);
        tot_loops += ddgs.len();
        tot_serial += serial_s;
        tot_parallel += parallel_s;
        families.push(FamilyThroughput {
            family: name.clone(),
            loops: ddgs.len(),
            serial_s,
            parallel_s,
            speedup: ratio(serial_s, parallel_s),
            loops_per_sec_serial: ratio(ddgs.len() as f64, serial_s),
            loops_per_sec_parallel: ratio(ddgs.len() as f64, parallel_s),
        });
    }
    let total = FamilyThroughput {
        family: "total".to_string(),
        loops: tot_loops,
        serial_s: tot_serial,
        parallel_s: tot_parallel,
        speedup: ratio(tot_serial, tot_parallel),
        loops_per_sec_serial: ratio(tot_loops as f64, tot_serial),
        loops_per_sec_parallel: ratio(tot_loops as f64, tot_parallel),
    };

    // The verification sweep, serial vs parallel, with the reports
    // compared byte-for-byte — the determinism contract, enforced on
    // every benchmark run.
    let sweep_cfg = SweepConfig {
        seed: cfg.seed,
        fuzz: if cfg.smoke { 8 } else { 60 },
        specfp_cap: if cfg.smoke { 1 } else { 3 },
        no_sim: true,
        quick: true,
        jobs: Parallelism::Serial,
        ..Default::default()
    };
    let t0 = Instant::now();
    let serial_report = run_sweep(&sweep_cfg).report.to_json();
    let sweep_serial_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let parallel_report = run_sweep(&SweepConfig {
        jobs: cfg.jobs,
        ..sweep_cfg
    })
    .report
    .to_json();
    let sweep_parallel_s = t0.elapsed().as_secs_f64();

    // Per-phase breakdown on the heaviest family (specfp — it
    // dominates total scheduling time), traced apart from the timing
    // passes above.
    let phase_breakdown = {
        let (name, ddgs) = fams
            .iter()
            .find(|(name, _)| name == "specfp")
            .expect("specfp family always present");
        measure_phase_breakdown(name, ddgs, &exp)
    };

    // Disabled-tracing cost on the two hand-written families (stable
    // populations; large enough to time, small enough to repeat).
    let mut overhead_pop: Vec<Ddg> = kernels::all_kernels();
    if !cfg.smoke {
        overhead_pop.extend(livermore_suite());
    }
    let trace_overhead = measure_trace_overhead(&overhead_pop, if cfg.smoke { 1 } else { 3 }, &exp);
    let render_bench = if cfg.smoke {
        measure_render(2_000, 1)
    } else {
        measure_render(50_000, 3)
    };

    let available_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    ThroughputReport {
        jobs: cfg.jobs.workers(),
        available_parallelism,
        speedup_meaningful: available_parallelism > 1,
        smoke: cfg.smoke,
        seed: cfg.seed,
        families,
        total,
        verify_sweep: SweepThroughput {
            serial_s: sweep_serial_s,
            parallel_s: sweep_parallel_s,
            speedup: ratio(sweep_serial_s, sweep_parallel_s),
            reports_identical: serial_report == parallel_report,
        },
        phase_breakdown,
        trace_overhead,
        render_bench,
    }
}

/// Human-readable rendering of the report.
pub fn render(r: &ThroughputReport) -> String {
    let mut out = format!(
        "sched-throughput: jobs={} available={}{}{}\n\
         {:>10} {:>6} {:>9} {:>9} {:>8} {:>12} {:>12}\n",
        r.jobs,
        r.available_parallelism,
        if r.smoke { " (smoke)" } else { "" },
        if r.speedup_meaningful {
            ""
        } else {
            " (single core: speedup columns not meaningful)"
        },
        "family",
        "loops",
        "serial_s",
        "par_s",
        "speedup",
        "loops/s(1)",
        "loops/s(N)",
    );
    for f in r.families.iter().chain(std::iter::once(&r.total)) {
        out.push_str(&format!(
            "{:>10} {:>6} {:>9.3} {:>9.3} {:>7.2}x {:>12.1} {:>12.1}\n",
            f.family,
            f.loops,
            f.serial_s,
            f.parallel_s,
            f.speedup,
            f.loops_per_sec_serial,
            f.loops_per_sec_parallel,
        ));
    }
    out.push_str(&format!(
        "verify sweep: serial {:.3}s parallel {:.3}s ({:.2}x), reports identical: {}\n",
        r.verify_sweep.serial_s,
        r.verify_sweep.parallel_s,
        r.verify_sweep.speedup,
        r.verify_sweep.reports_identical,
    ));
    let phases = r
        .phase_breakdown
        .phases
        .iter()
        .map(|p| {
            format!(
                "{} {:.1}% ({:.3}s/{}, p50 {}ns p95 {}ns)",
                p.phase,
                p.share * 100.0,
                p.total_s,
                p.calls,
                p.p50_ns,
                p.p95_ns
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    out.push_str(&format!(
        "phase breakdown ({}, {} loops): {}\n",
        r.phase_breakdown.family, r.phase_breakdown.loops, phases,
    ));
    out.push_str(&format!(
        "trace overhead ({} loops, best of {}): baseline {:.3}s, \
         disabled {:.3}s ({:.3}x), enabled {:.3}s\n",
        r.trace_overhead.loops,
        r.trace_overhead.reps,
        r.trace_overhead.baseline_s,
        r.trace_overhead.disabled_trace_s,
        r.trace_overhead.disabled_overhead,
        r.trace_overhead.enabled_trace_s,
    ));
    out.push_str(&format!(
        "chrome render ({} events, best of {}): {:.3}s, {:.0} events/s, {} bytes\n",
        r.render_bench.events,
        r.render_bench.reps,
        r.render_bench.render_s,
        r.render_bench.events_per_sec,
        r.render_bench.bytes,
    ));
    out
}

/// Serialize and write the report, creating parent directories.
pub fn write(report: &ThroughputReport, path: &std::path::Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let json = serde_json::to_string_pretty(report).expect("report serialises");
    std::fs::write(path, json + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_consistent_report() {
        let report = run(&ThroughputConfig {
            jobs: Parallelism::Jobs(2),
            smoke: true,
            ..Default::default()
        });
        assert_eq!(report.jobs, 2);
        assert!(report.smoke);
        assert_eq!(
            report.speedup_meaningful,
            report.available_parallelism > 1,
            "speedup_meaningful must mirror the host's core count"
        );
        if !report.speedup_meaningful {
            assert!(render(&report).contains("single core"));
        }
        assert_eq!(report.families.len(), 5);
        assert_eq!(
            report.total.loops,
            report.families.iter().map(|f| f.loops).sum::<usize>()
        );
        assert!(
            report.verify_sweep.reports_identical,
            "parallel sweep diverged from serial"
        );
        assert_eq!(report.phase_breakdown.family, "specfp");
        assert!(report.phase_breakdown.loops > 0);
        assert!(
            !report.phase_breakdown.phases.is_empty(),
            "no tms.phase.* timers fired in the traced pass"
        );
        let share_sum: f64 = report.phase_breakdown.phases.iter().map(|p| p.share).sum();
        assert!(
            (share_sum - 1.0).abs() < 1e-9,
            "phase shares must partition the total ({share_sum})"
        );
        for p in &report.phase_breakdown.phases {
            assert!(
                p.p50_ns <= p.p95_ns,
                "{}: p50 {} exceeds p95 {}",
                p.phase,
                p.p50_ns,
                p.p95_ns
            );
            assert!(
                p.calls == 0 || p.p95_ns > 0,
                "{}: fired but p95 is 0",
                p.phase
            );
        }
        for name in ["order", "ldp", "place", "verify"] {
            assert!(
                report
                    .phase_breakdown
                    .phases
                    .iter()
                    .any(|p| p.phase == name),
                "phase {name} missing from the breakdown"
            );
        }
        assert!(report.trace_overhead.loops > 0);
        assert!(report.trace_overhead.baseline_s > 0.0);
        assert!(report.trace_overhead.disabled_overhead > 0.0);
        assert!(report.render_bench.events > 0);
        assert!(report.render_bench.bytes > 0);
        assert!(report.render_bench.events_per_sec > 0.0);
        let json = serde_json::to_string(&report).unwrap();
        assert!(json.contains("\"verify_sweep\""));
        assert!(json.contains("\"phase_breakdown\""));
        assert!(json.contains("\"trace_overhead\""));
        assert!(json.contains("\"render_bench\""));
        assert!(render(&report).contains("phase breakdown"));
        assert!(render(&report).contains("trace overhead"));
        assert!(render(&report).contains("chrome render"));
    }
}
