//! Thread-granularity study — the paper's §6 extension, realised.
//!
//! Unrolling by `f` makes one SpMT thread execute `f` original
//! iterations: SEND/RECV chains amortise over more work but threads
//! lengthen (less TLP). This experiment sweeps unroll factors over the
//! small loops that want it (the paper unrolls art's 11-instruction
//! loops ×4) and a larger DOACROSS loop that does not, reporting the
//! modelled and simulated cycles per *original* iteration.

use crate::config::ExperimentConfig;
use crate::report::render_table;
use serde::{Deserialize, Serialize};
use tms_core::cost::CostModel;
use tms_core::{schedule_tms, TmsConfig};
use tms_ddg::{unroll, Ddg, DdgBuilder, OpClass};
use tms_sim::simulate_spmt;
use tms_workloads::doacross_suite;

/// One (loop, factor) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GranularityRow {
    /// Loop name.
    pub loop_name: String,
    /// Unroll factor.
    pub factor: u32,
    /// TMS II of the unrolled kernel.
    pub ii: u32,
    /// Achieved C_delay of the unrolled kernel.
    pub c_delay: u32,
    /// Cost-model estimate, cycles per original iteration.
    pub modelled_per_iter: f64,
    /// Simulated cycles per original iteration.
    pub simulated_per_iter: f64,
    /// Dynamic SEND/RECV pairs per original iteration.
    pub pairs_per_iter: f64,
}

/// A 4-instruction reduction — so fine-grained that the fixed
/// per-thread costs (spawn, commit, one sync chain) dominate at factor
/// 1; the case unrolling exists for.
pub fn tiny_reduction() -> Ddg {
    let mut b = DdgBuilder::new("reduce-tiny");
    let ld = b.inst("ld", OpClass::Load);
    let acc = b.inst("acc+=", OpClass::FpAdd);
    let ix = b.inst("i++", OpClass::IntAlu);
    let br = b.inst("br", OpClass::Branch);
    b.reg_flow(ld, acc, 0);
    b.reg_flow(acc, acc, 1);
    b.reg_flow(ix, ix, 1);
    b.reg_flow(ix, ld, 1);
    b.reg_flow(ix, br, 0);
    b.build().expect("reduce-tiny")
}

/// An 11-instruction art-style loop (the size the paper unrolls ×4).
pub fn small_art_loop() -> Ddg {
    let mut b = DdgBuilder::new("art-small");
    let ld_w = b.inst("ld w", OpClass::Load);
    let ld_x = b.inst("ld x", OpClass::Load);
    let mul = b.inst("w*x", OpClass::FpMul);
    let acc = b.inst("acc+=", OpClass::FpAdd);
    let cmp = b.inst("cmp", OpClass::IntAlu);
    let sel = b.inst("sel", OpClass::IntAlu);
    let st = b.inst("st y", OpClass::Store);
    let i1 = b.inst("i++", OpClass::IntAlu);
    let j1 = b.inst("j++", OpClass::IntAlu);
    let adr = b.inst("adr", OpClass::IntAlu);
    let brc = b.inst("br", OpClass::Branch);
    b.reg_flow(ld_w, mul, 0);
    b.reg_flow(ld_x, mul, 0);
    b.reg_flow(mul, acc, 0);
    b.reg_flow(acc, acc, 1);
    b.reg_flow(acc, cmp, 0);
    b.reg_flow(cmp, sel, 0);
    b.reg_flow(sel, st, 0);
    b.reg_flow(i1, i1, 1);
    b.reg_flow(i1, ld_w, 1);
    b.reg_flow(j1, j1, 1);
    b.reg_flow(j1, ld_x, 1);
    b.reg_flow(adr, st, 0);
    b.reg_flow(i1, adr, 1);
    b.reg_flow(cmp, brc, 0);
    b.mem_flow(st, ld_x, 1, 0.01);
    b.build().expect("art-small")
}

/// Run the granularity sweep.
pub fn run(cfg: &ExperimentConfig) -> Vec<GranularityRow> {
    let machine = cfg.machine();
    let arch = cfg.arch();
    let model = CostModel::new(arch.costs, arch.ncore);
    let mut rows = Vec::new();

    let mut loops: Vec<Ddg> = vec![tiny_reduction(), small_art_loop()];
    if let Some(eq) = doacross_suite(cfg.seed)
        .into_iter()
        .find(|l| l.benchmark == "equake")
    {
        loops.push(eq.ddg);
    }

    for ddg in &loops {
        for f in [1u32, 2, 4, 8] {
            // Keep unrolled bodies at a schedulable size: beyond ~160
            // instructions the search cost explodes without adding
            // insight (large loops never want large factors anyway).
            if ddg.num_insts() as u32 * f > 160 {
                continue;
            }
            let Ok(unrolled) = unroll(ddg, f) else {
                continue;
            };
            let Ok(r) = schedule_tms(&unrolled, &machine, &model, &TmsConfig::default()) else {
                continue;
            };
            let metrics =
                tms_core::LoopMetrics::compute(&unrolled, &machine, &r.schedule, &arch.costs);
            // n_iter original iterations = n_iter / f unrolled ones.
            let mut sim = cfg.sim();
            sim.n_iter = (cfg.n_iter / f as u64).max(8);
            let out = simulate_spmt(&unrolled, &r.schedule, &sim);
            let orig_iters = (sim.n_iter * f as u64) as f64;
            rows.push(GranularityRow {
                loop_name: ddg.name().to_string(),
                factor: f,
                ii: r.ii,
                c_delay: metrics.c_delay,
                modelled_per_iter: model.f(r.ii, r.c_delay_threshold) / f as f64,
                simulated_per_iter: out.stats.total_cycles as f64 / orig_iters,
                pairs_per_iter: out.stats.send_recv_pairs as f64 / orig_iters,
            });
        }
    }
    rows
}

/// Render the sweep.
pub fn render(rows: &[GranularityRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.loop_name.clone(),
                r.factor.to_string(),
                r.ii.to_string(),
                r.c_delay.to_string(),
                format!("{:.2}", r.modelled_per_iter),
                format!("{:.2}", r.simulated_per_iter),
                format!("{:.2}", r.pairs_per_iter),
            ]
        })
        .collect();
    render_table(
        "Thread granularity (unrolling) sweep — cycles per ORIGINAL iteration",
        &[
            "Loop",
            "factor",
            "II",
            "C_delay",
            "model/iter",
            "sim/iter",
            "pairs/iter",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_loop_has_eleven_instructions() {
        assert_eq!(small_art_loop().num_insts(), 11);
    }

    #[test]
    fn sweep_produces_rows_and_unrolling_amortises_communication() {
        let cfg = ExperimentConfig {
            n_iter: 64,
            ..ExperimentConfig::default()
        };
        let rows = run(&cfg);
        assert!(rows.len() >= 4);
        // For the small loop, pairs per original iteration must not
        // grow with the factor (communication amortises).
        let small: Vec<_> = rows.iter().filter(|r| r.loop_name == "art-small").collect();
        let f1 = small.iter().find(|r| r.factor == 1).unwrap();
        let f4 = small.iter().find(|r| r.factor == 4).unwrap();
        assert!(
            f4.pairs_per_iter <= f1.pairs_per_iter + 0.5,
            "pairs/iter grew: {} -> {}",
            f1.pairs_per_iter,
            f4.pairs_per_iter
        );
    }

    #[test]
    fn render_contains_factors() {
        let rows = vec![GranularityRow {
            loop_name: "x".into(),
            factor: 4,
            ii: 12,
            c_delay: 5,
            modelled_per_iter: 3.5,
            simulated_per_iter: 4.1,
            pairs_per_iter: 0.75,
        }];
        let t = render(&rows);
        assert!(t.contains("granularity"));
        assert!(t.contains("4"));
    }
}
