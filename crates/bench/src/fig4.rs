//! Figure 4 — speedups of TMS over SMS on the quad-core SpMT system.
//!
//! Per benchmark: the loop speedup (execution-time-weighted over the
//! benchmark's loop population, both schedules simulated) and the
//! program speedup (Amdahl weighting by the benchmark's loop-coverage
//! ratio). The paper reports good loop speedups everywhere except
//! `wupwise` (≈ 0), averaging 28% loop / 10% program.

use crate::config::ExperimentConfig;
use crate::report::{pct, render_table};
use crate::runner::{program_speedup_pct, schedule_both, simulate, speedup_pct};
use serde::{Deserialize, Serialize};
use tms_core::par::par_map;
use tms_workloads::specfp_profiles;

/// One benchmark's bars in Figure 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Row {
    /// Benchmark name.
    pub benchmark: String,
    /// TMS-over-SMS loop speedup (%, cycle-weighted over loops).
    pub loop_speedup_pct: f64,
    /// Program speedup (%) after Amdahl weighting by loop coverage.
    pub program_speedup_pct: f64,
    /// Total SMS cycles across the population (diagnostic).
    pub sms_cycles: u64,
    /// Total TMS cycles across the population (diagnostic).
    pub tms_cycles: u64,
}

/// Run the Figure 4 experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig4Row> {
    specfp_profiles()
        .iter()
        .map(|p| {
            let loops = p.generate(cfg.seed);
            // Per-loop schedule+simulate fans across the worker pool;
            // the cycle totals are summed in input order.
            let cycles = par_map(cfg.parallelism(), &loops, |_, ddg| {
                let r = schedule_both(ddg, cfg);
                (
                    simulate(ddg, &r.sms, cfg).total_cycles,
                    simulate(ddg, &r.tms, cfg).total_cycles,
                )
            });
            let mut sms_total = 0u64;
            let mut tms_total = 0u64;
            for &(s, t) in &cycles {
                sms_total += s;
                tms_total += t;
            }
            let loop_sp = speedup_pct(sms_total, tms_total);
            Fig4Row {
                benchmark: p.name.to_string(),
                loop_speedup_pct: loop_sp,
                program_speedup_pct: program_speedup_pct(loop_sp, p.loop_coverage),
                sms_cycles: sms_total,
                tms_cycles: tms_total,
            }
        })
        .collect()
}

/// Averages across benchmarks `(loop, program)` — the paper quotes
/// 28% and 10%.
pub fn averages(rows: &[Fig4Row]) -> (f64, f64) {
    let n = rows.len().max(1) as f64;
    (
        rows.iter().map(|r| r.loop_speedup_pct).sum::<f64>() / n,
        rows.iter().map(|r| r.program_speedup_pct).sum::<f64>() / n,
    )
}

/// Render the series.
pub fn render(rows: &[Fig4Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                pct(r.loop_speedup_pct),
                pct(r.program_speedup_pct),
            ]
        })
        .collect();
    let (al, ap) = averages(rows);
    let mut out = render_table(
        "Figure 4: Speedups of TMS over SMS (quad-core SpMT)",
        &["Benchmark", "Loop speedup", "Program speedup"],
        &body,
    );
    out.push_str(&format!("average: loop {} program {}\n", pct(al), pct(ap)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wupwise_and_art_contrast() {
        // Smoke-test two benchmarks with a small iteration budget:
        // art (speculable recurrences) must beat wupwise (register
        // recurrences) in loop speedup.
        let cfg = ExperimentConfig {
            n_iter: 48,
            ..ExperimentConfig::default()
        };
        let profiles = specfp_profiles();
        let run_one = |name: &str| {
            let p = profiles.iter().find(|p| p.name == name).unwrap();
            let loops = p.generate(cfg.seed);
            let mut sms = 0u64;
            let mut tms = 0u64;
            for ddg in loops.iter().take(5) {
                let r = schedule_both(ddg, &cfg);
                sms += simulate(ddg, &r.sms, &cfg).total_cycles;
                tms += simulate(ddg, &r.tms, &cfg).total_cycles;
            }
            speedup_pct(sms, tms)
        };
        let art = run_one("art");
        let wupwise = run_one("wupwise");
        assert!(
            art > wupwise,
            "art ({art:.1}%) should out-speed wupwise ({wupwise:.1}%)"
        );
    }

    #[test]
    fn averages_and_render() {
        let rows = vec![
            Fig4Row {
                benchmark: "a".into(),
                loop_speedup_pct: 20.0,
                program_speedup_pct: 10.0,
                sms_cycles: 120,
                tms_cycles: 100,
            },
            Fig4Row {
                benchmark: "b".into(),
                loop_speedup_pct: 40.0,
                program_speedup_pct: 20.0,
                sms_cycles: 140,
                tms_cycles: 100,
            },
        ];
        let (l, p) = averages(&rows);
        assert!((l - 30.0).abs() < 1e-9);
        assert!((p - 15.0).abs() < 1e-9);
        let t = render(&rows);
        assert!(t.contains("Figure 4"));
        assert!(t.contains("average: loop 30.0% program 15.0%"));
    }
}
