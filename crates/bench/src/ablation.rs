//! §5.2's speculation ablation.
//!
//! "Without speculation, all inter-thread memory dependences will have
//! to be synchronised, resulting in some loss of TLP" — the paper
//! quantifies the loss at 19.0% for equake's loop and 21.4% for
//! fma3d's. We reproduce the experiment by scheduling each DOACROSS
//! loop twice: normally (speculation allowed within `P_max`) and with
//! `P_max = 0`, which forces every inter-thread memory dependence to be
//! *preserved* by synchronisation delays.

use crate::config::ExperimentConfig;
use crate::report::{pct, render_table};
use crate::runner::{schedule_both, schedule_both_with, simulate, speedup_pct};
use serde::{Deserialize, Serialize};
use tms_core::TmsConfig;
use tms_workloads::doacross_suite;

/// One benchmark set's ablation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// Source benchmark.
    pub benchmark: String,
    /// Cycles with speculation enabled (normal TMS).
    pub spec_cycles: u64,
    /// Cycles with `P_max = 0` (all memory dependences synchronised).
    pub nospec_cycles: u64,
    /// Performance lost by disabling speculation (%, positive = loss).
    pub loss_pct: f64,
}

/// Run the ablation.
pub fn run(cfg: &ExperimentConfig) -> Vec<AblationRow> {
    let suite = doacross_suite(cfg.seed);
    ["art", "equake", "lucas", "fma3d"]
        .iter()
        .map(|&bench| {
            let loops: Vec<_> = suite.iter().filter(|l| l.benchmark == bench).collect();
            let mut spec = 0u64;
            let mut nospec = 0u64;
            for l in &loops {
                let with = schedule_both(&l.ddg, cfg);
                let without = schedule_both_with(&l.ddg, cfg, &TmsConfig::no_speculation());
                spec += simulate(&l.ddg, &with.tms, cfg).total_cycles;
                nospec += simulate(&l.ddg, &without.tms, cfg).total_cycles;
            }
            AblationRow {
                benchmark: bench.to_string(),
                spec_cycles: spec,
                nospec_cycles: nospec,
                loss_pct: speedup_pct(nospec, spec),
            }
        })
        .collect()
}

/// Render the comparison.
pub fn render(rows: &[AblationRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.spec_cycles.to_string(),
                r.nospec_cycles.to_string(),
                pct(r.loss_pct),
            ]
        })
        .collect();
    render_table(
        "Speculation ablation (§5.2): TMS vs TMS with P_max = 0",
        &[
            "Benchmark",
            "cycles (speculative)",
            "cycles (all-sync)",
            "gain from speculation",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speculation_never_hurts() {
        let cfg = ExperimentConfig {
            n_iter: 64,
            ..ExperimentConfig::default()
        };
        for r in run(&cfg) {
            assert!(
                r.spec_cycles <= r.nospec_cycles + r.nospec_cycles / 10,
                "{}: speculative {} vs all-sync {}",
                r.benchmark,
                r.spec_cycles,
                r.nospec_cycles
            );
        }
    }

    #[test]
    fn render_lists_benchmarks() {
        let rows = vec![AblationRow {
            benchmark: "equake".into(),
            spec_cycles: 1000,
            nospec_cycles: 1190,
            loss_pct: 19.0,
        }];
        let t = render(&rows);
        assert!(t.contains("equake"));
        assert!(t.contains("19.0%"));
    }
}
