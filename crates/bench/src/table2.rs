//! Table 2 — SMS and TMS compared using traditional modulo-scheduling
//! metrics over the SPECfp2000-calibrated population.
//!
//! Per benchmark: loop count, average instruction count, average MII,
//! then SMS's and TMS's average II / MaxLive / C_delay. The paper's
//! shape: TMS has a larger II but a much smaller C_delay and slightly
//! larger MaxLive than SMS.

use crate::config::ExperimentConfig;
use crate::report::{f1, render_table};
use crate::runner::schedule_both;
use serde::{Deserialize, Serialize};
use tms_core::par::par_map;
use tms_workloads::specfp_profiles;

/// One benchmark's row of Table 2.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Loops scheduled.
    pub n_loops: u32,
    /// Average instruction count.
    pub avg_inst: f64,
    /// Average MII.
    pub avg_mii: f64,
    /// SMS: average II.
    pub sms_ii: f64,
    /// SMS: average MaxLive.
    pub sms_maxlive: f64,
    /// SMS: average C_delay.
    pub sms_c_delay: f64,
    /// TMS: average II.
    pub tms_ii: f64,
    /// TMS: average MaxLive.
    pub tms_maxlive: f64,
    /// TMS: average C_delay.
    pub tms_c_delay: f64,
    /// Loops where TMS fell back to the SMS schedule.
    pub tms_fallbacks: u32,
}

/// Run the Table 2 experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<Table2Row> {
    specfp_profiles()
        .iter()
        .map(|p| {
            let loops = p.generate(cfg.seed);
            let n = loops.len() as f64;
            let mut row = Table2Row {
                benchmark: p.name.to_string(),
                n_loops: p.n_loops,
                avg_inst: 0.0,
                avg_mii: 0.0,
                sms_ii: 0.0,
                sms_maxlive: 0.0,
                sms_c_delay: 0.0,
                tms_ii: 0.0,
                tms_maxlive: 0.0,
                tms_c_delay: 0.0,
                tms_fallbacks: 0,
            };
            // Loops are independent: fan them across the worker pool
            // and fold the runs in input order (identical at any
            // `jobs`).
            let runs = par_map(cfg.parallelism(), &loops, |_, ddg| schedule_both(ddg, cfg));
            for (ddg, r) in loops.iter().zip(&runs) {
                row.avg_inst += ddg.num_insts() as f64;
                row.avg_mii += r.sms_metrics.mii as f64;
                row.sms_ii += r.sms_metrics.ii as f64;
                row.sms_maxlive += r.sms_metrics.max_live as f64;
                row.sms_c_delay += r.sms_metrics.c_delay as f64;
                row.tms_ii += r.tms_metrics.ii as f64;
                row.tms_maxlive += r.tms_metrics.max_live as f64;
                row.tms_c_delay += r.tms_metrics.c_delay as f64;
                row.tms_fallbacks += u32::from(r.tms_fell_back);
            }
            for v in [
                &mut row.avg_inst,
                &mut row.avg_mii,
                &mut row.sms_ii,
                &mut row.sms_maxlive,
                &mut row.sms_c_delay,
                &mut row.tms_ii,
                &mut row.tms_maxlive,
                &mut row.tms_c_delay,
            ] {
                *v /= n;
            }
            row
        })
        .collect()
}

/// Render the rows in the paper's layout.
pub fn render(rows: &[Table2Row]) -> String {
    let header = [
        "Benchmark",
        "#Loops",
        "AVG #Inst",
        "AVG MII",
        "SMS II",
        "SMS MaxLive",
        "SMS Cdelay",
        "TMS II",
        "TMS MaxLive",
        "TMS Cdelay",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.n_loops.to_string(),
                f1(r.avg_inst),
                f1(r.avg_mii),
                f1(r.sms_ii),
                f1(r.sms_maxlive),
                f1(r.sms_c_delay),
                f1(r.tms_ii),
                f1(r.tms_maxlive),
                f1(r.tms_c_delay),
            ]
        })
        .collect();
    render_table(
        "Table 2: SMS and TMS compared (averages over each benchmark's loops)",
        &header,
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run on a trimmed population (first 2 benchmarks) to keep unit
    /// tests fast; the full sweep runs in the bin/bench targets.
    #[test]
    fn shape_holds_on_sample_benchmarks() {
        let cfg = ExperimentConfig::quick();
        let profiles = specfp_profiles();
        for p in &profiles[..2] {
            let loops = p.generate(cfg.seed);
            let mut sms_cd = 0.0;
            let mut tms_cd = 0.0;
            for ddg in loops.iter().take(6) {
                let r = schedule_both(ddg, &cfg);
                sms_cd += r.sms_metrics.c_delay as f64;
                tms_cd += r.tms_metrics.c_delay as f64;
            }
            assert!(
                tms_cd <= sms_cd,
                "{}: TMS avg C_delay {tms_cd} must not exceed SMS {sms_cd}",
                p.name
            );
        }
    }

    #[test]
    fn render_includes_all_benchmarks() {
        let rows = vec![Table2Row {
            benchmark: "art".into(),
            n_loops: 10,
            avg_inst: 16.1,
            avg_mii: 7.6,
            sms_ii: 8.1,
            sms_maxlive: 7.8,
            sms_c_delay: 8.1,
            tms_ii: 10.6,
            tms_maxlive: 8.4,
            tms_c_delay: 4.0,
            tms_fallbacks: 0,
        }];
        let t = render(&rows);
        assert!(t.contains("art"));
        assert!(t.contains("16.1"));
        assert!(t.contains("Table 2"));
    }
}
