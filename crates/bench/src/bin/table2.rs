//! Regenerate Table 2: SMS vs TMS scheduling metrics over the
//! SPECfp2000-calibrated 778-loop population.

use tms_bench::report::write_json;
use tms_bench::{table2, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    let rows = table2::run(&cfg);
    print!("{}", table2::render(&rows));
    if let Some(p) = write_json("table2", &rows) {
        eprintln!("wrote {}", p.display());
    }
}
