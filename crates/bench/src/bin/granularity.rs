//! Thread-granularity (unrolling) sweep — the §6 extension.

use tms_bench::report::write_json;
use tms_bench::{granularity, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    let rows = granularity::run(&cfg);
    print!("{}", granularity::render(&rows));
    if let Some(p) = write_json("granularity", &rows) {
        eprintln!("wrote {}", p.display());
    }
}
