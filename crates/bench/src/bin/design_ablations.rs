//! Ablations of the reproduction's design choices (DESIGN.md §5).

use tms_bench::report::write_json;
use tms_bench::{design_ablations, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    let rows = design_ablations::run(&cfg);
    print!("{}", design_ablations::render(&rows));
    if let Some(p) = write_json("design_ablations", &rows) {
        eprintln!("wrote {}", p.display());
    }
}
