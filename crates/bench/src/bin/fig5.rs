//! Regenerate Figure 5: TMS vs single-threaded code on the DOACROSS
//! suite.

use tms_bench::report::write_json;
use tms_bench::{fig5, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    let rows = fig5::run(&cfg);
    print!("{}", fig5::render(&rows));
    if let Some(p) = write_json("fig5", &rows) {
        eprintln!("wrote {}", p.display());
    }
}
