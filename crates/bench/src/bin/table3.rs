//! Regenerate Table 3: the selected DOACROSS loops.

use tms_bench::report::write_json;
use tms_bench::{table3, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    let rows = table3::run(&cfg);
    print!("{}", table3::render(&rows));
    if let Some(p) = write_json("table3", &rows) {
        eprintln!("wrote {}", p.display());
    }
}
