//! Regenerate Figure 6: synchronisation stalls, SEND/RECV increase and
//! communication overhead, TMS vs SMS.

use tms_bench::report::write_json;
use tms_bench::{fig6, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    let rows = fig6::run(&cfg);
    print!("{}", fig6::render(&rows));
    if let Some(p) = write_json("fig6", &rows) {
        eprintln!("wrote {}", p.display());
    }
}
