//! Regenerate the §5.2 speculation ablation (P_max = 0 synchronises
//! every inter-thread memory dependence).

use tms_bench::report::write_json;
use tms_bench::{ablation, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    let rows = ablation::run(&cfg);
    print!("{}", ablation::render(&rows));
    if let Some(p) = write_json("ablation", &rows) {
        eprintln!("wrote {}", p.display());
    }
}
