//! `sched-throughput` — time serial vs parallel TMS scheduling over
//! each workload family and write `results/bench_sched.json`.
//!
//! ```text
//! sched-throughput [--jobs N] [--fuzz N] [--seed S] [--out PATH] [--smoke]
//!                  [--gate PATH] [--write-baseline PATH]
//! ```
//!
//! `--jobs 0` (the default) uses every available core; `TMS_JOBS` sets
//! the default. `--smoke` runs tiny populations for CI sanity — the
//! timings are not meaningful there, but the determinism check
//! (`verify_sweep.reports_identical`) still is. Exits nonzero if the
//! parallel verification sweep diverges from the serial one.
//!
//! `--gate PATH` loads a committed [`PerfBaseline`] and fails the run
//! if `total.loops_per_sec_serial` falls below the baseline's noise
//! window; `--write-baseline PATH` pins a fresh baseline from this
//! run. The default window is 60%: the gate floor is 40% of the
//! pinned rate, wide enough that a different machine class or a busy
//! shared runner passes, while an accidental `O(n²)` or debug-build
//! cliff still fails.

use std::path::PathBuf;
use std::process::ExitCode;
use tms_bench::baseline::PerfBaseline;
use tms_bench::throughput::{render, run, write, ThroughputConfig};
use tms_core::par::Parallelism;

fn main() -> ExitCode {
    let mut cfg = ThroughputConfig {
        jobs: Parallelism::Auto,
        ..Default::default()
    };
    match Parallelism::from_env() {
        Ok(Some(jobs)) => cfg.jobs = jobs,
        Ok(None) => {}
        Err(e) => {
            eprintln!("sched-throughput: {e}");
            return ExitCode::from(2);
        }
    }
    let mut out = PathBuf::from("results/bench_sched.json");
    let mut gate: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value"))
                .and_then(|v| v.parse::<u64>().map_err(|e| format!("{name}: {e}")))
        };
        let r = match flag.as_str() {
            "--jobs" => match it.next() {
                Some(v) => Parallelism::parse_jobs(&v)
                    .map(|p| cfg.jobs = p)
                    .map_err(|e| format!("--jobs: {e}")),
                None => Err("--jobs needs a value".to_string()),
            },
            "--fuzz" => val("--fuzz").map(|n| cfg.fuzz = n as usize),
            "--seed" => val("--seed").map(|n| cfg.seed = n),
            "--out" => match it.next() {
                Some(p) => {
                    out = PathBuf::from(p);
                    Ok(())
                }
                None => Err("--out needs a value".to_string()),
            },
            "--smoke" => {
                cfg.smoke = true;
                Ok(())
            }
            "--gate" => match it.next() {
                Some(p) => {
                    gate = Some(PathBuf::from(p));
                    Ok(())
                }
                None => Err("--gate needs a value".to_string()),
            },
            "--write-baseline" => match it.next() {
                Some(p) => {
                    write_baseline = Some(PathBuf::from(p));
                    Ok(())
                }
                None => Err("--write-baseline needs a value".to_string()),
            },
            "--help" | "-h" => {
                println!(
                    "sched-throughput [--jobs N] [--fuzz N] [--seed S] [--out PATH] [--smoke] \
                     [--gate PATH] [--write-baseline PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => Err(format!("unknown flag {other}")),
        };
        if let Err(e) = r {
            eprintln!("sched-throughput: {e}");
            return ExitCode::from(2);
        }
    }

    let report = run(&cfg);
    print!("{}", render(&report));
    if let Err(e) = write(&report, &out) {
        eprintln!("sched-throughput: cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", out.display());

    if !report.verify_sweep.reports_identical {
        eprintln!("sched-throughput: parallel verify sweep diverged from serial");
        return ExitCode::FAILURE;
    }
    // Disabled tracing must be free: the instrumented scheduler with a
    // disabled sink runs the same code as the plain entry point plus a
    // pointer check per site, so anything beyond noise is a regression.
    // Expected < 2%; gated at 10% so machine jitter cannot flake CI.
    // Smoke populations are too small to time, so only the real run
    // enforces it.
    if !report.smoke && report.trace_overhead.disabled_overhead > 1.10 {
        eprintln!(
            "sched-throughput: disabled-tracing overhead {:.3}x exceeds 1.10x",
            report.trace_overhead.disabled_overhead
        );
        return ExitCode::FAILURE;
    }

    if let Some(path) = &write_baseline {
        let base = PerfBaseline::from_report(&report, 0.60);
        if let Err(e) = base.write(path) {
            eprintln!("sched-throughput: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "pinned baseline {} ({:.1} loops/s serial, noise window {:.0}%)",
            path.display(),
            base.loops_per_sec_serial,
            base.noise_frac * 100.0
        );
    }
    if let Some(path) = &gate {
        let base = match PerfBaseline::load(path) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("sched-throughput: cannot load baseline: {e}");
                return ExitCode::from(2);
            }
        };
        match base.check(&report) {
            Err(e) => {
                eprintln!("sched-throughput: gate not comparable: {e}");
                return ExitCode::from(2);
            }
            Ok(outcome) if !outcome.pass => {
                if outcome.current < outcome.floor {
                    eprintln!(
                        "sched-throughput: PERF REGRESSION — {:.1} loops/s serial is below \
                         the gate floor {:.1} (baseline {:.1} − {:.0}% noise window)",
                        outcome.current,
                        outcome.floor,
                        base.loops_per_sec_serial,
                        base.noise_frac * 100.0
                    );
                } else {
                    eprintln!(
                        "sched-throughput: PERF REGRESSION — parallel speedup {:.2}x is below \
                         the gate floor {:.2}x (baseline {:.2}x − {:.0}% noise window)",
                        outcome.speedup_current.unwrap_or(0.0),
                        outcome.speedup_floor.unwrap_or(0.0),
                        base.speedup.unwrap_or(0.0),
                        base.noise_frac * 100.0
                    );
                }
                return ExitCode::FAILURE;
            }
            Ok(outcome) => {
                let speedup_note = if outcome.speedup_checked {
                    format!(
                        ", speedup {:.2}x vs floor {:.2}x",
                        outcome.speedup_current.unwrap_or(0.0),
                        outcome.speedup_floor.unwrap_or(0.0)
                    )
                } else {
                    ", speedup comparison skipped (single-core host or baseline)".to_string()
                };
                println!(
                    "perf gate: {:.1} loops/s serial vs baseline {:.1} ({:.2}x, floor {:.1}){} — ok",
                    outcome.current,
                    base.loops_per_sec_serial,
                    outcome.ratio,
                    outcome.floor,
                    speedup_note
                );
            }
        }
    }
    ExitCode::SUCCESS
}
