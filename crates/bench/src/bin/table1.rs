//! Print Table 1 (the simulated architecture).

use tms_bench::{table1, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    print!("{}", table1::render(&cfg));
}
