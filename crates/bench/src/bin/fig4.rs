//! Regenerate Figure 4: speedups of TMS over SMS on the quad-core
//! SpMT simulator.

use tms_bench::report::write_json;
use tms_bench::{fig4, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    let rows = fig4::run(&cfg);
    print!("{}", fig4::render(&rows));
    if let Some(p) = write_json("fig4", &rows) {
        eprintln!("wrote {}", p.display());
    }
}
