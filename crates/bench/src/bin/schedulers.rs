//! IMS vs SMS vs TMS scheduler comparison.

use tms_bench::report::write_json;
use tms_bench::{schedulers, ExperimentConfig};

fn main() {
    let cfg = ExperimentConfig::default();
    let rows = schedulers::run(&cfg);
    print!("{}", schedulers::render(&rows));
    if let Some(p) = write_json("schedulers", &rows) {
        eprintln!("wrote {}", p.display());
    }
}
