//! IMS vs SMS vs TMS — substantiating the paper's scheduler choice.
//!
//! §1 adopts SMS "since SMS finds the best schedules in general
//! (Codina et al. [3])" and stresses that TMS "is not tied to any
//! existing modulo scheduling algorithm". This experiment runs all
//! three schedulers over the DOACROSS suite plus a population sample
//! and reports the traditional single-core metrics (II, MaxLive)
//! alongside the thread-sensitive one (`C_delay`): IMS and SMS reach
//! comparable IIs, SMS carries less register pressure, and only TMS
//! controls the synchronisation delay.

use crate::config::ExperimentConfig;
use crate::report::{f1, render_table};
use serde::{Deserialize, Serialize};
use tms_core::cost::CostModel;
use tms_core::lifetimes::max_live;
use tms_core::metrics::achieved_c_delay;
use tms_core::{schedule_ims, schedule_sms, schedule_tms, TmsConfig};
use tms_workloads::{doacross_suite, specfp_profiles};

/// Per-scheduler averages over one loop set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedulerRow {
    /// Loop set name.
    pub set: String,
    /// Loops scheduled.
    pub n_loops: u32,
    /// IMS: average II / MaxLive / C_delay.
    pub ims: (f64, f64, f64),
    /// SMS: average II / MaxLive / C_delay.
    pub sms: (f64, f64, f64),
    /// TMS: average II / MaxLive / C_delay.
    pub tms: (f64, f64, f64),
}

/// Run the comparison.
pub fn run(cfg: &ExperimentConfig) -> Vec<SchedulerRow> {
    let machine = cfg.machine();
    let arch = cfg.arch();
    let model = CostModel::new(arch.costs, arch.ncore);

    let mut sets: Vec<(String, Vec<tms_ddg::Ddg>)> = vec![(
        "doacross".into(),
        doacross_suite(cfg.seed)
            .into_iter()
            .map(|l| l.ddg)
            .collect(),
    )];
    for p in specfp_profiles()
        .iter()
        .filter(|p| ["swim", "art", "fma3d"].contains(&p.name))
    {
        sets.push((
            p.name.to_string(),
            p.generate(cfg.seed).into_iter().take(8).collect(),
        ));
    }

    sets.into_iter()
        .map(|(set, loops)| {
            let n = loops.len() as f64;
            let mut acc = [[0.0f64; 3]; 3];
            for ddg in &loops {
                let ims = schedule_ims(ddg, &machine).expect("IMS").schedule;
                let sms = schedule_sms(ddg, &machine).expect("SMS").schedule;
                let tms = schedule_tms(ddg, &machine, &model, &TmsConfig::default())
                    .expect("TMS")
                    .schedule;
                for (i, sch) in [&ims, &sms, &tms].into_iter().enumerate() {
                    acc[i][0] += sch.ii() as f64;
                    acc[i][1] += max_live(ddg, sch) as f64;
                    acc[i][2] += achieved_c_delay(ddg, sch, &arch.costs) as f64;
                }
            }
            let avg = |i: usize| (acc[i][0] / n, acc[i][1] / n, acc[i][2] / n);
            SchedulerRow {
                set,
                n_loops: loops.len() as u32,
                ims: avg(0),
                sms: avg(1),
                tms: avg(2),
            }
        })
        .collect()
}

/// Render the comparison.
pub fn render(rows: &[SchedulerRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.set.clone(),
                r.n_loops.to_string(),
                f1(r.ims.0),
                f1(r.ims.1),
                f1(r.ims.2),
                f1(r.sms.0),
                f1(r.sms.1),
                f1(r.sms.2),
                f1(r.tms.0),
                f1(r.tms.1),
                f1(r.tms.2),
            ]
        })
        .collect();
    render_table(
        "Scheduler comparison: IMS (Rau) vs SMS (Llosa) vs TMS",
        &[
            "Set", "#", "IMS II", "IMS ML", "IMS D", "SMS II", "SMS ML", "SMS D", "TMS II",
            "TMS ML", "TMS D",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_shapes() {
        let cfg = ExperimentConfig::quick();
        let rows = run(&cfg);
        assert!(rows.len() >= 3);
        for r in &rows {
            // IMS and SMS land in the same II ballpark...
            assert!(
                (r.ims.0 - r.sms.0).abs() <= r.sms.0 * 0.35 + 2.0,
                "{}: IMS II {} vs SMS II {}",
                r.set,
                r.ims.0,
                r.sms.0
            );
            // ...and only TMS brings C_delay down.
            assert!(
                r.tms.2 <= r.sms.2 + 0.5,
                "{}: TMS D {} vs SMS D {}",
                r.set,
                r.tms.2,
                r.sms.2
            );
        }
    }

    #[test]
    fn render_has_all_columns() {
        let rows = vec![SchedulerRow {
            set: "x".into(),
            n_loops: 3,
            ims: (8.0, 14.0, 10.0),
            sms: (8.0, 12.0, 10.0),
            tms: (10.0, 13.0, 5.0),
        }];
        let t = render(&rows);
        assert!(t.contains("IMS II"));
        assert!(t.contains("TMS D"));
    }
}
