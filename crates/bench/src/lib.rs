//! Experiment harness: regenerates every table and figure of the
//! paper's evaluation (§5).
//!
//! Each experiment module exposes `run(&ExperimentConfig) -> rows` and
//! a `render(&rows) -> String` that prints the same rows/series the
//! paper reports:
//!
//! * [`table1`] — the simulated architecture (input parameters);
//! * [`table2`] — SMS vs TMS scheduling metrics over the 13-benchmark,
//!   778-loop SPECfp2000-calibrated population;
//! * [`fig4`] — loop and program speedups of TMS over SMS on the
//!   quad-core SpMT simulator;
//! * [`table3`] — the seven selected DOACROSS loops and their
//!   TMS-scheduled metrics;
//! * [`fig5`] — TMS vs single-threaded speedups for those loops;
//! * [`fig6`] — synchronisation stalls (a), SEND/RECV increase (b) and
//!   communication overhead (c), TMS vs SMS;
//! * [`ablation`] — §5.2's speculation ablation (`P_max = 0`
//!   synchronises every memory dependence).
//!
//! Binaries under `src/bin/` print each experiment; Criterion benches
//! under `benches/` time the same entry points.

pub mod ablation;
pub mod baseline;
pub mod config;
pub mod design_ablations;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod granularity;
pub mod report;
pub mod runner;
pub mod schedulers;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod throughput;

pub use config::ExperimentConfig;
