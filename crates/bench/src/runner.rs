//! Shared per-loop runner: schedule with both schedulers, compute
//! metrics, optionally simulate.

use crate::config::ExperimentConfig;
use tms_core::cost::CostModel;
use tms_core::metrics::LoopMetrics;
use tms_core::schedule::Schedule;
use tms_core::{schedule_sms, schedule_tms, TmsConfig};
use tms_ddg::Ddg;
use tms_sim::{simulate_sequential, simulate_spmt, SimStats};

/// Both schedulers' results on one loop.
#[derive(Debug, Clone)]
pub struct LoopRun {
    /// SMS schedule.
    pub sms: Schedule,
    /// SMS metrics.
    pub sms_metrics: LoopMetrics,
    /// TMS schedule.
    pub tms: Schedule,
    /// TMS metrics.
    pub tms_metrics: LoopMetrics,
    /// Whether TMS fell back to the SMS schedule.
    pub tms_fell_back: bool,
}

/// Schedule `ddg` with SMS and TMS under `cfg`.
pub fn schedule_both(ddg: &Ddg, cfg: &ExperimentConfig) -> LoopRun {
    schedule_both_with(ddg, cfg, &TmsConfig::default())
}

/// Schedule with an explicit TMS configuration (used by the ablation).
pub fn schedule_both_with(ddg: &Ddg, cfg: &ExperimentConfig, tms_cfg: &TmsConfig) -> LoopRun {
    let machine = cfg.machine();
    let arch = cfg.arch();
    let model = CostModel::new(arch.costs, arch.ncore);
    let sms = schedule_sms(ddg, &machine).expect("SMS must schedule every workload loop");
    let tms = schedule_tms(ddg, &machine, &model, tms_cfg).expect("TMS must schedule");
    let sms_metrics = LoopMetrics::compute(ddg, &machine, &sms.schedule, &arch.costs);
    let tms_metrics = LoopMetrics::compute(ddg, &machine, &tms.schedule, &arch.costs);
    LoopRun {
        sms: sms.schedule,
        sms_metrics,
        tms: tms.schedule,
        tms_metrics,
        tms_fell_back: tms.fell_back_to_sms,
    }
}

/// Simulated cycles of a schedule on the SpMT system.
pub fn simulate(ddg: &Ddg, schedule: &Schedule, cfg: &ExperimentConfig) -> SimStats {
    simulate_spmt(ddg, schedule, &cfg.sim()).stats
}

/// Simulated cycles of the single-threaded baseline.
pub fn simulate_single(ddg: &Ddg, cfg: &ExperimentConfig) -> u64 {
    simulate_sequential(ddg, &cfg.machine(), &cfg.sim()).total_cycles
}

/// Speedup of `base` over `new` expressed as a percentage gain
/// (`50.0` means "1.5× faster", matching the paper's figures).
pub fn speedup_pct(base_cycles: u64, new_cycles: u64) -> f64 {
    if new_cycles == 0 {
        return 0.0;
    }
    (base_cycles as f64 / new_cycles as f64 - 1.0) * 100.0
}

/// Amdahl-weighted program speedup from a loop speedup and coverage:
/// the loops are `coverage` of execution; the rest is unchanged.
pub fn program_speedup_pct(loop_speedup_pct: f64, coverage: f64) -> f64 {
    let s = 1.0 + loop_speedup_pct / 100.0;
    if s <= 0.0 {
        return 0.0;
    }
    let t_new = (1.0 - coverage) + coverage / s;
    (1.0 / t_new - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_workloads::figure1;

    #[test]
    fn schedules_figure1_both_ways() {
        let cfg = ExperimentConfig::quick();
        let run = schedule_both(&figure1(), &cfg);
        assert!(run.sms_metrics.ii >= 8);
        assert!(run.tms_metrics.ii >= 8);
        assert!(
            run.tms_metrics.c_delay <= run.sms_metrics.c_delay,
            "TMS C_delay {} must not exceed SMS {}",
            run.tms_metrics.c_delay,
            run.sms_metrics.c_delay
        );
    }

    #[test]
    fn speedup_math() {
        assert!((speedup_pct(150, 100) - 50.0).abs() < 1e-9);
        assert!((speedup_pct(100, 100) - 0.0).abs() < 1e-9);
        assert_eq!(speedup_pct(100, 0), 0.0);
    }

    #[test]
    fn program_speedup_amdahl() {
        // 100% loop speedup over 50% coverage → 1/(0.5 + 0.25) − 1 = 33%.
        let p = program_speedup_pct(100.0, 0.5);
        assert!((p - 100.0 / 3.0).abs() < 1e-6);
        // Zero coverage → zero program effect.
        assert!(program_speedup_pct(100.0, 0.0).abs() < 1e-9);
        // Zero loop speedup → zero program speedup.
        assert!(program_speedup_pct(0.0, 0.8).abs() < 1e-9);
    }
}
