//! Figure 6 — synchronisation behaviour of TMS vs SMS on the selected
//! DOACROSS loops:
//!
//! * **(a)** normalised synchronisation stalls (cycles committed
//!   threads spend blocked at a RECV) — TMS reduces stalls by more
//!   than 50% on art/equake/fma3d, less on recurrence-bound lucas;
//! * **(b)** % increase in dynamic SEND/RECV pairs under TMS — the
//!   price of the extra stages/copies;
//! * **(c)** communication overhead (stalls + `C_reg_com` × pairs) —
//!   still a net reduction under TMS.

use crate::config::ExperimentConfig;
use crate::report::{pct, render_table};
use crate::runner::{schedule_both, simulate};
use serde::{Deserialize, Serialize};
use tms_workloads::doacross_suite;

/// One benchmark set's bars across Figure 6 (a), (b), (c).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Source benchmark.
    pub benchmark: String,
    /// SMS sync stall cycles (committed threads).
    pub sms_stall: u64,
    /// TMS sync stall cycles (committed threads).
    pub tms_stall: u64,
    /// SMS dynamic SEND/RECV pairs.
    pub sms_pairs: u64,
    /// TMS dynamic SEND/RECV pairs.
    pub tms_pairs: u64,
    /// SMS communication overhead (stalls + C_reg_com × pairs).
    pub sms_comm: u64,
    /// TMS communication overhead.
    pub tms_comm: u64,
    /// SMS squashed threads (misspeculations + cascade squashes),
    /// summed over the set's loops.
    #[serde(default)]
    pub sms_squashes: u64,
    /// TMS squashed threads (misspeculations + cascade squashes).
    #[serde(default)]
    pub tms_squashes: u64,
    /// SMS committed threads — the denominator of
    /// [`Fig6Row::sms_squash_frequency`].
    #[serde(default)]
    pub sms_committed: u64,
    /// TMS committed threads.
    #[serde(default)]
    pub tms_committed: u64,
}

impl Fig6Row {
    /// (a): TMS stalls normalised to SMS (1.0 = no change).
    pub fn stall_ratio(&self) -> f64 {
        if self.sms_stall == 0 {
            if self.tms_stall == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.tms_stall as f64 / self.sms_stall as f64
        }
    }

    /// (b): % increase in SEND/RECV pairs under TMS.
    pub fn pair_increase_pct(&self) -> f64 {
        if self.sms_pairs == 0 {
            0.0
        } else {
            (self.tms_pairs as f64 / self.sms_pairs as f64 - 1.0) * 100.0
        }
    }

    /// (c): TMS communication overhead normalised to SMS.
    pub fn comm_ratio(&self) -> f64 {
        if self.sms_comm == 0 {
            1.0
        } else {
            self.tms_comm as f64 / self.sms_comm as f64
        }
    }

    /// Squashed threads per committed thread under SMS — the set-level
    /// aggregate of [`tms_sim::SimStats::total_squash_frequency`]
    /// (cascade squashes included).
    pub fn sms_squash_frequency(&self) -> f64 {
        if self.sms_committed == 0 {
            0.0
        } else {
            self.sms_squashes as f64 / self.sms_committed as f64
        }
    }

    /// Squashed threads per committed thread under TMS.
    pub fn tms_squash_frequency(&self) -> f64 {
        if self.tms_committed == 0 {
            0.0
        } else {
            self.tms_squashes as f64 / self.tms_committed as f64
        }
    }
}

/// Run the Figure 6 experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig6Row> {
    let suite = doacross_suite(cfg.seed);
    let c_reg_com = cfg.arch().costs.c_reg_com;
    ["art", "equake", "lucas", "fma3d"]
        .iter()
        .map(|&bench| {
            let loops: Vec<_> = suite.iter().filter(|l| l.benchmark == bench).collect();
            let mut row = Fig6Row {
                benchmark: bench.to_string(),
                sms_stall: 0,
                tms_stall: 0,
                sms_pairs: 0,
                tms_pairs: 0,
                sms_comm: 0,
                tms_comm: 0,
                sms_squashes: 0,
                tms_squashes: 0,
                sms_committed: 0,
                tms_committed: 0,
            };
            for l in &loops {
                let r = schedule_both(&l.ddg, cfg);
                let s = simulate(&l.ddg, &r.sms, cfg);
                let t = simulate(&l.ddg, &r.tms, cfg);
                row.sms_stall += s.sync_stall_cycles;
                row.tms_stall += t.sync_stall_cycles;
                row.sms_pairs += s.send_recv_pairs;
                row.tms_pairs += t.send_recv_pairs;
                row.sms_comm += s.communication_overhead(c_reg_com);
                row.tms_comm += t.communication_overhead(c_reg_com);
                row.sms_squashes += s.misspeculations + s.cascade_squashes;
                row.tms_squashes += t.misspeculations + t.cascade_squashes;
                row.sms_committed += s.committed_threads;
                row.tms_committed += t.committed_threads;
            }
            row
        })
        .collect()
}

/// Render the three series.
pub fn render(rows: &[Fig6Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.sms_stall.to_string(),
                r.tms_stall.to_string(),
                format!("{:.2}", r.stall_ratio()),
                pct(r.pair_increase_pct()),
                format!("{:.2}", r.comm_ratio()),
                format!("{:.4}", r.sms_squash_frequency()),
                format!("{:.4}", r.tms_squash_frequency()),
            ]
        })
        .collect();
    render_table(
        "Figure 6: Synchronisation of TMS vs SMS (a: stalls, b: SEND/RECV increase, c: comm overhead)",
        &[
            "Benchmark",
            "SMS stalls",
            "TMS stalls",
            "(a) TMS/SMS stalls",
            "(b) pair increase",
            "(c) TMS/SMS comm",
            "SMS squash/commit",
            "TMS squash/commit",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tms_reduces_stalls_on_speculable_sets() {
        let cfg = ExperimentConfig {
            n_iter: 64,
            ..ExperimentConfig::default()
        };
        let rows = run(&cfg);
        for b in ["art", "equake", "fma3d"] {
            let r = rows.iter().find(|r| r.benchmark == b).unwrap();
            assert!(
                r.tms_stall <= r.sms_stall,
                "{b}: TMS stalls {} > SMS {}",
                r.tms_stall,
                r.sms_stall
            );
        }
    }

    #[test]
    fn ratios_and_render() {
        let r = Fig6Row {
            benchmark: "x".into(),
            sms_stall: 100,
            tms_stall: 40,
            sms_pairs: 10,
            tms_pairs: 13,
            sms_comm: 130,
            tms_comm: 79,
            sms_squashes: 5,
            tms_squashes: 2,
            sms_committed: 50,
            tms_committed: 40,
        };
        assert!((r.stall_ratio() - 0.4).abs() < 1e-12);
        assert!((r.pair_increase_pct() - 30.0).abs() < 1e-9);
        assert!((r.comm_ratio() - 79.0 / 130.0).abs() < 1e-12);
        assert!((r.sms_squash_frequency() - 0.1).abs() < 1e-12);
        assert!((r.tms_squash_frequency() - 0.05).abs() < 1e-12);
        let t = render(&[r]);
        assert!(t.contains("Figure 6"));
        assert!(t.contains("0.40"));
        assert!(t.contains("0.1000"));
    }

    #[test]
    fn zero_baselines_are_guarded() {
        let r = Fig6Row {
            benchmark: "z".into(),
            sms_stall: 0,
            tms_stall: 0,
            sms_pairs: 0,
            tms_pairs: 0,
            sms_comm: 0,
            tms_comm: 0,
            sms_squashes: 0,
            tms_squashes: 0,
            sms_committed: 0,
            tms_committed: 0,
        };
        assert_eq!(r.stall_ratio(), 1.0);
        assert_eq!(r.pair_increase_pct(), 0.0);
        assert_eq!(r.comm_ratio(), 1.0);
        assert_eq!(r.sms_squash_frequency(), 0.0);
        assert_eq!(r.tms_squash_frequency(), 0.0);
    }
}
