//! Table 1 — the simulated architecture (an input, printed for
//! completeness and cross-checked against the paper's constants).

use crate::config::ExperimentConfig;

/// Render Table 1.
pub fn render(cfg: &ExperimentConfig) -> String {
    format!(
        "== Table 1: Architecture simulated ==\n{}\n",
        cfg.arch().table1()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_constants() {
        let t = render(&ExperimentConfig::default());
        assert!(t.contains("SEND/RECV Latency      | 3"));
        assert!(t.contains("Invalidation Overhead  | 15"));
    }
}
