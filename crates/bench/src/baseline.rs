//! Perf-regression gate for the scheduling-throughput benchmark.
//!
//! A committed baseline (`results/bench_baseline.json`) pins the
//! serial scheduling rate a machine class is expected to sustain,
//! together with an **explicit noise window**: the gate fails only
//! when the measured `total.loops_per_sec_serial` drops below
//! `baseline × (1 − noise_frac)`. The window is wide on purpose —
//! shared CI runners jitter by tens of percent, and a gate that cries
//! wolf gets deleted; the point is to catch the 2–10× cliffs an
//! accidental `O(n²)` or a debug-build artifact introduces, not 5%
//! drift. `sched-throughput --gate PATH` enforces it,
//! `--write-baseline PATH` refreshes it from the run it just did.

use crate::throughput::ThroughputReport;
use serde::{Deserialize, Serialize};
use std::io;
use std::path::Path;

/// The committed `results/bench_baseline.json` payload.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerfBaseline {
    /// Pinned serial rate (`total.loops_per_sec_serial`).
    pub loops_per_sec_serial: f64,
    /// Fractional noise window: the gate floor is
    /// `loops_per_sec_serial × (1 − noise_frac)`.
    pub noise_frac: f64,
    /// Whether the baseline was measured in `--smoke` mode. A gate run
    /// must match — smoke and full populations time differently.
    pub smoke: bool,
    /// Master seed the baseline run used (population shape).
    pub seed: u64,
    /// Pinned parallel speedup (`total.speedup`), or `None` when the
    /// baseline was measured on a single-core host — there the
    /// "parallel" pass is serial work plus pool overhead and the ratio
    /// carries no signal. The gate compares speedup only when *both*
    /// the baseline pinned one *and* the gated run's
    /// `speedup_meaningful` is set; otherwise it is skipped, never
    /// failed.
    #[serde(default)]
    pub speedup: Option<f64>,
}

/// What a gate comparison concluded.
#[derive(Debug, Clone)]
pub struct GateOutcome {
    /// Measured serial rate.
    pub current: f64,
    /// `baseline × (1 − noise_frac)` — failing threshold.
    pub floor: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// Whether the measurement clears the floor.
    pub pass: bool,
    /// Whether the parallel-speedup comparison actually ran. `false`
    /// on single-core hosts (either side of the comparison) — a skip,
    /// not a failure.
    pub speedup_checked: bool,
    /// Measured `total.speedup` when the comparison ran.
    pub speedup_current: Option<f64>,
    /// Failing threshold for the speedup comparison when it ran.
    pub speedup_floor: Option<f64>,
}

impl PerfBaseline {
    /// Pin a baseline from a finished run.
    pub fn from_report(report: &ThroughputReport, noise_frac: f64) -> PerfBaseline {
        PerfBaseline {
            loops_per_sec_serial: report.total.loops_per_sec_serial,
            noise_frac,
            smoke: report.smoke,
            seed: report.seed,
            speedup: report.speedup_meaningful.then_some(report.total.speedup),
        }
    }

    /// Read a baseline file.
    pub fn load(path: &Path) -> io::Result<PerfBaseline> {
        let text = std::fs::read_to_string(path)?;
        serde_json::from_str(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }

    /// Write a baseline file, creating parent directories.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let json = serde_json::to_string_pretty(self).expect("baseline serialises");
        std::fs::write(path, json + "\n")
    }

    /// Compare a finished run against this baseline. `Err` means the
    /// comparison itself is invalid (mismatched run shape or a
    /// degenerate baseline), not a regression.
    pub fn check(&self, report: &ThroughputReport) -> Result<GateOutcome, String> {
        if !self.loops_per_sec_serial.is_finite() || self.loops_per_sec_serial <= 0.0 {
            return Err("baseline rate must be positive".to_string());
        }
        if !(0.0..1.0).contains(&self.noise_frac) {
            return Err(format!("noise_frac {} outside [0, 1)", self.noise_frac));
        }
        if report.smoke != self.smoke {
            return Err(format!(
                "baseline was {} but this run is {} — not comparable",
                if self.smoke { "smoke" } else { "full" },
                if report.smoke { "smoke" } else { "full" },
            ));
        }
        if report.seed != self.seed {
            return Err(format!(
                "baseline seed {} != run seed {} — different populations",
                self.seed, report.seed
            ));
        }
        let current = report.total.loops_per_sec_serial;
        let floor = self.loops_per_sec_serial * (1.0 - self.noise_frac);
        // The speedup comparison needs a meaningful ratio on both
        // sides: a baseline pinned on a single-core host has nothing to
        // compare against, and a single-core gate run cannot exhibit a
        // speedup however healthy the parallel path is. Either way the
        // comparison is skipped, not failed.
        let speedup_pair = match self.speedup {
            Some(base) if report.speedup_meaningful => Some((report.total.speedup, base)),
            _ => None,
        };
        let (speedup_checked, speedup_current, speedup_floor, speedup_pass) = match speedup_pair {
            Some((cur, base)) => {
                let sfloor = base * (1.0 - self.noise_frac);
                (true, Some(cur), Some(sfloor), cur >= sfloor)
            }
            None => (false, None, None, true),
        };
        Ok(GateOutcome {
            current,
            floor,
            ratio: current / self.loops_per_sec_serial,
            pass: current >= floor && speedup_pass,
            speedup_checked,
            speedup_current,
            speedup_floor,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::throughput::{run, ThroughputConfig};
    use tms_core::par::Parallelism;

    fn smoke_report() -> ThroughputReport {
        run(&ThroughputConfig {
            jobs: Parallelism::Jobs(2),
            smoke: true,
            ..Default::default()
        })
    }

    #[test]
    fn baseline_round_trips_and_gates() {
        let report = smoke_report();
        let base = PerfBaseline::from_report(&report, 0.4);
        let dir = std::env::temp_dir().join("tms_bench_baseline_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("baseline.json");
        base.write(&path).unwrap();
        let loaded = PerfBaseline::load(&path).unwrap();
        assert_eq!(loaded.smoke, base.smoke);
        assert_eq!(loaded.seed, base.seed);
        assert!((loaded.loops_per_sec_serial - base.loops_per_sec_serial).abs() < 1e-9);

        // A run gates cleanly against its own baseline…
        let outcome = loaded.check(&report).unwrap();
        assert!(outcome.pass);
        assert!((outcome.ratio - 1.0).abs() < 1e-9);

        // …and a 10× faster pinned rate fails it.
        let brutal = PerfBaseline {
            loops_per_sec_serial: base.loops_per_sec_serial * 10.0,
            ..loaded
        };
        let outcome = brutal.check(&report).unwrap();
        assert!(!outcome.pass);
        assert!(outcome.current < outcome.floor);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn speedup_gate_skips_on_single_core_hosts() {
        let mut report = smoke_report();
        let mut base = PerfBaseline::from_report(&report, 0.4);

        // Pretend the baseline host measured a healthy 3× speedup while
        // the gated run happens on a single-core box: the comparison
        // must be skipped, not failed, however poor the measured ratio.
        base.speedup = Some(3.0);
        report.speedup_meaningful = false;
        report.total.speedup = 0.5;
        let outcome = base.check(&report).unwrap();
        assert!(
            outcome.pass,
            "single-core run must not fail the speedup gate"
        );
        assert!(!outcome.speedup_checked);
        assert!(outcome.speedup_current.is_none());

        // A baseline pinned on a single-core host never checks speedup
        // either, even against a multi-core run.
        base.speedup = None;
        report.speedup_meaningful = true;
        let outcome = base.check(&report).unwrap();
        assert!(outcome.pass);
        assert!(!outcome.speedup_checked);

        // With both sides meaningful the comparison runs and can fail.
        base.speedup = Some(3.0);
        report.total.speedup = 0.5;
        let outcome = base.check(&report).unwrap();
        assert!(outcome.speedup_checked);
        assert!(!outcome.pass, "0.5x against a 3.0x baseline must fail");
        report.total.speedup = 2.9;
        let outcome = base.check(&report).unwrap();
        assert!(outcome.pass, "2.9x is inside the 40% noise window of 3.0x");
    }

    #[test]
    fn baseline_without_speedup_field_still_loads() {
        // Baselines written before the speedup pin lack the field;
        // serde must default it to None instead of rejecting the file.
        let legacy = r#"{
            "loops_per_sec_serial": 9.0,
            "noise_frac": 0.6,
            "smoke": true,
            "seed": 42
        }"#;
        let base: PerfBaseline = serde_json::from_str(legacy).unwrap();
        assert!(base.speedup.is_none());
    }

    #[test]
    fn mismatched_runs_are_rejected_not_failed() {
        let report = smoke_report();
        let mut base = PerfBaseline::from_report(&report, 0.4);
        base.smoke = false;
        assert!(base.check(&report).unwrap_err().contains("not comparable"));
        let mut base = PerfBaseline::from_report(&report, 0.4);
        base.seed ^= 1;
        assert!(base.check(&report).unwrap_err().contains("seed"));
        let base = PerfBaseline::from_report(&report, 1.5);
        assert!(base.check(&report).unwrap_err().contains("noise_frac"));
    }
}
