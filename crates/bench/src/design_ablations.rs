//! Ablations of this reproduction's own design choices (DESIGN.md §5),
//! beyond the paper's §5.2 speculation ablation:
//!
//! * **stage bound** — TMS without the `⌈LDP/II⌉ + slack` stage cap
//!   (shows the degenerate scatter: small C_delay, exploding
//!   SEND/RECV pairs and MaxLive);
//! * **candidate thinning** — dense vs thinned `(II, C_delay)` grids
//!   (cost-key quality vs search effort);
//! * **Definition 3** — C2 without the *preserved* test (every
//!   inter-thread memory dependence counts toward `P_max`, so the
//!   scheduler over-synchronises).

use crate::config::ExperimentConfig;
use crate::report::render_table;
use crate::runner::simulate;
use serde::{Deserialize, Serialize};
use tms_core::cost::CostModel;
use tms_core::{schedule_tms, LoopMetrics, TmsConfig};
use tms_workloads::doacross_suite;

/// One (loop, variant) measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationVariantRow {
    /// Loop name.
    pub loop_name: String,
    /// Variant label.
    pub variant: String,
    /// TMS II.
    pub ii: u32,
    /// Achieved C_delay.
    pub c_delay: u32,
    /// Kernel stages.
    pub stages: u32,
    /// MaxLive.
    pub max_live: u32,
    /// SEND/RECV pairs per kernel iteration (static plan).
    pub pairs: u32,
    /// Simulated total cycles.
    pub cycles: u64,
}

fn variants() -> Vec<(&'static str, TmsConfig)> {
    vec![
        ("default", TmsConfig::default()),
        (
            "no-stage-cap",
            TmsConfig {
                max_extra_stages: 1000,
                ..TmsConfig::default()
            },
        ),
        (
            "dense-candidates",
            TmsConfig {
                dense_candidates: true,
                ..TmsConfig::default()
            },
        ),
        ("sync-all (Pmax=0)", TmsConfig::no_speculation()),
    ]
}

/// Run every variant over the DOACROSS suite.
pub fn run(cfg: &ExperimentConfig) -> Vec<AblationVariantRow> {
    run_filtered(cfg, &|_| true)
}

/// Run over the loops selected by `keep` (tests use small subsets —
/// the dense-candidate variant is expensive on the 100+-instruction
/// loops).
pub fn run_filtered(
    cfg: &ExperimentConfig,
    keep: &dyn Fn(&str) -> bool,
) -> Vec<AblationVariantRow> {
    let machine = cfg.machine();
    let arch = cfg.arch();
    let model = CostModel::new(arch.costs, arch.ncore);
    let mut rows = Vec::new();
    for l in doacross_suite(cfg.seed) {
        if !keep(l.ddg.name()) {
            continue;
        }
        for (name, tms_cfg) in variants() {
            let Ok(r) = schedule_tms(&l.ddg, &machine, &model, &tms_cfg) else {
                continue;
            };
            let m = LoopMetrics::compute(&l.ddg, &machine, &r.schedule, &arch.costs);
            let s = simulate(&l.ddg, &r.schedule, cfg);
            rows.push(AblationVariantRow {
                loop_name: l.ddg.name().to_string(),
                variant: name.to_string(),
                ii: m.ii,
                c_delay: m.c_delay,
                stages: m.stage_count,
                max_live: m.max_live,
                pairs: m.send_recv_pairs,
                cycles: s.total_cycles,
            });
        }
    }
    rows
}

/// Render the comparison.
pub fn render(rows: &[AblationVariantRow]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.loop_name.clone(),
                r.variant.clone(),
                r.ii.to_string(),
                r.c_delay.to_string(),
                r.stages.to_string(),
                r.max_live.to_string(),
                r.pairs.to_string(),
                r.cycles.to_string(),
            ]
        })
        .collect();
    render_table(
        "Design-choice ablations over the DOACROSS suite",
        &[
            "Loop", "variant", "II", "C_delay", "stages", "MaxLive", "pairs", "cycles",
        ],
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_schedule_the_art_loops() {
        let cfg = ExperimentConfig {
            n_iter: 48,
            ..ExperimentConfig::default()
        };
        let rows = run_filtered(&cfg, &|n| n.starts_with("art"));
        // 4 art loops × 4 variants.
        assert_eq!(rows.len(), 16);
    }

    #[test]
    fn stage_cap_limits_stage_count() {
        let cfg = ExperimentConfig {
            n_iter: 48,
            ..ExperimentConfig::default()
        };
        let rows = run_filtered(&cfg, &|n| n == "art.L0" || n == "art.L1");
        for l in ["art.L0", "art.L1"] {
            let dflt = rows
                .iter()
                .find(|r| r.loop_name == l && r.variant == "default")
                .unwrap();
            let wild = rows
                .iter()
                .find(|r| r.loop_name == l && r.variant == "no-stage-cap")
                .unwrap();
            assert!(
                dflt.stages <= wild.stages,
                "{l}: cap should not raise stages ({} vs {})",
                dflt.stages,
                wild.stages
            );
        }
    }
}
