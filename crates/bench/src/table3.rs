//! Table 3 — the selected DOACROSS loops and their TMS-scheduled
//! metrics, grouped per source benchmark.

use crate::config::ExperimentConfig;
use crate::report::{f1, pct, render_table};
use crate::runner::schedule_both;
use serde::{Deserialize, Serialize};
use tms_workloads::doacross_suite;

/// One benchmark set's row of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    /// Source benchmark.
    pub benchmark: String,
    /// Loops in the set.
    pub n_loops: u32,
    /// Loop coverage of the set (LC).
    pub coverage: f64,
    /// Average instruction count.
    pub avg_inst: f64,
    /// Average SCC count.
    pub avg_scc: f64,
    /// Average MII.
    pub avg_mii: f64,
    /// Average longest dependence path.
    pub avg_ldp: f64,
    /// TMS: average II.
    pub tms_ii: f64,
    /// TMS: average MaxLive.
    pub tms_maxlive: f64,
    /// TMS: average C_delay.
    pub tms_c_delay: f64,
}

/// Run the Table 3 experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<Table3Row> {
    let suite = doacross_suite(cfg.seed);
    let benchmarks = ["art", "equake", "lucas", "fma3d"];
    benchmarks
        .iter()
        .map(|&bench| {
            let loops: Vec<_> = suite.iter().filter(|l| l.benchmark == bench).collect();
            let n = loops.len() as f64;
            let mut row = Table3Row {
                benchmark: bench.to_string(),
                n_loops: loops.len() as u32,
                coverage: loops[0].coverage,
                avg_inst: 0.0,
                avg_scc: 0.0,
                avg_mii: 0.0,
                avg_ldp: 0.0,
                tms_ii: 0.0,
                tms_maxlive: 0.0,
                tms_c_delay: 0.0,
            };
            for l in &loops {
                let r = schedule_both(&l.ddg, cfg);
                row.avg_inst += l.ddg.num_insts() as f64;
                row.avg_scc += r.tms_metrics.num_sccs as f64;
                row.avg_mii += r.tms_metrics.mii as f64;
                row.avg_ldp += r.tms_metrics.ldp as f64;
                row.tms_ii += r.tms_metrics.ii as f64;
                row.tms_maxlive += r.tms_metrics.max_live as f64;
                row.tms_c_delay += r.tms_metrics.c_delay as f64;
            }
            for v in [
                &mut row.avg_inst,
                &mut row.avg_scc,
                &mut row.avg_mii,
                &mut row.avg_ldp,
                &mut row.tms_ii,
                &mut row.tms_maxlive,
                &mut row.tms_c_delay,
            ] {
                *v /= n;
            }
            row
        })
        .collect()
}

/// Render in the paper's layout.
pub fn render(rows: &[Table3Row]) -> String {
    let header = [
        "Benchmark",
        "#Loops",
        "LC",
        "AVG #Inst",
        "AVG #SCC",
        "AVG MII",
        "LDP",
        "TMS AVG II",
        "TMS AVG ML",
        "TMS AVG D",
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                r.n_loops.to_string(),
                pct(r.coverage * 100.0),
                f1(r.avg_inst),
                f1(r.avg_scc),
                f1(r.avg_mii),
                f1(r.avg_ldp),
                f1(r.tms_ii),
                f1(r.tms_maxlive),
                f1(r.tms_c_delay),
            ]
        })
        .collect();
    render_table(
        "Table 3: Selected DOACROSS loops and their TMS-scheduled loops",
        &header,
        &body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_with_paper_shapes() {
        let cfg = ExperimentConfig::quick();
        let rows = run(&cfg);
        assert_eq!(rows.len(), 4);

        let get = |b: &str| rows.iter().find(|r| r.benchmark == b).unwrap();
        // Instruction counts come straight from Table 3.
        assert!((get("art").avg_inst - 27.0).abs() < 1e-9);
        assert!((get("equake").avg_inst - 82.0).abs() < 1e-9);
        assert!((get("lucas").avg_inst - 102.0).abs() < 1e-9);
        assert!((get("fma3d").avg_inst - 72.0).abs() < 1e-9);
        // lucas is recurrence-bound: MII far above 102/4.
        assert!(get("lucas").avg_mii > 40.0);
        // lucas's C_delay is large (close to II) — "ILP only".
        assert!(get("lucas").tms_c_delay > get("art").tms_c_delay);
        // art/equake/fma3d have small C_delay relative to II — TLP.
        for b in ["art", "equake", "fma3d"] {
            let r = get(b);
            assert!(
                r.tms_c_delay < r.tms_ii,
                "{b}: C_delay {} vs II {}",
                r.tms_c_delay,
                r.tms_ii
            );
        }
    }

    #[test]
    fn render_contains_all_sets() {
        let cfg = ExperimentConfig::quick();
        let t = render(&run(&cfg));
        for b in ["art", "equake", "lucas", "fma3d"] {
            assert!(t.contains(b));
        }
        assert!(t.contains("58.5%")); // equake's published coverage
    }
}
