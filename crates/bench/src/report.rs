//! Plain-text table rendering and JSON result dumping.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// Render a table with a header row and aligned columns.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncol) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "== {title} ==");
    let line = |out: &mut String, cells: &[String]| {
        let mut parts = Vec::with_capacity(ncol);
        for (i, c) in cells.iter().enumerate().take(ncol) {
            parts.push(format!("{:>w$}", c, w = widths[i]));
        }
        let _ = writeln!(out, "| {} |", parts.join(" | "));
    };
    line(
        &mut out,
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    line(&mut out, &sep);
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Format a float with one decimal, the paper's table style.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a percentage with one decimal and a `%`.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Write any serialisable result set as pretty JSON under
/// `results/<name>.json` (directory created on demand). Returns the
/// path written. Failures are reported, not fatal — the printed tables
/// are the primary artifact.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> Option<std::path::PathBuf> {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => std::fs::write(&path, s).ok().map(|_| path),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            "T",
            &["name", "v"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        assert!(t.contains("== T =="));
        assert!(t.contains("| longer | 22 |"));
        // Header padded to the widest cell.
        assert!(t.contains("|   name |  v |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f1(3.167), "3.2");
        assert_eq!(pct(27.96), "28.0%");
    }
}
