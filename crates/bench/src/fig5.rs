//! Figure 5 — speedups of TMS over single-threaded code for the
//! selected DOACROSS loops.
//!
//! The paper reports loop speedups between 37% and 210% (average 73%)
//! and program speedups up to 24% (equake, thanks to its 58.5%
//! coverage; average 12%).

use crate::config::ExperimentConfig;
use crate::report::{pct, render_table};
use crate::runner::{program_speedup_pct, schedule_both, simulate, simulate_single, speedup_pct};
use serde::{Deserialize, Serialize};
use tms_workloads::doacross_suite;

/// One benchmark set's bars in Figure 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Source benchmark.
    pub benchmark: String,
    /// TMS-over-single-threaded loop speedup (%).
    pub loop_speedup_pct: f64,
    /// Program speedup (%) via the set's loop coverage.
    pub program_speedup_pct: f64,
    /// Single-threaded cycles (diagnostic).
    pub single_cycles: u64,
    /// TMS 4-core cycles (diagnostic).
    pub tms_cycles: u64,
}

/// Run the Figure 5 experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<Fig5Row> {
    let suite = doacross_suite(cfg.seed);
    ["art", "equake", "lucas", "fma3d"]
        .iter()
        .map(|&bench| {
            let loops: Vec<_> = suite.iter().filter(|l| l.benchmark == bench).collect();
            let mut single = 0u64;
            let mut tms = 0u64;
            for l in &loops {
                let r = schedule_both(&l.ddg, cfg);
                single += simulate_single(&l.ddg, cfg);
                tms += simulate(&l.ddg, &r.tms, cfg).total_cycles;
            }
            let loop_sp = speedup_pct(single, tms);
            Fig5Row {
                benchmark: bench.to_string(),
                loop_speedup_pct: loop_sp,
                program_speedup_pct: program_speedup_pct(loop_sp, loops[0].coverage),
                single_cycles: single,
                tms_cycles: tms,
            }
        })
        .collect()
}

/// Averages `(loop, program)` — the paper quotes 73% and 12%.
pub fn averages(rows: &[Fig5Row]) -> (f64, f64) {
    let n = rows.len().max(1) as f64;
    (
        rows.iter().map(|r| r.loop_speedup_pct).sum::<f64>() / n,
        rows.iter().map(|r| r.program_speedup_pct).sum::<f64>() / n,
    )
}

/// Render the series.
pub fn render(rows: &[Fig5Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                pct(r.loop_speedup_pct),
                pct(r.program_speedup_pct),
            ]
        })
        .collect();
    let (al, ap) = averages(rows);
    let mut out = render_table(
        "Figure 5: Speedups of TMS over single-threaded code",
        &["Benchmark", "Loop speedup", "Program speedup"],
        &body,
    );
    out.push_str(&format!("average: loop {} program {}\n", pct(al), pct(ap)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doacross_loops_beat_single_threaded() {
        let cfg = ExperimentConfig {
            n_iter: 64,
            ..ExperimentConfig::default()
        };
        let rows = run(&cfg);
        assert_eq!(rows.len(), 4);
        // The speculable, resource-bound sets must show real speedups
        // (art's margin is thin at small iteration budgets — the pipeline
        // fill amortises over the full-scale run).
        for (b, floor) in [("art", 0.0), ("equake", 10.0), ("fma3d", 10.0)] {
            let r = rows.iter().find(|r| r.benchmark == b).unwrap();
            assert!(
                r.loop_speedup_pct > floor,
                "{b}: loop speedup {:.1}% too small",
                r.loop_speedup_pct
            );
        }
        // equake's 58.5% coverage amplifies its loop speedup into a
        // program speedup ahead of the low-coverage sets (fma3d can
        // edge it on raw loop speedup at small iteration budgets).
        let prog = |b: &str| {
            rows.iter()
                .find(|r| r.benchmark == b)
                .unwrap()
                .program_speedup_pct
        };
        assert!(prog("equake") > prog("art"));
        assert!(prog("equake") > prog("lucas"));
    }

    #[test]
    fn render_mentions_average() {
        let rows = vec![Fig5Row {
            benchmark: "art".into(),
            loop_speedup_pct: 80.0,
            program_speedup_pct: 14.7,
            single_cycles: 1800,
            tms_cycles: 1000,
        }];
        let t = render(&rows);
        assert!(t.contains("Figure 5"));
        assert!(t.contains("80.0%"));
    }
}
