//! Shared experiment configuration.

use serde::{Deserialize, Serialize};
use tms_core::par::Parallelism;
use tms_machine::{ArchParams, MachineModel};

/// Knobs shared by every experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Seed for workload generation and simulation draws.
    pub seed: u64,
    /// Iterations simulated per loop.
    pub n_iter: u64,
    /// Cores of the SpMT system.
    pub ncore: u32,
    /// Model the cache hierarchy during simulation.
    pub model_caches: bool,
    /// Worker threads for per-loop fan-outs (1 = serial, 0 = all
    /// available cores). Results are independent of this knob — loops
    /// are scheduled/simulated independently and folded in input order.
    #[serde(default = "default_jobs")]
    pub jobs: usize,
}

fn default_jobs() -> usize {
    1
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            seed: 0x1CC9_2008,
            n_iter: 400,
            ncore: 4,
            model_caches: true,
            jobs: default_jobs(),
        }
    }
}

impl ExperimentConfig {
    /// A fast configuration for Criterion benches and smoke tests.
    pub fn quick() -> Self {
        ExperimentConfig {
            n_iter: 64,
            ..Self::default()
        }
    }

    /// The worker-pool width for per-loop fan-outs.
    pub fn parallelism(&self) -> Parallelism {
        Parallelism::from_jobs(self.jobs)
    }

    /// The per-core machine model (Table 1).
    pub fn machine(&self) -> MachineModel {
        MachineModel::icpp2008()
    }

    /// The system parameters with this config's core count.
    pub fn arch(&self) -> ArchParams {
        ArchParams::with_ncore(self.ncore)
    }

    /// A simulator configuration derived from this experiment config.
    pub fn sim(&self) -> tms_sim::SimConfig {
        tms_sim::SimConfig {
            arch: self.arch(),
            n_iter: self.n_iter,
            seed: self.seed,
            model_caches: self.model_caches,
            detect_violations: true,
            collect_trace: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_papers_system() {
        let c = ExperimentConfig::default();
        assert_eq!(c.ncore, 4);
        assert!(c.n_iter >= 100);
        assert_eq!(c.arch().ncore, 4);
        assert_eq!(c.sim().n_iter, c.n_iter);
    }

    #[test]
    fn quick_is_smaller() {
        assert!(ExperimentConfig::quick().n_iter < ExperimentConfig::default().n_iter);
    }
}
