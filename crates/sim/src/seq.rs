//! Sequential (single-threaded) reference execution.
//!
//! Models the paper's baseline: the loop running on one 4-wide
//! out-of-order core (Table 1). Consecutive iterations overlap as far
//! as the instruction window allows — the model dispatches instruction
//! instances in program order into a finite ROB (in-order dispatch and
//! retire, at most `issue width` per cycle each), executes each
//! instance when its operands are ready and a functional unit is free,
//! and honours *actual* memory aliasing through the same address
//! streams the SpMT engine uses. Everything is computed in a single
//! pass over instances (no per-cycle loop).

use crate::addr::AddressMap;
use crate::cache::CacheHierarchy;
use crate::config::SimConfig;
use std::collections::HashMap;
use tms_ddg::{Ddg, InstId};
use tms_machine::{MachineModel, ResourceClass};

/// Reorder-buffer capacity of the baseline core. Table 1 does not list
/// one; 128 gives the aggressive 4-wide out-of-order cores the paper
/// simulates enough window to overlap consecutive iterations of even
/// the largest selected loop (lucas, 102 instructions) — a weaker
/// baseline would flatter the SpMT speedups.
pub const ROB_ENTRIES: usize = 128;

/// Scheduler (issue-queue) lookahead of the baseline core: an
/// instruction cannot begin execution before the instruction this many
/// slots older has begun. Real 2008-era 4-wide cores pick from a
/// scheduling window far smaller than the ROB; without this bound the
/// analytic model would reach the pure dataflow limit and overstate the
/// baseline.
pub const SCHED_WINDOW: usize = 32;

/// Result of a sequential run.
#[derive(Debug, Clone)]
pub struct SeqOutcome {
    /// Total execution cycles (retire time of the last instance).
    pub total_cycles: u64,
    /// Final memory image: address → `(store inst, iteration)` of the
    /// program-order-last store.
    pub memory_image: HashMap<u64, (InstId, u64)>,
    /// Cache counters `[l1_hits, l2_hits, misses]`.
    pub cache_counts: [u64; 3],
}

/// Per-cycle capacity tracker for one FU class: `units` issues per
/// cycle, claims may arrive in any order (an OoO scheduler issues the
/// earliest-ready op first, so pool assignment must not depend on
/// program order).
#[derive(Debug, Clone)]
struct UnitPool {
    units: u32,
    used: HashMap<u64, u32>,
}

impl UnitPool {
    fn new(units: u32) -> Self {
        UnitPool {
            units: units.max(1),
            used: HashMap::new(),
        }
    }

    /// Claim an issue slot at the first cycle ≥ `t` with spare
    /// capacity; returns that cycle.
    fn claim(&mut self, t: u64) -> u64 {
        let mut c = t;
        loop {
            let e = self.used.entry(c).or_insert(0);
            if *e < self.units {
                *e += 1;
                return c;
            }
            c += 1;
        }
    }
}

/// Execute `n_iter` iterations on the out-of-order baseline core.
pub fn simulate_sequential(ddg: &Ddg, machine: &MachineModel, config: &SimConfig) -> SeqOutcome {
    let n = ddg.num_insts();
    let addr_map = AddressMap::new(ddg, config.seed);
    let mut caches = CacheHierarchy::new(config.arch.cache, 1);
    let mut memory_image: HashMap<u64, (InstId, u64)> = HashMap::new();

    let width = machine.issue_width.clamp(1, 64) as u64;
    let mut pools: Vec<UnitPool> = ResourceClass::ALL
        .iter()
        .map(|&c| UnitPool::new(machine.units_of(c).min(64)))
        .collect();

    // Rolling state across the instance stream (program order =
    // iteration-major, instruction-id-minor).
    let max_dist = ddg
        .edges()
        .iter()
        .map(|e| e.distance as usize)
        .max()
        .unwrap_or(0);
    let hist = max_dist + 1; // iterations of completion history to keep
    let mut completes: Vec<u64> = vec![0; n * hist]; // [iter % hist][inst]
                                                     // Store times addressable by (inst, iter) within the history.
    let mut dispatch_hist: Vec<u64> = vec![0; ROB_ENTRIES]; // ring: dispatch index k % ROB
    let mut retire_hist: Vec<u64> = vec![0; ROB_ENTRIES];
    let mut start_hist: Vec<u64> = vec![0; SCHED_WINDOW]; // execution starts
    let mut k: usize = 0; // global instance index
    let mut last_dispatch = 0u64;
    let mut last_retire = 0u64;
    let mut total = 0u64;

    for iter in 0..config.n_iter {
        let slot = (iter as usize) % hist;
        for id in ddg.inst_ids() {
            let inst = ddg.inst(id);
            // --- Dispatch: in order, `width` per cycle, ROB capacity.
            let mut dispatch = last_dispatch;
            if k >= width as usize {
                dispatch = dispatch.max(dispatch_hist[(k - width as usize) % ROB_ENTRIES] + 1);
            }
            if k >= ROB_ENTRIES {
                // The instance ROB_ENTRIES ago must have retired.
                dispatch = dispatch.max(retire_hist[k % ROB_ENTRIES]);
            }

            // --- Operand readiness from register/memory dependences.
            let mut ready = dispatch;
            for (_, e) in ddg.pred_edges(id) {
                if !(e.is_register_flow() || e.is_memory_flow()) {
                    continue;
                }
                let d = e.distance as u64;
                if iter < d {
                    continue;
                }
                if e.kind == tms_ddg::DepKind::Memory {
                    // Only a real address match forwards through memory
                    // (dynamic disambiguation, as the OoO core would).
                    let a_y = addr_map.addr(ddg, id, iter);
                    let a_x = addr_map.addr(ddg, e.src, iter - d);
                    if a_y != a_x {
                        continue;
                    }
                }
                let src_slot = ((iter - d) as usize) % hist;
                ready = ready.max(completes[src_slot * n + e.src.index()]);
            }

            // --- Execute on the first free unit of the class, no
            // earlier than the scheduler window allows.
            if k >= SCHED_WINDOW {
                ready = ready.max(start_hist[k % SCHED_WINDOW]);
            }
            let class = ResourceClass::for_op(inst.op);
            let start = pools[class.index()].claim(ready);
            start_hist[k % SCHED_WINDOW] = start;

            let mut lat = inst.latency as u64;
            if inst.op.is_memory() {
                let a = addr_map.addr(ddg, id, iter);
                if config.model_caches {
                    let (l, _) = caches.access(0, a);
                    if inst.op.is_load() {
                        lat = l as u64;
                    }
                }
                if inst.op.is_store() {
                    lat = 1;
                    match memory_image.get(&a) {
                        Some(&(pi, pit)) if (pit, pi) > (iter, id) => {}
                        _ => {
                            memory_image.insert(a, (id, iter));
                        }
                    }
                }
            }
            let complete = start + lat;
            completes[slot * n + id.index()] = complete;

            // --- Retire in order (bounded by width per cycle).
            let mut retire = complete.max(last_retire);
            if k >= width as usize {
                retire = retire.max(retire_hist[(k - width as usize) % ROB_ENTRIES] + 1);
            }
            dispatch_hist[k % ROB_ENTRIES] = dispatch;
            retire_hist[k % ROB_ENTRIES] = retire;
            last_dispatch = dispatch;
            last_retire = retire;
            total = total.max(retire);
            k += 1;
        }
    }

    SeqOutcome {
        total_cycles: total,
        memory_image,
        cache_counts: caches.counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tms_ddg::{DdgBuilder, OpClass};

    fn cfg(n_iter: u64) -> SimConfig {
        let mut c = SimConfig::icpp2008(n_iter);
        c.model_caches = false;
        c
    }

    fn chain() -> Ddg {
        let mut b = DdgBuilder::new("chain");
        let l = b.inst("ld", OpClass::Load); // 3
        let f = b.inst("f", OpClass::FpMul); // 4
        let s = b.inst("st", OpClass::Store); // 1
        b.reg_flow(l, f, 0);
        b.reg_flow(f, s, 0);
        b.build().unwrap()
    }

    #[test]
    fn independent_iterations_overlap() {
        // No cross-iteration dependences: the OoO core pipelines at the
        // FU bound (~1 iteration/cycle here), far better than the
        // serial 8 cycles/iteration.
        let g = chain();
        let m = MachineModel::icpp2008();
        let t100 = simulate_sequential(&g, &m, &cfg(100)).total_cycles;
        assert!(t100 < 8 * 100 / 2, "overlap missing: {t100}");
        // And asymptotically linear.
        let t200 = simulate_sequential(&g, &m, &cfg(200)).total_cycles;
        let steady = t200 - t100;
        assert!((90..=160).contains(&steady), "steady {steady}");
    }

    #[test]
    fn register_recurrence_bounds_throughput() {
        // acc += x: the 2-cycle FpAdd recurrence caps throughput at 2
        // cycles/iteration no matter the window.
        let mut b = DdgBuilder::new("acc");
        let a = b.inst("acc", OpClass::FpAdd);
        b.reg_flow(a, a, 1);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let t100 = simulate_sequential(&g, &m, &cfg(100)).total_cycles;
        let t200 = simulate_sequential(&g, &m, &cfg(200)).total_cycles;
        assert_eq!(t200 - t100, 200, "2 cycles per iteration");
    }

    #[test]
    fn certain_memory_recurrence_serialises() {
        // st x[i] -> ld x[i-1] with p=1: real aliasing forwards through
        // memory and serialises iterations.
        let mut b = DdgBuilder::new("memrec");
        let ld = b.inst("ld", OpClass::Load); // 3
        let f = b.inst("f", OpClass::FpAdd); // 2
        let st = b.inst("st", OpClass::Store); // 1
        b.reg_flow(ld, f, 0);
        b.reg_flow(f, st, 0);
        b.mem_flow(st, ld, 1, 1.0);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let t50 = simulate_sequential(&g, &m, &cfg(50)).total_cycles;
        let t100 = simulate_sequential(&g, &m, &cfg(100)).total_cycles;
        let steady = (t100 - t50) / 50;
        assert!(steady >= 6, "recurrence must serialise: {steady}/iter");
    }

    #[test]
    fn improbable_memory_recurrence_overlaps() {
        let mut b = DdgBuilder::new("memrec0");
        let ld = b.inst("ld", OpClass::Load);
        let f = b.inst("f", OpClass::FpAdd);
        let st = b.inst("st", OpClass::Store);
        b.reg_flow(ld, f, 0);
        b.reg_flow(f, st, 0);
        b.mem_flow(st, ld, 1, 0.0);
        let g = b.build().unwrap();
        let m = MachineModel::icpp2008();
        let t100 = simulate_sequential(&g, &m, &cfg(100)).total_cycles;
        assert!(t100 < 300, "no aliasing, should overlap: {t100}");
    }

    #[test]
    fn memory_image_covers_all_iterations() {
        let g = chain();
        let m = MachineModel::icpp2008();
        let out = simulate_sequential(&g, &m, &cfg(25));
        assert_eq!(out.memory_image.len(), 25);
    }

    #[test]
    fn zero_iterations() {
        let g = chain();
        let m = MachineModel::icpp2008();
        let out = simulate_sequential(&g, &m, &cfg(0));
        assert_eq!(out.total_cycles, 0);
        assert!(out.memory_image.is_empty());
    }

    #[test]
    fn cache_misses_slow_the_run() {
        let g = chain();
        let m = MachineModel::icpp2008();
        let mut on = cfg(50);
        on.model_caches = true;
        let with = simulate_sequential(&g, &m, &on).total_cycles;
        let without = simulate_sequential(&g, &m, &cfg(50)).total_cycles;
        assert!(with >= without);
    }
}
