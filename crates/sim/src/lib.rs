//! Cycle-level speculative-multithreading (SpMT) multicore simulator.
//!
//! Implements the execution model of §3 of *Thread-Sensitive Modulo
//! Scheduling for Multicore Processors* (ICPP 2008): a ring of cores
//! executing the iterations of a modulo-scheduled kernel as speculative
//! threads in round-robin order.
//!
//! * **Synchronised dependences** — inter-thread register values move
//!   through SEND/RECV queues (Voltron queue model, `C_reg_com` = 3
//!   cycles end to end); a RECV on an empty queue stalls the consumer
//!   and the stall cycles are accounted (the paper's Figure 6a metric).
//! * **Speculated dependences** — inter-thread memory dependences are
//!   not synchronised; an MDT-style check flags any load that read a
//!   location an older thread only wrote later, squashing the violating
//!   thread (and the more speculative ones in flight) and re-executing
//!   it after the `C_inv` = 15-cycle invalidation.
//! * **Spawn/commit** — each thread's first action spawns its successor
//!   (`C_spn` = 3); threads commit in order through a double-buffered
//!   speculative write buffer (`C_ci` = 2).
//! * **Memory hierarchy** — per-core L1D and a shared L2 with Table 1
//!   latencies; addresses come from per-instruction synthetic streams
//!   whose cross-iteration aliasing realises the DDG's dependence
//!   probabilities (see [`addr`]).
//!
//! The simulator processes threads in logical order, each as an
//! in-order walk of its kernel rows with cumulative slip — the level of
//! detail at which modulo scheduling determines behaviour. See
//! DESIGN.md for the substitution argument versus the paper's
//! SimpleScalar-based simulator.

pub mod addr;
pub mod cache;
pub mod config;
pub mod engine;
pub mod program;
pub mod seq;
pub mod stats;
pub mod trace;

pub use config::SimConfig;
pub use engine::{simulate_spmt, simulate_spmt_injected, simulate_spmt_traced, SpmtOutcome};
pub use seq::{simulate_sequential, SeqOutcome};
pub use stats::SimStats;
pub use trace::{RunTrace, ThreadTrace};
